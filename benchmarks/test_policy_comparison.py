"""Policy bench: OracleBestPolicy vs HeuristicPolicy vs FixedPolicy.

Sweeps the corpus once per schedule-selection policy -- the paper's
"best of all schedules" line (oracle_best), the Section 6.2 heuristic,
and the best *fixed* schedule (merge_path) -- and records the per-policy
model-time totals into ``BENCH_policy.json`` at the repo root, so the
policy layer has a trajectory to regress against alongside
``BENCH_sweep.json``.

Asserts the structural guarantees rather than absolute numbers:
oracle-best can never lose to any fixed schedule on any dataset (it *is*
the per-dataset argmin), and the heuristic lands between the oracle and
the worst fixed schedule in total.

Runs in smoke mode by default (tiny corpus; CI-friendly).  Environment
knobs scale it up for real benching: ``REPRO_BENCH_POLICY_SCALE``
(corpus scale), ``REPRO_BENCH_POLICY_LIMIT`` (dataset count).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.engine import ExecutionContext
from repro.evaluation.harness import run_suite

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_policy.json"

POLICY_SCALE = os.environ.get("REPRO_BENCH_POLICY_SCALE", "smoke")
POLICY_LIMIT = int(os.environ.get("REPRO_BENCH_POLICY_LIMIT", "8"))

#: The fixed-schedule field: every registered schedule, swept as its own
#: kernel column so oracle_best has a per-dataset reference argmin.
FIXED_KERNELS = [
    "thread_mapped", "group_mapped", "merge_path", "nonzero_split", "lrb",
]
POLICIES = ["oracle_best", "heuristic"] + FIXED_KERNELS


def test_policy_comparison():
    ctx = ExecutionContext()
    t0 = time.perf_counter()
    rows = run_suite(
        POLICIES, app="spmv", scale=POLICY_SCALE, limit=POLICY_LIMIT, ctx=ctx
    )
    wall_s = time.perf_counter() - t0

    by_policy: dict[str, dict[str, float]] = {p: {} for p in POLICIES}
    chosen: dict[str, str] = {}
    for r in rows:
        by_policy[r.kernel][r.dataset] = r.elapsed
        if r.kernel == "oracle_best":
            # The resolved schedule rides along in the row extras -- the
            # oracle's actual choice, not an elapsed-time reverse lookup
            # (which reported "?" whenever the argmin was a schedule
            # outside the fixed field).
            chosen[r.dataset] = r.meta["schedule"]
    datasets = sorted(by_policy["oracle_best"])

    # Structural guarantee: oracle-best is the per-dataset argmin over
    # the fixed schedules it prices (same launches, same planner).
    for d in datasets:
        fixed_best = min(by_policy[k][d] for k in FIXED_KERNELS)
        assert by_policy["oracle_best"][d] <= fixed_best + 1e-12, d

    totals = {p: sum(by_policy[p].values()) for p in POLICIES}
    assert totals["oracle_best"] <= totals["heuristic"] + 1e-12
    assert totals["oracle_best"] <= min(totals[k] for k in FIXED_KERNELS) + 1e-12

    # Every dataset records a real registered schedule name -- never "?".
    from repro.core.schedule import available_schedules

    assert set(chosen) == set(datasets)
    assert all(name in available_schedules() for name in chosen.values()), chosen

    payload = {
        "benchmark": "policy_comparison",
        "app": "spmv",
        "scale": POLICY_SCALE,
        "limit": POLICY_LIMIT,
        "datasets": len(datasets),
        "policies": POLICIES,
        "total_model_ms": {p: round(totals[p], 9) for p in POLICIES},
        "speedup_vs_merge_path": {
            p: round(totals["merge_path"] / totals[p], 4)
            for p in POLICIES
            if totals[p] > 0
        },
        "oracle_best_choice_per_dataset": chosen,
        "per_dataset_model_ms": {
            p: {d: round(by_policy[p][d], 9) for d in datasets}
            for p in POLICIES
        },
        "sweep_wall_s": round(wall_s, 3),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== BENCH_policy.json ===\n{json.dumps(payload, indent=2)}")
