"""Figure 4: heuristic-combined SpMV speedup over cuSparse.

Paper result: selecting the schedule per matrix with the simple
alpha/beta rule (Section 6.2) yields a geomean speedup of 2.7x and a
peak of 39x over cuSparse across SuiteSparse.

This bench regenerates the speedup scatter (split by chosen schedule,
the figure's three colours) and asserts geomean/peak bands.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.evaluation.figures import fig4_heuristic
from repro.gpusim.profiler import geomean


@pytest.fixture(scope="module")
def fig4(suite_rows):
    return fig4_heuristic(rows=suite_rows)


def test_fig4_regenerate_series(benchmark, suite_rows, fig4, results_dir):
    benchmark(lambda: fig4_heuristic(rows=suite_rows))

    lines = ["chosen_schedule,dataset,nnzs,speedup_vs_cusparse"]
    for sched, series in fig4.series.items():
        for d, n, v in zip(series.datasets, series.nnzs, series.values):
            lines.append(f"{sched},{d},{n},{v:.4f}")
    lines.append("")
    lines.append(f"geomean_speedup,{fig4.geomean_speedup:.3f}")
    lines.append(f"peak_speedup,{fig4.peak_speedup:.2f}")
    lines.append(f"peak_dataset,{fig4.peak_dataset}")
    lines.append("paper_geomean_speedup,2.7")
    lines.append("paper_peak_speedup,39")
    emit(results_dir, "fig4_heuristic.csv", "\n".join(lines))


class TestFig4Shape:
    def test_geomean_in_paper_band(self, benchmark, fig4):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        # Paper: 2.7x.  Same decisive-win band.
        assert 1.8 <= fig4.geomean_speedup <= 5.0

    def test_peak_order_of_magnitude(self, benchmark, fig4):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        # Paper: 39x peak.
        assert fig4.peak_speedup >= 15.0

    def test_heuristic_wins_everywhere_it_matters(self, benchmark, fig4):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        losses = [d for d, s in fig4.speedups.items() if s < 1.0]
        assert len(losses) <= len(fig4.speedups) // 10

    def test_all_three_schedules_get_chosen(self, benchmark, fig4):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert set(fig4.chosen.values()) == {
            "thread_mapped",
            "group_mapped",
            "merge_path",
        }

    def test_small_matrices_drive_overhead_speedups(self, benchmark, fig4):
        """The sub-beta-nnz regime's speedups come from the vendor model's
        fixed per-call overhead (the paper's tiny-matrix wins)."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        small = [s for d, s in fig4.speedups.items() if d.startswith("tiny")]
        assert geomean(small) >= 1.5

    def test_skew_drives_the_peak(self, benchmark, fig4):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert fig4.peak_dataset.startswith(("outlier", "power", "rmat"))
