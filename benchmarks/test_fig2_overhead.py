"""Figure 2: abstraction overhead -- our merge-path SpMV vs hardwired CUB.

Paper result: the two runtimes "almost perfectly match" across SuiteSparse
(geomean slowdown 2.5%, 92% of datasets at >= 90% of CUB's performance);
the only regime where CUB wins is single-column matrices, via its
specialized thread-mapped sparse-vector kernel.

This bench regenerates the scatter series (nnz vs runtime for both
kernels), reports the same summary statistics, and asserts the shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.apps.spmv import spmv
from repro.baselines.cub_spmv import cub_spmv
from repro.evaluation.figures import fig2_overhead
from repro.sparse.corpus import load_dataset


@pytest.fixture(scope="module")
def fig2(suite_rows):
    return fig2_overhead(rows=suite_rows)


def test_fig2_regenerate_series(benchmark, suite_rows, fig2, results_dir):
    """Regenerate Figure 2's scatter data and summary statistics."""
    benchmark(lambda: fig2_overhead(rows=suite_rows))

    lines = ["kernel,dataset,nnzs,elapsed_ms"]
    for kernel, series in fig2.series.items():
        for d, n, v in zip(series.datasets, series.nnzs, series.values):
            lines.append(f"{kernel},{d},{n},{v:.6f}")
    lines.append("")
    lines.append(f"geomean_slowdown,{fig2.geomean_slowdown:.4f}")
    lines.append(f"frac_within_90pct,{fig2.frac_within_90pct:.3f}")
    lines.append(f"cub_wins,{';'.join(fig2.cub_wins) or '(none >10%)'}")
    lines.append("paper_geomean_slowdown,1.025")
    lines.append("paper_frac_within_90pct,0.92")
    emit(results_dir, "fig2_overhead.csv", "\n".join(lines))


class TestFig2Shape:
    def test_runtimes_almost_match(self, benchmark, fig2):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        # Geomean slowdown stays in the paper's "minimal overhead" regime.
        assert 0.95 <= fig2.geomean_slowdown <= 1.10

    def test_frac_within_90pct(self, benchmark, fig2):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert fig2.frac_within_90pct >= 0.85  # paper: 0.92

    def test_worst_case_is_single_column(self, benchmark, fig2):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        worst = max(fig2.slowdowns, key=fig2.slowdowns.get)
        assert worst.startswith("spvec")


class TestFig2KernelCost:
    """Wall-clock cost of one simulated cell, per comparator."""

    def test_ours_merge_path_cell(self, benchmark):
        ds = load_dataset("power_a19", "standard")
        x = np.random.default_rng(0).uniform(size=ds.cols)
        benchmark(lambda: spmv(ds.matrix, x, schedule="merge_path"))

    def test_cub_cell(self, benchmark):
        ds = load_dataset("power_a19", "standard")
        x = np.random.default_rng(0).uniform(size=ds.cols)
        benchmark(lambda: cub_spmv(ds.matrix, x))
