"""Table 1: lines-of-code comparison.

Paper result (non-comment kernel-contributing LoC):

    Load Balancing Algorithm   NVIDIA/CUB   Our Work
    Merge-Path                 503          36
    Thread-Mapped              22           21
    Group-Mapped               N/A          30
    Warp-Mapped                N/A          30 (free)
    Block-Mapped               N/A          30 (free)

This bench regenerates the measured LoC of this repo's schedules (same
protocol: non-comment, non-docstring logical lines of the kernel-
contributing code) next to the paper's numbers, and asserts the
qualitative claims: abstraction LoC is small and flat across schedules;
warp/block-mapped are (nearly) free specializations; the hardwired
baseline file dwarfs the schedule code.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from conftest import emit
from repro.evaluation.loc import count_loc, table1_rows


@pytest.fixture(scope="module")
def rows():
    return table1_rows()


def _hardwired_loc() -> int:
    import repro.baselines.cub_spmv  # noqa: F401

    path = Path(sys.modules["repro.baselines.cub_spmv"].__file__)
    return count_loc(path.read_text())


def test_table1_regenerate(benchmark, rows, results_dir):
    benchmark(table1_rows)

    hardwired = _hardwired_loc()
    lines = [
        "algorithm,paper_cub_loc,paper_ours_loc,measured_ours_loc,measured_incremental_loc"
    ]
    for r in rows:
        cub = r.paper_cub if r.paper_cub is not None else "N/A"
        incr = r.measured_incremental if r.measured_incremental is not None else ""
        lines.append(
            f"{r.algorithm},{cub},{r.paper_ours},{r.measured_ours},{incr}"
        )
    lines.append("")
    lines.append(f"measured_hardwired_cub_file_loc,{hardwired}")
    emit(results_dir, "table1_loc.csv", "\n".join(lines))


class TestTable1Shape:
    def test_all_rows(self, benchmark, rows):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert {r.algorithm for r in rows} == {
            "merge_path",
            "thread_mapped",
            "group_mapped",
            "warp_mapped",
            "block_mapped",
        }

    def test_schedule_loc_small(self, benchmark, rows):
        # Paper: every schedule fits in a few dozen lines.
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for r in rows:
            assert r.measured_ours <= 100

    def test_warp_block_free(self, benchmark, rows):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        by_name = {r.algorithm: r for r in rows}
        assert by_name["warp_mapped"].measured_incremental <= 5
        assert by_name["block_mapped"].measured_incremental <= 5

    def test_hardwired_dwarfs_schedule(self, benchmark, rows):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        by_name = {r.algorithm: r for r in rows}
        assert _hardwired_loc() > 1.2 * by_name["merge_path"].measured_ours
