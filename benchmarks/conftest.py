"""Shared fixtures for the benchmark suite.

Each ``test_figN_*`` / ``test_table1_*`` module regenerates one table or
figure of the paper.  The harness sweep over the corpus is computed once
per session and shared; every bench also writes its reproduced rows/series
under ``benchmarks/results/`` so the numbers survive pytest's output
capture (EXPERIMENTS.md records them).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.evaluation.harness import run_spmv_suite

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scale used by the benchmark suite.  "standard" keeps a full run under
#: a minute while spanning five orders of magnitude in nnz.
BENCH_SCALE = "standard"

ALL_KERNELS = [
    "thread_mapped",
    "group_mapped",
    "merge_path",
    "heuristic",
    "cub",
    "cusparse",
]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def suite_rows():
    """One (kernel x dataset) sweep shared by every figure bench."""
    return run_spmv_suite(ALL_KERNELS, scale=BENCH_SCALE)


def emit(results_dir: Path, name: str, text: str) -> None:
    """Persist a reproduced table/series and echo it (visible with -s)."""
    path = results_dir / name
    path.write_text(text, encoding="utf-8")
    print(f"\n=== {name} ===\n{text}")
