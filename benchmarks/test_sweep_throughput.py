"""Corpus-sweep throughput bench: cold vs warm, pooled vs persistent.

Times one small (kernel x dataset) grid under every harness fan-out
configuration and both plan-persistence layouts, then writes
``BENCH_sweep.json`` at the repo root so subsequent PRs have a
throughput trajectory to regress against:

* ``cold_serial`` / ``warm_serial`` -- same process, plan cache cold
  (fresh directory) vs warm (second sweep of the identical grid);
* ``thread_pool_w4`` / ``process_pool_w2`` -- the two pool executors
  over the same grid (the process pool spawned per sweep, as before);
* ``pool_reuse_first`` / ``pool_reuse_warm`` -- the persistent
  :class:`~repro.engine.worker_pool.SweepExecutor`: first sweep pays the
  one-time spawn, later sweeps run against warm workers (warm is the
  best of three, to damp scheduler jitter);
* ``steady_state_first`` / ``steady_state_warm`` -- the worker-resident
  problem/oracle cache on a single-worker persistent pool: the first
  sweep builds every dataset's problem and oracle, the warm sweeps
  serve both from the in-worker :class:`~repro.engine.worker_pool.
  ProblemCache` (hit/miss proven by the per-row counters, one worker so
  the cache placement is deterministic);
* ``steady_state_w4_first`` / ``steady_state_w4_warm`` -- the same
  steady state on a *width-4* pool: sticky (rendezvous-hashed) placement
  lands every dataset on the same worker sweep after sweep, so the warm
  hit rate is 100% without the single-worker crutch
  (``steady_state_w4_hit_rate``, CI-floored; placement asserted
  identical across sweeps);
* ``fresh_process_cold`` / ``fresh_process_warm`` -- a subprocess
  sweeping the grid against the per-file plan-cache directory;
* ``store_fresh_cold`` / ``store_fresh_warm`` -- the same two
  subprocesses against the single-file journaled plan store; the warm
  one must avoid exactly the misses the cold one paid
  (``disk_hits == misses_avoided``), all from one file on disk.

Persistence is verified by counters, not timing.  The timing assertions
encode the PR's acceptance floor: warm persistent-pool sweeps beat the
spawn-per-sweep process path by >= 1.5x and are no slower than the
thread pool at smoke scale.

Runs in smoke mode by default (tiny corpus; CI-friendly).  Environment
knobs scale it up for real benching: ``REPRO_BENCH_SWEEP_SCALE``
(corpus scale), ``REPRO_BENCH_SWEEP_LIMIT`` (dataset count).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.engine import SweepExecutor, clear_plan_cache, configure_global_plan_cache
from repro.evaluation.harness import run_suite

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
BENCH_PATH = REPO_ROOT / "BENCH_sweep.json"

SWEEP_SCALE = os.environ.get("REPRO_BENCH_SWEEP_SCALE", "smoke")
SWEEP_LIMIT = int(os.environ.get("REPRO_BENCH_SWEEP_LIMIT", "8"))
KERNELS = ["merge_path", "thread_mapped", "group_mapped", "lrb"]


def _timed_sweep(**kwargs) -> tuple[float, list]:
    t0 = time.perf_counter()
    rows = run_suite(KERNELS, app="spmv", scale=SWEEP_SCALE, limit=SWEEP_LIMIT,
                     **kwargs)
    return time.perf_counter() - t0, rows


def _fresh_process_sweep(target: Path, knob: str) -> tuple[float, dict]:
    """Sweep the same grid in a brand-new interpreter; report cache info.

    ``knob`` selects the persistence layout: ``plan_cache_dir`` (per-file)
    or ``plan_store`` (single-file journal).
    """
    script = (
        "import json, sys, time\n"
        "from repro.evaluation.harness import run_suite\n"
        "from repro.engine import global_plan_cache\n"
        "t0 = time.perf_counter()\n"
        f"run_suite({KERNELS!r}, app='spmv', scale={SWEEP_SCALE!r},\n"
        f"          limit={SWEEP_LIMIT}, {knob}=sys.argv[1])\n"
        "elapsed = time.perf_counter() - t0\n"
        "print(json.dumps({'elapsed_s': elapsed,\n"
        "                  'cache': global_plan_cache().info()}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script, str(target)],
        capture_output=True, text=True, env=env, check=True,
    )
    payload = json.loads(out.stdout.strip().splitlines()[-1])
    return payload["elapsed_s"], payload["cache"]


def test_sweep_throughput(tmp_path):
    cache_dir = tmp_path / "plans"

    # -- In-process: cold vs warm, then the two pool executors. --------
    configure_global_plan_cache(cache_dir)
    try:
        clear_plan_cache()
        cold_s, cold_rows = _timed_sweep(executor="serial")
        warm_s, warm_rows = _timed_sweep(executor="serial")
        thread_s, thread_rows = _timed_sweep(executor="thread", max_workers=4)
        process_s, process_rows = _timed_sweep(
            executor="process", max_workers=2, plan_cache_dir=cache_dir
        )

        # -- Persistent pool: spawn once at machine-natural width, stream
        # sweeps through it.  Warm is the best of three (single-digit-ms
        # sweeps jitter with the host scheduler; the floor is the honest
        # steady-state number). --
        with SweepExecutor() as pool:
            pool_first_s, pool_first_rows = _timed_sweep(
                executor="process", pool=pool, plan_cache_dir=cache_dir
            )
            warm_times = []
            for _ in range(3):
                t, pool_warm_rows = _timed_sweep(
                    executor="process", pool=pool, plan_cache_dir=cache_dir
                )
                warm_times.append(t)
            pool_info = pool.info()
        pool_warm_s = min(warm_times)

        # -- Steady state: a second sweep on the same warm pool serves
        # every shard's problem *and* oracle from the worker-resident
        # cache (validate=True, so the oracle is real work skipped).
        # One worker keeps the batch->worker placement deterministic. --
        with SweepExecutor(max_workers=1) as ss_pool:
            ss_first_s, ss_first_rows = _timed_sweep(
                executor="process", pool=ss_pool, plan_cache_dir=cache_dir
            )
            ss_times = []
            for _ in range(3):
                t, ss_warm_rows = _timed_sweep(
                    executor="process", pool=ss_pool, plan_cache_dir=cache_dir
                )
                ss_times.append(t)
        ss_warm_s = min(ss_times)

        # -- Steady state at width 4: sticky placement pins each dataset
        # to its home worker, so every warm sweep hits the same caches
        # the first sweep filled -- no single-worker crutch needed. --
        def _placement(rows):
            return {
                r.dataset: (
                    r.meta["placement"]["slot"], r.meta["placement"]["pid"]
                )
                for r in rows
            }

        with SweepExecutor(max_workers=4) as w4_pool:
            w4_first_s, w4_first_rows = _timed_sweep(
                executor="process", pool=w4_pool, plan_cache_dir=cache_dir
            )
            w4_times = []
            w4_placements = []
            for _ in range(3):
                t, w4_warm_rows = _timed_sweep(
                    executor="process", pool=w4_pool, plan_cache_dir=cache_dir
                )
                w4_times.append(t)
                w4_placements.append(_placement(w4_warm_rows))
            w4_info = w4_pool.info()
            w4_first_placement = _placement(w4_first_rows)
        w4_warm_s = min(w4_times)

        from repro.engine import global_plan_cache

        in_process_info = global_plan_cache().info()
    finally:
        configure_global_plan_cache(None)

    def key(rows):
        return [(r.kernel, r.dataset, r.elapsed) for r in rows]

    # Identical deterministic row sets under every configuration.
    assert key(cold_rows) == key(warm_rows) == key(thread_rows) == key(process_rows)
    assert key(pool_first_rows) == key(pool_warm_rows) == key(cold_rows)

    # The pool really was persistent: one spawn served all four sweeps,
    # and the publish cache reused every block after the first sweep.
    assert pool_info["pool_spawns"] == 1 and pool_info["sweeps"] == 4
    assert pool_info["shm_reused"] > 0

    # Acceptance floors: warm pool reuse beats the spawn-per-sweep
    # process path by >= 1.5x and keeps up with the thread pool (15%
    # slack absorbs scheduler jitter at millisecond scale).
    assert pool_warm_s * 1.5 <= process_s, (pool_warm_s, process_s)
    assert pool_warm_s <= thread_s * 1.15, (pool_warm_s, thread_s)

    # Steady-state acceptance: the first warm-pool sweep built every
    # problem/oracle (all misses), later sweeps on the same workers
    # rebuilt none (all hits) and returned identical rows -- and the
    # warm sweep beats the first by a conservative floor.
    assert key(ss_first_rows) == key(ss_warm_rows) == key(cold_rows)
    ss_first_misses = sum(
        r.meta.get("problem_cache") == "miss" for r in ss_first_rows
    )
    ss_warm_hits = sum(
        r.meta.get("problem_cache") == "hit" for r in ss_warm_rows
    )
    assert ss_first_misses == len(ss_first_rows), ss_first_rows[0].meta
    assert ss_warm_hits == len(ss_warm_rows), ss_warm_rows[0].meta
    assert ss_warm_s * 1.2 <= ss_first_s, (ss_warm_s, ss_first_s)

    # Width-4 steady state: the first sweep builds everything (all
    # misses), every warm sweep lands every dataset on the same worker
    # process (placement identical) and rebuilds nothing -- a 100% warm
    # hit rate with four workers, which only sticky placement delivers.
    assert key(w4_first_rows) == key(w4_warm_rows) == key(cold_rows)
    assert all(p == w4_first_placement for p in w4_placements), w4_placements
    w4_first_misses = sum(
        r.meta.get("problem_cache") == "miss" for r in w4_first_rows
    )
    w4_hits = sum(r.meta.get("problem_cache") == "hit" for r in w4_warm_rows)
    w4_hit_rate = w4_hits / len(w4_warm_rows)
    assert w4_first_misses == len(w4_first_rows), w4_first_rows[0].meta
    assert w4_hit_rate == 1.0, w4_hit_rate
    assert w4_info["sticky_shards"] > 0

    # -- Fresh processes: per-file directory vs single-file store. ------
    fresh_cache = tmp_path / "plans-fresh"
    fp_cold_s, fp_cold_info = _fresh_process_sweep(fresh_cache, "plan_cache_dir")
    fp_warm_s, fp_warm_info = _fresh_process_sweep(fresh_cache, "plan_cache_dir")

    # The acceptance criterion: a warm second sweep of the same grid in a
    # fresh process serves plans from disk, not by replanning.
    assert fp_cold_info["misses"] > 0 and fp_cold_info["disk_hits"] == 0
    assert fp_warm_info["disk_hits"] > 0
    assert fp_warm_info["misses"] == 0

    store_dir = tmp_path / "store"
    store_path = store_dir / "plans.journal"
    st_cold_s, st_cold_info = _fresh_process_sweep(store_path, "plan_store")
    st_warm_s, st_warm_info = _fresh_process_sweep(store_path, "plan_store")

    # Same contract through the journal: every miss the cold run paid is
    # a disk hit in the warm one (disk_hits == misses_avoided), served
    # from a single file on disk.
    assert st_cold_info["misses"] > 0 and st_cold_info["disk_hits"] == 0
    assert st_warm_info["misses"] == 0
    assert st_warm_info["disk_hits"] == st_cold_info["misses"]
    assert [p.name for p in store_dir.iterdir()] == ["plans.journal"]

    payload = {
        "benchmark": "sweep_throughput",
        "app": "spmv",
        "scale": SWEEP_SCALE,
        "limit": SWEEP_LIMIT,
        "kernels": KERNELS,
        "grid_cells": len(cold_rows),
        "timings_s": {
            "cold_serial": round(cold_s, 6),
            "warm_serial": round(warm_s, 6),
            "thread_pool_w4": round(thread_s, 6),
            "process_pool_w2": round(process_s, 6),
            "pool_reuse_first": round(pool_first_s, 6),
            "pool_reuse_warm": round(pool_warm_s, 6),
            "steady_state_first": round(ss_first_s, 6),
            "steady_state_warm": round(ss_warm_s, 6),
            "steady_state_w4_first": round(w4_first_s, 6),
            "steady_state_w4_warm": round(w4_warm_s, 6),
            "fresh_process_cold": round(fp_cold_s, 6),
            "fresh_process_warm": round(fp_warm_s, 6),
            "store_fresh_cold": round(st_cold_s, 6),
            "store_fresh_warm": round(st_warm_s, 6),
        },
        "speedups": {
            "warm_over_cold_serial": round(cold_s / warm_s, 3) if warm_s else None,
            "pool_reuse_over_process": (
                round(process_s / pool_warm_s, 3) if pool_warm_s else None
            ),
            "pool_reuse_over_thread": (
                round(thread_s / pool_warm_s, 3) if pool_warm_s else None
            ),
            "steady_state_warm_over_first": (
                round(ss_first_s / ss_warm_s, 3) if ss_warm_s else None
            ),
            "steady_state_w4_warm_over_first": (
                round(w4_first_s / w4_warm_s, 3) if w4_warm_s else None
            ),
            "fresh_process_warm_over_cold": (
                round(fp_cold_s / fp_warm_s, 3) if fp_warm_s else None
            ),
            "store_fresh_warm_over_cold": (
                round(st_cold_s / st_warm_s, 3) if st_warm_s else None
            ),
        },
        "pool": pool_info,
        "pool_w4": w4_info,
        "steady_state_w4_hit_rate": w4_hit_rate,
        "problem_cache": {
            "first_misses": ss_first_misses,
            "warm_hits": ss_warm_hits,
            "rows": len(ss_warm_rows),
            "w4_first_misses": w4_first_misses,
            "w4_warm_hits": w4_hits,
            "w4_rows": len(w4_warm_rows),
        },
        "plan_cache": {
            "in_process_final": in_process_info,
            "fresh_process_cold": fp_cold_info,
            "fresh_process_warm": fp_warm_info,
            "store_fresh_cold": st_cold_info,
            "store_fresh_warm": st_warm_info,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== BENCH_sweep.json ===\n{json.dumps(payload, indent=2)}")
