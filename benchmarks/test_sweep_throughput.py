"""Corpus-sweep throughput bench: cold vs warm plan cache, thread vs process.

Times one small (kernel x dataset) grid under every harness fan-out
configuration and both plan-cache temperatures, then writes
``BENCH_sweep.json`` at the repo root so subsequent PRs have a
throughput trajectory to regress against:

* ``cold_serial`` / ``warm_serial`` -- same process, plan cache cold
  (fresh directory) vs warm (second sweep of the identical grid);
* ``thread`` / ``process`` -- the two pool executors over the same grid;
* ``fresh_process_cold`` / ``fresh_process_warm`` -- a subprocess
  sweeping the grid against the persistent cache directory: the second
  one must report ``disk_hits > 0`` (persistence verified by counters,
  not timing).

Runs in smoke mode by default (tiny corpus; CI-friendly).  Environment
knobs scale it up for real benching: ``REPRO_BENCH_SWEEP_SCALE``
(corpus scale), ``REPRO_BENCH_SWEEP_LIMIT`` (dataset count).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.engine import clear_plan_cache, configure_global_plan_cache
from repro.evaluation.harness import run_suite

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
BENCH_PATH = REPO_ROOT / "BENCH_sweep.json"

SWEEP_SCALE = os.environ.get("REPRO_BENCH_SWEEP_SCALE", "smoke")
SWEEP_LIMIT = int(os.environ.get("REPRO_BENCH_SWEEP_LIMIT", "8"))
KERNELS = ["merge_path", "thread_mapped", "group_mapped", "lrb"]


def _timed_sweep(**kwargs) -> tuple[float, list]:
    t0 = time.perf_counter()
    rows = run_suite(KERNELS, app="spmv", scale=SWEEP_SCALE, limit=SWEEP_LIMIT,
                     **kwargs)
    return time.perf_counter() - t0, rows


def _fresh_process_sweep(cache_dir: Path) -> tuple[float, dict]:
    """Sweep the same grid in a brand-new interpreter; report cache info."""
    script = (
        "import json, sys, time\n"
        "from repro.evaluation.harness import run_suite\n"
        "from repro.engine import global_plan_cache\n"
        "t0 = time.perf_counter()\n"
        f"run_suite({KERNELS!r}, app='spmv', scale={SWEEP_SCALE!r},\n"
        f"          limit={SWEEP_LIMIT}, plan_cache_dir=sys.argv[1])\n"
        "elapsed = time.perf_counter() - t0\n"
        "print(json.dumps({'elapsed_s': elapsed,\n"
        "                  'cache': global_plan_cache().info()}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script, str(cache_dir)],
        capture_output=True, text=True, env=env, check=True,
    )
    payload = json.loads(out.stdout.strip().splitlines()[-1])
    return payload["elapsed_s"], payload["cache"]


def test_sweep_throughput(tmp_path):
    cache_dir = tmp_path / "plans"

    # -- In-process: cold vs warm, then the two pool executors. --------
    configure_global_plan_cache(cache_dir)
    try:
        clear_plan_cache()
        cold_s, cold_rows = _timed_sweep(executor="serial")
        warm_s, warm_rows = _timed_sweep(executor="serial")
        thread_s, thread_rows = _timed_sweep(executor="thread", max_workers=4)
        process_s, process_rows = _timed_sweep(
            executor="process", max_workers=2, plan_cache_dir=cache_dir
        )
        from repro.engine import global_plan_cache

        in_process_info = global_plan_cache().info()
    finally:
        configure_global_plan_cache(None)

    def key(rows):
        return [(r.kernel, r.dataset, r.elapsed) for r in rows]

    # Identical deterministic row sets under every configuration.
    assert key(cold_rows) == key(warm_rows) == key(thread_rows) == key(process_rows)

    # -- Fresh processes against the persistent directory. -------------
    fresh_cache = tmp_path / "plans-fresh"
    fp_cold_s, fp_cold_info = _fresh_process_sweep(fresh_cache)
    fp_warm_s, fp_warm_info = _fresh_process_sweep(fresh_cache)

    # The acceptance criterion: a warm second sweep of the same grid in a
    # fresh process serves plans from disk, not by replanning.
    assert fp_cold_info["misses"] > 0 and fp_cold_info["disk_hits"] == 0
    assert fp_warm_info["disk_hits"] > 0
    assert fp_warm_info["misses"] == 0

    payload = {
        "benchmark": "sweep_throughput",
        "app": "spmv",
        "scale": SWEEP_SCALE,
        "limit": SWEEP_LIMIT,
        "kernels": KERNELS,
        "grid_cells": len(cold_rows),
        "timings_s": {
            "cold_serial": round(cold_s, 6),
            "warm_serial": round(warm_s, 6),
            "thread_pool_w4": round(thread_s, 6),
            "process_pool_w2": round(process_s, 6),
            "fresh_process_cold": round(fp_cold_s, 6),
            "fresh_process_warm": round(fp_warm_s, 6),
        },
        "speedups": {
            "warm_over_cold_serial": round(cold_s / warm_s, 3) if warm_s else None,
            "fresh_process_warm_over_cold": (
                round(fp_cold_s / fp_warm_s, 3) if fp_warm_s else None
            ),
        },
        "plan_cache": {
            "in_process_final": in_process_info,
            "fresh_process_cold": fp_cold_info,
            "fresh_process_warm": fp_warm_info,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== BENCH_sweep.json ===\n{json.dumps(payload, indent=2)}")
