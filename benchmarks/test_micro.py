"""Microbenchmarks: wall-clock cost of the library's own hot paths.

These measure the *Python implementation* (not the simulated GPU): the
merge-path partition search, schedule planning, corpus generation, the
SpMV executors, and the graph-app frontier loops.  They guard against
performance regressions in the vectorized code paths the harness relies
on (a corpus sweep runs hundreds of these per second).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.bfs import bfs
from repro.apps.common import spmv_costs
from repro.apps.spmv import spmv, spmv_reference
from repro.apps.sssp import sssp
from repro.core.schedule import make_schedule
from repro.core.schedules.merge_path import merge_path_partition
from repro.core.work import WorkSpec
from repro.gpusim.arch import V100
from repro.gpusim.sm_scheduler import schedule_blocks
from repro.sparse import generators as gen
from repro.sparse.corpus import load_dataset
from repro.sparse.graph import random_graph


@pytest.fixture(scope="module")
def big_matrix():
    return gen.power_law(50_000, 50_000, 12.0, 1.9, seed=0)


class TestPartitionSearch:
    def test_merge_path_partition_1m_diagonals(self, benchmark, big_matrix):
        work = WorkSpec.from_csr(big_matrix)
        total = work.num_atoms + work.num_tiles
        diagonals = np.linspace(0, total, 100_000).astype(np.int64)
        out = benchmark(
            lambda: merge_path_partition(work.tile_offsets, work.num_atoms, diagonals)
        )
        assert out[0][-1] == work.num_tiles


class TestPlanners:
    @pytest.mark.parametrize(
        "name",
        ["thread_mapped", "warp_mapped", "group_mapped", "merge_path", "lrb"],
    )
    def test_plan_cost(self, benchmark, big_matrix, name):
        work = WorkSpec.from_csr(big_matrix)
        costs = spmv_costs(V100)

        def plan():
            return make_schedule(name, work, V100).plan(costs)

        stats = benchmark(plan)
        assert stats.elapsed_ms > 0


class TestExecutors:
    def test_spmv_reference_throughput(self, benchmark, big_matrix):
        x = np.random.default_rng(0).uniform(size=big_matrix.num_cols)
        y = benchmark(lambda: spmv_reference(big_matrix, x))
        assert y.shape == (big_matrix.num_rows,)

    def test_spmv_full_pipeline(self, benchmark, big_matrix):
        x = np.random.default_rng(0).uniform(size=big_matrix.num_cols)
        r = benchmark(lambda: spmv(big_matrix, x, schedule="merge_path"))
        assert r.elapsed_ms > 0

    def test_sm_scheduler_100k_blocks(self, benchmark):
        cycles = np.random.default_rng(1).uniform(100, 1000, size=100_000)
        out = benchmark(lambda: schedule_blocks(cycles, 256, V100))
        assert out.makespan_cycles > 0


class TestDataPaths:
    def test_corpus_dataset_build(self, benchmark):
        ds = benchmark(lambda: load_dataset("rmat_m", "standard"))
        assert ds.nnz > 0

    def test_csr_transpose(self, benchmark, big_matrix):
        t = benchmark(big_matrix.transpose)
        assert t.shape == (big_matrix.num_cols, big_matrix.num_rows)


class TestGraphApps:
    def test_sssp_wall_clock(self, benchmark):
        g = random_graph(20_000, 8.0, seed=2)
        r = benchmark.pedantic(lambda: sssp(g, 0), rounds=2, iterations=1)
        assert np.isfinite(r.output).sum() > 1

    def test_bfs_wall_clock(self, benchmark):
        g = random_graph(20_000, 8.0, seed=3)
        r = benchmark.pedantic(lambda: bfs(g, 0), rounds=2, iterations=1)
        assert (r.output >= 0).sum() > 1
