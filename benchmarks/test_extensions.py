"""Benches for the extension features beyond the paper's evaluated set.

These exercise the features DESIGN.md lists as the paper's optional /
future-work surface: the dynamic queue schedule (static-vs-dynamic),
the multi-GPU split (Section 8 future work), the MTTKRP tensor kernel
(Section 3.3's application space), and the locality model (Section 8).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.apps.common import spmv_costs
from repro.apps.spmttkrp import spmttkrp
from repro.apps.spmv import spmv
from repro.core.schedule import LaunchParams, make_schedule
from repro.core.schedules.dynamic_queue import DynamicQueueSchedule
from repro.core.work import WorkSpec
from repro.gpusim.arch import V100
from repro.gpusim.multi_gpu import multi_gpu_plan
from repro.sparse import generators as gen
from repro.sparse.tensor import random_tensor


class TestStaticVsDynamic:
    def test_schedule_family_comparison(self, benchmark, results_dir):
        """Static schedules vs the dynamic queue across imbalance regimes.

        The instructive split: dynamic scheduling fixes *across-tile*
        imbalance (the adversarial striding case) but cannot split a
        single mega-tile across workers -- only intra-tile schedules
        (merge-path) can, which is exactly why the paper's family needs
        both static fine-grained and dynamic members.
        """
        launch = LaunchParams(grid_dim=16, block_dim=256)
        n_threads = launch.num_threads
        striped = np.ones(n_threads * 8, dtype=np.int64)
        striped[::n_threads] = 20_000  # giants all land on thread 0
        cases = {
            "uniform": WorkSpec.from_csr(gen.uniform_random(8000, 8000, 8, seed=0)),
            "adversarial_stripe": WorkSpec.from_counts(striped),
            "mega_tile": WorkSpec.from_csr(
                gen.dense_row_outliers(8000, 8000, 2, 4, 6000, seed=0)
            ),
        }
        kernels = ("thread_mapped", "merge_path", "dynamic_queue")

        def run():
            out = {}
            for case, work in cases.items():
                for k in kernels:
                    opts = {"chunk_size": 1} if k == "dynamic_queue" else {}
                    use_launch = launch if case == "adversarial_stripe" else None
                    out[(case, k)] = (
                        make_schedule(k, work, V100, use_launch, **opts)
                        .plan(spmv_costs(V100))
                        .elapsed_ms
                    )
            return out

        times = benchmark(run)
        lines = ["workload,schedule,elapsed_ms"]
        lines += [f"{c},{k},{v:.6f}" for (c, k), v in times.items()]
        emit(results_dir, "ext_static_vs_dynamic.csv", "\n".join(lines))
        # Across-tile imbalance: the queue restores balance ...
        assert (
            times[("adversarial_stripe", "dynamic_queue")]
            < 0.5 * times[("adversarial_stripe", "thread_mapped")]
        )
        # ... but a single mega-tile defeats tile-granular dynamism, and
        # only intra-tile splitting (merge-path) survives.
        assert times[("mega_tile", "merge_path")] < 0.2 * times[
            ("mega_tile", "dynamic_queue")
        ]

    def test_chunk_size_sweep(self, benchmark, results_dir):
        m = gen.power_law(16_000, 16_000, 10.0, 1.8, seed=1)
        work = WorkSpec.from_csr(m)
        launch = DynamicQueueSchedule.default_launch(work, V100)

        def sweep():
            return {
                chunk: DynamicQueueSchedule(work, V100, launch, chunk_size=chunk)
                .plan(spmv_costs(V100))
                .elapsed_ms
                for chunk in (1, 2, 4, 16, 64, 256)
            }

        times = benchmark(sweep)
        lines = ["chunk_size,elapsed_ms"]
        lines += [f"{k},{v:.6f}" for k, v in times.items()]
        emit(results_dir, "ext_dynamic_chunk.csv", "\n".join(lines))


class TestMultiGpuScaling:
    def test_device_scaling(self, benchmark, results_dir):
        work = WorkSpec.from_csr(
            gen.uniform_random(120_000, 120_000, 32, seed=2)
        )
        costs = spmv_costs(V100)

        def sweep():
            return {
                n: multi_gpu_plan(work, costs, num_devices=n).elapsed_ms
                for n in (1, 2, 4, 8)
            }

        times = benchmark(sweep)
        lines = ["num_devices,elapsed_ms,scaling_vs_1"]
        t1 = times[1]
        lines += [f"{n},{v:.6f},{t1 / v:.2f}" for n, v in times.items()]
        emit(results_dir, "ext_multigpu_scaling.csv", "\n".join(lines))
        assert times[4] < times[1]

    def test_partition_strategy_on_skew(self, benchmark, results_dir):
        counts = np.random.default_rng(3).permutation(
            np.concatenate([np.full(32, 200_000), np.full(100_000, 3)])
        )
        work = WorkSpec.from_counts(counts)
        costs = spmv_costs(V100)

        def run():
            return {
                strat: multi_gpu_plan(
                    work, costs, num_devices=4, partition=strat
                ).device_imbalance
                for strat in ("tiles", "merge_path")
            }

        imb = benchmark(run)
        emit(
            results_dir,
            "ext_multigpu_partition.csv",
            "partition,device_imbalance\n"
            + "\n".join(f"{k},{v:.4f}" for k, v in imb.items()),
        )
        assert imb["merge_path"] <= imb["tiles"] + 1e-9


class TestMttkrp:
    def test_tensor_schedule_landscape(self, benchmark, results_dir):
        t = random_tensor((20_000, 64, 64), 400_000, skew=0.9, seed=4)
        rng = np.random.default_rng(5)
        b = rng.uniform(size=(64, 16))
        c = rng.uniform(size=(64, 16))

        def run():
            return {
                k: spmttkrp(t, b, c, schedule=k).elapsed_ms
                for k in ("thread_mapped", "nonzero_split", "merge_path")
            }

        times = benchmark.pedantic(run, rounds=2, iterations=1)
        lines = ["schedule,elapsed_ms"]
        lines += [f"{k},{v:.6f}" for k, v in times.items()]
        emit(results_dir, "ext_mttkrp.csv", "\n".join(lines))
        # The F-COO observation as a schedule: equal-nonzeros splitting
        # beats slice-per-thread on skewed tensors.
        assert times["nonzero_split"] < times["thread_mapped"]

    def test_mttkrp_wall_clock(self, benchmark):
        t = random_tensor((5000, 32, 32), 100_000, skew=0.5, seed=6)
        rng = np.random.default_rng(7)
        b, c = rng.uniform(size=(32, 8)), rng.uniform(size=(32, 8))
        r = benchmark(lambda: spmttkrp(t, b, c))
        assert r.elapsed_ms > 0


class TestLocalityModel:
    def test_working_set_sweep(self, benchmark, results_dir):
        """SpMV gather cost vs x-vector size: the L2-resident cliff.

        Measured on a compute-bound configuration (a thread-mapped run on
        skewed long rows, where warp cycles dominate the DRAM floor):
        L2-resident vectors make gathers cheap; working sets far beyond
        L2 converge back to the flat pessimistic model.
        """
        from repro.gpusim.cache import effective_gather_cost

        def sweep():
            out = {}
            for cols in (1_000, 100_000, 1_000_000, 10_000_000):
                m = gen.power_law(3000, cols, 40.0, 1.8, seed=8)
                x = np.ones(cols)
                flat = spmv(m, x, schedule="thread_mapped").elapsed_ms
                loc = spmv(m, x, schedule="thread_mapped", locality=True).elapsed_ms
                out[cols] = (flat, loc, effective_gather_cost(V100, cols * 8.0))
            return out

        times = benchmark.pedantic(sweep, rounds=2, iterations=1)
        lines = ["x_cols,elapsed_flat_ms,elapsed_locality_ms,gather_cycles"]
        lines += [
            f"{k},{a:.6f},{b:.6f},{g:.2f}" for k, (a, b, g) in times.items()
        ]
        emit(results_dir, "ext_locality.csv", "\n".join(lines))
        # The gather cost is monotone in the working set ...
        gathers = [g for _, _, g in times.values()]
        assert gathers == sorted(gathers)
        # ... an L2-resident vector speeds up the compute-bound kernel ...
        small_flat, small_loc, _ = times[1_000]
        assert small_loc < small_flat
        # ... and a far-beyond-L2 vector converges to the flat model.
        big_flat, big_loc, big_gather = times[10_000_000]
        assert big_gather == pytest.approx(V100.costs.global_load_random, rel=0.15)
        assert big_loc == pytest.approx(big_flat, rel=0.2)
