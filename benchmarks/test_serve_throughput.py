"""Sweep-service throughput bench: warm served sweeps vs cold single-shot.

The service's reason to exist is amortization: one process pays the pool
spawn and the problem/oracle/plan builds once, then every later
submission from any client runs against warm workers.  This bench
measures exactly that and writes ``BENCH_serve.json`` at the repo root:

* ``cold_submit`` -- the first job on a freshly started pooled service:
  pays worker spawn plus every per-dataset build (the "cold single-shot"
  cost a library user pays per run without the daemon);
* ``warm_submit`` -- the same job resubmitted (best of three): workers,
  shm blocks, problem/oracle caches and plans are all hot;
* ``serial_direct`` -- the same grid via ``run_suite(executor="serial")``
  in-process, the no-service baseline;
* ``sustained`` -- two concurrent clients each streaming several jobs
  through one warm instance: jobs/sec and rows/sec with round-robin
  interleaving (the multi-tenant steady state).

CI floor (asserted here *and* re-checked by the workflow guard): a warm
served sweep is at least **1.2x** faster than the cold single-shot --
deliberately conservative; the measured ratio is typically far higher
because the cold path includes the pool spawn.

Smoke mode by default; scale up with ``REPRO_BENCH_SERVE_SCALE`` /
``REPRO_BENCH_SERVE_LIMIT`` / ``REPRO_BENCH_SERVE_JOBS``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.evaluation.harness import run_suite
from repro.service import SweepClient, SweepService

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_serve.json"

SERVE_SCALE = os.environ.get("REPRO_BENCH_SERVE_SCALE", "smoke")
SERVE_LIMIT = int(os.environ.get("REPRO_BENCH_SERVE_LIMIT", "4"))
SERVE_JOBS = int(os.environ.get("REPRO_BENCH_SERVE_JOBS", "3"))
KERNELS = ["merge_path", "thread_mapped"]
WIDTH = 2
CLIENTS = 2

JOB = {
    "app": "spmv",
    "kernels": KERNELS,
    "scale": SERVE_SCALE,
    "limit": SERVE_LIMIT,
}


def _timed_submit(host: str, port: int) -> tuple[float, object]:
    with SweepClient(host, port, timeout=600) as client:
        t0 = time.perf_counter()
        result = client.run(JOB)
        return time.perf_counter() - t0, result


def test_serve_throughput():
    svc = SweepService(width=WIDTH, queue_depth=16)
    svc.start_background()
    host, port = svc.wait_ready()
    try:
        # -- Cold single-shot: pool spawn + all builds, through the wire.
        cold_s, cold_result = _timed_submit(host, port)
        assert cold_result.ok

        # -- Warm: same grid, everything cached (best of three). --------
        warm_times = []
        for _ in range(3):
            t, warm_result = _timed_submit(host, port)
            warm_times.append(t)
            assert warm_result.ok
        warm_s = min(warm_times)

        # -- Sustained multi-tenant throughput: CLIENTS concurrent
        # connections, SERVE_JOBS jobs each, one warm instance. ---------
        errors: list = []
        per_client_rows = [0] * CLIENTS

        def tenant(index: int) -> None:
            try:
                with SweepClient(host, port, timeout=600) as client:
                    for _ in range(SERVE_JOBS):
                        result = client.run(JOB, retries=4, retry_delay=0.1)
                        assert result.ok
                        per_client_rows[index] += len(result.rows)
            except Exception as exc:  # surfaced after the join
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant, args=(i,)) for i in range(CLIENTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        sustained_s = time.perf_counter() - t0
        assert not errors, errors
        assert not any(t.is_alive() for t in threads)
        total_jobs = CLIENTS * SERVE_JOBS
        total_rows = sum(per_client_rows)
        service_info = svc.info()
    finally:
        svc.request_drain()
        svc.join()

    # -- The no-service baseline: same grid, serial, in-process. --------
    t0 = time.perf_counter()
    direct_rows = run_suite(KERNELS, app="spmv", scale=SERVE_SCALE,
                            limit=SERVE_LIMIT, executor="serial")
    serial_s = time.perf_counter() - t0

    # Served rows are the library's rows, bit for bit.
    assert warm_result.rows == direct_rows

    warm_over_cold = cold_s / warm_s if warm_s else None

    # The CI floor: warm served sweeps >= 1.2x the cold single-shot.
    # (Conservative on purpose -- the cold path carries the pool spawn,
    # so real ratios are typically an order of magnitude higher.)
    assert warm_over_cold is not None and warm_over_cold >= 1.2, (
        cold_s, warm_s)

    payload = {
        "benchmark": "serve_throughput",
        "app": "spmv",
        "scale": SERVE_SCALE,
        "limit": SERVE_LIMIT,
        "kernels": KERNELS,
        "width": WIDTH,
        "clients": CLIENTS,
        "jobs_per_client": SERVE_JOBS,
        "rows_per_job": len(direct_rows),
        "timings_s": {
            "cold_submit": round(cold_s, 6),
            "warm_submit": round(warm_s, 6),
            "serial_direct": round(serial_s, 6),
            "sustained_wall": round(sustained_s, 6),
        },
        "speedups": {
            "warm_over_cold": round(warm_over_cold, 3),
            "warm_over_serial": (
                round(serial_s / warm_s, 3) if warm_s else None
            ),
        },
        "sustained": {
            "jobs_per_s": round(total_jobs / sustained_s, 3),
            "rows_per_s": round(total_rows / sustained_s, 3),
            "total_jobs": total_jobs,
            "total_rows": total_rows,
        },
        "service": service_info,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    print(f"\n=== BENCH_serve.json ===\n{json.dumps(payload, indent=2)}")
