"""Engine bench: compiled vs simt vs vector wall-clock per app.

The compiled engine exists to stop interpreting kernels in Python: the
SIMT engine walks every (thread, tile, atom) triple through the
schedule's iterators, while the compiled engine runs one JIT-compiled
(or vectorized) kernel body and materializes the schedule's per-thread
loads in closed form.  This bench measures that gap as host wall-clock
per app and records it in ``BENCH_engine.json`` at the repo root; CI
floors ``compiled_over_simt`` at 10x (the measured gap is orders of
magnitude larger -- tripping the floor means the compiled path started
interpreting again, not that the runner was slow).

Runs in smoke mode by default.  Environment knobs scale it up:
``REPRO_BENCH_ENGINE_N`` (matrix dimension), ``REPRO_BENCH_ENGINE_REPS``
(timed repetitions of the fast engines).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.engine import (
    clear_compilation_cache,
    compilation_cache_stats,
    numba_available,
    run_app,
)
from repro.engine.registry import get_app
from repro.sparse.csr import CsrMatrix

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_engine.json"

BENCH_N = int(os.environ.get("REPRO_BENCH_ENGINE_N", "256"))
BENCH_REPS = int(os.environ.get("REPRO_BENCH_ENGINE_REPS", "3"))

#: Apps timed by the bench: the SpMV centerpiece plus one multi-launch
#: graph app and the minimal app (three distinct kernel shapes).  The
#: full 9-app parity matrix lives in tests/test_compiled_engine.py; the
#: bench keeps the simt leg affordable.
BENCH_APPS = ["spmv", "histogram", "bfs"]

#: CI floor: compiled must beat the interpreted SIMT engine by at least
#: this factor on total wall-clock.
COMPILED_OVER_SIMT_FLOOR = 10.0


def _bench_matrix(n: int, seed: int = 11) -> CsrMatrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.10) * rng.standard_normal((n, n))
    dense[0, :] = rng.standard_normal(n) * (rng.random(n) < 0.7)  # heavy row
    return CsrMatrix.from_dense(dense)


def _time_engine(app: str, matrix: CsrMatrix, engine: str, reps: int) -> float:
    """Best-of-``reps`` wall seconds for one (app, engine) run."""
    spec = get_app(app)
    best = float("inf")
    for _ in range(reps):
        problem = spec.sweep_problem(matrix, 7)
        t0 = time.perf_counter()
        run_app(app, problem, schedule="merge_path", engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best


def test_engine_speedup():
    matrix = _bench_matrix(BENCH_N)
    clear_compilation_cache()

    walls: dict[str, dict[str, float]] = {}
    for app in BENCH_APPS:
        walls[app] = {
            # One interpreted rep is plenty: simt dominates the bench's
            # wall-clock as it is.
            "simt": _time_engine(app, matrix, "simt", reps=1),
            "compiled": _time_engine(app, matrix, "compiled", reps=BENCH_REPS),
            "vector": _time_engine(app, matrix, "vector", reps=BENCH_REPS),
        }

    total = {
        eng: sum(walls[app][eng] for app in BENCH_APPS)
        for eng in ("simt", "compiled", "vector")
    }
    per_app_speedup = {
        app: round(walls[app]["simt"] / walls[app]["compiled"], 2)
        for app in BENCH_APPS
    }
    compiled_over_simt = total["simt"] / total["compiled"]

    payload = {
        "benchmark": "engine_comparison",
        "apps": BENCH_APPS,
        "matrix_n": BENCH_N,
        "nnz": matrix.nnz,
        "reps": BENCH_REPS,
        "numba": numba_available(),
        "wall_s": {
            app: {eng: round(t, 6) for eng, t in engines.items()}
            for app, engines in walls.items()
        },
        "total_wall_s": {eng: round(t, 6) for eng, t in total.items()},
        "compiled_over_simt": round(compiled_over_simt, 2),
        "compiled_over_simt_per_app": per_app_speedup,
        "compiled_over_vector": round(
            total["vector"] / total["compiled"], 3
        ),
        "compilation_cache": compilation_cache_stats(),
        "floor": COMPILED_OVER_SIMT_FLOOR,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== BENCH_engine.json ===\n{json.dumps(payload, indent=2)}")

    # The whole point of the engine: at least one order of magnitude
    # over the interpreter in total (measured ~17x without numba); each
    # app individually gets half the floor's headroom against runner
    # noise (bfs replans per frontier, the fixed cost both engines pay).
    assert compiled_over_simt >= COMPILED_OVER_SIMT_FLOOR, payload
    for app in BENCH_APPS:
        assert walls[app]["simt"] / walls[app]["compiled"] >= \
            COMPILED_OVER_SIMT_FLOOR / 2, (app, payload)
    # Steady-state sweeps reuse compiled plans: repeated reps must hit.
    assert compilation_cache_stats()["hits"] >= 1
