"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but sweeps over the knobs the paper's design
discussion motivates:

* group size for the group-mapped schedule (Section 5.2.3's arbitrary-
  size claim, including the AMD warp-64 port);
* merge-path items-per-thread grain;
* the heuristic's alpha/beta thresholds (Section 6.2);
* LRB vs plain warp-mapped on bimodal workloads (related work);
* abstraction-tax sensitivity (what Figure 2 would look like if ranges
  were expensive).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.apps.common import spmv_costs
from repro.apps.spmv import spmv
from repro.baselines.cusparse_spmv import cusparse_spmv
from repro.core.heuristic import HeuristicParams, select_schedule
from repro.core.schedule import LaunchParams, make_schedule
from repro.core.work import WorkSpec
from repro.gpusim.arch import AMD_WARP64, V100
from repro.gpusim.profiler import geomean
from repro.sparse import generators as gen
from repro.sparse.corpus import build_corpus


@pytest.fixture(scope="module")
def skewed():
    return gen.power_law(8000, 8000, 10.0, 1.8, seed=0)


class TestGroupSizeSweep:
    GROUP_SIZES = (8, 16, 32, 64, 128, 256)

    def test_group_size_sweep(self, benchmark, skewed, results_dir):
        work = WorkSpec.from_csr(skewed)
        costs = spmv_costs(V100)
        launch = LaunchParams(grid_dim=640, block_dim=256)

        def sweep():
            return {
                g: make_schedule(
                    "group_mapped", work, V100, launch, group_size=g
                ).plan(costs).elapsed_ms
                for g in self.GROUP_SIZES
            }

        times = benchmark(sweep)
        lines = ["group_size,elapsed_ms"]
        lines += [f"{g},{t:.6f}" for g, t in times.items()]
        emit(results_dir, "ablation_group_size.csv", "\n".join(lines))
        assert all(t > 0 for t in times.values())

    def test_warp64_port_is_competitive(self, benchmark, skewed):
        """Section 5.2.3: the one-constant AMD port behaves sanely."""
        work = WorkSpec.from_csr(skewed)

        def run():
            s32 = make_schedule(
                "group_mapped", work, V100, group_size=32
            ).plan(spmv_costs(V100))
            s64 = make_schedule(
                "group_mapped", work, AMD_WARP64, group_size=64
            ).plan(spmv_costs(AMD_WARP64))
            return s32, s64

        s32, s64 = benchmark(run)
        assert 0.1 <= s64.elapsed_ms / s32.elapsed_ms <= 10


class TestMergePathGrain:
    # Small grains sit on the bandwidth floor (flat); very large grains
    # starve the device -- the sweep exposes where that cliff begins.
    ITEMS = (1, 4, 16, 64, 256, 1024)

    def test_items_per_thread_sweep(self, benchmark, skewed, results_dir):
        work = WorkSpec.from_csr(skewed)
        costs = spmv_costs(V100)
        total = work.num_atoms + work.num_tiles

        def sweep():
            out = {}
            for ipt in self.ITEMS:
                threads = max(1, -(-total // ipt))
                grid = max(1, -(-threads // 128))
                sched = make_schedule(
                    "merge_path",
                    work,
                    V100,
                    LaunchParams(grid, 128),
                    items_per_thread=ipt,
                )
                out[ipt] = sched.plan(costs).elapsed_ms
            return out

        times = benchmark(sweep)
        lines = ["items_per_thread,elapsed_ms"]
        lines += [f"{k},{v:.6f}" for k, v in times.items()]
        emit(results_dir, "ablation_merge_grain.csv", "\n".join(lines))
        # The sweep must show a real trade-off (not flat): tiny grains pay
        # setup per item; huge grains starve the device.
        vals = list(times.values())
        assert max(vals) > 1.05 * min(vals)


class TestHeuristicThresholds:
    def test_alpha_beta_sweep(self, benchmark, results_dir):
        corpus = build_corpus("smoke")
        xs = {
            d.name: np.random.default_rng(1).uniform(size=d.cols) for d in corpus
        }
        vendor = {
            d.name: cusparse_spmv(d.matrix, xs[d.name])[1].elapsed_ms
            for d in corpus
        }

        def sweep():
            out = {}
            for alpha in (100, 500, 2000):
                for beta in (1000, 10_000, 100_000):
                    params = HeuristicParams(alpha=alpha, beta=beta)
                    speedups = []
                    for d in corpus:
                        sched = select_schedule(d.matrix, params)
                        t = spmv(d.matrix, xs[d.name], schedule=sched).elapsed_ms
                        speedups.append(vendor[d.name] / t)
                    out[(alpha, beta)] = geomean(speedups)
            return out

        table = benchmark.pedantic(sweep, rounds=1, iterations=1)
        lines = ["alpha,beta,geomean_speedup_vs_cusparse"]
        lines += [f"{a},{b},{v:.3f}" for (a, b), v in table.items()]
        emit(results_dir, "ablation_heuristic_thresholds.csv", "\n".join(lines))
        # The paper's chosen thresholds must not be dominated badly.
        paper = table[(500, 10_000)]
        assert paper >= 0.8 * max(table.values())


class TestLrbBinning:
    def test_scattered_outliers(self, benchmark, results_dir):
        """LRB's sort neutralizes lockstep skew: it matches warp-mapped
        (whose group-level makespan is permutation-invariant under the
        oversubscription model) and decisively beats thread-mapped, whose
        lanes stall on the scattered huge tiles."""
        rng = np.random.default_rng(0)
        counts = rng.permutation(
            np.concatenate([np.full(500, 20_000), np.full(60_000, 4)])
        )
        work = WorkSpec.from_counts(counts)
        costs = spmv_costs(V100)

        def run():
            return {
                name: make_schedule(name, work, V100).plan(costs).elapsed_ms
                for name in ("thread_mapped", "warp_mapped", "lrb")
            }

        times = benchmark(run)
        lines = ["schedule,elapsed_ms"]
        lines += [f"{k},{v:.6f}" for k, v in times.items()]
        emit(results_dir, "ablation_lrb.csv", "\n".join(lines))
        assert times["lrb"] <= times["warp_mapped"] * 1.001
        assert times["lrb"] < 0.5 * times["thread_mapped"]


class TestAbstractionTaxSensitivity:
    def test_fig2_story_robust_to_tax(self, benchmark, results_dir):
        """Sweep the per-iteration range overhead: the Figure 2 "minimal
        overhead" conclusion must hold for plausible tax values and break
        only for implausibly expensive ranges."""
        from repro.baselines.cub_spmv import cub_spmv as cub

        m = gen.power_law(4000, 4000, 8.0, 1.9, seed=2)
        x = np.random.default_rng(3).uniform(size=m.num_cols)

        def sweep():
            out = {}
            for tax in (0.0, 0.6, 1.2, 2.4, 9.6):
                spec = V100.with_costs(range_overhead=tax)
                ours = spmv(m, x, schedule="merge_path", spec=spec).elapsed_ms
                base = cub(m, x, spec)[1].elapsed_ms
                out[tax] = ours / base
            return out

        ratios = benchmark(sweep)
        lines = ["range_overhead_cycles,slowdown_vs_cub"]
        lines += [f"{k},{v:.4f}" for k, v in ratios.items()]
        emit(results_dir, "ablation_abstraction_tax.csv", "\n".join(lines))
        assert ratios[0.0] <= ratios[9.6]
        assert ratios[1.2] < 1.10  # the shipped default stays "minimal"
