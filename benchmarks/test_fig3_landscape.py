"""Figure 3: the SpMV performance landscape -- 3 schedules vs cuSparse.

Paper result: across SuiteSparse, the three framework schedules
(thread-mapped, group-mapped, merge-path) occupy different regimes of the
(nnz, runtime) plane: thread-mapped wins tiny/uniform matrices,
group-mapped small-but-uneven ones, merge-path everything large or
skewed; switching between them is a one-identifier change.

This bench regenerates all four scatter series and asserts the regime
structure.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.evaluation.figures import FIG3_SCHEDULES, fig3_landscape


@pytest.fixture(scope="module")
def fig3(suite_rows):
    return fig3_landscape(rows=suite_rows)


def test_fig3_regenerate_series(benchmark, suite_rows, fig3, results_dir):
    benchmark(lambda: fig3_landscape(rows=suite_rows))

    lines = ["kernel,dataset,nnzs,elapsed_ms"]
    for kernel, series in fig3.series.items():
        for d, n, v in zip(series.datasets, series.nnzs, series.values):
            lines.append(f"{kernel},{d},{n},{v:.6f}")
    lines.append("")
    lines.append("dataset,best_framework_schedule")
    for d, best in sorted(fig3.best_schedule.items()):
        lines.append(f"{d},{best}")
    lines.append("")
    lines.append(f"frac_some_schedule_wins,{fig3.frac_some_schedule_wins:.3f}")
    emit(results_dir, "fig3_landscape.csv", "\n".join(lines))


class TestFig3Shape:
    def test_all_series_regenerated(self, benchmark, fig3):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert set(fig3.series) == set(FIG3_SCHEDULES) | {"cusparse"}
        sizes = {len(s.values) for s in fig3.series.values()}
        assert len(sizes) == 1  # every kernel covers the whole corpus

    def test_no_single_schedule_dominates(self, benchmark, fig3):
        """The figure's core message, and the motivation for Figure 4's
        heuristic: different schedules win different datasets."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        winners = set(fig3.best_schedule.values())
        assert len(winners) >= 2

    def test_framework_beats_vendor_broadly(self, benchmark, fig3):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert fig3.frac_some_schedule_wins >= 0.9

    def test_merge_path_wins_skewed_regime(self, benchmark, fig3):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for d in ("outlier_few", "outlier_extreme", "power_a17"):
            assert fig3.best_schedule[d] == "merge_path"

    def test_thread_mapped_wins_a_tiny_or_uniform_dataset(self, benchmark, fig3):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        thread_wins = [
            d for d, b in fig3.best_schedule.items() if b == "thread_mapped"
        ]
        assert any(
            d.startswith(("tiny", "spvec", "diag", "uniform", "band", "blockdiag"))
            for d in thread_wins
        )
