"""Unit tests for repro.gpusim.arch."""

import dataclasses

import pytest

from repro.gpusim.arch import (
    A100,
    AMD_WARP64,
    PRESETS,
    TINY_GPU,
    V100,
    CostParams,
    GpuSpec,
    get_spec,
)


class TestGpuSpecValidation:
    def test_default_is_v100(self):
        assert V100.name == "V100"
        assert V100.num_sms == 80
        assert V100.warp_size == 32

    def test_rejects_non_power_of_two_warp(self):
        with pytest.raises(ValueError, match="power of two"):
            GpuSpec(warp_size=24)

    def test_rejects_zero_warp(self):
        with pytest.raises(ValueError):
            GpuSpec(warp_size=0)

    def test_rejects_nonpositive_sms(self):
        with pytest.raises(ValueError, match="num_sms"):
            GpuSpec(num_sms=0)

    def test_rejects_unaligned_max_block(self):
        with pytest.raises(ValueError, match="multiple of warp_size"):
            GpuSpec(max_threads_per_block=1000)

    def test_amd_preset_warp64(self):
        assert AMD_WARP64.warp_size == 64


class TestDerivedQuantities:
    def test_resident_threads(self):
        assert V100.max_resident_threads_per_sm == 64 * 32
        assert V100.max_resident_threads == 64 * 32 * 80

    def test_warps_per_block_rounds_up(self):
        assert V100.warps_per_block(33) == 2
        assert V100.warps_per_block(32) == 1
        assert V100.warps_per_block(256) == 8

    def test_resident_blocks_per_sm_limited_by_warps(self):
        # 1024-thread blocks = 32 warps -> only 2 fit in 64 resident warps.
        assert V100.resident_blocks_per_sm(1024) == 2

    def test_resident_blocks_per_sm_limited_by_block_cap(self):
        # 32-thread blocks would fit 64 by warps but cap is 32.
        assert V100.resident_blocks_per_sm(32) == 32

    def test_resident_blocks_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            V100.resident_blocks_per_sm(0)
        with pytest.raises(ValueError):
            V100.resident_blocks_per_sm(2048)

    def test_occupancy_full(self):
        # Enough blocks to fill the device completely.
        grid = V100.resident_blocks_per_sm(256) * V100.num_sms
        assert V100.occupancy(grid, 256) == pytest.approx(1.0)

    def test_occupancy_single_block(self):
        occ = V100.occupancy(1, 256)
        assert 0 < occ < 0.01

    def test_cycles_ms_roundtrip(self):
        cycles = 1.38e9  # one second of cycles at 1.38 GHz
        assert V100.cycles_to_ms(cycles) == pytest.approx(1000.0)
        assert V100.ms_to_cycles(V100.cycles_to_ms(12345.0)) == pytest.approx(12345.0)


class TestPresetsAndCosts:
    def test_get_spec_case_insensitive(self):
        assert get_spec("v100") is V100
        assert get_spec("A100") is A100

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError, match="unknown GPU preset"):
            get_spec("H100")

    def test_presets_registry_complete(self):
        assert set(PRESETS) == {"V100", "A100", "AMD-WARP64", "TINY"}

    def test_with_costs_replaces_only_named(self):
        spec = V100.with_costs(fma=99.0)
        assert spec.costs.fma == 99.0
        assert spec.costs.alu == V100.costs.alu
        # Original untouched (frozen dataclasses).
        assert V100.costs.fma != 99.0

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            V100.num_sms = 1  # type: ignore[misc]

    def test_cost_params_defaults_positive(self):
        c = CostParams()
        for f in dataclasses.fields(c):
            assert getattr(c, f.name) >= 0

    def test_tiny_gpu_valid_for_interpreter(self):
        assert TINY_GPU.warp_size == 4
        assert TINY_GPU.max_threads_per_block % TINY_GPU.warp_size == 0
