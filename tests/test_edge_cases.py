"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.apps.spmv import spmv
from repro.apps.sssp import sssp
from repro.core.schedule import LaunchParams, available_schedules, make_schedule
from repro.core.work import WorkSpec
from repro.apps.common import spmv_costs
from repro.gpusim.arch import TINY_GPU, V100
from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import CsrGraph
from repro.sparse import generators as gen

ALL = sorted(available_schedules())


class TestDegenerateMatrices:
    @pytest.mark.parametrize("name", ALL)
    def test_one_by_one(self, name):
        m = CsrMatrix.from_dense(np.array([[3.0]]))
        r = spmv(m, np.array([2.0]), schedule=name)
        np.testing.assert_allclose(r.output, [6.0])

    @pytest.mark.parametrize("name", ALL)
    def test_all_rows_empty(self, name):
        m = CsrMatrix.empty((16, 16))
        r = spmv(m, np.ones(16), schedule=name)
        np.testing.assert_array_equal(r.output, np.zeros(16))
        assert r.elapsed_ms > 0  # the launch itself still costs

    @pytest.mark.parametrize("name", ALL)
    def test_single_dense_row(self, name):
        dense = np.zeros((8, 64))
        dense[3, :] = np.arange(64) + 1.0
        m = CsrMatrix.from_dense(dense)
        x = np.ones(64)
        r = spmv(m, x, schedule=name)
        np.testing.assert_allclose(r.output, dense @ x)

    def test_zero_row_zero_col_rejected_sanely(self):
        m = CsrMatrix.empty((0, 0))
        r = spmv(m, np.zeros(0))
        assert r.output.size == 0

    def test_wide_and_tall_extremes(self):
        wide = gen.poisson_random(2, 10_000, 50.0, seed=1)
        tall = gen.poisson_random(10_000, 2, 1.0, seed=1)
        for m in (wide, tall):
            x = np.ones(m.num_cols)
            r = spmv(m, x, schedule="heuristic")
            np.testing.assert_allclose(r.output, m.to_dense() @ x, rtol=1e-9)


class TestLaunchGeometry:
    @pytest.mark.parametrize("name", ALL)
    def test_single_thread_launch(self, name):
        work = WorkSpec.from_counts([3, 1, 4, 1, 5])
        launch = LaunchParams(1, TINY_GPU.warp_size)
        sched = make_schedule(name, work, TINY_GPU, launch)
        wc = sched.warp_cycles(spmv_costs(TINY_GPU))
        assert wc.shape == (1, 1)
        assert np.isfinite(wc).all()

    @pytest.mark.parametrize("name", ALL)
    def test_giant_launch_tiny_work(self, name):
        work = WorkSpec.from_counts([1])
        launch = LaunchParams(64, 256)
        sched = make_schedule(name, work, V100, launch)
        stats = sched.plan(spmv_costs(V100))
        assert stats.elapsed_ms > 0

    def test_unaligned_block_rejected_everywhere(self):
        work = WorkSpec.from_counts([1, 2, 3])
        for name in ALL:
            with pytest.raises(ValueError):
                make_schedule(name, work, V100, LaunchParams(1, 33))


class TestNumericalEdges:
    def test_spmv_with_negative_and_zero_values(self):
        m = CsrMatrix.from_arrays(
            [0, 2, 3], [0, 1, 1], [-1.5, 0.0, 2.5], (2, 2)
        )
        x = np.array([2.0, -3.0])
        r = spmv(m, x)
        np.testing.assert_allclose(r.output, m.to_dense() @ x)

    def test_spmv_large_values_no_overflow(self):
        m = gen.uniform_random(100, 100, 4, seed=2)
        scaled = CsrMatrix.from_arrays(
            m.row_offsets, m.col_indices, m.values * 1e150, m.shape
        )
        r = spmv(scaled, np.full(100, 1e-150))
        assert np.isfinite(r.output).all()

    def test_sssp_zero_weight_edges(self):
        dense = np.array([[0.0, 0.0], [0.0, 0.0]])
        dense[0, 1] = 1e-300  # effectively zero but present
        m = CsrMatrix.from_dense(dense)
        r = sssp(CsrGraph(m), 0)
        assert r.output[1] == pytest.approx(1e-300)

    def test_float_accumulation_order_tolerance(self):
        """Different schedules sum rows in different orders; results must
        agree within float tolerance, not bit-exactly."""
        m = gen.power_law(300, 300, 20.0, 1.7, seed=3)
        x = np.random.default_rng(4).uniform(-1e6, 1e6, size=300)
        results = [spmv(m, x, schedule=s).output for s in ("merge_path", "thread_mapped")]
        np.testing.assert_allclose(results[0], results[1], rtol=1e-9)


class TestStatsInvariants:
    @pytest.mark.parametrize("name", ALL)
    def test_elapsed_monotone_in_work(self, name):
        costs = spmv_costs(V100)
        small = make_schedule(name, WorkSpec.from_counts([4] * 100), V100).plan(costs)
        big = make_schedule(name, WorkSpec.from_counts([4] * 100_000), V100).plan(costs)
        assert big.elapsed_ms > small.elapsed_ms

    @pytest.mark.parametrize("name", ALL)
    def test_all_ratios_bounded(self, name):
        work = WorkSpec.from_counts(
            np.random.default_rng(5).integers(0, 100, size=500)
        )
        stats = make_schedule(name, work, V100).plan(spmv_costs(V100))
        assert 0.0 <= stats.occupancy <= 1.0
        assert 0.0 <= stats.simt_efficiency <= 1.0
        assert 0.0 <= stats.utilization <= 1.0
        assert 0.0 <= stats.tail_fraction <= 1.0
        assert stats.makespan_cycles >= V100.costs.kernel_launch_cycles

    def test_stats_chain_sum(self):
        m = gen.diagonal(64)
        x = np.ones(64)
        parts = [spmv(m, x).stats for _ in range(5)]
        total = parts[0]
        for p in parts[1:]:
            total = total + p
        assert total.elapsed_ms == pytest.approx(5 * parts[0].elapsed_ms)


class TestCorruptInputsRejected:
    def test_spmv_wrong_x_dtype_coerced(self):
        m = gen.diagonal(4)
        r = spmv(m, [1, 2, 3, 4])  # list of ints: coerced, not rejected
        np.testing.assert_allclose(r.output, m.to_dense() @ np.arange(1, 5))

    def test_spmv_2d_x_rejected(self):
        m = gen.diagonal(4)
        with pytest.raises(ValueError, match="one-dimensional"):
            spmv(m, np.ones((4, 1)))

    def test_workspec_rejects_corrupt_offsets(self):
        with pytest.raises(ValueError):
            WorkSpec.from_offsets(np.array([], dtype=np.int64))

    def test_schedule_options_rejected_for_wrong_schedule(self):
        work = WorkSpec.from_counts([1, 2])
        with pytest.raises(TypeError):
            make_schedule("thread_mapped", work, V100, group_size=16)
