"""Tests for the persistent sweep executor and shared-memory transport.

The contract: a :class:`SweepExecutor` survives across ``run_suite``
calls and across apps (same worker processes, warm plan caches), shard
batching and the shared-memory dataset transport are invisible in the
results (identical row sets vs serial), and every knob degrades cleanly
(pickle fallback, empty grids, misuse errors).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SweepExecutor, default_executor, shutdown_default_executor
from repro.engine.worker_pool import (
    TRANSPORTS,
    ArrayBundleHandle,
    SharedDatasetHandle,
    ShmCodec,
    attach_dataset,
    dataset_content_key,
    detach,
    publish_dataset,
    register_shm_codec,
)
from repro.evaluation.harness import _ShardTask, run_suite
from repro.sparse.corpus import Dataset, load_dataset
from repro.sparse.tensor import random_tensor

KERNELS = ["merge_path", "thread_mapped"]


def _kill_worker(_):
    """Simulate a worker crash (module-level: picklable by reference)."""
    import os

    os._exit(1)


def _key(rows):
    return [(r.app, r.kernel, r.dataset, r.rows, r.cols, r.nnzs, r.elapsed)
            for r in rows]


@pytest.fixture(scope="module")
def serial_rows():
    return run_suite(KERNELS, scale="smoke", limit=5, executor="serial")


class TestSharedMemoryTransport:
    def test_publish_attach_round_trip(self):
        ds = load_dataset("tiny_power_256", "smoke")
        pub = publish_dataset(ds)
        assert pub is not None
        try:
            assert isinstance(pub.handle, SharedDatasetHandle)
            clone, shm = attach_dataset(pub.handle)
            try:
                assert clone.name == ds.name and clone.family == ds.family
                assert clone.matrix == ds.matrix  # array-equal CSR
            finally:
                del clone
                detach(shm)
        finally:
            pub.unlink()

    def test_non_csr_payload_falls_back_to_pickle(self):
        class NotCsr:
            pass

        from dataclasses import replace

        ds = replace(load_dataset("tiny_diag_32", "smoke"), matrix=NotCsr())
        assert publish_dataset(ds) is None

    def test_shm_rows_equal_pickle_rows(self, serial_rows):
        shm = run_suite(KERNELS, scale="smoke", limit=5, executor="process",
                        max_workers=2, transport="shm")
        pickled = run_suite(KERNELS, scale="smoke", limit=5, executor="process",
                            max_workers=2, transport="pickle")
        assert _key(shm) == _key(pickled) == _key(serial_rows)

    def test_unknown_transport_rejected(self):
        assert TRANSPORTS == ("auto", "shm", "pickle")
        with pytest.raises(ValueError, match="unknown transport"):
            SweepExecutor(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown transport"):
            SweepExecutor().map_shards(
                [_ShardTask(app="spmv", kernels=("merge_path",),
                            dataset=load_dataset("tiny_diag_32", "smoke"))],
                transport="telepathy",
            )


class TestArrayBundleTransport:
    """The generalized (codec-based) array-bundle handle."""

    def test_handle_alias_is_the_bundle_type(self):
        assert SharedDatasetHandle is ArrayBundleHandle

    def test_tensor_round_trip(self):
        tensor = random_tensor((48, 32, 16), 700, skew=0.8, seed=5)
        ds = Dataset(name="tensor_ds", family="tensor", matrix=tensor,
                     meta={"kind": "coo"})
        pub = publish_dataset(ds)
        assert pub is not None and pub.handle.codec == "tensor3"
        try:
            assert pub.handle.content_key() == dataset_content_key(ds)
            labels = [seg.label for seg in pub.handle.segments]
            assert labels == ["i", "j", "k", "values"]
            clone, shm = attach_dataset(pub.handle)
            try:
                t = clone.matrix
                assert t.shape == tensor.shape
                for a, b in ((t.i, tensor.i), (t.j, tensor.j),
                             (t.k, tensor.k), (t.values, tensor.values)):
                    assert np.array_equal(a, b)
                assert clone.meta == {"kind": "coo"}
            finally:
                del clone, t
                detach(shm)
        finally:
            pub.unlink()

    def test_dense_round_trip(self):
        payload = np.arange(24.0).reshape(4, 6)
        ds = Dataset(name="factors", family="dense", matrix=payload)
        pub = publish_dataset(ds)
        assert pub is not None and pub.handle.codec == "dense"
        try:
            clone, shm = attach_dataset(pub.handle)
            try:
                assert np.array_equal(clone.matrix, payload)
                assert clone.matrix.dtype == payload.dtype
            finally:
                del clone
                detach(shm)
        finally:
            pub.unlink()

    def test_object_dtype_arrays_fall_back_to_pickle(self):
        """Object arrays hold process-local pointers; shipping their raw
        bytes through shm would segfault workers.  No codec may claim
        them -- they must pickle."""
        from repro.engine.worker_pool import shm_codec_for

        payload = np.array([{"a": 1}, [2, 3]], dtype=object)
        assert shm_codec_for(payload) is None
        ds = Dataset(name="objs", family="dense", matrix=payload)
        assert publish_dataset(ds) is None
        assert dataset_content_key(ds) is None

    def test_content_key_tracks_payload_mutation(self):
        a = random_tensor((16, 8, 4), 60, seed=1)
        b = random_tensor((16, 8, 4), 60, seed=2)
        key_a = dataset_content_key(Dataset(name="t", family="f", matrix=a))
        key_b = dataset_content_key(Dataset(name="t", family="f", matrix=b))
        assert key_a != key_b  # same name/shape, different content

    def test_duplicate_codec_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_shm_codec(ShmCodec(
                name="csr", matches=lambda p: False,
                pack=lambda p: ([], {}), unpack=lambda a, e: None,
            ))

    def test_publish_failure_closes_and_unlinks_the_block(self, monkeypatch):
        """Regression: a failure while filling an already-created block
        must not leak the block until interpreter exit."""
        from multiprocessing import shared_memory as real_shared_memory
        from types import SimpleNamespace

        from repro.engine import worker_pool

        created = []

        class RecordingSharedMemory(real_shared_memory.SharedMemory):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(self.name)

        monkeypatch.setattr(
            worker_pool, "_shared_memory",
            lambda: SimpleNamespace(SharedMemory=RecordingSharedMemory),
        )

        class Unfillable:
            pass

        # Structured arrays survive packing (they are ndarrays) but
        # their ``dtype.str`` collapses to a void type the fill cannot
        # cast into: the copy raises *after* the block was created --
        # the dtype-mismatch-during-fill case from the bug report.
        codec = ShmCodec(
            name="unfillable-test",
            matches=lambda p: isinstance(p, Unfillable),
            pack=lambda p: (
                [("data", np.zeros(4, dtype=[("a", "f8"), ("b", "i4")]))], {}
            ),
            unpack=lambda a, e: None,
        )
        register_shm_codec(codec)
        try:
            ds = Dataset(name="broken", family="test", matrix=Unfillable())
            with pytest.raises(TypeError):
                publish_dataset(ds)
            assert len(created) == 1  # the block really was created...
            with pytest.raises(FileNotFoundError):
                # ... and is gone: attaching by name finds nothing, so
                # nothing leaked for the resource tracker to reap.
                real_shared_memory.SharedMemory(name=created[0])
        finally:
            worker_pool._SHM_CODECS.pop("unfillable-test", None)


class TestSweepExecutor:
    def test_pool_persists_across_sweeps_and_apps(self, serial_rows):
        with SweepExecutor(max_workers=2) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=5,
                              executor="process", pool=pool)
            pids_after_first = pool.worker_pids()
            second = run_suite(KERNELS, scale="smoke", limit=5,
                               executor="process", pool=pool)
            other_app = run_suite(["thread_mapped"], app="histogram",
                                  scale="smoke", limit=3,
                                  executor="process", pool=pool)
            pids_after_third = pool.worker_pids()

            assert _key(first) == _key(second) == _key(serial_rows)
            assert len(other_app) == 3
            # Same worker processes served all three sweeps: the pool was
            # spawned once and kept.
            assert pool.pool_spawns == 1
            assert pids_after_first == pids_after_third
            assert pool.sweeps == 3
        assert not pool.alive  # context exit tears the pool down

    def test_lazy_spawn(self):
        pool = SweepExecutor(max_workers=1)
        assert not pool.alive
        assert pool.map_shards([]) == []
        assert not pool.alive  # empty work never spawns
        pool.shutdown()

    def test_batching_preserves_shard_order(self, serial_rows):
        # One batch per crossing: force everything through a single batch
        # and through many batches; both must match serial ordering.
        for batch_atoms in (1, 10**9):
            with SweepExecutor(max_workers=2, batch_atoms=batch_atoms) as pool:
                rows = run_suite(KERNELS, scale="smoke", limit=5,
                                 executor="process", pool=pool)
                assert _key(rows) == _key(serial_rows)

    def test_batches_fewer_crossings_than_shards(self):
        tasks = [
            _ShardTask(app="spmv", kernels=("merge_path",),
                       dataset=load_dataset(name, "smoke"))
            for name in ["tiny_diag_32", "tiny_uniform_64", "tiny_band_128",
                         "tiny_power_256", "tiny_poisson_512"]
        ]
        with SweepExecutor(max_workers=2) as pool:
            per_shard = pool.map_shards(tasks)
            assert len(per_shard) == len(tasks)
            assert [rows[0].dataset for rows in per_shard] == [
                t.dataset.name for t in tasks
            ]
            # Small datasets shared crossings: strictly fewer batches
            # than shards (the whole point of batching).
            assert 0 < pool.batches < len(tasks)

    def test_broken_pool_respawns_on_next_sweep(self, serial_rows):
        """A crashed worker poisons a ProcessPoolExecutor forever; the
        executor must replace it instead of failing every later sweep."""
        from concurrent.futures.process import BrokenProcessPool

        with SweepExecutor(max_workers=1) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=5,
                              executor="process", pool=pool)
            with pytest.raises(BrokenProcessPool):
                list(pool._slots[0].pool.map(_kill_worker, [0]))
            recovered = run_suite(KERNELS, scale="smoke", limit=5,
                                  executor="process", pool=pool)
            assert _key(first) == _key(recovered) == _key(serial_rows)
            assert pool.pool_spawns == 2  # one respawn, not one per sweep

    def test_pool_grows_to_new_high_water_width(self):
        tasks = [
            _ShardTask(app="spmv", kernels=("merge_path",),
                       dataset=load_dataset("tiny_diag_32", "smoke")),
            _ShardTask(app="spmv", kernels=("merge_path",),
                       dataset=load_dataset("tiny_uniform_64", "smoke")),
        ]
        with SweepExecutor(max_workers=1) as pool:
            pool.map_shards(tasks)
            assert pool.width == 1
            pool.max_workers = 2  # what default_executor(max_workers=2) does
            pool.map_shards(tasks)
            assert pool.width == 2 and pool.pool_spawns == 2
            pool.max_workers = 1  # never shrinks a warm pool
            pool.map_shards(tasks)
            assert pool.width == 2 and pool.pool_spawns == 2

    def test_worker_exceptions_propagate(self):
        with SweepExecutor(max_workers=1) as pool:
            bad = _ShardTask(app="no-such-app", kernels=("merge_path",),
                             dataset=load_dataset("tiny_diag_32", "smoke"))
            with pytest.raises(KeyError, match="no-such-app"):
                pool.map_shards(bad for _ in range(1))


class TestDefaultExecutor:
    def test_keep_pool_reuses_module_default(self, serial_rows):
        shutdown_default_executor()
        try:
            a = run_suite(KERNELS, scale="smoke", limit=5,
                          executor="process", keep_pool=True, max_workers=2)
            b = run_suite(KERNELS, scale="smoke", limit=5,
                          executor="process", keep_pool=True)
            assert _key(a) == _key(b) == _key(serial_rows)
            pool = default_executor()
            assert pool.pool_spawns == 1 and pool.sweeps == 2
        finally:
            shutdown_default_executor()

    def test_default_executor_is_a_singleton(self):
        shutdown_default_executor()
        try:
            assert default_executor() is default_executor()
        finally:
            shutdown_default_executor()

    def test_shutdown_forgets_the_singleton(self):
        first = default_executor()
        shutdown_default_executor()
        assert default_executor() is not first
        shutdown_default_executor()


class TestWorkerPersistenceScoping:
    def test_knobless_sweep_detaches_previous_sweep_target(self, tmp_path):
        """A persistent worker must not keep writing plans to the
        previous sweep's (possibly temporary) cache directory once a
        later sweep carries no persistence knob."""
        from repro.engine import clear_plan_cache

        cache_dir = tmp_path / "plans"
        # Forked workers inherit the parent's in-memory plan cache;
        # start it cold so the first sweep demonstrably writes to disk.
        clear_plan_cache()
        with SweepExecutor(max_workers=1) as pool:
            run_suite(["merge_path"], scale="smoke", limit=3,
                      executor="process", pool=pool, plan_cache_dir=cache_dir)
            files_after_first = set(cache_dir.glob("plan-*.pkl"))
            assert files_after_first  # the first sweep did persist here
            # Different kernel => different plans; no knob => the worker
            # must fall back to ambient (here: none), not the old dir.
            run_suite(["lrb"], scale="smoke", limit=3,
                      executor="process", pool=pool)
            assert set(cache_dir.glob("plan-*.pkl")) == files_after_first


class TestMisuse:
    def test_keep_pool_requires_process_executor(self):
        with pytest.raises(ValueError, match="process"):
            run_suite(KERNELS, scale="smoke", limit=1, executor="thread",
                      keep_pool=True)

    def test_pool_requires_process_executor(self):
        with pytest.raises(ValueError, match="process"):
            run_suite(KERNELS, scale="smoke", limit=1, executor="serial",
                      pool=SweepExecutor())

    def test_keep_pool_and_pool_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            run_suite(KERNELS, scale="smoke", limit=1, executor="process",
                      keep_pool=True, pool=SweepExecutor())
