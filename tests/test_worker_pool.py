"""Tests for the persistent sweep executor and shared-memory transport.

The contract: a :class:`SweepExecutor` survives across ``run_suite``
calls and across apps (same worker processes, warm plan caches), shard
batching and the shared-memory dataset transport are invisible in the
results (identical row sets vs serial), and every knob degrades cleanly
(pickle fallback, empty grids, misuse errors).
"""

from __future__ import annotations

import pytest

from repro.engine import SweepExecutor, default_executor, shutdown_default_executor
from repro.engine.worker_pool import (
    TRANSPORTS,
    SharedDatasetHandle,
    attach_dataset,
    detach,
    publish_dataset,
)
from repro.evaluation.harness import _ShardTask, run_suite
from repro.sparse.corpus import load_dataset

KERNELS = ["merge_path", "thread_mapped"]


def _kill_worker(_):
    """Simulate a worker crash (module-level: picklable by reference)."""
    import os

    os._exit(1)


def _key(rows):
    return [(r.app, r.kernel, r.dataset, r.rows, r.cols, r.nnzs, r.elapsed)
            for r in rows]


@pytest.fixture(scope="module")
def serial_rows():
    return run_suite(KERNELS, scale="smoke", limit=5, executor="serial")


class TestSharedMemoryTransport:
    def test_publish_attach_round_trip(self):
        ds = load_dataset("tiny_power_256", "smoke")
        pub = publish_dataset(ds)
        assert pub is not None
        try:
            assert isinstance(pub.handle, SharedDatasetHandle)
            clone, shm = attach_dataset(pub.handle)
            try:
                assert clone.name == ds.name and clone.family == ds.family
                assert clone.matrix == ds.matrix  # array-equal CSR
            finally:
                del clone
                detach(shm)
        finally:
            pub.unlink()

    def test_non_csr_payload_falls_back_to_pickle(self):
        class NotCsr:
            pass

        from dataclasses import replace

        ds = replace(load_dataset("tiny_diag_32", "smoke"), matrix=NotCsr())
        assert publish_dataset(ds) is None

    def test_shm_rows_equal_pickle_rows(self, serial_rows):
        shm = run_suite(KERNELS, scale="smoke", limit=5, executor="process",
                        max_workers=2, transport="shm")
        pickled = run_suite(KERNELS, scale="smoke", limit=5, executor="process",
                            max_workers=2, transport="pickle")
        assert _key(shm) == _key(pickled) == _key(serial_rows)

    def test_unknown_transport_rejected(self):
        assert TRANSPORTS == ("auto", "shm", "pickle")
        with pytest.raises(ValueError, match="unknown transport"):
            SweepExecutor(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown transport"):
            SweepExecutor().map_shards(
                [_ShardTask(app="spmv", kernels=("merge_path",),
                            dataset=load_dataset("tiny_diag_32", "smoke"))],
                transport="telepathy",
            )


class TestSweepExecutor:
    def test_pool_persists_across_sweeps_and_apps(self, serial_rows):
        with SweepExecutor(max_workers=2) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=5,
                              executor="process", pool=pool)
            pids_after_first = pool.worker_pids()
            second = run_suite(KERNELS, scale="smoke", limit=5,
                               executor="process", pool=pool)
            other_app = run_suite(["thread_mapped"], app="histogram",
                                  scale="smoke", limit=3,
                                  executor="process", pool=pool)
            pids_after_third = pool.worker_pids()

            assert _key(first) == _key(second) == _key(serial_rows)
            assert len(other_app) == 3
            # Same worker processes served all three sweeps: the pool was
            # spawned once and kept.
            assert pool.pool_spawns == 1
            assert pids_after_first == pids_after_third
            assert pool.sweeps == 3
        assert not pool.alive  # context exit tears the pool down

    def test_lazy_spawn(self):
        pool = SweepExecutor(max_workers=1)
        assert not pool.alive
        assert pool.map_shards([]) == []
        assert not pool.alive  # empty work never spawns
        pool.shutdown()

    def test_batching_preserves_shard_order(self, serial_rows):
        # One batch per crossing: force everything through a single batch
        # and through many batches; both must match serial ordering.
        for batch_atoms in (1, 10**9):
            with SweepExecutor(max_workers=2, batch_atoms=batch_atoms) as pool:
                rows = run_suite(KERNELS, scale="smoke", limit=5,
                                 executor="process", pool=pool)
                assert _key(rows) == _key(serial_rows)

    def test_batches_fewer_crossings_than_shards(self):
        tasks = [
            _ShardTask(app="spmv", kernels=("merge_path",),
                       dataset=load_dataset(name, "smoke"))
            for name in ["tiny_diag_32", "tiny_uniform_64", "tiny_band_128",
                         "tiny_power_256", "tiny_poisson_512"]
        ]
        with SweepExecutor(max_workers=2) as pool:
            per_shard = pool.map_shards(tasks)
            assert len(per_shard) == len(tasks)
            assert [rows[0].dataset for rows in per_shard] == [
                t.dataset.name for t in tasks
            ]
            # Small datasets shared crossings: strictly fewer batches
            # than shards (the whole point of batching).
            assert 0 < pool.batches < len(tasks)

    def test_broken_pool_respawns_on_next_sweep(self, serial_rows):
        """A crashed worker poisons a ProcessPoolExecutor forever; the
        executor must replace it instead of failing every later sweep."""
        from concurrent.futures.process import BrokenProcessPool

        with SweepExecutor(max_workers=1) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=5,
                              executor="process", pool=pool)
            with pytest.raises(BrokenProcessPool):
                list(pool._pool.map(_kill_worker, [0]))
            recovered = run_suite(KERNELS, scale="smoke", limit=5,
                                  executor="process", pool=pool)
            assert _key(first) == _key(recovered) == _key(serial_rows)
            assert pool.pool_spawns == 2  # one respawn, not one per sweep

    def test_pool_grows_to_new_high_water_width(self):
        tasks = [
            _ShardTask(app="spmv", kernels=("merge_path",),
                       dataset=load_dataset("tiny_diag_32", "smoke")),
            _ShardTask(app="spmv", kernels=("merge_path",),
                       dataset=load_dataset("tiny_uniform_64", "smoke")),
        ]
        with SweepExecutor(max_workers=1) as pool:
            pool.map_shards(tasks)
            assert pool.width == 1
            pool.max_workers = 2  # what default_executor(max_workers=2) does
            pool.map_shards(tasks)
            assert pool.width == 2 and pool.pool_spawns == 2
            pool.max_workers = 1  # never shrinks a warm pool
            pool.map_shards(tasks)
            assert pool.width == 2 and pool.pool_spawns == 2

    def test_worker_exceptions_propagate(self):
        with SweepExecutor(max_workers=1) as pool:
            bad = _ShardTask(app="no-such-app", kernels=("merge_path",),
                             dataset=load_dataset("tiny_diag_32", "smoke"))
            with pytest.raises(KeyError, match="no-such-app"):
                pool.map_shards(bad for _ in range(1))


class TestDefaultExecutor:
    def test_keep_pool_reuses_module_default(self, serial_rows):
        shutdown_default_executor()
        try:
            a = run_suite(KERNELS, scale="smoke", limit=5,
                          executor="process", keep_pool=True, max_workers=2)
            b = run_suite(KERNELS, scale="smoke", limit=5,
                          executor="process", keep_pool=True)
            assert _key(a) == _key(b) == _key(serial_rows)
            pool = default_executor()
            assert pool.pool_spawns == 1 and pool.sweeps == 2
        finally:
            shutdown_default_executor()

    def test_default_executor_is_a_singleton(self):
        shutdown_default_executor()
        try:
            assert default_executor() is default_executor()
        finally:
            shutdown_default_executor()

    def test_shutdown_forgets_the_singleton(self):
        first = default_executor()
        shutdown_default_executor()
        assert default_executor() is not first
        shutdown_default_executor()


class TestWorkerPersistenceScoping:
    def test_knobless_sweep_detaches_previous_sweep_target(self, tmp_path):
        """A persistent worker must not keep writing plans to the
        previous sweep's (possibly temporary) cache directory once a
        later sweep carries no persistence knob."""
        from repro.engine import clear_plan_cache

        cache_dir = tmp_path / "plans"
        # Forked workers inherit the parent's in-memory plan cache;
        # start it cold so the first sweep demonstrably writes to disk.
        clear_plan_cache()
        with SweepExecutor(max_workers=1) as pool:
            run_suite(["merge_path"], scale="smoke", limit=3,
                      executor="process", pool=pool, plan_cache_dir=cache_dir)
            files_after_first = set(cache_dir.glob("plan-*.pkl"))
            assert files_after_first  # the first sweep did persist here
            # Different kernel => different plans; no knob => the worker
            # must fall back to ambient (here: none), not the old dir.
            run_suite(["lrb"], scale="smoke", limit=3,
                      executor="process", pool=pool)
            assert set(cache_dir.glob("plan-*.pkl")) == files_after_first


class TestMisuse:
    def test_keep_pool_requires_process_executor(self):
        with pytest.raises(ValueError, match="process"):
            run_suite(KERNELS, scale="smoke", limit=1, executor="thread",
                      keep_pool=True)

    def test_pool_requires_process_executor(self):
        with pytest.raises(ValueError, match="process"):
            run_suite(KERNELS, scale="smoke", limit=1, executor="serial",
                      pool=SweepExecutor())

    def test_keep_pool_and_pool_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            run_suite(KERNELS, scale="smoke", limit=1, executor="process",
                      keep_pool=True, pool=SweepExecutor())
