"""Tests for the Gunrock-style operator layer."""

import numpy as np
import pytest

from repro.apps.bfs import bfs_reference
from repro.apps.operators import advance, compute, filter_frontier
from repro.gpusim.arch import V100
from repro.sparse.graph import random_graph


@pytest.fixture()
def graph():
    return random_graph(120, 4.0, seed=1)


class TestAdvance:
    def test_expands_neighbors(self, graph):
        r = advance(graph, [0], lambda s, t, w: np.ones(t.size, dtype=bool))
        expected = np.unique(graph.neighbors(0))
        np.testing.assert_array_equal(r.frontier, expected)
        assert r.extras["edges"] == graph.out_degree(0)

    def test_edge_op_filters(self, graph):
        r = advance(graph, [0], lambda s, t, w: w < -1)  # impossible
        assert r.frontier.size == 0

    def test_empty_frontier(self, graph):
        r = advance(graph, [], lambda s, t, w: np.ones(t.size, dtype=bool))
        assert r.frontier.size == 0
        assert r.stats.elapsed_ms > 0  # still a launch

    def test_out_of_range_frontier(self, graph):
        with pytest.raises(ValueError, match="out-of-range"):
            advance(graph, [9999], lambda s, t, w: t >= 0)

    def test_bad_edge_op_shape(self, graph):
        with pytest.raises(ValueError, match="one boolean per edge"):
            advance(graph, [0], lambda s, t, w: np.ones(1, dtype=bool))

    @pytest.mark.parametrize("schedule", ["merge_path", "group_mapped", "warp_mapped"])
    def test_schedule_pluggable(self, graph, schedule):
        r = advance(
            graph, [0, 1, 2], lambda s, t, w: np.ones(t.size, dtype=bool),
            schedule=schedule,
        )
        assert r.stats.extras["schedule"] == schedule


class TestFilterAndCompute:
    def test_filter_keeps_matching(self, graph):
        r = filter_frontier(graph, np.arange(10), lambda v: v % 2 == 0)
        np.testing.assert_array_equal(r.frontier, [0, 2, 4, 6, 8])
        assert r.extras["kept"] == 5

    def test_filter_empty(self, graph):
        r = filter_frontier(graph, [], lambda v: v >= 0)
        assert r.frontier.size == 0

    def test_compute_applies_side_effect(self, graph):
        marks = np.zeros(graph.num_vertices, dtype=bool)

        def mark(vertices):
            marks[vertices] = True

        r = compute(graph, [3, 5, 7], mark)
        assert marks[[3, 5, 7]].all() and marks.sum() == 3
        np.testing.assert_array_equal(r.frontier, [3, 5, 7])

    def test_filter_bad_predicate_shape(self, graph):
        with pytest.raises(ValueError, match="one boolean per vertex"):
            filter_frontier(graph, [0, 1], lambda v: np.ones(5, dtype=bool))


class TestOperatorPipeline:
    def test_bfs_as_operator_pipeline(self, graph):
        """BFS written purely as advance+filter, validating against the
        queue-based reference -- the Gunrock composition the paper cites."""
        n = graph.num_vertices
        depth = np.full(n, -1, dtype=np.int64)
        depth[0] = 0
        frontier = np.array([0], dtype=np.int64)
        total_stats = None
        level = 0
        while frontier.size:
            level += 1
            r = advance(
                graph, frontier, lambda s, t, w: depth[t] == -1,
                schedule="group_mapped",
            )
            f = filter_frontier(graph, r.frontier, lambda v: depth[v] == -1)
            depth[f.frontier] = level
            total_stats = (
                r.stats + f.stats
                if total_stats is None
                else total_stats + r.stats + f.stats
            )
            frontier = f.frontier
        np.testing.assert_array_equal(depth, bfs_reference(graph, 0))
        assert total_stats is not None and total_stats.elapsed_ms > 0

    def test_pipeline_stats_compose(self, graph):
        r1 = advance(graph, [0], lambda s, t, w: np.ones(t.size, dtype=bool))
        r2 = filter_frontier(graph, r1.frontier, lambda v: v >= 0)
        combined = r1.stats + r2.stats
        assert combined.elapsed_ms == pytest.approx(
            r1.stats.elapsed_ms + r2.stats.elapsed_ms
        )

    def test_filter_is_perfectly_balanced(self, graph):
        """One atom per tile: every active warp's cycles are identical
        (no lockstep imbalance -- the residual SIMT-efficiency loss is
        pure bookkeeping overhead, not idling)."""
        from repro.core.schedule import WorkCosts, make_schedule
        from repro.core.work import WorkSpec

        work = WorkSpec.from_counts(np.ones(96, dtype=np.int64))
        c = V100.costs
        costs = WorkCosts(
            atom_cycles=c.alu,
            tile_cycles=c.global_load_coalesced + c.global_store,
            tile_reduction=False,
        )
        wc = make_schedule("thread_mapped", work, V100).warp_cycles(costs)
        active = wc[wc > 0]
        assert active.size == 3  # 96 tiles = 3 full V100 warps
        assert np.all(active == active[0])  # zero lockstep imbalance
