"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.sparse import generators as gen


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: gen.uniform_random(50, 50, 4, s),
            lambda s: gen.poisson_random(50, 50, 4.0, s),
            lambda s: gen.power_law(50, 50, 4.0, 2.0, s),
            lambda s: gen.rmat(6, 4, seed=s),
            lambda s: gen.banded(50, 3, s),
            lambda s: gen.single_column(50, 0.5, s),
            lambda s: gen.dense_row_outliers(50, 50, 2, 3, 30, s),
            lambda s: gen.empty_heavy(50, 50, 0.5, 4, s),
        ],
    )
    def test_same_seed_same_matrix(self, factory):
        assert factory(42) == factory(42)

    def test_different_seed_differs(self):
        assert gen.poisson_random(80, 80, 5.0, 1) != gen.poisson_random(80, 80, 5.0, 2)


class TestShapes:
    def test_uniform_exact_degrees(self):
        m = gen.uniform_random(30, 100, 7, seed=0)
        assert np.all(m.row_lengths() == 7)
        assert m.shape == (30, 100)

    def test_uniform_caps_at_cols(self):
        m = gen.uniform_random(10, 3, 9, seed=0)
        assert np.all(m.row_lengths() == 3)

    def test_poisson_mean_close(self):
        m = gen.poisson_random(5000, 5000, 12.0, seed=0)
        assert m.nnz / m.num_rows == pytest.approx(12.0, rel=0.1)

    def test_power_law_is_skewed(self):
        m = gen.power_law(2000, 2000, 8.0, 1.8, seed=0)
        stats = m.degree_stats()
        assert stats["cv"] > 1.0  # heavy tail
        assert stats["max"] > 20 * max(1.0, np.median(m.row_lengths()))

    def test_rmat_dimensions(self):
        m = gen.rmat(7, 4, seed=0)
        assert m.shape == (128, 128)
        assert m.nnz <= 4 * 128  # duplicates merged
        assert m.nnz > 128

    def test_rmat_skew(self):
        m = gen.rmat(10, 8, seed=0)
        assert m.degree_stats()["cv"] > 0.5

    def test_rmat_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            gen.rmat(4, 2, a=0.5, b=0.4, c=0.2)

    def test_banded_structure(self):
        m = gen.banded(20, 2, seed=0)
        dense = m.to_dense()
        i, j = np.nonzero(dense)
        assert np.all(np.abs(i - j) <= 2)
        # Interior rows have the full band.
        assert m.row_lengths()[10] == 5

    def test_block_diagonal(self):
        m = gen.block_diagonal(3, 4, seed=0)
        assert m.shape == (12, 12)
        assert m.nnz == 3 * 16
        dense = m.to_dense()
        assert dense[0, 5] == 0  # off-block is empty

    def test_diagonal(self):
        m = gen.diagonal(9, seed=0)
        assert np.all(m.row_lengths() == 1)
        assert np.all(m.col_indices == np.arange(9))

    def test_single_column(self):
        m = gen.single_column(100, 0.5, seed=0)
        assert m.num_cols == 1
        assert np.all(m.col_indices == 0)
        assert 20 < m.nnz < 80

    def test_dense_row_outliers(self):
        m = gen.dense_row_outliers(100, 200, 2, 3, 150, seed=0)
        lengths = np.sort(m.row_lengths())
        assert lengths[-3] == 150
        assert lengths[0] == 2

    def test_empty_heavy(self):
        m = gen.empty_heavy(1000, 1000, 0.9, 8, seed=0)
        assert m.degree_stats()["empty_frac"] == pytest.approx(0.9, abs=0.05)

    def test_random_graph_unit_weights(self):
        m = gen.random_graph_csr(50, 4.0, weighted=False, seed=0)
        assert np.all(m.values == 1.0)

    def test_all_valid_csr(self):
        for m in [
            gen.uniform_random(20, 20, 3, 0),
            gen.power_law(20, 20, 3.0, 2.0, 0),
            gen.rmat(5, 4, seed=0),
            gen.banded(20, 1, 0),
            gen.single_column(20, 0.5, 0),
        ]:
            m.validate()  # must not raise
