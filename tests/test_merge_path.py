"""Tests for the merge-path partition (Section 5.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schedule import LaunchParams
from repro.core.schedules.merge_path import MergePathSchedule, merge_path_partition
from repro.core.work import WorkSpec
from repro.gpusim.arch import TINY_GPU, V100

counts_strategy = st.lists(st.integers(0, 30), min_size=0, max_size=80)


def _offsets(counts):
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


class TestPartitionFunction:
    def test_endpoints(self):
        offsets = _offsets([2, 3, 1])
        i, j = merge_path_partition(offsets, 6, np.array([0, 9]))
        assert (i[0], j[0]) == (0, 0)
        assert (i[1], j[1]) == (3, 6)  # everything consumed at the last diagonal

    def test_known_small_case(self):
        # rows = [2 atoms, 0 atoms, 1 atom]; merge list A = [2, 2, 3].
        offsets = _offsets([2, 0, 1])
        i, j = merge_path_partition(offsets, 3, np.arange(7))
        # d: 0..6; atoms win ties until a row-end's offset <= atom index.
        assert list(i + j) == list(range(7))
        assert i[-1] == 3 and j[-1] == 3

    def test_out_of_range_diagonal(self):
        with pytest.raises(ValueError):
            merge_path_partition(_offsets([1]), 1, np.array([3]))

    def test_empty_tileset(self):
        i, j = merge_path_partition(np.array([0]), 5, np.array([0, 3, 5]))
        np.testing.assert_array_equal(i, [0, 0, 0])
        np.testing.assert_array_equal(j, [0, 3, 5])

    @given(counts_strategy, st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_partition_invariants(self, counts, ipt):
        offsets = _offsets(counts)
        num_tiles, num_atoms = len(counts), int(offsets[-1])
        total = num_tiles + num_atoms
        diagonals = np.minimum(np.arange(0, total + ipt, ipt), total)
        i, j = merge_path_partition(offsets, num_atoms, diagonals)
        # (1) i + j == d exactly.
        np.testing.assert_array_equal(i + j, diagonals)
        # (2) both coordinates are monotone non-decreasing.
        assert np.all(np.diff(i) >= 0)
        assert np.all(np.diff(j) >= 0)
        # (3) in range.
        assert i[-1] == num_tiles and j[-1] == num_atoms
        # (4) merge-path validity: at split (i, j), all atoms of finished
        # tiles precede j, and the next tile's start is not yet passed.
        for ii, jj in zip(i, j):
            assert offsets[ii] <= jj
            if ii < num_tiles:
                # Not having finished tile ii means its end > jj - else the
                # search would have advanced past it... allow equality when
                # atoms on the diagonal tie (CUB consumes atoms first).
                assert offsets[ii + 1] + ii >= jj + ii - 0  # trivially true
        # (5) per-thread shares are balanced: each thread's combined items
        # equal ipt (except possibly the last).
        shares = np.diff(i) + np.diff(j)
        if shares.size > 1:
            assert np.all(shares[:-1] == ipt)
        if shares.size:
            assert 0 <= shares[-1] <= ipt


class TestMergePathSchedule:
    def test_setup_cost_logarithmic(self):
        w_small = WorkSpec.from_counts([1] * 8)
        w_big = WorkSpec.from_counts([1] * 4096)
        s_small = MergePathSchedule(w_small, V100, LaunchParams(1, 32))
        s_big = MergePathSchedule(w_big, V100, LaunchParams(8, 256))
        from repro.apps.common import spmv_costs

        assert s_small.setup_cycles(spmv_costs(V100)) < s_big.setup_cycles(
            spmv_costs(V100)
        )

    def test_explicit_items_per_thread(self):
        w = WorkSpec.from_counts([3, 3, 3, 3])
        s = MergePathSchedule(
            w, TINY_GPU, LaunchParams(1, 8), items_per_thread=2
        )
        assert s.items_per_thread == 2

    def test_default_launch_sized_by_total_work(self):
        w = WorkSpec.from_counts([10] * 1000)
        launch = MergePathSchedule.default_launch(w, V100)
        total = w.num_atoms + w.num_tiles
        assert launch.num_threads >= total // MergePathSchedule.DEFAULT_ITEMS_PER_THREAD

    def test_block_must_be_warp_aligned(self):
        w = WorkSpec.from_counts([1])
        with pytest.raises(ValueError, match="warp"):
            MergePathSchedule(w, V100, LaunchParams(1, 100))

    def test_balance_insensitive_to_skew(self):
        """The whole point of merge-path: per-warp cycles stay flat no
        matter how skewed the tile sizes are (same total work)."""
        from repro.apps.common import spmv_costs

        uniform = WorkSpec.from_counts([8] * 64)
        skewed_counts = [0] * 63 + [8 * 64]
        skewed = WorkSpec.from_counts(skewed_counts)
        costs = spmv_costs(V100)
        wu = MergePathSchedule(uniform, V100, LaunchParams(2, 64)).warp_cycles(costs)
        wk = MergePathSchedule(skewed, V100, LaunchParams(2, 64)).warp_cycles(costs)
        # Max-to-mean per-warp ratio stays close to 1 for both.
        assert wu.max() / wu.mean() < 1.5
        assert wk.max() / wk.mean() < 1.5
