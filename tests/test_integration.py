"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    AMD_WARP64,
    TINY_GPU,
    V100,
    available_schedules,
    bfs,
    build_corpus,
    load_dataset,
    make_schedule,
    pagerank,
    random_graph,
    spgemm,
    spmm,
    spmv,
    sssp,
    triangle_count,
    WorkSpec,
)


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_from_docstring(self):
        dataset = load_dataset("power_a19", scale="smoke")
        x = np.ones(dataset.cols)
        result = spmv(dataset.matrix, x, schedule="merge_path")
        assert result.elapsed_ms > 0
        assert 0 <= result.stats.simt_efficiency <= 1


class TestCorpusToFiguresPipeline:
    def test_full_pipeline(self, tmp_path):
        from repro.evaluation import (
            fig2_overhead,
            fig4_heuristic,
            run_spmv_suite,
            write_csv,
        )

        datasets = build_corpus("smoke", limit=8)
        rows = run_spmv_suite(
            ["merge_path", "cub", "heuristic", "cusparse"], datasets=datasets
        )
        path = write_csv(rows, tmp_path / "results.csv")
        assert path.exists()
        r2 = fig2_overhead(rows=rows)
        assert len(r2.slowdowns) == 8
        r4 = fig4_heuristic(rows=rows)
        assert len(r4.speedups) == 8


class TestEngineAgreement:
    """The SIMT interpreter and the vectorized path must produce identical
    functional results for every app (up to float association)."""

    @pytest.mark.parametrize("schedule", sorted(available_schedules()))
    def test_spmv_engines_agree(self, schedule):
        m = load_dataset("tiny_uniform_64", "smoke").matrix
        x = np.random.default_rng(2).uniform(size=m.num_cols)
        vec = spmv(m, x, schedule=schedule, spec=TINY_GPU, engine="vector")
        simt = spmv(m, x, schedule=schedule, spec=TINY_GPU, engine="simt")
        np.testing.assert_allclose(vec.output, simt.output, rtol=1e-9)

    def test_spmm_engines_agree(self):
        m = load_dataset("tiny_uniform_64", "smoke").matrix
        b = np.random.default_rng(3).uniform(size=(m.num_cols, 3))
        vec = spmm(m, b, schedule="merge_path", spec=TINY_GPU, engine="vector")
        simt = spmm(m, b, schedule="merge_path", spec=TINY_GPU, engine="simt")
        np.testing.assert_allclose(vec.output, simt.output, rtol=1e-9)


class TestCrossAppConsistency:
    def test_spmv_drives_pagerank(self):
        m = load_dataset("tiny_uniform_64", "smoke").matrix
        r = pagerank(m)
        assert r.output.sum() == pytest.approx(1.0)

    def test_sssp_bfs_triangles_on_same_graph(self):
        g = random_graph(150, 5.0, seed=20)
        d = sssp(g, 0)
        b = bfs(g, 0)
        t = triangle_count(g.csr)
        # Reachability agrees between SSSP and BFS.
        np.testing.assert_array_equal(np.isfinite(d.output), b.output >= 0)
        assert t.output >= 0

    def test_spgemm_squares_adjacency(self):
        m = load_dataset("tiny_uniform_64", "smoke").matrix
        r = spgemm(m, m)
        np.testing.assert_allclose(
            r.output.to_dense(), m.to_dense() @ m.to_dense(), rtol=1e-9
        )


class TestPortability:
    """Section 5.2.3: one-constant porting across SIMT widths."""

    @pytest.mark.parametrize("spec", [V100, AMD_WARP64, TINY_GPU], ids=lambda s: s.name)
    def test_all_schedules_all_specs(self, spec):
        m = load_dataset("tiny_power_256", "smoke").matrix
        x = np.ones(m.num_cols)
        expected = m.to_dense() @ x
        for name in available_schedules():
            r = spmv(m, x, schedule=name, spec=spec)
            np.testing.assert_allclose(r.output, expected, rtol=1e-9)

    def test_timings_differ_across_specs(self):
        m = load_dataset("small_power_1k", "smoke").matrix
        x = np.ones(m.num_cols)
        t_v100 = spmv(m, x, schedule="merge_path", spec=V100).elapsed_ms
        t_tiny = spmv(m, x, schedule="merge_path", spec=TINY_GPU).elapsed_ms
        assert t_tiny > t_v100  # a 2-SM GPU is slower than an 80-SM one


class TestUserOwnedKernel:
    """The paper's central API promise: a user writes their own kernel,
    consuming schedule ranges, without the framework owning the launch."""

    def test_custom_kernel_through_ranges(self):
        from repro.core.schedule import LaunchParams
        from repro.gpusim.simt import launch_interpreted

        m = load_dataset("tiny_uniform_64", "smoke").matrix
        work = WorkSpec.from_csr(m)
        launch = LaunchParams(grid_dim=4, block_dim=16)
        sched = make_schedule("thread_mapped", work, TINY_GPU, launch)
        row_nnz_squared = np.zeros(m.num_rows)

        def kernel(ctx):  # user-defined computation: sum of squares per row
            for row in sched.tiles(ctx):
                acc = 0.0
                for nz in sched.atoms(ctx, row):
                    acc += m.values[nz] ** 2
                row_nnz_squared[row] = acc

        launch_interpreted(kernel, launch.grid_dim, launch.block_dim, (), TINY_GPU)
        expected = np.zeros(m.num_rows)
        rows = np.repeat(np.arange(m.num_rows), m.row_lengths())
        np.add.at(expected, rows, m.values**2)
        np.testing.assert_allclose(row_nnz_squared, expected)
