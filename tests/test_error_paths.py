"""Error-path and rarely-hit-branch coverage across the stack."""

import numpy as np
import pytest

from repro.apps.common import resolve_schedule, spmv_costs
from repro.core.schedule import LaunchParams, register_schedule
from repro.core.work import WorkSpec
from repro.evaluation.figures import fig2_overhead, fig4_heuristic
from repro.evaluation.harness import SpmvRow
from repro.gpusim.arch import V100
from repro.gpusim.multi_gpu import multi_gpu_plan


class TestFigureErrorPaths:
    def test_fig2_no_common_datasets(self):
        rows = [
            SpmvRow("merge_path", "a", 1, 1, 1, 1.0),
            SpmvRow("cub", "b", 1, 1, 1, 1.0),
        ]
        with pytest.raises(ValueError, match="no common datasets"):
            fig2_overhead(rows=rows)

    def test_fig4_no_common_datasets(self):
        rows = [SpmvRow("heuristic", "a", 1, 1, 1, 1.0)]
        with pytest.raises(ValueError, match="no common datasets"):
            fig4_heuristic(rows=rows)


class TestResolveSchedule:
    def test_heuristic_requires_matrix(self):
        work = WorkSpec.from_counts([1, 2])
        with pytest.raises(ValueError, match="requires the input matrix"):
            resolve_schedule("heuristic", work, V100)

    def test_prebuilt_schedule_passthrough(self):
        from repro.core.schedule import make_schedule

        work = WorkSpec.from_counts([1, 2])
        sched = make_schedule("merge_path", work, V100)
        assert resolve_schedule(sched, work, V100) is sched

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_schedule("merge_path")
            class Clash:  # pragma: no cover - never instantiated
                pass


class TestMultiGpuEdges:
    def test_more_devices_than_tiles(self):
        work = WorkSpec.from_counts([5, 5])
        plan = multi_gpu_plan(work, spmv_costs(V100), num_devices=8)
        # Empty shards are skipped; the work still completes.
        assert sum(a for a, _ in plan.shards) == work.num_atoms
        assert len(plan.device_stats) <= 8

    def test_empty_workload_rejected(self):
        work = WorkSpec.from_counts(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError, match="empty workload"):
            multi_gpu_plan(work, spmv_costs(V100), num_devices=2)


class TestLaunchParams:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LaunchParams(0, 32)
        with pytest.raises(ValueError):
            LaunchParams(1, 0)

    def test_num_threads(self):
        assert LaunchParams(3, 64).num_threads == 192


class TestHarnessValidationPath:
    def test_validation_catches_corrupted_kernel(self, monkeypatch):
        """Inject a wrong result into the harness: the --validate analog
        must catch it rather than emit a bogus row."""
        import importlib

        import repro.evaluation.harness as harness
        from repro.sparse.corpus import load_dataset

        # The package re-exports the function under the same name, so
        # fetch the module object itself to patch the callable.
        cub_mod = importlib.import_module("repro.baselines.cub_spmv")

        ds = load_dataset("tiny_diag_32", "smoke")
        real = cub_mod.cub_spmv

        def corrupted(matrix, x, spec):
            y, stats = real(matrix, x, spec)
            return y + 1.0, stats

        monkeypatch.setattr(cub_mod, "cub_spmv", corrupted)
        with pytest.raises(AssertionError, match="validation failed"):
            harness.run_spmv_kernel("cub", ds)
