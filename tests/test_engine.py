"""Tests for the unified execution-engine layer (registry, dispatch, cache)."""

import numpy as np
import pytest

from repro.core.schedule import make_schedule
from repro.core.work import WorkSpec
from repro.engine import (
    AppSpec,
    DEFAULT_SEED,
    EngineError,
    PlanCache,
    Runtime,
    SimtEngine,
    VectorEngine,
    available_apps,
    get_app,
    get_engine,
    global_plan_cache,
    input_vector,
    register_app,
    run_app,
)
from repro.gpusim.arch import TINY_GPU
from repro.sparse import generators as gen


@pytest.fixture
def small_matrix():
    """Square, skewed, strictly-positive values: acceptable to every app."""
    return gen.power_law(20, 20, 3.0, 1.9, seed=5)


class TestRegistry:
    def test_all_builtin_apps_registered(self):
        assert set(available_apps()) >= {
            "spmv",
            "spmm",
            "spgemm",
            "bfs",
            "sssp",
            "pagerank",
            "triangle_count",
            "spmttkrp",
            "histogram",
        }

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown app"):
            get_app("fictional")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_app(AppSpec(name="spmv", driver=lambda p, rt: None))

    def test_every_app_declares_sweep_and_oracle(self):
        for name in available_apps():
            app = get_app(name)
            assert app.sweep_problem is not None, name
            assert app.oracle is not None, name


class TestEngineSelection:
    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("quantum")

    def test_instances_pass_through(self):
        eng = VectorEngine(plan_cache=PlanCache())
        assert get_engine(eng) is eng

    def test_vector_requires_compute(self):
        work = WorkSpec.from_counts([2, 3, 1])
        sched = make_schedule("thread_mapped", work, TINY_GPU)
        with pytest.raises(EngineError, match="compute"):
            VectorEngine().launch(sched, _unit_costs(), compute=None)

    def test_simt_requires_kernel(self):
        work = WorkSpec.from_counts([2, 3, 1])
        sched = make_schedule("thread_mapped", work, TINY_GPU)
        with pytest.raises(EngineError, match="SIMT kernel"):
            SimtEngine().launch(sched, _unit_costs(), compute=lambda: 0)

    def test_runtime_without_schedule(self):
        rt = Runtime("vector", spec=TINY_GPU)
        with pytest.raises(EngineError, match="schedule"):
            rt.schedule_for(WorkSpec.from_counts([1]))


def _unit_costs():
    from repro.core.schedule import WorkCosts

    return WorkCosts(atom_cycles=1.0, tile_cycles=1.0)


class TestCrossEngineParity:
    """The refactor's acceptance bar: for every registered app, the
    vectorized functional path and the thread-by-thread SIMT path agree
    with the oracle on a small input."""

    @pytest.mark.parametrize("app_name", sorted(available_apps()))
    def test_vector_and_simt_match_oracle(self, app_name, small_matrix):
        app = get_app(app_name)
        problem = app.sweep_problem(small_matrix, DEFAULT_SEED)
        expected = app.oracle(problem)
        vector = run_app(app, problem, engine="vector", spec=TINY_GPU)
        simt = run_app(app, problem, engine="simt", spec=TINY_GPU)
        assert app.match(vector.output, expected), f"{app_name}: vector != oracle"
        assert app.match(simt.output, expected), f"{app_name}: simt != oracle"
        assert vector.elapsed_ms > 0 and simt.elapsed_ms > 0

    @pytest.mark.parametrize("schedule", ["thread_mapped", "group_mapped", "merge_path"])
    @pytest.mark.parametrize("app_name", sorted(available_apps()))
    def test_parity_across_schedules(self, app_name, schedule, small_matrix):
        """Pin the SIMT kernel bodies' exactness under whole-tile,
        lane-parallel and partial-tile (merge-path) scheduling alike."""
        app = get_app(app_name)
        problem = app.sweep_problem(small_matrix, DEFAULT_SEED)
        expected = app.oracle(problem)
        for engine in ("vector", "simt"):
            r = run_app(app, problem, schedule=schedule, engine=engine, spec=TINY_GPU)
            assert app.match(r.output, expected), (app_name, schedule, engine)

    def test_heuristic_schedule_supported_by_every_app(self, small_matrix):
        for app_name in sorted(available_apps()):
            app = get_app(app_name)
            problem = app.sweep_problem(small_matrix, DEFAULT_SEED)
            r = run_app(app, problem, schedule="heuristic", spec=TINY_GPU)
            assert app.match(r.output, app.oracle(problem)), app_name


class TestPlanCache:
    def test_cached_stats_identical_to_uncached(self, small_matrix):
        from repro.apps import spmv

        x = input_vector(small_matrix.num_cols)
        cached = VectorEngine(plan_cache=PlanCache())
        uncached = VectorEngine(plan_cache=PlanCache(maxsize=0))
        warm = spmv(small_matrix, x, spec=TINY_GPU, engine=cached)
        hit = spmv(small_matrix, x, spec=TINY_GPU, engine=cached)
        cold = spmv(small_matrix, x, spec=TINY_GPU, engine=uncached)
        # KernelStats compares every timing field (extras excluded).
        assert warm.stats == hit.stats == cold.stats
        assert cached.plan_cache.hits == 1

    def test_replanning_skipped_on_hit(self, small_matrix, monkeypatch):
        from repro.apps import spmv
        from repro.core.schedules.merge_path import MergePathSchedule

        calls = {"n": 0}
        real = MergePathSchedule.warp_cycles

        def counting(self, costs):
            calls["n"] += 1
            return real(self, costs)

        monkeypatch.setattr(MergePathSchedule, "warp_cycles", counting)
        engine = VectorEngine(plan_cache=PlanCache())
        x = input_vector(small_matrix.num_cols)
        first = spmv(small_matrix, x, spec=TINY_GPU, engine=engine)
        after_first = calls["n"]
        assert after_first >= 1
        second = spmv(small_matrix, x, spec=TINY_GPU, engine=engine)
        assert calls["n"] == after_first  # cache hit: no recomputation
        assert second.stats == first.stats

    def test_distinct_launches_get_distinct_entries(self, small_matrix):
        from repro.apps import spmv

        engine = VectorEngine(plan_cache=PlanCache())
        x = input_vector(small_matrix.num_cols)
        a = spmv(small_matrix, x, spec=TINY_GPU, engine=engine)
        b = spmv(
            small_matrix, x, spec=TINY_GPU, engine=engine,
            schedule="thread_mapped",
        )
        assert engine.plan_cache.hits == 0
        assert engine.plan_cache.misses == 2
        assert a.schedule != b.schedule

    def test_schedule_instances_bypass_cache(self, small_matrix):
        from repro.apps import spmv

        engine = VectorEngine(plan_cache=PlanCache())
        work = WorkSpec.from_csr(small_matrix)
        sched = make_schedule("merge_path", work, TINY_GPU)
        x = input_vector(small_matrix.num_cols)
        spmv(small_matrix, x, spec=TINY_GPU, engine=engine, schedule=sched)
        spmv(small_matrix, x, spec=TINY_GPU, engine=engine, schedule=sched)
        assert engine.plan_cache.hits == 0 and engine.plan_cache.misses == 0

    def test_global_cache_serves_harness_reruns(self):
        from repro.evaluation.harness import run_suite
        from repro.sparse.corpus import load_dataset

        ds = [load_dataset("tiny_diag_32", "smoke")]
        cache = global_plan_cache()
        run_suite(["merge_path"], app="spmv", datasets=ds)
        hits_before = cache.info()["hits"]
        run_suite(["merge_path"], app="spmv", datasets=ds)
        assert cache.info()["hits"] > hits_before


class TestSeeding:
    def test_deterministic(self):
        np.testing.assert_array_equal(input_vector(16), input_vector(16))
        assert not np.array_equal(input_vector(16, seed=1), input_vector(16))

    def test_strictly_positive(self):
        assert (input_vector(256) > 0).all()


class TestGenericSweep:
    """The harness sweeps any registered app over the corpus."""

    @pytest.mark.parametrize("app_name", ["spmm", "histogram", "bfs"])
    def test_non_spmv_apps_sweep(self, app_name):
        from repro.evaluation.harness import run_suite

        rows = run_suite(
            ["thread_mapped", "merge_path"],
            app=app_name,
            scale="smoke",
            limit=3,
        )
        assert len(rows) == 6
        assert all(r.app == app_name for r in rows)
        assert all(r.elapsed > 0 for r in rows)

    def test_incompatible_datasets_skipped(self):
        from repro.evaluation.harness import run_suite
        from repro.sparse.corpus import load_dataset

        ds = [
            load_dataset("tiny_diag_32", "smoke"),
            load_dataset("wide_4x", "smoke"),  # rectangular: no graph
        ]
        rows = run_suite(["thread_mapped"], app="bfs", datasets=ds)
        assert [r.dataset for r in rows] == ["tiny_diag_32"]

    def test_parallel_matches_serial(self):
        from repro.evaluation.harness import run_suite

        kwargs = dict(app="spmm", scale="smoke", limit=3)
        serial = run_suite(["merge_path", "thread_mapped"], **kwargs)
        parallel = run_suite(
            ["merge_path", "thread_mapped"], max_workers=4, **kwargs
        )
        assert [(r.dataset, r.kernel, r.elapsed) for r in serial] == [
            (r.dataset, r.kernel, r.elapsed) for r in parallel
        ]

    def test_app_column_in_csv(self, tmp_path):
        from repro.evaluation.harness import run_suite, write_csv
        import csv as _csv

        rows = run_suite(["thread_mapped"], app="histogram", scale="smoke", limit=2)
        path = write_csv(rows, tmp_path / "sweep.csv", include_app=True)
        with open(path) as fh:
            parsed = list(_csv.DictReader(fh))
        assert parsed[0]["app"] == "histogram"
        assert set(parsed[0]) == {
            "app", "kernel", "dataset", "rows", "cols", "nnzs", "elapsed",
        }

    def test_unknown_kernel(self):
        from repro.evaluation.harness import run_cell
        from repro.sparse.corpus import load_dataset

        ds = load_dataset("tiny_diag_32", "smoke")
        with pytest.raises(KeyError, match="unknown kernel"):
            run_cell("histogram", "fictional", ds)
