"""Tests for the work definition stage (repro.core.work)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.work import WorkSpec
from repro.sparse.convert import csr_to_coo, csr_to_csc
from repro.sparse import generators as gen

counts_lists = st.lists(st.integers(0, 50), min_size=1, max_size=100)


class TestConstruction:
    def test_from_counts(self):
        w = WorkSpec.from_counts([2, 0, 5, 1])
        assert w.num_tiles == 4
        assert w.num_atoms == 8
        np.testing.assert_array_equal(w.tile_offsets, [0, 2, 2, 7, 8])

    def test_from_offsets(self):
        w = WorkSpec.from_offsets([0, 3, 3, 4])
        assert w.num_tiles == 3
        assert w.num_atoms == 4

    def test_from_csr_zero_copy_semantics(self):
        m = gen.poisson_random(30, 30, 3.0, seed=1)
        w = WorkSpec.from_csr(m, "demo")
        assert w.tile_offsets is m.row_offsets  # CSR offsets reused directly
        assert w.num_tiles == m.num_rows
        assert w.num_atoms == m.nnz
        assert w.label == "demo"

    def test_from_csc(self):
        m = gen.poisson_random(20, 10, 3.0, seed=2)
        csc = csr_to_csc(m)
        w = WorkSpec.from_csc(csc)
        assert w.num_tiles == 10
        assert w.num_atoms == m.nnz

    def test_from_coo_requires_sorted(self):
        m = gen.poisson_random(20, 20, 2.0, seed=3)
        coo = csr_to_coo(m)
        w = WorkSpec.from_coo(coo)
        assert w.num_atoms == m.nnz
        # Shuffle destroys the contiguity invariant.
        if coo.nnz > 1:
            import dataclasses

            shuffled = dataclasses.replace(coo, rows=coo.rows[::-1].copy())
            with pytest.raises(ValueError, match="sorted"):
                WorkSpec.from_coo(shuffled)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            WorkSpec.from_counts([[1, 2]])
        with pytest.raises(ValueError):
            WorkSpec.from_counts([1, -2])
        with pytest.raises(ValueError):
            WorkSpec.from_offsets([1, 2])
        with pytest.raises(ValueError):
            WorkSpec.from_offsets([0, 3, 2])


class TestPaperIterators:
    def test_three_iterators_of_listing1(self):
        w = WorkSpec.from_counts([2, 0, 3])
        assert w.atoms_iter[0] == 0
        assert w.tiles_iter[2] == 2
        assert [w.atoms_per_tile_iter[i] for i in range(3)] == [2, 0, 3]

    @given(counts_lists)
    def test_atoms_per_tile_iter_matches_array(self, counts):
        w = WorkSpec.from_counts(counts)
        per_tile = w.atoms_per_tile()
        for i in range(w.num_tiles):
            assert w.atoms_per_tile_iter[i] == per_tile[i]


class TestQueries:
    @given(counts_lists)
    def test_tile_of_atom_inverts_ranges(self, counts):
        w = WorkSpec.from_counts(counts)
        for tile in range(w.num_tiles):
            lo, hi = w.atom_range(tile)
            if hi > lo:
                atoms = np.arange(lo, hi)
                np.testing.assert_array_equal(
                    w.tile_of_atom(atoms), np.full(hi - lo, tile)
                )

    def test_atom_range_bounds(self):
        w = WorkSpec.from_counts([1, 2])
        with pytest.raises(IndexError):
            w.atom_range(2)
        with pytest.raises(IndexError):
            w.atom_range(-1)

    def test_equal_cost_assumption_documented(self):
        # Section 3.1: all atoms are assumed equal cost -- the WorkSpec has
        # no per-atom weight field by design.
        w = WorkSpec.from_counts([3])
        assert not hasattr(w, "atom_weights")
