"""Tests for the ELL format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.csr import CsrMatrix
from repro.sparse.ell import PAD, EllMatrix, csr_to_ell, ell_to_csr
from repro.sparse import generators as gen

counts_lists = st.lists(st.integers(0, 12), min_size=1, max_size=40)


class TestConversion:
    def test_roundtrip_dense(self):
        m = gen.poisson_random(20, 15, 3.0, seed=1)
        ell = csr_to_ell(m)
        np.testing.assert_allclose(ell.to_dense(), m.to_dense())
        back = ell_to_csr(ell)
        np.testing.assert_allclose(back.to_dense(), m.to_dense())

    @given(counts_lists)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, counts):
        from conftest import make_csr_from_counts

        m = make_csr_from_counts(counts, cols=16)
        ell = csr_to_ell(m)
        ell.validate()
        np.testing.assert_allclose(ell_to_csr(ell).to_dense(), m.to_dense())
        np.testing.assert_array_equal(ell.row_lengths(), m.row_lengths())

    def test_width_is_longest_row(self):
        m = CsrMatrix.from_dense(
            np.array([[1.0, 2, 3], [0, 4, 0], [0, 0, 0]])
        )
        ell = csr_to_ell(m)
        assert ell.width == 3
        assert ell.nnz == 4
        assert ell.col_indices[2, 0] == PAD

    def test_max_width_guard(self):
        m = gen.dense_row_outliers(100, 200, 2, 1, 150, seed=2)
        with pytest.raises(ValueError, match="padding would explode"):
            csr_to_ell(m, max_width=32)

    def test_empty_matrix(self):
        ell = csr_to_ell(CsrMatrix.empty((3, 3)))
        assert ell.width == 0
        assert ell.nnz == 0
        assert ell.padding_ratio() == 0.0


class TestStructuralBalance:
    def test_uniform_matrix_has_zero_padding(self):
        m = gen.uniform_random(50, 50, 6, seed=3)
        assert csr_to_ell(m).padding_ratio() == 0.0

    def test_skewed_matrix_pads_badly(self):
        # The format-vs-schedule trade-off: ELL on a power-law matrix
        # wastes multiples of the real data in padding.
        m = gen.dense_row_outliers(500, 500, 2, 2, 400, seed=4)
        assert csr_to_ell(m).padding_ratio() > 10

    def test_workspec_from_ell_is_balanced(self):
        from repro.core.work import WorkSpec

        m = gen.uniform_random(64, 64, 4, seed=5)
        ell = csr_to_ell(m)
        work = WorkSpec.from_counts(ell.row_lengths())
        assert np.all(work.atoms_per_tile() == 4)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shapes"):
            EllMatrix(
                col_indices=np.zeros((2, 3), dtype=np.int64),
                values=np.zeros((2, 2)),
                shape=(2, 4),
            ).validate()

    def test_out_of_range_column(self):
        with pytest.raises(ValueError, match="column index"):
            EllMatrix(
                col_indices=np.array([[5]], dtype=np.int64),
                values=np.ones((1, 1)),
                shape=(1, 2),
            ).validate()

    def test_interior_padding_rejected(self):
        bad = EllMatrix(
            col_indices=np.array([[PAD, 1]], dtype=np.int64),
            values=np.array([[0.0, 1.0]]),
            shape=(1, 2),
        )
        with pytest.raises(ValueError, match="trailing"):
            bad.validate()
