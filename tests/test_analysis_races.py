"""Race verdicts: closed forms, the snapshot matrix, and probe soundness.

Three layers of assurance, strongest last:

1. the closed-form per-schedule tile-writer counts equal a thread-by-
   thread probe of ``tiles()``/``atoms()``/``owns_tile_fully`` on skewed
   instances (the same cross-validation the load builders get);
2. the full verdict matrix is pinned as a snapshot, so a new app or
   schedule registration must consciously extend it;
3. soundness: every ``SAFE`` cell of the matrix is validated by the
   shadow-write probe -- the real drivers on the interpreted SIMT path,
   with zero observed cross-thread overlap on the cell's kernel writes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    probe_matrix,
    run_probe,
    schedule_profile,
    verdict_matrix,
)
from repro.analysis.races import VERDICTS, canonical_work
from repro.core.schedule import available_schedules, make_schedule
from repro.core.work import WorkSpec
from repro.engine.compiled import (
    _WRITER_BUILDERS,
    _generic_tile_writers,
    tile_writer_counts,
)
from repro.gpusim.arch import TINY_GPU


def make_work(counts, label="race-test"):
    offsets = np.concatenate(
        ([0], np.cumsum(np.asarray(counts, dtype=np.int64)))
    )
    return WorkSpec.from_offsets(offsets, label=label)


SHAPES = {
    "canonical": [64] + [5] * 12 + [0] * 16 + [1] * 19,
    "empty-heavy": [0, 0, 100, 0, 0, 1, 1, 0, 7],
    "singletons": [1] * 40,
    "alternating": [0, 3, 0, 3, 0, 3, 17, 0, 0, 2, 1],
    "one-tile": [37],
    "all-empty": [0] * 10,
}


class TestTileWriterCounts:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    @pytest.mark.parametrize("name", available_schedules())
    def test_closed_form_matches_thread_probe(self, name, shape):
        sched = make_schedule(name, make_work(SHAPES[shape]), TINY_GPU)
        closed = _WRITER_BUILDERS[name](sched)
        probed = _generic_tile_writers(sched)
        assert np.array_equal(closed, probed), (
            f"{name} on {shape}: closed form disagrees with the "
            f"thread-by-thread probe"
        )

    def test_every_schedule_has_a_builder(self):
        assert set(_WRITER_BUILDERS) == set(available_schedules())

    def test_fallback_probe_for_unknown_schedule(self):
        # tile_writer_counts must not require a registered closed form.
        sched = make_schedule("merge_path", make_work([5, 0, 9]), TINY_GPU)
        assert np.array_equal(
            tile_writer_counts(sched), _generic_tile_writers(sched)
        )

    def test_single_writer_schedules_never_split_tiles(self):
        for name in ("thread_mapped", "dynamic_queue"):
            for shape, counts in SHAPES.items():
                sched = make_schedule(name, make_work(counts), TINY_GPU)
                assert int(tile_writer_counts(sched).max(initial=0)) <= 1, (
                    f"{name} split a tile on {shape}"
                )


class TestScheduleProfiles:
    def test_canonical_work_is_skewed(self):
        work = canonical_work()
        counts = work.atoms_per_tile()
        assert counts.max() >= 64 and (counts == 0).sum() >= 16

    def test_atom_splitting_schedules_show_multiple_writers(self):
        for name in ("merge_path", "nonzero_split", "warp_mapped",
                     "block_mapped", "group_mapped", "lrb"):
            assert schedule_profile(name)["max_tile_writers"] > 1, name

    def test_dynamic_queue_potential_is_chunk_bounded(self):
        profile = schedule_profile("dynamic_queue")
        sched = make_schedule("dynamic_queue", canonical_work(), TINY_GPU)
        assert profile["potential_writers"] == min(
            int(sched.launch.num_threads), int(sched.num_chunks())
        )
        assert profile["potential_writers"] > 1


# The pinned matrix: rows sorted by (app, label), verdicts keyed by
# schedule.  A registration change (new app, new schedule, a kernel
# rewrite that changes a write class) must consciously update this.
EXPECTED_VERDICTS = {
    ("bfs", "advance"): "SCATTER",
    ("histogram", "histogram"): "SCATTER",
    ("spgemm", "compute"): "SCATTER",
    ("sssp", "advance"): "SCATTER",
    ("triangle_count", "intersect"): "REDUCE",
}
TILE_PRIVATE_ROWS = (
    ("pagerank", "spmv"),
    ("spgemm", "count"),
    ("spmm", "spmm"),
    ("spmttkrp", "mttkrp"),
    ("spmv", "spmv"),
)
SINGLE_WRITER_SCHEDULES = ("thread_mapped", "dynamic_queue")


class TestVerdictMatrix:
    def test_snapshot(self):
        matrix = verdict_matrix()
        assert matrix["schedules"] == list(available_schedules())
        rows = {(r["app"], r["label"]): r for r in matrix["rows"]}
        expected_keys = set(EXPECTED_VERDICTS) | set(TILE_PRIVATE_ROWS)
        assert set(rows) == expected_keys, (
            "app/kernel registrations changed: extend the verdict snapshot"
        )
        for key, verdict in EXPECTED_VERDICTS.items():
            for sched in matrix["schedules"]:
                assert rows[key]["verdicts"][sched] == verdict, (key, sched)
        for key in TILE_PRIVATE_ROWS:
            for sched in matrix["schedules"]:
                expected = (
                    "SAFE" if sched in SINGLE_WRITER_SCHEDULES else "REDUCE"
                )
                assert rows[key]["verdicts"][sched] == expected, (key, sched)

    def test_pagerank_row_is_a_delegate(self):
        matrix = verdict_matrix()
        row = next(r for r in matrix["rows"] if r["app"] == "pagerank")
        assert row["delegates_to"] == "spmv"
        spmv_row = next(r for r in matrix["rows"] if r["app"] == "spmv")
        assert row["verdicts"] == spmv_row["verdicts"]

    def test_matrix_is_cached_content_keyed(self):
        first = verdict_matrix()
        assert verdict_matrix() is first
        assert "content_key" in first

    def test_restriction_filters(self):
        matrix = verdict_matrix(apps=["spmv"], schedules=["merge_path"])
        assert [r["app"] for r in matrix["rows"]] == ["spmv"]
        assert matrix["schedules"] == ["merge_path"]

    def test_verdict_order(self):
        assert VERDICTS == ("SAFE", "REDUCE", "SCATTER")


class TestProbeSoundness:
    @pytest.fixture(scope="class")
    def probed(self):
        return probe_matrix()

    @pytest.fixture(scope="class")
    def matrix(self):
        return verdict_matrix()

    def test_matrix_covers_all_apps_and_schedules(self, matrix):
        from repro.engine import available_apps

        apps = {r["app"] for r in matrix["rows"]}
        assert apps == set(available_apps())
        assert len(matrix["schedules"]) == len(available_schedules())

    def test_every_safe_cell_has_no_observed_overlap(self, probed, matrix):
        safe_cells = 0
        for row in matrix["rows"]:
            for sched, verdict in row["verdicts"].items():
                if verdict != "SAFE":
                    continue
                safe_cells += 1
                result = probed[(row["app"], sched)]
                overlaps = result.overlaps_for(row["label"])
                assert overlaps == 0, (
                    f"SAFE cell {row['app']}/{row['label']} x {sched} "
                    f"observed {overlaps} cross-thread overlap(s): "
                    "the static verdict is unsound"
                )
        # The matrix must actually contain SAFE cells to validate: all
        # five tile-private kernels under both single-writer schedules.
        assert safe_cells == len(TILE_PRIVATE_ROWS) * len(
            SINGLE_WRITER_SCHEDULES
        )

    def test_probe_exercised_every_cell(self, probed, matrix):
        for row in matrix["rows"]:
            for sched in matrix["schedules"]:
                result = probed[(row["app"], sched)]
                assert any(launches > 0 for _, launches, _, _ in result.labels), (
                    f"{row['app']} x {sched}: the probe recorded no launches"
                )

    def test_probe_sees_real_overlaps_on_reduce_cells(self):
        # Sanity that the recorder is not blind: an atom-splitting
        # schedule on SpMV must show the overlaps REDUCE predicts.
        result = run_probe("spmv", "merge_path")
        assert result.overlaps_for("spmv") > 0
