"""Tests for the cooperative-groups model."""

import numpy as np
import pytest

from repro.gpusim.arch import V100
from repro.gpusim.cooperative_groups import ThreadGroup, tiled_partition, valid_group_size


class TestTiledPartition:
    def test_partitions_block(self):
        groups = tiled_partition(256, 32)
        assert len(groups) == 8
        assert all(g.size == 32 for g in groups)
        assert [g.group_index for g in groups] == list(range(8))

    def test_group_of_block_size(self):
        (g,) = tiled_partition(128, 128)
        assert g.groups_per_block == 1

    def test_arbitrary_sizes_allowed(self):
        # The paper's point: groups need not be warp- or block-sized.
        assert len(tiled_partition(96, 12)) == 8

    def test_rejects_non_dividing(self):
        with pytest.raises(ValueError, match="tile"):
            tiled_partition(256, 48)

    def test_valid_group_size(self):
        assert valid_group_size(16, 256)
        assert not valid_group_size(0, 256)
        assert not valid_group_size(257, 256)
        assert not valid_group_size(13, 256)


class TestThreadGroup:
    def test_ranks(self):
        g = ThreadGroup(size=8, group_index=2, block_dim=32)
        assert g.thread_rank(16) == 0
        assert g.thread_rank(23) == 7
        assert g.contains(17)
        assert not g.contains(8)

    def test_rank_out_of_group_raises(self):
        g = ThreadGroup(size=8, group_index=0, block_dim=32)
        with pytest.raises(ValueError):
            g.thread_rank(9)

    def test_lane_slice(self):
        g = ThreadGroup(size=8, group_index=1, block_dim=32)
        assert g.lane_slice() == slice(8, 16)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ThreadGroup(size=7, group_index=0, block_dim=32)
        with pytest.raises(ValueError):
            ThreadGroup(size=8, group_index=4, block_dim=32)


class TestGroupCollectives:
    def test_reduce(self):
        g = ThreadGroup(size=4, group_index=0, block_dim=4)
        assert g.reduce(np.array([1, 2, 3, 4])) == 10

    def test_scans(self):
        g = ThreadGroup(size=4, group_index=0, block_dim=4)
        np.testing.assert_array_equal(
            g.exclusive_scan(np.array([1, 2, 3, 4])), [0, 1, 3, 6]
        )
        np.testing.assert_array_equal(
            g.inclusive_scan(np.array([1, 2, 3, 4])), [1, 3, 6, 10]
        )

    def test_ballot(self):
        g = ThreadGroup(size=4, group_index=0, block_dim=4)
        assert g.ballot(np.array([1, 0, 1, 0], dtype=bool)) == 0b0101

    def test_wrong_width_rejected(self):
        g = ThreadGroup(size=4, group_index=0, block_dim=4)
        with pytest.raises(ValueError, match="lanes"):
            g.reduce(np.array([1, 2]))


class TestGroupCosts:
    def test_subwarp_sync_cheap(self):
        sub = ThreadGroup(size=16, group_index=0, block_dim=32)
        sup = ThreadGroup(size=64, group_index=0, block_dim=64)
        assert sub.sync_cost(V100) < sup.sync_cost(V100)

    def test_scan_cost_positive(self):
        g = ThreadGroup(size=32, group_index=0, block_dim=32)
        assert g.scan_cost(V100) > 0
        assert g.reduce_cost(V100) > 0
