"""Tests for deterministic sticky placement over worker slots.

The contract: each dataset's content key rendezvous-hashes to a stable
home slot, so repeated sweeps of the same grid land every dataset on the
same worker (and its warm caches); growing the pool moves only the keys
whose new HRW maximum is the added slot; a crashed worker is respawned
in its slot, remapping nothing -- only that slot's datasets see a new
pid.  Every row records its placement in ``meta["placement"]``.
"""

from __future__ import annotations

import pytest

from repro.engine import SweepExecutor, home_slot
from repro.evaluation.harness import run_suite

KERNELS = ["merge_path", "thread_mapped"]
WIDTH = 4
LIMIT = 8


def _kill_worker(_):
    """Simulate a worker crash (module-level: picklable by reference)."""
    import os

    os._exit(1)


def _placements(rows):
    """``dataset name -> (home, slot, mode)`` from the sweep rows."""
    placed = {}
    for row in rows:
        p = row.meta["placement"]
        placed[row.dataset] = (p["home"], p["slot"], p["mode"])
    return placed


def _pids(rows):
    """``dataset name -> executing worker pid`` from the sweep rows."""
    return {row.dataset: row.meta["placement"]["pid"] for row in rows}


class TestHomeSlot:
    def test_deterministic_and_in_range(self):
        keys = [("spmv", ("csr", i), 0, True) for i in range(64)]
        homes = [home_slot(k, WIDTH) for k in keys]
        assert homes == [home_slot(k, WIDTH) for k in keys]
        assert all(0 <= h < WIDTH for h in homes)
        # Rendezvous spreads keys: no slot owns everything.
        assert len(set(homes)) > 1

    def test_width_one_is_always_slot_zero(self):
        assert all(home_slot(("k", i), 1) == 0 for i in range(16))

    def test_growth_remaps_only_to_the_new_slot(self):
        """The HRW property: adding slot N only moves keys whose maximum
        is the new slot -- nothing reshuffles between surviving slots."""
        keys = [("spmv", ("csr", i, i * 31), 7, True) for i in range(256)]
        for width in (2, 3, 4, 7):
            before = {k: home_slot(k, width) for k in keys}
            after = {k: home_slot(k, width + 1) for k in keys}
            moved = {k for k in keys if before[k] != after[k]}
            assert all(after[k] == width for k in moved)
            # Roughly 1/(width+1) of the keys move, never all of them.
            assert 0 < len(moved) < len(keys) // 2


class TestStickyPlacement:
    def test_same_grid_lands_on_same_workers(self):
        """Two sweeps of one grid on a width-4 pool place every dataset
        on the same slot *and the same worker process*."""
        with SweepExecutor(max_workers=WIDTH) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=LIMIT,
                              executor="process", pool=pool)
            second = run_suite(KERNELS, scale="smoke", limit=LIMIT,
                               executor="process", pool=pool)
            assert _placements(first) == _placements(second)
            assert _pids(first) == _pids(second)
            info = pool.info()
            assert info["sticky_shards"] + info["stolen_shards"] == info["shards"]

    def test_placement_metadata_shape(self):
        with SweepExecutor(max_workers=2) as pool:
            rows = run_suite(KERNELS, scale="smoke", limit=4,
                             executor="process", pool=pool)
            pids = pool.worker_pids()
            for row in rows:
                p = row.meta["placement"]
                assert set(p) == {"home", "slot", "mode", "pid"}
                assert p["mode"] in ("sticky", "stolen")
                assert 0 <= p["home"] < pool.width
                assert 0 <= p["slot"] < pool.width
                assert p["pid"] in pids
                if p["mode"] == "sticky":
                    assert p["slot"] == p["home"]

    def test_crash_remaps_only_the_dead_slots_keys(self):
        """After a forced worker crash, the respawned slot gets a new
        pid but every dataset keeps its slot -- and datasets homed on
        surviving slots keep their exact worker process."""
        from concurrent.futures.process import BrokenProcessPool

        with SweepExecutor(max_workers=WIDTH) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=LIMIT,
                              executor="process", pool=pool)
            slots_before = _placements(first)
            pids_before = _pids(first)
            # Kill the worker executing the first dataset's slot.
            victim = slots_before[first[0].dataset][1]
            with pytest.raises(BrokenProcessPool):
                pool._slots[victim].pool.submit(_kill_worker, 0).result()
            second = run_suite(KERNELS, scale="smoke", limit=LIMIT,
                               executor="process", pool=pool)
            assert _placements(second) == slots_before
            pids_after = _pids(second)
            for dataset, (_home, slot, _mode) in slots_before.items():
                if slot == victim:
                    assert pids_after[dataset] != pids_before[dataset]
                else:
                    assert pids_after[dataset] == pids_before[dataset]

    def test_results_match_serial_under_stealing(self):
        """Placement and stealing are invisible in the results."""
        def key(rows):
            return [(r.app, r.kernel, r.dataset, r.elapsed) for r in rows]

        serial = run_suite(KERNELS, scale="smoke", limit=LIMIT,
                           executor="serial")
        with SweepExecutor(max_workers=WIDTH) as pool:
            placed = run_suite(KERNELS, scale="smoke", limit=LIMIT,
                               executor="process", pool=pool)
        assert key(placed) == key(serial)
