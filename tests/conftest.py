"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import LaunchParams
from repro.gpusim.arch import TINY_GPU, V100
from repro.sparse.csr import CsrMatrix
from repro.sparse import generators as gen


class FakeCtx:
    """A minimal stand-in for ThreadCtx used by per-thread schedule tests."""

    def __init__(self, gtid: int, num_threads: int, block_dim: int = 8, warp_size: int = 4):
        self.global_thread_id = gtid
        self.num_threads = num_threads
        self.block_dim = block_dim
        self.thread_idx = gtid % block_dim
        self.lane_id = gtid % warp_size
        self.warp_size = warp_size


@pytest.fixture
def fake_ctx_factory():
    return FakeCtx


@pytest.fixture
def v100():
    return V100


@pytest.fixture
def tiny_gpu():
    return TINY_GPU


@pytest.fixture
def small_launch():
    return LaunchParams(grid_dim=4, block_dim=8)


@pytest.fixture
def skewed_matrix() -> CsrMatrix:
    """A small heavy-tailed matrix (the irregular benchmark shape)."""
    return gen.power_law(64, 64, 6.0, 1.8, seed=7)


@pytest.fixture
def uniform_matrix() -> CsrMatrix:
    return gen.uniform_random(64, 64, 4, seed=7)


@pytest.fixture
def empty_matrix() -> CsrMatrix:
    return CsrMatrix.empty((8, 8))


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def make_csr_from_counts(counts, cols=None, seed=0) -> CsrMatrix:
    """Build a CSR matrix with the given row lengths (test helper)."""
    counts = np.asarray(counts, dtype=np.int64)
    ncols = int(cols if cols is not None else max(1, counts.max() if counts.size else 1))
    rng = np.random.default_rng(seed)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    nnz = int(offsets[-1])
    col_indices = rng.integers(0, ncols, size=nnz, dtype=np.int64)
    values = rng.uniform(0.1, 1.0, size=nnz)
    return CsrMatrix.from_arrays(offsets, col_indices, values, (counts.size, ncols))


@pytest.fixture
def csr_from_counts():
    return make_csr_from_counts
