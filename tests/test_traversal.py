"""Tests for the frontier-traversal substrate."""

import numpy as np
import pytest

from repro.apps.traversal import advance_workspec, run_frontier_loop, traversal_costs
from repro.gpusim.arch import V100
from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import CsrGraph, random_graph


class TestAdvanceWorkspec:
    def test_frontier_tiles_and_atoms(self):
        g = random_graph(50, 4.0, seed=1)
        frontier = np.array([3, 10, 20], dtype=np.int64)
        work = advance_workspec(g, frontier)
        assert work.num_tiles == 3
        assert work.num_atoms == int(g.out_degrees()[frontier].sum())

    def test_empty_frontier(self):
        g = random_graph(10, 2.0, seed=2)
        work = advance_workspec(g, np.array([], dtype=np.int64))
        assert work.num_tiles == 0 and work.num_atoms == 0


class TestTraversalCosts:
    def test_atomic_charged(self):
        costs = traversal_costs(V100)
        assert costs.atom_atomic
        assert costs.atom_total(V100) > costs.atom_cycles

    def test_no_tile_reduction(self):
        assert not traversal_costs(V100).tile_reduction


class TestFrontierLoop:
    def test_visits_connected_component(self):
        g = random_graph(100, 4.0, seed=3)
        visited = np.zeros(100, dtype=bool)
        visited[0] = True

        def relax(frontier, srcs, dsts, wts):
            fresh = ~visited[dsts]
            visited[np.unique(dsts[fresh])] = True
            mask = np.zeros(100, dtype=bool)
            mask[np.unique(dsts[fresh])] = True
            return mask

        iters, stats = run_frontier_loop(g, 0, relax)
        # Matches a plain reachability computation.
        from repro.apps.bfs import bfs_reference

        expected = bfs_reference(g, 0) >= 0
        np.testing.assert_array_equal(visited, expected)
        assert stats.elapsed_ms > 0

    def test_one_launch_per_iteration(self):
        g = random_graph(80, 4.0, seed=4)

        def relax_once(frontier, srcs, dsts, wts):
            mask = np.zeros(80, dtype=bool)
            if len(frontier) == 1:  # expand only the first frontier
                mask[np.unique(dsts)] = True
            return mask

        iters, stats = run_frontier_loop(g, 0, relax_once)
        assert len(iters) == 2
        assert iters[0].frontier_size == 1
        assert iters[1].frontier_size >= 1
        assert stats.makespan_cycles > 2 * V100.costs.kernel_launch_cycles

    def test_max_iterations(self):
        g = random_graph(100, 5.0, seed=5)

        def relax_all(frontier, srcs, dsts, wts):
            mask = np.zeros(100, dtype=bool)
            mask[np.unique(dsts)] = True
            return mask  # never converges on its own

        iters, _ = run_frontier_loop(g, 0, relax_all, max_iterations=3)
        assert len(iters) == 3

    def test_isolated_source_single_iteration(self):
        csr = CsrMatrix.from_dense(np.zeros((4, 4)))
        g = CsrGraph(csr)
        iters, stats = run_frontier_loop(g, 2, lambda *a: np.zeros(4, dtype=bool))
        assert len(iters) <= 1
        assert stats.elapsed_ms > 0

    def test_bad_source(self):
        g = random_graph(5, 1.0, seed=6)
        with pytest.raises(ValueError, match="source"):
            run_frontier_loop(g, -1, lambda *a: np.zeros(5, dtype=bool))

    def test_schedule_names_respected(self):
        g = random_graph(60, 4.0, seed=7)

        def relax(frontier, srcs, dsts, wts):
            return np.zeros(60, dtype=bool)

        for sched in ("thread_mapped", "merge_path", "group_mapped"):
            iters, stats = run_frontier_loop(g, 0, relax, schedule=sched)
            assert iters[0].stats.extras["schedule"] == sched
