"""Signal-path shm cleanup for the persistent default executor.

atexit handlers never run when a process dies on an unhandled
SIGTERM/SIGINT, so before PR 8 a killed ``keep_pool`` sweep leaked its
named shared-memory segments (dataset bundles, shared-oracle payloads)
in ``/dev/shm`` until reboot.  These tests kill real child processes
and inspect the segment namespace from outside.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

needs_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a POSIX /dev/shm namespace"
)


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return env


# Runs a keep_pool sweep over the shm transport, reports which segments
# it published, then parks until signalled.
_SWEEPING_CHILD = r"""
import json, os, signal, sys
from repro.evaluation.harness import run_suite

before = set(os.listdir("/dev/shm"))
run_suite(["merge_path"], scale="smoke", limit=2, executor="process",
          keep_pool=True, transport="shm")
mine = sorted(set(os.listdir("/dev/shm")) - before)
print(json.dumps(mine), flush=True)
signal.pause()
"""


class TestSigtermCleanup:
    @needs_shm
    def test_sigterm_unlinks_shm_segments(self):
        proc = subprocess.Popen(
            [sys.executable, "-c", _SWEEPING_CHILD],
            stdout=subprocess.PIPE, env=_child_env(), text=True,
        )
        try:
            import json

            segments = json.loads(proc.stdout.readline())
            assert segments, "child published no shm segments"
            assert all(seg in os.listdir("/dev/shm") for seg in segments)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        # Killed *by the signal* (the default disposition was chained),
        # yet every segment was unlinked first.
        assert proc.returncode == -signal.SIGTERM
        leaked = [s for s in segments if s in os.listdir("/dev/shm")]
        assert not leaked, f"leaked shm segments: {leaked}"

    @needs_shm
    def test_sigint_cleanup_chains_to_keyboard_interrupt(self):
        # Python's own SIGINT handler must still fire after cleanup:
        # the child exits through KeyboardInterrupt, not by signal.
        child = r"""
import json, os, signal, sys
from repro.evaluation.harness import run_suite

before = set(os.listdir("/dev/shm"))
run_suite(["merge_path"], scale="smoke", limit=1, executor="process",
          keep_pool=True, transport="shm")
mine = sorted(set(os.listdir("/dev/shm")) - before)
try:
    # Announce only once the KeyboardInterrupt net is up, or the
    # parent's SIGINT can land between the print and the try.
    print(json.dumps(mine), flush=True)
    signal.pause()
except KeyboardInterrupt:
    print("interrupted", flush=True)
    sys.exit(42)
"""
        proc = subprocess.Popen(
            [sys.executable, "-c", child],
            stdout=subprocess.PIPE, env=_child_env(), text=True,
        )
        try:
            import json

            segments = json.loads(proc.stdout.readline())
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 42
        assert "interrupted" in out
        leaked = [s for s in segments if s in os.listdir("/dev/shm")]
        assert not leaked, f"leaked shm segments: {leaked}"

    def test_previous_handler_still_runs(self):
        # A host application's own SIGTERM handler chains after cleanup.
        child = r"""
import signal, sys
from repro.engine import install_signal_cleanup

def host_handler(signum, frame):
    print("host handler ran", flush=True)
    sys.exit(7)

signal.signal(signal.SIGTERM, host_handler)
assert install_signal_cleanup()
print("ready", flush=True)
signal.pause()
"""
        proc = subprocess.Popen(
            [sys.executable, "-c", child],
            stdout=subprocess.PIPE, env=_child_env(), text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 7
        assert "host handler ran" in out


class TestInstallSemantics:
    def test_install_from_worker_thread_is_refused(self):
        from repro.engine import worker_pool

        if worker_pool._SIGNALS_INSTALLED:
            pytest.skip("handlers already installed in this process")
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                worker_pool.install_signal_cleanup()
            )
        )
        thread.start()
        thread.join()
        assert results == [False]

    def test_install_is_idempotent_once_installed(self):
        child = r"""
from repro.engine import install_signal_cleanup
assert install_signal_cleanup()
assert install_signal_cleanup()
print("ok", flush=True)
"""
        out = subprocess.run(
            [sys.executable, "-c", child], capture_output=True,
            env=_child_env(), text=True, timeout=60,
        )
        assert out.returncode == 0
        assert "ok" in out.stdout
