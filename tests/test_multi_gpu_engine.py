"""Tests for the engine registry and the multi-GPU engine."""

import numpy as np
import pytest

from repro.core.schedule import make_schedule
from repro.core.work import WorkSpec
from repro.engine import (
    DEFAULT_SEED,
    Engine,
    EngineError,
    ExecutionContext,
    MultiGpuEngine,
    PlanCache,
    available_engines,
    get_engine,
    register_engine,
    run_app,
    get_app,
)
from repro.gpusim.arch import TINY_GPU, V100
from repro.sparse import generators as gen


class TestEngineRegistry:
    def test_builtins_registered(self):
        assert set(available_engines()) >= {"vector", "simt", "multi_gpu"}

    def test_get_engine_resolves_from_registry(self):
        assert get_engine("multi_gpu").name == "multi_gpu"
        assert get_engine("vector").name == "vector"

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine("vector", lambda: None)

    def test_options_forwarded_to_factory(self):
        eng = get_engine("multi_gpu", num_devices=5, partition="tiles")
        assert eng.num_devices == 5 and eng.partition == "tiles"

    def test_options_rejected_for_instances(self):
        with pytest.raises(ValueError, match="instance"):
            get_engine(get_engine("vector"), num_devices=2)

    def test_third_party_engine_reaches_every_app(self):
        """Registering an engine is all it takes to run any app on it."""

        class EchoEngine(Engine):
            name = "echo-test"

            def launch(self, sched, costs, *, compute=None, kernel=None,
                       extras=None, cache_key=None):
                out, stats = get_engine("vector").launch(
                    sched, costs, compute=compute, kernel=kernel,
                    extras=extras, cache_key=None,
                )
                return out, stats

        register_engine("echo-test", EchoEngine)
        try:
            assert "echo-test" in available_engines()
            m = gen.power_law(16, 16, 3.0, 1.8, seed=2)
            app = get_app("spmv")
            problem = app.sweep_problem(m, DEFAULT_SEED)
            r = run_app(app, problem, engine="echo-test", spec=TINY_GPU)
            assert app.match(r.output, app.oracle(problem))
        finally:
            from repro.engine import dispatch

            dispatch._ENGINE_REGISTRY.pop("echo-test", None)


class TestMultiGpuEngine:
    def _spmv_parts(self, n=512):
        m = gen.power_law(n, n, 8.0, 1.8, seed=3)
        app = get_app("spmv")
        problem = app.sweep_problem(m, DEFAULT_SEED)
        return app, problem

    def test_requires_compute(self):
        work = WorkSpec.from_counts([2, 3, 1])
        sched = make_schedule("thread_mapped", work, TINY_GPU)
        from repro.core.schedule import WorkCosts

        with pytest.raises(EngineError, match="compute"):
            MultiGpuEngine().launch(
                sched, WorkCosts(atom_cycles=1.0, tile_cycles=1.0), compute=None
            )

    def test_rejects_bad_device_count(self):
        with pytest.raises(ValueError, match="num_devices"):
            MultiGpuEngine(num_devices=0)

    def test_output_bit_for_bit_vs_single_gpu(self):
        app, problem = self._spmv_parts()
        single = run_app(app, problem, ctx=ExecutionContext(spec=V100))
        multi = run_app(app, problem, ctx=ExecutionContext(spec=V100, gpus=4))
        assert np.array_equal(single.output, multi.output)  # bit-for-bit

    def test_stats_report_devices_and_shards(self):
        app, problem = self._spmv_parts()
        r = run_app(app, problem, ctx=ExecutionContext(spec=V100, gpus=4))
        extras = r.stats.extras
        assert extras["engine"] == "multi_gpu"
        assert extras["num_devices"] == 4
        assert len(extras["shards"]) == 4
        assert sum(a for a, _ in extras["shards"]) == problem.matrix.nnz
        assert extras["device_imbalance"] >= 1.0
        assert extras["transfer_model"] == "flat"  # V100 has no link
        assert extras["transfer_ms"] > 0
        assert extras["gather_bytes"] == 0.0

    def test_linked_spec_prices_the_gather_through_the_engine(self):
        import dataclasses

        from repro.gpusim.arch import GpuLinkSpec

        app, problem = self._spmv_parts()
        linked = dataclasses.replace(V100, link=GpuLinkSpec())
        flat = run_app(app, problem, ctx=ExecutionContext(spec=V100, gpus=4))
        r = run_app(app, problem, ctx=ExecutionContext(spec=linked, gpus=4))
        assert r.stats.extras["transfer_model"] == "all_to_all"
        assert r.stats.extras["gather_bytes"] > 0
        # The link changes only the transfer term, never the output or
        # the per-device compute time.
        assert np.array_equal(r.output, flat.output)
        assert (
            r.elapsed_ms - r.stats.extras["transfer_ms"]
            == pytest.approx(flat.elapsed_ms - flat.stats.extras["transfer_ms"])
        )

    def test_large_workload_scales_down_elapsed(self):
        """With enough work, four devices beat one despite the overhead."""
        app, problem = self._spmv_parts(n=8192)
        single = run_app(app, problem, ctx=ExecutionContext(spec=TINY_GPU))
        multi = run_app(
            app, problem, ctx=ExecutionContext(spec=TINY_GPU, gpus=4)
        )
        assert multi.elapsed_ms < single.elapsed_ms

    def test_merge_path_partition_beats_tiles_under_skew(self):
        m = gen.power_law(4096, 4096, 8.0, 1.5, seed=7)
        app = get_app("spmv")
        problem = app.sweep_problem(m, DEFAULT_SEED)
        balanced = run_app(
            app, problem,
            ctx=ExecutionContext(spec=TINY_GPU, gpus=4, partition="merge_path",
                                 policy="thread_mapped"),
        )
        naive = run_app(
            app, problem,
            ctx=ExecutionContext(spec=TINY_GPU, gpus=4, partition="tiles",
                                 policy="thread_mapped"),
        )
        assert balanced.stats.extras["device_imbalance"] <= (
            naive.stats.extras["device_imbalance"] + 1e-9
        )

    def test_schedule_options_thread_through_to_shards(self):
        """Caller schedule options must shape the per-device re-planning
        (the ROADMAP follow-up: they used to be silently dropped)."""
        app, problem = self._spmv_parts()
        opts = {"group_size": 4}
        single = run_app(
            app, problem,
            ctx=ExecutionContext(spec=V100, policy="group_mapped",
                                 schedule_options=opts),
        )
        multi = run_app(
            app, problem,
            ctx=ExecutionContext(spec=V100, gpus=2, policy="group_mapped",
                                 schedule_options=opts),
        )
        # Parity: options-bearing multi-GPU output matches single-GPU.
        assert np.array_equal(single.output, multi.output)
        # And the options demonstrably reached the shard schedules: a
        # different group size prices the same shards differently.
        other = run_app(
            app, problem,
            ctx=ExecutionContext(spec=V100, gpus=2, policy="group_mapped",
                                 schedule_options={"group_size": 32}),
        )
        assert (multi.stats.extras["device_elapsed_ms"]
                != other.stats.extras["device_elapsed_ms"])

    def test_construction_options_recorded_by_make_schedule(self):
        work = WorkSpec.from_counts([4, 1, 7, 2])
        sched = make_schedule("group_mapped", work, TINY_GPU, group_size=4)
        assert sched.construction_options == {"group_size": 4}
        plain = make_schedule("merge_path", work, TINY_GPU)
        assert plain.construction_options == {}

    def test_plan_cache_used_for_shards(self):
        app, problem = self._spmv_parts()
        cache = PlanCache()
        eng = MultiGpuEngine(num_devices=2, plan_cache=cache)
        run_app(app, problem, engine=eng, spec=V100)
        misses_first = cache.misses
        assert misses_first >= 2  # one per non-empty shard
        run_app(app, problem, engine=eng, spec=V100)
        assert cache.misses == misses_first  # second run fully cached
        assert cache.hits >= 2


class TestMultiGpuSweeps:
    """Acceptance: multi-GPU sweeps of spmv and bfs match single-GPU
    outputs bit-for-bit (validation passes against the same oracles, and
    row elapsed times differ only through the ensemble timing)."""

    @pytest.mark.parametrize("app_name", ["spmv", "bfs"])
    def test_sweep_matches_single_gpu(self, app_name):
        from repro.evaluation.harness import run_suite

        kernels = ["merge_path", "group_mapped"]
        kwargs = dict(app=app_name, scale="smoke", limit=3, validate=True)
        single = run_suite(kernels, ctx=ExecutionContext(), **kwargs)
        multi = run_suite(kernels, ctx=ExecutionContext(gpus=2), **kwargs)
        # validate=True already checked outputs cell-by-cell against the
        # oracle (and the sampled audits); the rows must align too.
        assert [(r.dataset, r.kernel) for r in single] == [
            (r.dataset, r.kernel) for r in multi
        ]
        assert all(r.elapsed > 0 for r in multi)

    def test_multi_gpu_cells_report_engine(self):
        from repro.evaluation.harness import run_cell
        from repro.sparse.corpus import load_dataset

        ds = load_dataset("tiny_power_256", "smoke")
        row = run_cell(
            "spmv", "merge_path", ds, ctx=ExecutionContext(gpus=2)
        )
        assert row.meta["schedule"] == "merge_path"
        assert row.elapsed > 0
