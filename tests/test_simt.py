"""Tests for the SIMT interpreter (repro.gpusim.simt)."""

import numpy as np
import pytest

from repro.gpusim.arch import TINY_GPU
from repro.gpusim.cost_model import kernel_stats_from_thread_cycles
from repro.gpusim.simt import SimtError, launch_interpreted


class TestThreadIdentity:
    def test_global_ids_cover_launch(self):
        ids = []

        def kernel(ctx):
            ids.append(
                (ctx.block_idx, ctx.thread_idx, ctx.global_thread_id, ctx.lane_id)
            )

        launch_interpreted(kernel, 3, 8, (), TINY_GPU)
        gids = sorted(g for _, _, g, _ in ids)
        assert gids == list(range(24))
        for b, t, g, lane in ids:
            assert g == b * 8 + t
            assert lane == t % TINY_GPU.warp_size

    def test_warp_ids(self):
        seen = set()

        def kernel(ctx):
            seen.add((ctx.warp_id, ctx.global_warp_id))

        launch_interpreted(kernel, 2, 8, (), TINY_GPU)
        # 8 threads / warp_size 4 = 2 warps per block, 4 warps total.
        assert {w for w, _ in seen} == {0, 1}
        assert {g for _, g in seen} == {0, 1, 2, 3}

    def test_num_threads(self):
        def kernel(ctx, out):
            out.append(ctx.num_threads)

        out = []
        launch_interpreted(kernel, 2, 4, (out,), TINY_GPU)
        assert set(out) == {8}


class TestLaunchValidation:
    def test_rejects_zero_grid(self):
        with pytest.raises(ValueError):
            launch_interpreted(lambda ctx: None, 0, 8, (), TINY_GPU)

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError, match="exceeds"):
            launch_interpreted(lambda ctx: None, 1, 1024, (), TINY_GPU)


class TestChargeAndTiming:
    def test_lockstep_warp_max(self):
        # One slow lane per warp dominates that warp's time.
        def kernel(ctx):
            ctx.charge(100.0 if ctx.lane_id == 0 else 1.0)

        r = launch_interpreted(kernel, 1, 8, (), TINY_GPU)
        np.testing.assert_array_equal(r.warp_cycles, [100.0, 100.0])
        assert r.simt_efficiency == pytest.approx((100 + 3 * 1) * 2 / (200 * 4))

    def test_agrees_with_analytic_fold(self):
        def kernel(ctx):
            ctx.charge(float(ctx.global_thread_id % 5))

        r = launch_interpreted(kernel, 4, 8, (), TINY_GPU)
        s = kernel_stats_from_thread_cycles(r.thread_cycles, 4, 8, TINY_GPU)
        assert s.makespan_cycles == pytest.approx(r.makespan_cycles)
        assert s.elapsed_ms == pytest.approx(r.elapsed_ms)

    def test_elapsed_includes_launch_overhead(self):
        r = launch_interpreted(lambda ctx: None, 1, 4, (), TINY_GPU)
        assert r.makespan_cycles >= TINY_GPU.costs.kernel_launch_cycles


class TestAtomics:
    def test_atomic_add_counts_all_threads(self):
        counter = np.zeros(1)

        def kernel(ctx, c):
            ctx.atomic_add(c, 0, 1.0)

        launch_interpreted(kernel, 4, 8, (counter,), TINY_GPU)
        assert counter[0] == 32

    def test_atomic_min_max(self):
        lo = np.full(1, np.inf)
        hi = np.full(1, -np.inf)

        def kernel(ctx, lo, hi):
            ctx.atomic_min(lo, 0, float(ctx.global_thread_id))
            ctx.atomic_max(hi, 0, float(ctx.global_thread_id))

        launch_interpreted(kernel, 2, 8, (lo, hi), TINY_GPU)
        assert lo[0] == 0 and hi[0] == 15

    def test_atomic_returns_old_value(self):
        arr = np.array([5.0])
        olds = []

        def kernel(ctx, a):
            olds.append(ctx.atomic_add(a, 0, 1.0))

        launch_interpreted(kernel, 1, 4, (arr,), TINY_GPU)
        assert sorted(olds) == [5.0, 6.0, 7.0, 8.0]

    def test_atomic_cas(self):
        arr = np.array([0.0])
        winners = []

        def kernel(ctx, a):
            old = ctx.atomic_cas(a, 0, 0.0, ctx.global_thread_id + 1.0)
            if old == 0.0:
                winners.append(ctx.global_thread_id)

        launch_interpreted(kernel, 1, 8, (arr,), TINY_GPU)
        assert len(winners) == 1  # exactly one thread wins the CAS

    def test_atomics_charge_cycles(self):
        def kernel(ctx, a):
            ctx.atomic_add(a, 0, 1.0)

        r = launch_interpreted(kernel, 1, 4, (np.zeros(1),), TINY_GPU)
        assert np.all(r.thread_cycles == TINY_GPU.costs.atomic)


class TestBarriersAndShared:
    def test_shared_memory_visible_after_sync(self):
        out = np.zeros(8)

        def kernel(ctx, out):
            sm = ctx.shared("stage", (ctx.block_dim,), np.float64)
            sm[ctx.thread_idx] = ctx.thread_idx + 1.0
            yield ctx.sync()
            out[ctx.global_thread_id] = sm.sum()

        launch_interpreted(kernel, 1, 8, (out,), TINY_GPU)
        assert np.all(out == 36.0)

    def test_shared_memory_private_per_block(self):
        out = np.zeros(2)

        def kernel(ctx, out):
            sm = ctx.shared("acc", (1,), np.float64)
            sm[0] += 1.0
            yield ctx.sync()
            if ctx.thread_idx == 0:
                out[ctx.block_idx] = sm[0]

        launch_interpreted(kernel, 2, 4, (out,), TINY_GPU)
        assert np.all(out == 4.0)

    def test_multiple_barriers(self):
        trace = []

        def kernel(ctx):
            trace.append(("a", ctx.global_thread_id))
            yield ctx.sync()
            trace.append(("b", ctx.global_thread_id))
            yield ctx.sync()
            trace.append(("c", ctx.global_thread_id))

        launch_interpreted(kernel, 1, 4, (), TINY_GPU)
        phases = [p for p, _ in trace]
        # All "a" entries strictly before all "b", etc.
        assert phases == ["a"] * 4 + ["b"] * 4 + ["c"] * 4

    def test_divergent_barrier_detected(self):
        def kernel(ctx):
            if ctx.thread_idx == 0:
                return
            yield ctx.sync()

        with pytest.raises(SimtError, match="divergent barrier"):
            launch_interpreted(kernel, 1, 4, (), TINY_GPU)

    def test_bad_yield_token_detected(self):
        def kernel(ctx):
            yield "not-a-sync"

        with pytest.raises(SimtError, match="non-barrier"):
            launch_interpreted(kernel, 1, 4, (), TINY_GPU)

    def test_sync_charges_cycles(self):
        def kernel(ctx):
            yield ctx.sync()

        r = launch_interpreted(kernel, 1, 4, (), TINY_GPU)
        assert np.all(r.thread_cycles == TINY_GPU.costs.sync)
