"""Planner-view tests: the vectorized timing model of each schedule."""

import numpy as np
import pytest

from repro.apps.common import spmv_costs
from repro.core.schedule import (
    LaunchParams,
    WorkCosts,
    available_schedules,
    make_schedule,
)
from repro.core.work import WorkSpec
from repro.gpusim.arch import AMD_WARP64, TINY_GPU, V100

ALL = sorted(available_schedules())


def _work(counts):
    return WorkSpec.from_counts(counts)


class TestPlanShape:
    @pytest.mark.parametrize("name", ALL)
    def test_warp_cycles_shape_and_sign(self, name):
        work = _work([3, 9, 0, 2, 14, 1, 1, 5])
        sched = make_schedule(name, work, V100)
        wc = sched.warp_cycles(spmv_costs(V100))
        assert wc.shape == (
            sched.launch.grid_dim,
            sched.launch.block_dim // V100.warp_size,
        )
        assert np.all(wc >= 0)

    @pytest.mark.parametrize("name", ALL)
    def test_plan_returns_stats(self, name):
        work = _work([5] * 100)
        stats = make_schedule(name, work, V100).plan(spmv_costs(V100))
        assert stats.elapsed_ms > 0
        assert stats.extras["schedule"] == name
        assert 0 <= stats.simt_efficiency <= 1

    @pytest.mark.parametrize("name", ALL)
    def test_plan_on_amd_warp64(self, name):
        work = _work([7] * 64)
        stats = make_schedule(name, work, AMD_WARP64).plan(spmv_costs(AMD_WARP64))
        assert stats.elapsed_ms > 0


class TestScheduleBehaviour:
    def test_thread_mapped_suffers_under_skew(self):
        costs = spmv_costs(V100)
        uniform = _work([8] * 512)
        skewed = _work([1] * 511 + [8 * 512 - 511])
        t_uni = make_schedule("thread_mapped", uniform, V100).plan(costs).elapsed_ms
        t_skew = make_schedule("thread_mapped", skewed, V100).plan(costs).elapsed_ms
        assert t_skew > 2 * t_uni

    def test_merge_path_immune_to_skew(self):
        costs = spmv_costs(V100)
        uniform = _work([8] * 512)
        skewed = _work([1] * 511 + [8 * 512 - 511])
        t_uni = make_schedule("merge_path", uniform, V100).plan(costs).elapsed_ms
        t_skew = make_schedule("merge_path", skewed, V100).plan(costs).elapsed_ms
        assert t_skew <= 1.5 * t_uni

    def test_merge_path_beats_thread_mapped_on_skew(self):
        costs = spmv_costs(V100)
        skewed = _work(
            list(np.random.default_rng(0).zipf(1.8, 2000).clip(0, 2000))
        )
        t_thread = make_schedule("thread_mapped", skewed, V100).plan(costs).elapsed_ms
        t_merge = make_schedule("merge_path", skewed, V100).plan(costs).elapsed_ms
        assert t_merge < t_thread

    def test_group_mapped_beats_thread_mapped_on_small_uneven(self):
        costs = spmv_costs(V100)
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 30, size=400)
        t_thread = (
            make_schedule("thread_mapped", _work(counts), V100).plan(costs).elapsed_ms
        )
        t_group = (
            make_schedule("group_mapped", _work(counts), V100).plan(costs).elapsed_ms
        )
        assert t_group < t_thread

    def test_lrb_improves_on_warp_mapped_for_bimodal(self):
        costs = spmv_costs(V100)
        # Alternating tiny/huge rows: strided warp assignment mixes them
        # (bad); LRB's sort groups like sizes together (good).
        counts = [2, 400] * 256
        t_warp = make_schedule("warp_mapped", _work(counts), V100).plan(costs)
        t_lrb = make_schedule("lrb", _work(counts), V100).plan(costs)
        assert t_lrb.elapsed_ms <= t_warp.elapsed_ms

    def test_warp_block_are_group_mapped_specializations(self):
        # With group_size == warp size, group-mapped matches warp-mapped's
        # geometry (same number of groups).
        work = _work([5] * 1024)
        warp = make_schedule("warp_mapped", work, V100)
        group = make_schedule("group_mapped", work, V100, group_size=V100.warp_size)
        assert group.group_size == warp.group_size()


class TestGroupSize:
    def test_group_size_must_divide_block(self):
        work = _work([1] * 64)
        with pytest.raises(ValueError, match="divide"):
            make_schedule(
                "group_mapped", work, V100, LaunchParams(1, 256), group_size=48
            )

    def test_amd_one_constant_port(self):
        # Section 5.2.3: targeting warp-64 hardware is a group-size change.
        work = _work([9] * 256)
        sched = make_schedule(
            "group_mapped", work, AMD_WARP64, group_size=AMD_WARP64.warp_size
        )
        assert sched.group_size == 64
        stats = sched.plan(spmv_costs(AMD_WARP64))
        assert stats.elapsed_ms > 0

    @pytest.mark.parametrize("g", [8, 16, 32, 64, 128, 256])
    def test_group_size_sweep_all_valid(self, g):
        work = _work([6] * 512)
        sched = make_schedule(
            "group_mapped", work, V100, LaunchParams(16, 256), group_size=g
        )
        stats = sched.plan(spmv_costs(V100))
        assert stats.elapsed_ms > 0


class TestBandwidthFloor:
    def test_floor_binds_for_large_balanced_work(self):
        work = _work([32] * 20000)
        sched = make_schedule("merge_path", work, V100)
        costs = spmv_costs(V100)
        floor = sched.bandwidth_floor_cycles(costs)
        stats = sched.plan(costs)
        assert stats.makespan_cycles >= floor

    def test_floor_zero_without_bytes(self):
        work = _work([4] * 100)
        sched = make_schedule("merge_path", work, V100)
        costs = WorkCosts(atom_cycles=10.0, tile_cycles=1.0)
        assert sched.bandwidth_floor_cycles(costs) == 0.0

    def test_abstraction_tax_inflates_floor(self):
        work = _work([4] * 100)
        sched = make_schedule("merge_path", work, V100)
        costs = spmv_costs(V100)
        raw = (
            work.num_atoms * costs.atom_bytes + work.num_tiles * costs.tile_bytes
        ) / V100.dram_bytes_per_cycle
        assert sched.bandwidth_floor_cycles(costs) > raw


class TestSimtAgreement:
    """The per-thread (charged) path and the planner must agree for the
    schedule whose cost structure is exactly reproducible by charging:
    thread-mapped (pure per-lane sequential work)."""

    def test_thread_mapped_interpreted_matches_planner(self):
        from repro.gpusim.cost_model import kernel_stats_from_thread_cycles
        from repro.gpusim.simt import launch_interpreted

        work = _work([3, 9, 0, 2, 14, 1, 1, 5, 4, 4, 0, 7])
        launch = LaunchParams(2, 8)
        sched = make_schedule("thread_mapped", work, TINY_GPU, launch)
        costs = spmv_costs(TINY_GPU)
        atom_c = costs.atom_total(TINY_GPU) + sched.abstraction_tax
        tile_c = (
            costs.tile_cycles + TINY_GPU.costs.loop_overhead + sched.abstraction_tax
        )

        def kernel(ctx):
            for tile in sched.tiles(ctx):
                n = len(list(sched.atoms(ctx, tile)))
                ctx.charge(tile_c + n * atom_c)

        r = launch_interpreted(kernel, 2, 8, (), TINY_GPU)
        measured = kernel_stats_from_thread_cycles(r.thread_cycles, 2, 8, TINY_GPU)
        planned_wc = sched.warp_cycles(costs)
        np.testing.assert_allclose(
            np.sort(r.warp_cycles), np.sort(planned_wc.reshape(-1)), rtol=1e-9
        )
        assert measured.makespan_cycles == pytest.approx(
            make_schedule("thread_mapped", work, TINY_GPU, launch)
            .plan(WorkCosts(costs.atom_cycles, costs.tile_cycles, True, False))
            .makespan_cycles
        )
