"""Edge-case tests for the Section 6.2 schedule selector.

The selector was previously exercised only indirectly through sweeps;
these pin its behaviour on the degenerate inputs the corpus never
produces: empty matrices, single-column shapes, thresholds hit exactly,
and the all-empty-rows path through the CV statistics.
"""

import numpy as np

from repro.core.heuristic import DEFAULT_HEURISTIC, HeuristicParams, select_schedule
from repro.sparse.csr import CsrMatrix


def _matrix_from_counts(counts, num_cols):
    """Build a CSR with the given row lengths (columns cycle round-robin)."""
    counts = np.asarray(counts, dtype=np.int64)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    nnz = int(offsets[-1])
    cols = np.concatenate(
        [np.arange(c, dtype=np.int64) % max(1, num_cols) for c in counts]
    ) if nnz else np.zeros(0, dtype=np.int64)
    return CsrMatrix.from_arrays(
        offsets, cols, np.ones(nnz), (counts.size, num_cols), validate=False
    )


class TestEmptyAndDegenerate:
    def test_zero_by_zero_matrix(self):
        m = CsrMatrix.from_arrays(
            np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros(0), (0, 0), validate=False,
        )
        # Empty degree statistics must not divide by zero; the uniform
        # (zero-overhead) branch wins.
        assert select_schedule(m) == "thread_mapped"

    def test_all_empty_rows_cv_path(self):
        # mean = 0 exercises the guarded cv = std/mean computation.
        m = _matrix_from_counts([0] * 50, 50)
        stats = m.degree_stats()
        assert stats["mean"] == 0.0 and stats["cv"] == 0.0
        assert select_schedule(m) == "thread_mapped"

    def test_single_column_always_thread_mapped(self):
        # cols == 1: even a skewed degree profile stays thread-mapped
        # (the explicit `cols == 1` arm).
        m = _matrix_from_counts([1] * 9 + [300], 1)
        assert m.degree_stats()["cv"] > DEFAULT_HEURISTIC.uniform_cv_cutoff
        assert select_schedule(m) == "thread_mapped"


class TestThresholdBoundaries:
    def test_rows_exactly_at_alpha_is_large(self):
        # `rows < alpha` is strict: exactly-at-threshold counts as large.
        alpha = DEFAULT_HEURISTIC.alpha
        m = _matrix_from_counts([1] * alpha, alpha)
        assert select_schedule(m) == "merge_path"

    def test_rows_one_below_alpha_is_small(self):
        alpha = DEFAULT_HEURISTIC.alpha
        m = _matrix_from_counts([1] * (alpha - 1), alpha - 1)
        assert select_schedule(m) == "thread_mapped"

    def test_nnz_exactly_at_beta_is_large(self):
        # `nnz < beta` is strict too.
        params = HeuristicParams(alpha=500, beta=100)
        m = _matrix_from_counts([1] * 100, 100)  # small shape, nnz == beta
        assert select_schedule(m, params) == "merge_path"
        m_small = _matrix_from_counts([1] * 99, 99)  # nnz == beta - 1
        assert select_schedule(m_small, params) == "thread_mapped"

    def test_rectangular_small_side_triggers_small_branch(self):
        # `rows < alpha OR cols < alpha`: one small side is enough.
        m = _matrix_from_counts([1] * 10, 10**6)
        assert m.shape == (10, 10**6)
        assert select_schedule(m) == "thread_mapped"


class TestSmallMatrixDispatch:
    def test_uniform_tiny_rows_prefer_thread_mapped(self):
        m = _matrix_from_counts([2] * 64, 64)
        assert select_schedule(m) == "thread_mapped"

    def test_skewed_small_rows_prefer_group_mapped(self):
        # Mean under the cutoff but CV far above it.
        counts = [0] * 60 + [60]
        m = _matrix_from_counts(counts, 64)
        stats = m.degree_stats()
        assert stats["mean"] <= DEFAULT_HEURISTIC.uniform_mean_cutoff
        assert stats["cv"] > DEFAULT_HEURISTIC.uniform_cv_cutoff
        assert select_schedule(m) == "group_mapped"

    def test_dense_small_rows_prefer_group_mapped(self):
        # Mean above the cutoff alone routes away from thread-mapped.
        m = _matrix_from_counts([8] * 64, 64)
        assert select_schedule(m) == "group_mapped"

    def test_cutoff_boundaries_are_inclusive(self):
        # mean == uniform_mean_cutoff and cv == uniform_cv_cutoff (0 here)
        # stay on the thread-mapped side (`<=` comparisons).
        cutoff = int(DEFAULT_HEURISTIC.uniform_mean_cutoff)
        assert float(cutoff) == DEFAULT_HEURISTIC.uniform_mean_cutoff
        m = _matrix_from_counts([cutoff] * 32, 32)
        stats = m.degree_stats()
        assert stats["mean"] == DEFAULT_HEURISTIC.uniform_mean_cutoff
        assert stats["cv"] == 0.0
        assert select_schedule(m) == "thread_mapped"


class TestPolicyParity:
    def test_heuristic_policy_agrees_on_edge_cases(self):
        """The HeuristicPolicy wrapper must route through the same
        selector, including on degenerate inputs."""
        from repro.core.policy import HeuristicPolicy
        from repro.core.work import WorkSpec
        from repro.gpusim.arch import V100

        for counts, cols in ([0] * 50, 50), ([2] * 64, 64), ([8] * 64, 64):
            m = _matrix_from_counts(counts, cols)
            work = WorkSpec.from_csr(m)
            assert HeuristicPolicy().select(work, V100, matrix=m) == \
                select_schedule(m)
