"""Repo lints and the ``repro analyze`` CLI.

Two directions: the real repository must pass every lint (the merge
gate CI enforces), and a deliberately broken fixture tree must fail --
a lint that cannot fail is not guarding anything.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.analysis import available_lints, lint_descriptions, run_lints
from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


def write_fixture_tree(root, *, undocumented_env=True, rogue_site=True):
    """A minimal repo tree violating the lints on demand."""
    src = root / "src" / "pkg"
    src.mkdir(parents=True)
    env_line = (
        'timeout = os.environ.get("REPRO_FIXTURE_TIMEOUT", "1")\n'
        if undocumented_env
        else 'limit = os.environ.get("REPRO_FIXTURE_LIMIT", "1")\n'
    )
    site_line = (
        'inject("fixture.bogus_site")\n' if rogue_site else ""
    )
    (src / "mod.py").write_text(
        "import os\n"
        "from repro.faults import inject\n" + env_line + site_line
    )
    readme = "# fixture\n\n| Variable | Effect |\n| --- | --- |\n"
    if not undocumented_env:
        readme += "| `REPRO_FIXTURE_LIMIT` | documented. |\n"
    (root / "README.md").write_text(readme)
    (root / "tests").mkdir()
    (root / "tests" / "test_faults.py").write_text("# no sites exercised\n")
    return root


class TestLintRegistry:
    def test_available_lints(self):
        assert available_lints() == ("env-docs", "fault-sites", "kernel-parity")

    def test_descriptions_cover_every_lint(self):
        descriptions = lint_descriptions()
        assert set(descriptions) == set(available_lints())
        assert all(descriptions.values())

    def test_unknown_lint_raises(self):
        with pytest.raises(KeyError, match="env-docs"):
            run_lints(["no-such-lint"])


class TestRepoIsClean:
    def test_all_lints_pass_on_this_repository(self):
        findings = run_lints()
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: [{f.lint}] {f.message}" for f in findings
        )

    def test_results_are_memoized_content_keyed(self):
        first = run_lints()
        second = run_lints()
        assert first == second


class TestFixtureTreeFails:
    def test_undocumented_env_var_is_flagged(self, tmp_path):
        root = write_fixture_tree(tmp_path, undocumented_env=True,
                                  rogue_site=False)
        findings = run_lints(["env-docs"], root=root)
        assert len(findings) == 1
        assert findings[0].lint == "env-docs"
        assert "REPRO_FIXTURE_TIMEOUT" in findings[0].message

    def test_documented_env_var_passes(self, tmp_path):
        root = write_fixture_tree(tmp_path, undocumented_env=False,
                                  rogue_site=False)
        assert run_lints(["env-docs"], root=root) == []

    def test_unregistered_fault_site_is_flagged(self, tmp_path):
        root = write_fixture_tree(tmp_path, undocumented_env=False,
                                  rogue_site=True)
        findings = run_lints(["fault-sites"], root=root)
        assert len(findings) == 1
        assert "fixture.bogus_site" in findings[0].message
        assert "KNOWN_SITES" in findings[0].message

    def test_known_but_unexercised_site_is_flagged(self, tmp_path):
        root = write_fixture_tree(tmp_path, undocumented_env=False,
                                  rogue_site=False)
        (root / "src" / "pkg" / "used.py").write_text(
            'from repro.faults import inject\ninject("worker.batch")\n'
        )
        findings = run_lints(["fault-sites"], root=root)
        assert len(findings) == 1
        assert "never exercised" in findings[0].message

    def test_env_prefix_globs_are_skipped(self, tmp_path):
        root = write_fixture_tree(tmp_path, undocumented_env=False,
                                  rogue_site=False)
        (root / "src" / "pkg" / "globby.py").write_text(
            '# resets every REPRO_PROBLEM_CACHE_* override\n'
            'PREFIX = "REPRO_FIXTURE_"\n'
        )
        assert run_lints(["env-docs"], root=root) == []


class TestAnalyzeCli:
    def test_analyze_prints_matrix_and_exits_zero(self):
        code, out, _err = run_cli("analyze")
        assert code == 0
        assert "spmv/spmv" in out
        assert "SAFE" in out and "REDUCE" in out and "SCATTER" in out
        assert "pagerank/spmv*" in out  # delegation marker

    def test_strict_lint_passes_on_this_repository(self):
        code, out, _err = run_cli("analyze", "--lint", "--strict")
        assert code == 0
        assert "0 finding(s)" in out

    def test_strict_fails_on_broken_fixture(self, tmp_path):
        root = write_fixture_tree(tmp_path)
        code, _out, err = run_cli(
            "analyze", "--lint", "env-docs", "fault-sites", "--strict",
            "--root", str(root),
        )
        assert code == 1
        assert "REPRO_FIXTURE_TIMEOUT" in err
        assert "fixture.bogus_site" in err

    def test_probe_validates_safe_cells(self):
        code, out, _err = run_cli(
            "analyze", "--apps", "spmv", "--schedules", "thread_mapped",
            "dynamic_queue", "--probe", "--strict",
        )
        assert code == 0
        assert "2 SAFE, 0 violation(s)" in out

    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (["analyze", "--apps", "spvm"], "did you mean 'spmv'"),
            (["analyze", "--schedules", "merge_pth"], "did you mean"),
            (["analyze", "--lint", "env-doc"], "did you mean 'env-docs'"),
        ],
    )
    def test_unknown_names_exit_two_with_suggestion(self, argv, fragment):
        code, _out, err = run_cli(*argv)
        assert code == 2
        assert fragment in err

    def test_json_report_schema(self, tmp_path):
        report_path = tmp_path / "report.json"
        code, _out, _err = run_cli(
            "analyze", "--apps", "spmv", "--schedules", "thread_mapped",
            "--probe", "--lint", "--json", str(report_path),
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert set(report) == {"verdicts", "lints", "probe", "violations"}
        assert report["lints"] == []
        assert report["violations"] == []
        row = report["verdicts"]["rows"][0]
        assert row["app"] == "spmv"
        assert row["verdicts"]["thread_mapped"] == "SAFE"
        (entry,) = report["probe"]
        assert entry["overlaps"] == 0 and entry["verdict"] == "SAFE"
