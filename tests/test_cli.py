"""Tests for the artifact-style CLI (``python -m repro``)."""

import csv
import io
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cli import build_parser, main

CHESAPEAKE = Path(__file__).resolve().parent.parent / "datasets" / "chesapeake.mtx"


def run_cli(*argv: str) -> tuple[int, str]:
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = main(list(argv))
    return code, buf.getvalue()


class TestSpmvCommand:
    def test_dataset_run_validates(self):
        code, out = run_cli(
            "spmv", "--dataset", "tiny_diag_32", "--scale", "smoke", "--validate"
        )
        assert code == 0
        assert "Errors: 0" in out
        assert "Dimensions: 32 x 32 (32)" in out
        assert "Elapsed (ms):" in out

    def test_mtx_run_matches_artifact_output(self):
        # The paper's A.3.1 sanity check via the CLI.
        code, out = run_cli(
            "spmv", "-m", str(CHESAPEAKE), "--schedule", "merge_path", "--validate"
        )
        assert code == 0
        assert "Dimensions: 39 x 39 (340)" in out
        assert "Errors: 0" in out

    def test_heuristic_schedule(self):
        code, out = run_cli(
            "spmv", "--dataset", "tiny_uniform_64", "--scale", "smoke",
            "--schedule", "heuristic",
        )
        assert code == 0
        assert "Schedule: thread_mapped" in out

    def test_spec_selection(self):
        code, out = run_cli(
            "spmv", "--dataset", "tiny_diag_32", "--scale", "smoke",
            "--spec", "AMD-WARP64",
        )
        assert code == 0

    def test_requires_source(self):
        with pytest.raises(SystemExit):
            run_cli("spmv")


class TestSweepCommand:
    def test_stdout_csv(self):
        code, out = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke", "--limit", "3"
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(out)))
        assert len(rows) == 3
        assert rows[0]["kernel"] == "merge_path"

    def test_file_output(self, tmp_path):
        target = tmp_path / "sweep.csv"
        code, out = run_cli(
            "sweep", "--kernels", "cub", "cusparse", "--scale", "smoke",
            "--limit", "2", "-o", str(target),
        )
        assert code == 0
        assert "wrote 4 rows" in out
        assert target.exists()

    def test_non_spmv_app_adds_app_column(self):
        code, out = run_cli(
            "sweep", "--app", "histogram", "--kernels", "thread_mapped",
            "--scale", "smoke", "--limit", "2",
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(out)))
        assert len(rows) == 2
        assert rows[0]["app"] == "histogram"

    def test_plan_store_knob(self, tmp_path):
        store = tmp_path / "plans.journal"
        code, out = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "2", "--plan-store", str(store),
        )
        assert code == 0
        assert store.is_file()  # one journal, no plan-*.pkl directory
        assert not list(tmp_path.glob("plan-*.pkl"))

    def test_plan_store_and_cache_dir_conflict(self, tmp_path, capsys):
        code, _ = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "1", "--plan-store", str(tmp_path / "s"),
            "--plan-cache-dir", str(tmp_path / "d"),
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_keep_pool_requires_process_executor(self, capsys):
        code, _ = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "1", "--keep-pool",
        )
        assert code == 2
        assert "--executor process" in capsys.readouterr().err

    def test_transport_requires_process_executor(self, capsys):
        code, _ = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "1", "--transport", "shm",
        )
        assert code == 2
        assert "--executor process" in capsys.readouterr().err

    @pytest.mark.parametrize("transport", ["auto", "shm", "pickle"])
    def test_transport_round_trip(self, transport):
        code, out = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "2", "--executor", "process", "--workers", "2",
            "--transport", transport,
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(out)))
        assert len(rows) == 2

    def test_transport_invalid_value_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                "sweep", "--kernels", "merge_path", "--scale", "smoke",
                "--limit", "1", "--executor", "process",
                "--transport", "telepathy",
            )
        assert excinfo.value.code == 2  # argparse choices rejection

    def test_keep_pool_sweep(self):
        from repro.engine import shutdown_default_executor

        try:
            code, out = run_cli(
                "sweep", "--kernels", "merge_path", "--scale", "smoke",
                "--limit", "2", "--executor", "process", "--workers", "2",
                "--keep-pool",
            )
            assert code == 0
            assert len(out.strip().splitlines()) == 3  # header + 2 rows
        finally:
            shutdown_default_executor()

    def test_parallel_workers(self):
        code, out = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "3", "--workers", "3",
        )
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(out)))
        assert len(rows) == 3


class TestInfoCommands:
    def test_datasets_listing(self):
        code, out = run_cli("datasets", "--scale", "smoke")
        assert code == 0
        assert "power_a19" in out
        assert "spvec_2k" in out

    def test_table1(self):
        code, out = run_cli("table1")
        assert code == 0
        assert "merge_path" in out
        assert "503" in out  # paper's CUB number

    def test_schedules(self):
        code, out = run_cli("schedules")
        assert code == 0
        listed = out.split()
        assert "merge_path" in listed
        assert "dynamic_queue" in listed

    def test_apps_listing(self):
        code, out = run_cli("apps")
        assert code == 0
        for name in ("spmv", "bfs", "spgemm", "histogram"):
            assert name in out


class TestPlansCommand:
    @pytest.fixture
    def journal(self, tmp_path):
        from repro.engine import PlanStore

        path = tmp_path / "plans.journal"
        store = PlanStore(path)
        for v in range(5):
            store.put(("hot",), v)  # 4 dead records
        store.put(("cold",), 0)
        store.close()
        return path

    def test_info_reports_live_and_dead(self, journal):
        code, out = run_cli("plans", str(journal))
        assert code == 0
        assert "2 live, 4 dead" in out
        assert str(journal) in out
        assert "scan damage:  no" in out

    def test_compact_drops_dead_records(self, journal):
        size_before = journal.stat().st_size
        code, out = run_cli("plans", "compact", str(journal))
        assert code == 0
        assert "dropped 4 dead records" in out
        assert journal.stat().st_size < size_before
        code, out = run_cli("plans", str(journal))
        assert code == 0
        assert "2 live, 0 dead" in out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        code, _ = run_cli("plans", str(tmp_path / "nope.journal"))
        assert code == 2
        assert "no plan store" in capsys.readouterr().err

    def test_directory_exits_2(self, tmp_path, capsys):
        code, _ = run_cli("plans", str(tmp_path))
        assert code == 2
        assert "directory" in capsys.readouterr().err

    def test_foreign_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "notes.txt"
        path.write_bytes(b"not a journal at all")
        code, _ = run_cli("plans", str(path))
        assert code == 2
        assert "bad header" in capsys.readouterr().err

    def test_compact_missing_path_exits_2(self, tmp_path, capsys):
        code, _ = run_cli("plans", "compact", str(tmp_path / "nope"))
        assert code == 2

    def test_too_many_arguments_exits_2(self, journal, capsys):
        code, _ = run_cli("plans", str(journal), "extra")
        assert code == 2
        assert "usage" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401


class TestRowsJsonl:
    def test_rows_jsonl_matches_service_schema(self, tmp_path):
        import json

        from repro.service.protocol import row_from_wire
        from repro.evaluation.harness import run_suite

        out_path = tmp_path / "rows.jsonl"
        code, _ = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "2", "--rows-jsonl", str(out_path),
            "-o", str(tmp_path / "rows.csv"),
        )
        assert code == 0
        lines = out_path.read_text().splitlines()
        rows = [row_from_wire(json.loads(line)) for line in lines]
        direct = run_suite(["merge_path"], scale="smoke", limit=2,
                           executor="serial")
        assert rows == direct
        # meta rides along even though equality ignores it
        assert all(json.loads(line)["meta"] for line in lines)

    def test_unwritable_rows_jsonl_exits_2(self, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "rows.jsonl"
        code, _ = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "1", "--rows-jsonl", str(target),
        )
        assert code == 2
        assert "rows-jsonl" in capsys.readouterr().err

    def test_directory_rows_jsonl_exits_2(self, tmp_path, capsys):
        code, _ = run_cli(
            "sweep", "--kernels", "merge_path", "--scale", "smoke",
            "--limit", "1", "--rows-jsonl", str(tmp_path),
        )
        assert code == 2


class TestServeSubmitCommands:
    """serve/submit validation paths; the live round trip is covered by
    tests/test_service.py (including the SIGTERM subprocess test)."""

    def test_submit_unknown_kernel_exits_2(self, capsys):
        code, _ = run_cli("submit", "--kernels", "merge_psth")
        assert code == 2
        assert "did you mean" in capsys.readouterr().err

    def test_submit_unknown_engine_exits_2(self, capsys):
        code, _ = run_cli("submit", "--kernels", "merge_path",
                          "--engine", "warp_drive")
        assert code == 2

    def test_submit_no_server_exits_1(self, capsys):
        # Nothing listens on this port: a connection failure is a
        # runtime failure (1), not a usage error.
        code, _ = run_cli("submit", "--port", "1", "--kernels", "merge_path")
        assert code == 1
        assert "submit failed" in capsys.readouterr().err

    def test_submit_queue_full_exits_3(self, capsys):
        import threading

        from repro.service import SweepService

        svc = SweepService(width=0, queue_depth=1)
        gate = threading.Event()
        orig = svc._execute_unit

        def gated(job, dataset):
            gate.wait(timeout=60)
            return orig(job, dataset)

        svc._execute_unit = gated
        svc.start_background()
        host, port = svc.wait_ready()
        try:
            from repro.service import SweepClient

            with SweepClient(host, port, timeout=60) as occupier:
                occupier.submit({"app": "spmv", "kernels": ["merge_path"],
                                 "scale": "smoke", "limit": 1})
                code, _ = run_cli(
                    "submit", "--host", host, "--port", str(port),
                    "--kernels", "merge_path", "--scale", "smoke",
                    "--limit", "1",
                )
        finally:
            gate.set()
            svc.request_drain()
            svc.join()
        assert code == 3
        assert "queue_full" in capsys.readouterr().err

    def test_serve_negative_width_exits_2(self, capsys):
        code, _ = run_cli("serve", "--width", "-2")
        assert code == 2
        assert "width" in capsys.readouterr().err

    def test_serve_bad_width_env_exits_2(self, capsys, monkeypatch):
        from repro.service.server import SERVE_WIDTH_ENV

        monkeypatch.setenv(SERVE_WIDTH_ENV, "lots")
        code, _ = run_cli("serve", "--port", "0")
        assert code == 2
