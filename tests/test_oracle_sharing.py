"""Tests for cross-worker oracle/problem payload sharing over shm.

The contract: the first worker to build an oracle publishes it to
shared memory once; every other worker (an evicted cache, a respawned
slot) *attaches* the published copy instead of rebuilding (status
``"attach"``), the parent's directory honours its byte budget with
pin-aware LRU eviction and unlinks every block at shutdown, and all of
it is best-effort -- any failure degrades to a local rebuild, never a
wrong result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SweepExecutor
from repro.engine.worker_pool import (
    _PAYLOAD_ATTACHMENTS,
    SharedPayloadHandle,
    _unlink_block,
    attach_payload,
    detach,
    publish_payload,
)
from repro.evaluation.harness import run_suite

KERNELS = ["merge_path"]


def _kill_worker(_):
    import os

    os._exit(1)


def _statuses(rows):
    return [r.meta["problem_cache"] for r in rows]


def _key(rows):
    return [(r.app, r.kernel, r.dataset, r.rows, r.cols, r.nnzs, r.elapsed)
            for r in rows]


def _drop_attachment(handle: SharedPayloadHandle) -> None:
    """Release this process's cached mapping so unlink can reclaim it."""
    cached = _PAYLOAD_ATTACHMENTS.pop(handle.shm_name, None)
    if cached is not None:
        shm, _payload = cached
        detach(shm)


class TestPayloadTransport:
    def test_dense_array_round_trip(self):
        payload = np.linspace(0.0, 1.0, 257)
        handle = publish_payload(payload)
        assert handle is not None
        try:
            assert handle.codec != "pickle"  # the dense codec claimed it
            clone = attach_payload(handle)
            np.testing.assert_array_equal(clone, payload)
            # Re-attaching in the same process serves the cached mapping.
            assert attach_payload(handle) is clone
        finally:
            _drop_attachment(handle)
            _unlink_block(handle.shm_name)

    def test_pickle_fallback_round_trip(self):
        payload = {"distances": [0, 1, 3], "source": 0}
        handle = publish_payload(payload)
        assert handle is not None
        try:
            assert handle.codec == "pickle"
            assert attach_payload(handle) == payload
        finally:
            _unlink_block(handle.shm_name)

    def test_attach_vanished_block_returns_none(self):
        handle = publish_payload({"x": 1})
        assert handle is not None
        _unlink_block(handle.shm_name)
        assert attach_payload(handle) is None

    def test_unpublishable_payload_returns_none(self):
        import threading

        assert publish_payload(threading.Lock()) is None  # unpicklable

    def test_unknown_codec_returns_none(self):
        handle = publish_payload({"x": 1})
        assert handle is not None
        try:
            from dataclasses import replace

            bogus = replace(handle, codec="no-such-codec")
            assert attach_payload(bogus) is None
        finally:
            _unlink_block(handle.shm_name)


class TestSharedOracleSweeps:
    def test_evicted_entries_attach_instead_of_rebuilding(self, monkeypatch):
        """With a one-entry local cache, the second sweep misses locally
        on every dataset -- but attaches the published oracles instead
        of rebuilding them."""
        from repro.engine.worker_pool import PROBLEM_CACHE_ENTRIES_ENV

        monkeypatch.setenv(PROBLEM_CACHE_ENTRIES_ENV, "1")
        with SweepExecutor(max_workers=1) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=3,
                              executor="process", pool=pool)
            second = run_suite(KERNELS, scale="smoke", limit=3,
                               executor="process", pool=pool)
            assert all(s == "miss" for s in _statuses(first))
            assert all(s == "attach" for s in _statuses(second))
            assert _key(first) == _key(second)
            info = pool.info()
            assert info["oracle_published"] == 3
            assert info["oracle_reused"] >= 3

    def test_respawned_worker_attaches_after_crash(self):
        """A fresh worker (empty local cache) re-attaches every oracle
        the dead worker published, rather than rebuilding."""
        from concurrent.futures.process import BrokenProcessPool

        with SweepExecutor(max_workers=1) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=3,
                              executor="process", pool=pool)
            with pytest.raises(BrokenProcessPool):
                pool._slots[0].pool.submit(_kill_worker, 0).result()
            second = run_suite(KERNELS, scale="smoke", limit=3,
                               executor="process", pool=pool)
            assert all(s == "miss" for s in _statuses(first))
            assert all(s == "attach" for s in _statuses(second))
            assert _key(first) == _key(second)

    def test_publish_and_attach_counters_in_row_meta(self):
        from concurrent.futures.process import BrokenProcessPool

        with SweepExecutor(max_workers=1) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=2,
                              executor="process", pool=pool)
            assert first[-1].meta["problem_cache_publishes"] == 2
            assert first[-1].meta["problem_cache_attaches"] == 0
            with pytest.raises(BrokenProcessPool):
                pool._slots[0].pool.submit(_kill_worker, 0).result()
            second = run_suite(KERNELS, scale="smoke", limit=2,
                               executor="process", pool=pool)
            assert second[-1].meta["problem_cache_attaches"] == 2

    def test_zero_budget_disables_sharing(self):
        from concurrent.futures.process import BrokenProcessPool

        with SweepExecutor(max_workers=1, oracle_cache_bytes=0) as pool:
            run_suite(KERNELS, scale="smoke", limit=2,
                      executor="process", pool=pool)
            with pytest.raises(BrokenProcessPool):
                pool._slots[0].pool.submit(_kill_worker, 0).result()
            second = run_suite(KERNELS, scale="smoke", limit=2,
                               executor="process", pool=pool)
            assert all(s == "miss" for s in _statuses(second))
            info = pool.info()
            assert info["oracle_published"] == 0
            assert info["oracle_reused"] == 0

    def test_tiny_budget_evicts_cold_blocks(self):
        """A positive-but-tiny budget keeps sharing on, then evicts
        every adopted block as soon as its pins release."""
        with SweepExecutor(max_workers=1, oracle_cache_bytes=1) as pool:
            run_suite(KERNELS, scale="smoke", limit=3,
                      executor="process", pool=pool)
            info = pool.info()
            assert info["oracle_published"] == 3
            assert info["oracle_evicted"] == 3
            assert info["oracle_cached"] == 0

    def test_shutdown_unlinks_published_blocks(self):
        with SweepExecutor(max_workers=1) as pool:
            run_suite(KERNELS, scale="smoke", limit=2,
                      executor="process", pool=pool)
            handles = [
                record.handle for record in pool._shared_oracles.values()
            ]
            assert handles
        for handle in handles:
            assert attach_payload(handle) is None

    def test_env_budget_knob(self, monkeypatch):
        from repro.engine.worker_pool import SHARED_ORACLE_BYTES_ENV

        monkeypatch.setenv(SHARED_ORACLE_BYTES_ENV, "12345")
        assert SweepExecutor().oracle_cache_bytes == 12345
        monkeypatch.setenv(SHARED_ORACLE_BYTES_ENV, "not-a-number")
        with pytest.warns(RuntimeWarning, match="REPRO_SHARED_ORACLE_BYTES"):
            pool = SweepExecutor()
        assert pool.oracle_cache_bytes == SweepExecutor.DEFAULT_ORACLE_CACHE_BYTES
