"""Tests for the worker-resident problem/oracle cache.

The contract: steady-state sweeps of the same grid on a warm
(pid-stable) pool serve every shard's problem *and* oracle from the
bounded :class:`~repro.engine.worker_pool.ProblemCache` instead of
rebuilding them; the cache invalidates on seed and ``validate`` changes,
honours explicit entry/byte budgets with LRU eviction, and surfaces
hit/miss outcomes through ``SweepRow.meta``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SweepExecutor
from repro.engine.worker_pool import (
    PROBLEM_CACHE_BYTES_ENV,
    PROBLEM_CACHE_ENTRIES_ENV,
    ProblemCache,
    clear_problem_cache,
    problem_cache,
)
from repro.evaluation.harness import _ShardTask, _run_shard, run_suite
from repro.sparse.corpus import load_dataset

KERNELS = ["merge_path", "thread_mapped"]


def _key(rows):
    return [(r.app, r.kernel, r.dataset, r.rows, r.cols, r.nnzs, r.elapsed)
            for r in rows]


def _statuses(rows):
    return [r.meta["problem_cache"] for r in rows]


class TestProblemCacheUnit:
    def test_lru_entry_budget(self):
        cache = ProblemCache(max_entries=2, max_bytes=10**9)
        cache.store(("a",), np.zeros(4), None)
        cache.store(("b",), np.zeros(4), None)
        assert cache.lookup(("a",)) is not None  # refresh a
        cache.store(("c",), np.zeros(4), None)  # evicts b, the LRU entry
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is not None
        assert cache.lookup(("c",)) is not None
        assert cache.evictions == 1

    def test_byte_budget_evicts(self):
        one_kb = np.zeros(128)  # 1024 bytes of float64
        cache = ProblemCache(max_entries=100, max_bytes=2 * one_kb.nbytes)
        cache.store(("a",), one_kb, None)
        cache.store(("b",), one_kb.copy(), None)
        assert cache.info()["entries"] == 2
        cache.store(("c",), one_kb.copy(), None)
        info = cache.info()
        assert info["entries"] == 2 and info["bytes"] <= cache.max_bytes
        assert cache.lookup(("a",)) is None  # oldest went first

    def test_oversized_entry_never_cached(self):
        cache = ProblemCache(max_entries=8, max_bytes=64)
        cache.store(("big",), np.zeros(1000), None)
        assert cache.info()["entries"] == 0
        assert cache.lookup(("big",)) is None

    def test_restore_replaces_in_place(self):
        cache = ProblemCache(max_entries=4, max_bytes=10**9)
        cache.store(("a",), np.zeros(4), None)
        cache.store(("a",), np.zeros(8), "oracle")
        assert cache.info()["entries"] == 1
        problem, expected = cache.lookup(("a",))
        assert problem.size == 8 and expected == "oracle"

    def test_byte_estimate_walks_problem_payloads(self):
        from repro.engine.worker_pool import _payload_nbytes

        ds = load_dataset("tiny_power_256", "smoke")
        from repro.engine import get_app

        problem = get_app("spmv").sweep_problem(ds.matrix, 0)
        nbytes = _payload_nbytes(problem)
        # At least the matrix arrays and the x vector are counted.
        assert nbytes >= ds.matrix.nbytes + problem.x.nbytes

    def test_env_budgets(self, monkeypatch):
        monkeypatch.setenv(PROBLEM_CACHE_ENTRIES_ENV, "3")
        monkeypatch.setenv(PROBLEM_CACHE_BYTES_ENV, "12345")
        cache = ProblemCache.from_env()
        assert cache.max_entries == 3 and cache.max_bytes == 12345

    def test_malformed_env_budget_warns_and_uses_default(self, monkeypatch):
        """A tuning typo degrades to the default budget instead of
        crashing every sweep shard."""
        monkeypatch.setenv(PROBLEM_CACHE_ENTRIES_ENV, "64MB")
        monkeypatch.setenv(PROBLEM_CACHE_BYTES_ENV, "1e9")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            cache = ProblemCache.from_env()
        assert cache.max_entries == ProblemCache.DEFAULT_MAX_ENTRIES
        assert cache.max_bytes == ProblemCache.DEFAULT_MAX_BYTES

    def test_process_singleton(self):
        clear_problem_cache()
        try:
            assert problem_cache() is problem_cache()
        finally:
            clear_problem_cache()


class TestShardCacheKey:
    """_run_shard-level semantics, exercised in-process for determinism."""

    def _task(self, **overrides):
        defaults = dict(
            app="spmv",
            kernels=("merge_path",),
            dataset=load_dataset("tiny_power_256", "smoke"),
            seed=0,
            validate=True,
        )
        defaults.update(overrides)
        return _ShardTask(**defaults)

    def test_hit_on_identical_shard(self):
        clear_problem_cache()
        try:
            first = _run_shard(self._task())
            second = _run_shard(self._task())
            assert _statuses(first) == ["miss"]
            assert _statuses(second) == ["hit"]
            assert _key(first) == _key(second)
        finally:
            clear_problem_cache()

    def test_seed_change_invalidates(self):
        clear_problem_cache()
        try:
            _run_shard(self._task(seed=1))
            rows = _run_shard(self._task(seed=2))
            assert _statuses(rows) == ["miss"]
        finally:
            clear_problem_cache()

    def test_validate_change_invalidates(self):
        """A validate=False entry has no oracle; flipping validate must
        rebuild instead of serving the oracle-less entry."""
        clear_problem_cache()
        try:
            _run_shard(self._task(validate=False))
            rows = _run_shard(self._task(validate=True))
            assert _statuses(rows) == ["miss"]
            # And the validated rows really were validated (would raise).
            assert rows[0].elapsed > 0
        finally:
            clear_problem_cache()

    def test_app_is_part_of_the_key(self):
        clear_problem_cache()
        try:
            _run_shard(self._task())
            rows = _run_shard(self._task(app="histogram",
                                         kernels=("thread_mapped",)))
            assert _statuses(rows) == ["miss"]
        finally:
            clear_problem_cache()

    def test_unfingerprintable_payload_bypasses_the_cache(self, monkeypatch):
        """A payload no codec claims has no content key: the shard runs
        uncached (status 'off') instead of risking a stale identity key."""
        from collections import OrderedDict

        from repro.engine import worker_pool

        monkeypatch.setattr(worker_pool, "_SHM_CODECS", OrderedDict())
        clear_problem_cache()
        try:
            rows = _run_shard(self._task())
            assert _statuses(rows) == ["off"]
            again = _run_shard(self._task())
            assert _statuses(again) == ["off"]
        finally:
            clear_problem_cache()

    def test_counters_surface_in_meta(self):
        clear_problem_cache()
        try:
            _run_shard(self._task())
            rows = _run_shard(self._task())
            meta = rows[0].meta
            assert meta["problem_cache"] == "hit"
            assert meta["problem_cache_hits"] >= 1
            assert meta["problem_cache_misses"] >= 1
        finally:
            clear_problem_cache()


class TestSteadyStateSweeps:
    @pytest.fixture(autouse=True)
    def _cold_parent_cache(self):
        # Workers fork from this process: an entry left behind by an
        # earlier in-process _run_shard test would be inherited and turn
        # the "first sweep misses" assertions order-dependent.
        clear_problem_cache()
        yield
        clear_problem_cache()

    def test_hit_across_sweeps_on_pid_stable_pool(self):
        """The tentpole: a second sweep on the same warm single-worker
        pool rebuilds no problem and no oracle."""
        with SweepExecutor(max_workers=1) as pool:
            first = run_suite(KERNELS, scale="smoke", limit=4,
                              executor="process", pool=pool)
            pids = pool.worker_pids()
            second = run_suite(KERNELS, scale="smoke", limit=4,
                               executor="process", pool=pool)
            assert pool.worker_pids() == pids  # pid-stable: same worker
            assert _key(first) == _key(second)
            assert all(s == "miss" for s in _statuses(first))
            assert all(s == "hit" for s in _statuses(second))
            hits = second[-1].meta["problem_cache_hits"]
            assert hits >= 4  # one per dataset shard

    def test_hits_across_transports(self):
        """The shm publish fingerprint and the pickle-side fingerprint
        are the same content key: switching transport between sweeps
        still hits."""
        with SweepExecutor(max_workers=1) as pool:
            run_suite(["merge_path"], scale="smoke", limit=3,
                      executor="process", pool=pool, transport="shm")
            rows = run_suite(["merge_path"], scale="smoke", limit=3,
                             executor="process", pool=pool, transport="pickle")
            assert all(s == "hit" for s in _statuses(rows))

    def test_seed_change_misses_on_warm_pool(self):
        with SweepExecutor(max_workers=1) as pool:
            run_suite(["merge_path"], scale="smoke", limit=3,
                      executor="process", pool=pool, seed=7)
            rows = run_suite(["merge_path"], scale="smoke", limit=3,
                             executor="process", pool=pool, seed=8)
            assert all(s == "miss" for s in _statuses(rows))

    def test_eviction_under_tiny_budget(self, monkeypatch):
        """With room for one entry, alternating datasets evict each other
        and steady state never materializes -- the budget is honoured.

        Oracle sharing is disabled (``oracle_cache_bytes=0``) so the
        evicted entries really are rebuilt, not re-attached from shm."""
        monkeypatch.setenv(PROBLEM_CACHE_ENTRIES_ENV, "1")
        with SweepExecutor(max_workers=1, oracle_cache_bytes=0) as pool:
            first = run_suite(["merge_path"], scale="smoke", limit=3,
                              executor="process", pool=pool)
            second = run_suite(["merge_path"], scale="smoke", limit=3,
                               executor="process", pool=pool)
        assert all(s == "miss" for s in _statuses(first))
        # Datasets run in order within the single batch, so every lookup
        # finds the previous dataset's entry instead of its own.
        assert all(s == "miss" for s in _statuses(second))
        assert _key(first) == _key(second)
