"""Tests for the figure regeneration pipelines (Figures 2-4)."""

import pytest

from repro.evaluation.figures import (
    FIG3_SCHEDULES,
    fig2_overhead,
    fig3_landscape,
    fig4_heuristic,
)
from repro.evaluation.harness import run_spmv_suite
from repro.sparse.corpus import corpus_names


@pytest.fixture(scope="module")
def all_rows():
    """One harness sweep shared by every figure test (smoke scale)."""
    kernels = ["merge_path", "thread_mapped", "group_mapped", "heuristic",
               "cub", "cusparse"]
    return run_spmv_suite(kernels, scale="smoke")


class TestFig2:
    def test_full_corpus_covered(self, all_rows):
        r = fig2_overhead(rows=all_rows)
        assert set(r.slowdowns) == set(corpus_names())

    def test_overhead_is_minimal(self, all_rows):
        # Paper: geomean slowdown 2.5%.  The model must stay in the same
        # "minimal overhead" regime: under 10%.
        r = fig2_overhead(rows=all_rows)
        assert 0.95 <= r.geomean_slowdown <= 1.10

    def test_most_datasets_within_90pct(self, all_rows):
        # Paper: 92% of datasets at >= 90% of CUB's performance.
        r = fig2_overhead(rows=all_rows)
        assert r.frac_within_90pct >= 0.85

    def test_worst_slowdowns_are_single_column(self, all_rows):
        # Paper: CUB's wins come from its sparse-vector special case.
        r = fig2_overhead(rows=all_rows)
        worst = max(r.slowdowns, key=r.slowdowns.get)
        assert worst.startswith("spvec")

    def test_series_shapes(self, all_rows):
        r = fig2_overhead(rows=all_rows)
        assert set(r.series) == {"merge-path", "cub"}
        n = len(corpus_names())
        assert len(r.series["cub"].nnzs) == n
        assert all(v > 0 for v in r.series["cub"].values)


class TestFig3:
    def test_every_series_present(self, all_rows):
        r = fig3_landscape(rows=all_rows)
        assert set(r.series) == set(FIG3_SCHEDULES) | {"cusparse"}

    def test_some_framework_schedule_wins_almost_everywhere(self, all_rows):
        r = fig3_landscape(rows=all_rows)
        assert r.frac_some_schedule_wins >= 0.9

    def test_different_schedules_win_different_regimes(self, all_rows):
        # The figure's core message: no single schedule dominates.
        r = fig3_landscape(rows=all_rows)
        assert len(set(r.best_schedule.values())) >= 2

    def test_merge_path_best_on_outliers(self, all_rows):
        r = fig3_landscape(rows=all_rows)
        assert r.best_schedule["outlier_few"] == "merge_path"
        assert r.best_schedule["outlier_extreme"] == "merge_path"


class TestFig4:
    def test_geomean_speedup_in_paper_band(self, all_rows):
        # Paper: 2.7x geomean.  Accept the same "clear win" band.
        r = fig4_heuristic(rows=all_rows)
        assert 1.5 <= r.geomean_speedup <= 6.0

    def test_peak_speedup_large(self, all_rows):
        # Paper: peak 39x.  The peak must be an order of magnitude.
        r = fig4_heuristic(rows=all_rows)
        assert r.peak_speedup >= 10.0

    def test_peak_comes_from_skewed_family(self, all_rows):
        r = fig4_heuristic(rows=all_rows)
        assert r.peak_dataset.startswith(("outlier", "power", "rmat"))

    def test_series_split_by_chosen_schedule(self, all_rows):
        r = fig4_heuristic(rows=all_rows)
        assert set(r.series) <= {"thread_mapped", "group_mapped", "merge_path"}
        total_points = sum(len(s.values) for s in r.series.values())
        assert total_points == len(r.speedups)

    def test_chosen_consistent_with_heuristic(self, all_rows):
        from repro.core.heuristic import select_schedule
        from repro.sparse.corpus import load_dataset

        r = fig4_heuristic(rows=all_rows)
        for name, chosen in r.chosen.items():
            m = load_dataset(name, "smoke").matrix
            assert chosen == select_schedule(m)
