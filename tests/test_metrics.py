"""Tests for imbalance metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import gini, imbalance_report, peak_to_mean

nonneg = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_single_owner_near_one(self):
        v = np.zeros(1000)
        v[0] = 1.0
        assert gini(v) == pytest.approx(1.0, abs=2e-3)

    def test_known_value(self):
        # For [0, 1]: G = 0.5.
        assert gini(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_all_zero(self):
        assert gini(np.zeros(5)) == 0.0

    def test_empty(self):
        assert gini(np.array([])) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini(np.array([-1.0, 2.0]))

    @given(nonneg)
    def test_bounded(self, vals):
        g = gini(np.array(vals))
        assert -1e-9 <= g <= 1.0 + 1e-9

    @given(nonneg)
    def test_scale_invariant(self, vals):
        v = np.array(vals)
        if v.sum() == 0:
            return
        assert gini(v) == pytest.approx(gini(v * 3.7), abs=1e-9)


class TestPeakToMean:
    def test_uniform_is_one(self):
        assert peak_to_mean(np.full(10, 4.0)) == pytest.approx(1.0)

    def test_straggler(self):
        assert peak_to_mean(np.array([1.0, 1.0, 10.0])) == pytest.approx(2.5)

    def test_degenerate(self):
        assert peak_to_mean(np.array([])) == 1.0
        assert peak_to_mean(np.zeros(4)) == 1.0


class TestImbalanceReport:
    def test_balanced_detection(self):
        rep = imbalance_report(np.full(64, 5.0))
        assert rep.is_balanced()
        assert rep.cv == 0.0
        assert rep.zero_fraction == 0.0

    def test_skewed_detection(self):
        v = np.ones(64)
        v[0] = 1000.0
        rep = imbalance_report(v)
        assert not rep.is_balanced()
        assert rep.peak_to_mean > 10

    def test_zero_fraction(self):
        rep = imbalance_report(np.array([0.0, 0.0, 1.0, 3.0]))
        assert rep.zero_fraction == pytest.approx(0.5)

    def test_empty_input(self):
        rep = imbalance_report(np.array([]))
        assert rep.count == 0
        assert rep.peak_to_mean == 1.0

    @given(nonneg)
    def test_fields_consistent(self, vals):
        v = np.array(vals)
        rep = imbalance_report(v)
        assert rep.count == v.size
        assert rep.mean == pytest.approx(v.mean())
        if rep.mean > 0:
            assert rep.cv == pytest.approx(rep.std / rep.mean)
