"""Kernel effect extraction: per-array write classes from scalar bodies.

The classifier's whole value is getting each app's write provenance
*right* -- a tile-private write misread as a scatter makes every verdict
uselessly conservative, and the reverse is unsound.  These tests pin the
classification of all nine registered apps plus the structural pieces
(params, outputs, delegation, declared overrides).
"""

from __future__ import annotations

import pytest

from repro.analysis import kernel_effects
from repro.analysis.effects import WRITE_CLASSES
from repro.engine import available_apps, effect_declarations


def effects_by_key():
    return {(e.app, e.label): e for e in kernel_effects()}


def write_classes(effects):
    return {w.array: w.write_class for w in effects.writes}


class TestRegistryCoverage:
    def test_every_app_declares_effects(self):
        declared = {d.app for d in effect_declarations()}
        assert set(available_apps()) <= declared

    def test_write_classes_are_known(self):
        for effects in kernel_effects():
            for w in effects.writes:
                assert w.write_class in WRITE_CLASSES

    def test_effects_sorted_and_filterable(self):
        all_effects = kernel_effects()
        keys = [(e.app, e.label) for e in all_effects]
        assert keys == sorted(keys)
        only = kernel_effects("spmv")
        assert [e.app for e in only] == ["spmv"]


class TestPerAppClassification:
    """The pinned provenance of every kernel's writes."""

    def test_spmv_output_is_tile_private(self):
        effects = effects_by_key()[("spmv", "spmv")]
        assert write_classes(effects) == {"y": "tile_private"}

    def test_spmm_output_is_tile_private(self):
        # c[row, col]: a (tile, dense-column) pair is still per-tile.
        effects = effects_by_key()[("spmm", "spmm")]
        assert write_classes(effects) == {"c": "tile_private"}

    def test_spgemm_count_is_tile_private(self):
        effects = effects_by_key()[("spgemm", "count")]
        assert write_classes(effects) == {"per_row": "tile_private"}

    def test_spgemm_compute_is_declared_scatter(self):
        effects = effects_by_key()[("spgemm", "compute")]
        assert write_classes(effects) == {"c": "scatter"}
        assert all(w.declared for w in effects.writes)

    def test_mttkrp_factor_rows_are_tile_private(self):
        effects = effects_by_key()[("spmttkrp", "mttkrp")]
        assert write_classes(effects) == {"m": "tile_private"}

    def test_histogram_bins_are_scatter(self):
        # The bin index is data-dependent: no schedule makes it safe.
        effects = effects_by_key()[("histogram", "histogram")]
        assert write_classes(effects) == {"hist": "scatter"}

    def test_triangle_count_total_is_global_reduce(self):
        effects = effects_by_key()[("triangle_count", "intersect")]
        assert write_classes(effects) == {"count": "global_reduce"}
        assert effects.outputs == ("count",)

    def test_bfs_depth_and_mask_are_scatter(self):
        effects = effects_by_key()[("bfs", "advance")]
        classes = write_classes(effects)
        assert classes["depth"] == "scatter"
        assert classes["next_mask"] == "scatter"

    def test_sssp_scratch_is_atom_private_outputs_scatter(self):
        effects = effects_by_key()[("sssp", "advance")]
        classes = write_classes(effects)
        assert classes["dist"] == "scatter"
        assert classes["next_mask"] == "scatter"
        # Per-edge snapshots indexed by the flat loop variable.
        assert classes["candidate"] == "atom_private"
        assert classes["before"] == "atom_private"

    def test_pagerank_delegates_to_spmv(self):
        effects = effects_by_key()[("pagerank", "spmv")]
        assert effects.delegates_to == "spmv"
        assert effects.writes == ()


class TestDeclarationValidation:
    def test_declared_override_rejects_unknown_class(self):
        from repro.analysis.effects import _effects_for_decl
        from repro.engine.compiled import EffectDecl

        decl = EffectDecl(app="x", label="y", writes={"out": "sideways"})
        with pytest.raises(ValueError, match="sideways"):
            _effects_for_decl(decl)
