"""Tests for the ExecutionContext API: the one execution-selection object."""

import pickle

import numpy as np
import pytest

from repro.engine import (
    DEFAULT_SEED,
    ExecutionContext,
    FixedPolicy,
    HeuristicPolicy,
    OracleBestPolicy,
    VectorEngine,
    available_apps,
    get_app,
    run_app,
)
from repro.gpusim.arch import TINY_GPU, V100
from repro.sparse import generators as gen


@pytest.fixture
def small_matrix():
    """Square, skewed, strictly-positive values: acceptable to every app."""
    return gen.power_law(20, 20, 3.0, 1.9, seed=5)


class TestConstruction:
    def test_defaults(self):
        ctx = ExecutionContext()
        assert ctx.engine == "vector"
        assert ctx.spec is V100
        assert ctx.policy is None
        assert ctx.gpus == 1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionContext().engine = "simt"

    def test_hashable(self):
        assert isinstance(hash(ExecutionContext(policy=FixedPolicy("lrb"))), int)

    def test_schedule_options_normalized(self):
        ctx = ExecutionContext(schedule_options={"b": 2, "a": 1})
        assert ctx.schedule_options == (("a", 1), ("b", 2))
        assert ctx.options == {"a": 1, "b": 2}

    def test_policy_strings_coerced(self):
        assert ExecutionContext(policy="merge_path").policy == FixedPolicy("merge_path")
        assert isinstance(ExecutionContext(policy="heuristic").policy, HeuristicPolicy)
        assert isinstance(
            ExecutionContext(policy="oracle_best").policy, OracleBestPolicy
        )

    def test_gpus_selects_multi_gpu_engine(self):
        assert ExecutionContext(gpus=2).engine == "multi_gpu"
        assert ExecutionContext(gpus=1).engine == "vector"
        assert ExecutionContext(engine="multi_gpu", gpus=2).engine == "multi_gpu"

    def test_rejects_bad_gpus(self):
        with pytest.raises(ValueError, match="gpus"):
            ExecutionContext(gpus=0)

    def test_gpus_with_single_device_engine_rejected(self):
        # Never silently run single-device when multiple were requested.
        with pytest.raises(ValueError, match="multi_gpu"):
            ExecutionContext(engine="simt", gpus=2)

    def test_plan_store_coerced_to_str(self, tmp_path):
        ctx = ExecutionContext(plan_store=tmp_path / "plans.journal")
        assert ctx.plan_store == str(tmp_path / "plans.journal")

    def test_plan_store_and_cache_dir_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ExecutionContext(
                plan_cache_dir=str(tmp_path / "d"),
                plan_store=str(tmp_path / "s.journal"),
            )

    def test_replace_and_with_helpers(self):
        ctx = ExecutionContext()
        assert ctx.with_policy("lrb").policy == FixedPolicy("lrb")
        assert ctx.with_engine("simt").engine == "simt"
        assert ctx.replace(gpus=3).gpus == 3
        assert ctx.policy is None  # original untouched


class TestPickling:
    def test_round_trip(self):
        ctx = ExecutionContext(
            engine="multi_gpu",
            spec=TINY_GPU,
            policy=OracleBestPolicy(candidates=("merge_path", "lrb")),
            schedule_options={"opt": 1},
            gpus=4,
        )
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        assert clone.policy == ctx.policy

    def test_plan_store_round_trips(self):
        ctx = ExecutionContext(plan_store="/tmp/plans.journal")
        assert pickle.loads(pickle.dumps(ctx)).plan_store == "/tmp/plans.journal"


class TestFromKwargs:
    def test_ctx_passthrough(self):
        ctx = ExecutionContext(engine="simt")
        assert ExecutionContext.from_kwargs(ctx=ctx) is ctx

    def test_ctx_plus_legacy_kwargs_rejected(self):
        ctx = ExecutionContext()
        with pytest.raises(ValueError, match="not both"):
            ExecutionContext.from_kwargs(ctx=ctx, engine="simt")
        with pytest.raises(ValueError, match="not both"):
            ExecutionContext.from_kwargs(ctx=ctx, schedule="lrb")
        with pytest.raises(ValueError, match="not both"):
            ExecutionContext.from_kwargs(ctx=ctx, opt=3)

    def test_schedule_becomes_policy(self):
        ctx = ExecutionContext.from_kwargs(schedule="lrb")
        assert ctx.policy == FixedPolicy("lrb")
        assert isinstance(
            ExecutionContext.from_kwargs(schedule="heuristic").policy,
            HeuristicPolicy,
        )

    def test_schedule_and_policy_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            ExecutionContext.from_kwargs(schedule="lrb", policy=FixedPolicy("lrb"))

    def test_schedule_options_captured(self):
        ctx = ExecutionContext.from_kwargs(schedule="group_mapped", group_size=8)
        assert ctx.options == {"group_size": 8}


class TestEveryAppAcceptsCtx:
    """The acceptance bar: all 9 apps take ctx= and match the legacy path."""

    @pytest.mark.parametrize("app_name", sorted(available_apps()))
    def test_ctx_equals_legacy(self, app_name, small_matrix):
        app = get_app(app_name)
        problem = app.sweep_problem(small_matrix, DEFAULT_SEED)
        legacy = run_app(app, problem, spec=TINY_GPU)
        via_ctx = run_app(app, problem, ctx=ExecutionContext(spec=TINY_GPU))
        assert app.match(via_ctx.output, legacy.output), app_name
        assert via_ctx.stats.elapsed_ms == legacy.stats.elapsed_ms

    @pytest.mark.parametrize("app_name", sorted(available_apps()))
    def test_public_function_accepts_ctx(self, app_name, small_matrix):
        """Each public app function (not just run_app) takes ctx=."""
        from repro.apps.bfs import bfs
        from repro.apps.histogram import degree_histogram
        from repro.apps.pagerank import pagerank
        from repro.apps.spgemm import spgemm
        from repro.apps.spmm import spmm
        from repro.apps.spmttkrp import spmttkrp
        from repro.apps.spmv import spmv
        from repro.apps.sssp import sssp
        from repro.apps.triangle_count import triangle_count
        from repro.engine import input_matrix, input_vector
        from repro.sparse.graph import CsrGraph
        from repro.sparse.tensor import SparseTensor3

        m = small_matrix
        ctx = ExecutionContext(spec=TINY_GPU)
        calls = {
            "spmv": lambda: spmv(m, input_vector(m.num_cols), ctx=ctx),
            "spmm": lambda: spmm(m, input_matrix(m.num_cols, 3), ctx=ctx),
            "spgemm": lambda: spgemm(m, m, ctx=ctx),
            "bfs": lambda: bfs(CsrGraph(csr=m), 0, ctx=ctx),
            "sssp": lambda: sssp(CsrGraph(csr=m), 0, ctx=ctx),
            "pagerank": lambda: pagerank(m, ctx=ctx),
            "triangle_count": lambda: triangle_count(m, ctx=ctx),
            "histogram": lambda: degree_histogram(m, ctx=ctx),
            "spmttkrp": lambda: spmttkrp(
                SparseTensor3.from_arrays(
                    np.array([0, 1, 2]), np.array([0, 1, 0]),
                    np.array([0, 0, 1]), np.array([1.0, 2.0, 3.0]),
                    (3, 2, 2),
                ),
                input_matrix(2, 2, seed=1),
                input_matrix(2, 2, seed=2),
                ctx=ctx,
            ),
        }
        result = calls[app_name]()
        assert result.stats.elapsed_ms > 0

    def test_public_function_rejects_ctx_plus_legacy(self, small_matrix):
        from repro.apps.spmv import spmv
        from repro.engine import input_vector

        x = input_vector(small_matrix.num_cols)
        with pytest.raises(ValueError, match="not both"):
            spmv(small_matrix, x, ctx=ExecutionContext(), schedule="lrb")

    def test_engine_instances_still_accepted(self, small_matrix):
        from repro.apps.spmv import spmv
        from repro.engine import PlanCache, input_vector

        eng = VectorEngine(plan_cache=PlanCache())
        x = input_vector(small_matrix.num_cols)
        r = spmv(small_matrix, x, spec=TINY_GPU, engine=eng)
        assert eng.plan_cache.misses == 1
        assert r.elapsed_ms > 0


class TestContextThroughSuite:
    def test_run_suite_accepts_ctx(self):
        from repro.evaluation.harness import run_suite
        from repro.sparse.corpus import load_dataset

        ds = [load_dataset("tiny_power_256", "smoke")]
        legacy = run_suite(["merge_path"], app="spmv", datasets=ds)
        via_ctx = run_suite(
            ["merge_path"], app="spmv", datasets=ds, ctx=ExecutionContext()
        )
        assert [(r.kernel, r.elapsed) for r in legacy] == [
            (r.kernel, r.elapsed) for r in via_ctx
        ]

    def test_run_suite_rejects_ctx_plus_legacy(self):
        from repro.evaluation.harness import run_suite
        from repro.sparse.corpus import load_dataset

        ds = [load_dataset("tiny_diag_32", "smoke")]
        with pytest.raises(ValueError, match="not both"):
            run_suite(["merge_path"], datasets=ds, ctx=ExecutionContext(),
                      engine="simt")

    def test_ctx_crosses_process_pool(self):
        """The context is the pickled execution selection of shard tasks."""
        from repro.evaluation.harness import run_suite
        from repro.sparse.corpus import load_dataset

        ds = [load_dataset("tiny_diag_32", "smoke"),
              load_dataset("tiny_uniform_64", "smoke")]
        ctx = ExecutionContext(spec=TINY_GPU)
        serial = run_suite(["merge_path", "thread_mapped"], datasets=ds, ctx=ctx)
        process = run_suite(
            ["merge_path", "thread_mapped"], datasets=ds, ctx=ctx,
            executor="process", max_workers=2,
        )
        assert [(r.dataset, r.kernel, r.elapsed) for r in serial] == [
            (r.dataset, r.kernel, r.elapsed) for r in process
        ]

    def test_oracle_best_pseudo_kernel(self):
        from repro.evaluation.harness import run_suite
        from repro.sparse.corpus import load_dataset

        ds = [load_dataset("tiny_power_256", "smoke")]
        rows = run_suite(
            ["oracle_best", "merge_path", "thread_mapped", "group_mapped"],
            datasets=ds,
        )
        by_kernel = {r.kernel: r.elapsed for r in rows}
        assert by_kernel["oracle_best"] <= min(
            v for k, v in by_kernel.items() if k != "oracle_best"
        )
