"""Tests for the multi-GPU future-work extension."""

import numpy as np
import pytest

from repro.apps.common import spmv_costs
from repro.core.work import WorkSpec
from repro.gpusim.arch import V100
from repro.gpusim.multi_gpu import multi_gpu_plan, partition_tiles
from repro.sparse import generators as gen


def _offsets(counts):
    o = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=o[1:])
    return o


class TestPartition:
    def test_tile_partition_equal_counts(self):
        bounds = partition_tiles(_offsets([3] * 100), 4, "tiles")
        np.testing.assert_array_equal(bounds, [0, 25, 50, 75, 100])

    def test_merge_path_partition_balances_atoms(self):
        # One mega-tile: the tiles strategy gives device 0 nearly all the
        # atoms; merge-path isolates the giant.
        counts = [10_000] + [1] * 99
        offsets = _offsets(counts)
        tiles_b = partition_tiles(offsets, 4, "tiles")
        merge_b = partition_tiles(offsets, 4, "merge_path")
        atoms = lambda b: np.diff(offsets[b])  # noqa: E731
        assert atoms(tiles_b)[0] > 0.9 * offsets[-1]
        assert atoms(merge_b).max() <= 1.05 * offsets[-1]  # trivially
        assert atoms(merge_b)[0] < atoms(tiles_b)[0] or np.all(
            atoms(merge_b) == atoms(tiles_b)
        )

    def test_boundaries_are_monotone_and_complete(self):
        counts = list(np.random.default_rng(0).integers(0, 50, 200))
        for strategy in ("tiles", "merge_path"):
            b = partition_tiles(_offsets(counts), 5, strategy)
            assert b[0] == 0 and b[-1] == 200
            assert np.all(np.diff(b) >= 0)

    def test_rejects_bad_device_count(self):
        with pytest.raises(ValueError):
            partition_tiles(_offsets([1]), 0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            partition_tiles(_offsets([1]), 2, "astrology")


class TestMultiGpuPlan:
    def _work(self):
        return WorkSpec.from_csr(gen.power_law(8000, 8000, 10.0, 1.8, seed=0))

    def test_plan_produces_per_device_stats(self):
        plan = multi_gpu_plan(self._work(), spmv_costs(V100), num_devices=4)
        assert plan.num_devices == 4
        assert len(plan.device_stats) == 4
        assert sum(a for a, _t in plan.shards) == self._work().num_atoms
        assert plan.elapsed_ms > 0

    def test_more_devices_help_large_workloads(self):
        work = WorkSpec.from_csr(gen.uniform_random(60_000, 60_000, 32, seed=1))
        costs = spmv_costs(V100)
        t1 = multi_gpu_plan(work, costs, num_devices=1).elapsed_ms
        t4 = multi_gpu_plan(work, costs, num_devices=4).elapsed_ms
        assert t4 < t1

    def test_merge_partition_beats_tiles_on_skew(self):
        """The future-work claim made concrete: the paper's merge-path
        schedule, applied across the GPU boundary, balances devices that
        a naive tile split cannot."""
        counts = np.concatenate([np.full(32, 100_000), np.full(50_000, 2)])
        work = WorkSpec.from_counts(np.random.default_rng(2).permutation(counts))
        costs = spmv_costs(V100)
        naive = multi_gpu_plan(work, costs, num_devices=4, partition="tiles")
        merged = multi_gpu_plan(work, costs, num_devices=4, partition="merge_path")
        assert merged.device_imbalance <= naive.device_imbalance + 1e-9

    def test_single_device_degenerate(self):
        plan = multi_gpu_plan(self._work(), spmv_costs(V100), num_devices=1)
        assert plan.device_imbalance == pytest.approx(1.0)

    def test_imbalance_bounds(self):
        plan = multi_gpu_plan(self._work(), spmv_costs(V100), num_devices=8)
        assert plan.device_imbalance >= 1.0
        assert plan.speedup_vs_slowest_possible >= 1.0
