"""Tests for the multi-GPU future-work extension."""

import dataclasses

import numpy as np
import pytest

from repro.apps.common import spmv_costs
from repro.core.work import WorkSpec
from repro.gpusim.arch import V100, GpuLinkSpec
from repro.gpusim.multi_gpu import (
    GATHER_BYTES_PER_TILE,
    PER_DEVICE_OVERHEAD_CYCLES,
    multi_gpu_plan,
    partition_tiles,
    transfer_overhead_cycles,
)
from repro.sparse import generators as gen


def _offsets(counts):
    o = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=o[1:])
    return o


class TestPartition:
    def test_tile_partition_equal_counts(self):
        bounds = partition_tiles(_offsets([3] * 100), 4, "tiles")
        np.testing.assert_array_equal(bounds, [0, 25, 50, 75, 100])

    def test_merge_path_partition_balances_atoms(self):
        # One mega-tile: the tiles strategy gives device 0 nearly all the
        # atoms; merge-path isolates the giant.
        counts = [10_000] + [1] * 99
        offsets = _offsets(counts)
        tiles_b = partition_tiles(offsets, 4, "tiles")
        merge_b = partition_tiles(offsets, 4, "merge_path")
        atoms = lambda b: np.diff(offsets[b])  # noqa: E731
        assert atoms(tiles_b)[0] > 0.9 * offsets[-1]
        assert atoms(merge_b).max() <= 1.05 * offsets[-1]  # trivially
        assert atoms(merge_b)[0] < atoms(tiles_b)[0] or np.all(
            atoms(merge_b) == atoms(tiles_b)
        )

    def test_boundaries_are_monotone_and_complete(self):
        counts = list(np.random.default_rng(0).integers(0, 50, 200))
        for strategy in ("tiles", "merge_path"):
            b = partition_tiles(_offsets(counts), 5, strategy)
            assert b[0] == 0 and b[-1] == 200
            assert np.all(np.diff(b) >= 0)

    def test_rejects_bad_device_count(self):
        with pytest.raises(ValueError):
            partition_tiles(_offsets([1]), 0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            partition_tiles(_offsets([1]), 2, "astrology")


class TestMultiGpuPlan:
    def _work(self):
        return WorkSpec.from_csr(gen.power_law(8000, 8000, 10.0, 1.8, seed=0))

    def test_plan_produces_per_device_stats(self):
        plan = multi_gpu_plan(self._work(), spmv_costs(V100), num_devices=4)
        assert plan.num_devices == 4
        assert len(plan.device_stats) == 4
        assert sum(a for a, _t in plan.shards) == self._work().num_atoms
        assert plan.elapsed_ms > 0

    def test_more_devices_help_large_workloads(self):
        work = WorkSpec.from_csr(gen.uniform_random(60_000, 60_000, 32, seed=1))
        costs = spmv_costs(V100)
        t1 = multi_gpu_plan(work, costs, num_devices=1).elapsed_ms
        t4 = multi_gpu_plan(work, costs, num_devices=4).elapsed_ms
        assert t4 < t1

    def test_merge_partition_beats_tiles_on_skew(self):
        """The future-work claim made concrete: the paper's merge-path
        schedule, applied across the GPU boundary, balances devices that
        a naive tile split cannot."""
        counts = np.concatenate([np.full(32, 100_000), np.full(50_000, 2)])
        work = WorkSpec.from_counts(np.random.default_rng(2).permutation(counts))
        costs = spmv_costs(V100)
        naive = multi_gpu_plan(work, costs, num_devices=4, partition="tiles")
        merged = multi_gpu_plan(work, costs, num_devices=4, partition="merge_path")
        assert merged.device_imbalance <= naive.device_imbalance + 1e-9

    def test_single_device_degenerate(self):
        plan = multi_gpu_plan(self._work(), spmv_costs(V100), num_devices=1)
        assert plan.device_imbalance == pytest.approx(1.0)

    def test_imbalance_bounds(self):
        plan = multi_gpu_plan(self._work(), spmv_costs(V100), num_devices=8)
        assert plan.device_imbalance >= 1.0
        assert plan.speedup_vs_slowest_possible >= 1.0


class TestGpuLinkSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="topology"):
            GpuLinkSpec(topology="star")
        with pytest.raises(ValueError, match="bandwidth"):
            GpuLinkSpec(bandwidth_bytes_per_cycle=0)
        with pytest.raises(ValueError, match="latency"):
            GpuLinkSpec(latency_cycles=-1)

    def test_hops(self):
        all2all = GpuLinkSpec(topology="all_to_all")
        ring = GpuLinkSpec(topology="ring")
        assert all2all.hops(3, 3, 4) == 0
        assert all2all.hops(3, 0, 4) == 1
        assert ring.hops(1, 0, 4) == 1
        assert ring.hops(2, 0, 4) == 2
        assert ring.hops(3, 0, 4) == 1  # the short way round

    def test_linked_spec_stays_hashable(self):
        """Specs key plan caches; adding a link must not break that."""
        spec = dataclasses.replace(V100, link=GpuLinkSpec())
        assert hash(spec) != hash(V100)
        assert spec == dataclasses.replace(V100, link=GpuLinkSpec())


class TestTransferModel:
    def _work(self):
        return WorkSpec.from_csr(gen.power_law(8000, 8000, 10.0, 1.8, seed=0))

    def test_no_link_reproduces_flat_overhead_exactly(self):
        """Zero-topology parity: a spec without a link must price the
        ensemble bit-for-bit as the legacy flat per-device model."""
        plan = multi_gpu_plan(self._work(), spmv_costs(V100), num_devices=4)
        times = [s.elapsed_ms for s in plan.device_stats]
        legacy = max(times) + V100.cycles_to_ms(PER_DEVICE_OVERHEAD_CYCLES) * 4
        assert plan.elapsed_ms == legacy
        assert plan.extras["transfer_model"] == "flat"
        assert plan.extras["gather_bytes"] == 0.0

    def test_flat_cycles_helper_matches_constant(self):
        cycles, volume = transfer_overhead_cycles(V100, [(10, 5)] * 4, 4)
        assert cycles == PER_DEVICE_OVERHEAD_CYCLES * 4
        assert volume == 0.0

    def test_linked_gather_prices_volume_and_hops(self):
        link = GpuLinkSpec(
            topology="all_to_all", bandwidth_bytes_per_cycle=16.0,
            latency_cycles=100.0,
        )
        spec = dataclasses.replace(V100, link=link)
        shards = [(0, 10), (0, 20), (0, 30)]  # (atoms, tiles) per device
        cycles, volume = transfer_overhead_cycles(spec, shards, 3)
        # Device 0 gathers nothing; devices 1 and 2 pay one hop each.
        expected_volume = (20 + 30) * GATHER_BYTES_PER_TILE
        assert volume == expected_volume
        assert cycles == pytest.approx(
            2 * 100.0 + expected_volume / 16.0
        )

    def test_ring_costs_at_least_all_to_all(self):
        work = self._work()
        costs = spmv_costs(V100)
        base = dict(num_devices=4, partition="merge_path")
        flat = multi_gpu_plan(work, costs, **base)
        a2a = multi_gpu_plan(
            work, costs,
            spec=dataclasses.replace(V100, link=GpuLinkSpec()), **base,
        )
        ring = multi_gpu_plan(
            work, costs,
            spec=dataclasses.replace(V100, link=GpuLinkSpec(topology="ring")),
            **base,
        )
        # Device 2 is two hops from the root on a 4-ring, one hop on a
        # switch; everything else equal, the ring gather costs more.
        assert ring.extras["transfer_ms"] > a2a.extras["transfer_ms"]
        assert ring.extras["transfer_model"] == "ring"
        assert a2a.extras["transfer_model"] == "all_to_all"
        # The transfer term is the only difference from the flat plan.
        flat_compute = flat.elapsed_ms - flat.extras["transfer_ms"]
        a2a_compute = a2a.elapsed_ms - a2a.extras["transfer_ms"]
        assert a2a_compute == pytest.approx(flat_compute)

    def test_gather_volume_scales_with_tiles(self):
        link = GpuLinkSpec()
        spec = dataclasses.replace(V100, link=link)
        small = transfer_overhead_cycles(spec, [(0, 10), (0, 10)], 2)
        large = transfer_overhead_cycles(spec, [(0, 10), (0, 10_000)], 2)
        assert large[0] > small[0] and large[1] > small[1]
