"""Unit tests for repro.gpusim.memory."""

import numpy as np
import pytest

from repro.gpusim.arch import TINY_GPU, V100
from repro.gpusim.memory import (
    SharedMemory,
    coalescing_factor,
    shared_bank_conflicts,
    transactions_per_warp_access,
    warp_load_cost,
)


class TestTransactions:
    def test_unit_stride_coalesces(self):
        # 32 lanes x 4B contiguous = 128 bytes = 4 transactions of 32B.
        assert transactions_per_warp_access(1, 4, 32) == 4

    def test_broadcast_is_one_transaction(self):
        assert transactions_per_warp_access(0, 4, 32) == 1

    def test_large_stride_one_per_lane(self):
        assert transactions_per_warp_access(64, 4, 32) == 32

    def test_stride_two_doubles_traffic(self):
        t1 = transactions_per_warp_access(1, 4, 32)
        t2 = transactions_per_warp_access(2, 4, 32)
        assert t2 == 2 * t1

    def test_capped_at_warp_size(self):
        assert transactions_per_warp_access(1000, 8, 32) == 32

    def test_rejects_negative_stride(self):
        with pytest.raises(ValueError):
            transactions_per_warp_access(-1, 4, 32)

    def test_rejects_bad_elem_bytes(self):
        with pytest.raises(ValueError):
            transactions_per_warp_access(1, 0, 32)


class TestCoalescingFactor:
    def test_unit_stride_is_one(self):
        assert coalescing_factor(1, 4, 32) == pytest.approx(1.0)

    def test_monotone_in_stride(self):
        factors = [coalescing_factor(s, 4, 32) for s in (1, 2, 4, 8, 16)]
        assert factors == sorted(factors)


class TestWarpLoadCost:
    def test_coalesced_cheaper_than_random(self):
        c1 = warp_load_cost(V100, 100, stride_elems=1)
        c2 = warp_load_cost(V100, 100, stride_elems=1024)
        assert c1 < c2

    def test_scales_linearly_with_accesses(self):
        c1 = warp_load_cost(V100, 10)
        c2 = warp_load_cost(V100, 20)
        assert c2 == pytest.approx(2 * c1)

    def test_fully_scattered_hits_random_cost(self):
        per = warp_load_cost(V100, 1, stride_elems=10_000)
        assert per == pytest.approx(V100.costs.global_load_random)


class TestBankConflicts:
    def test_conflict_free(self):
        assert shared_bank_conflicts(np.arange(32)) == 1

    def test_same_bank_full_conflict(self):
        assert shared_bank_conflicts(np.zeros(32, dtype=int) * 32) == 32

    def test_stride_two_two_way(self):
        assert shared_bank_conflicts(np.arange(32) * 2) == 2

    def test_empty_access(self):
        assert shared_bank_conflicts(np.array([], dtype=int)) == 1


class TestSharedMemory:
    def test_same_name_same_array(self):
        sm = SharedMemory(V100)
        a = sm.alloc("buf", (16,), np.int64)
        b = sm.alloc("buf", (16,), np.int64)
        assert a is b

    def test_different_names_different_arrays(self):
        sm = SharedMemory(V100)
        assert sm.alloc("a", (4,)) is not sm.alloc("b", (4,))

    def test_limit_enforced(self):
        sm = SharedMemory(TINY_GPU)
        with pytest.raises(MemoryError, match="shared memory"):
            sm.alloc("huge", (TINY_GPU.shared_mem_per_block,), np.float64)

    def test_bytes_tracking_and_reset(self):
        sm = SharedMemory(V100)
        sm.alloc("a", (8,), np.float64)
        assert sm.bytes_allocated == 64
        sm.reset()
        assert sm.bytes_allocated == 0
        # After reset the same name allocates fresh.
        arr = sm.alloc("a", (8,), np.float64)
        assert arr.sum() == 0
