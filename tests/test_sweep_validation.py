"""Tests for the independent sampled validation and the vectorized apps.

Two concerns share this module because they guard the same risk -- a
vectorized fast path silently diverging from what it is supposed to
compute:

* ``AppSpec.sample_check`` must accept every correct sweep output and
  reject corrupted ones (it is the harness's *second* oracle, derived
  through a different code path than the reference functions);
* the vectorized ``compute()`` rewrites (triangle counting's
  searchsorted intersection, SpGEMM's hashed SIMT accumulator) must stay
  pinned to the per-thread SIMT ground truth and brute-force references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import available_apps, get_app
from repro.evaluation.harness import run_cell, run_suite
from repro.sparse import generators as gen
from repro.sparse.corpus import load_dataset

SAMPLED_APPS = ("spmv", "spmm", "spmttkrp", "histogram")


class TestSampleChecks:
    @pytest.mark.parametrize("app_name", SAMPLED_APPS)
    def test_registered_for_vector_path_apps(self, app_name):
        assert get_app(app_name).sample_check is not None

    @pytest.mark.parametrize("app_name", SAMPLED_APPS)
    def test_accepts_correct_output(self, app_name):
        ds = load_dataset("tiny_power_256", "smoke")
        row = run_cell(app_name, "merge_path", ds)  # validate=True throughout
        assert row.elapsed > 0

    @pytest.mark.parametrize("app_name", SAMPLED_APPS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_deterministic_given_seed(self, app_name, seed):
        app = get_app(app_name)
        matrix = gen.power_law(40, 40, 4.0, 1.9, seed=11)
        problem = app.sweep_problem(matrix, 0)
        output = app.oracle(problem)
        assert app.sample_check(problem, output, seed)
        assert app.sample_check(problem, output, seed)

    @pytest.mark.parametrize("app_name", ("spmv", "spmm", "spmttkrp"))
    def test_rejects_corrupted_output(self, app_name):
        app = get_app(app_name)
        matrix = gen.power_law(40, 40, 4.0, 1.9, seed=11)
        problem = app.sweep_problem(matrix, 0)
        output = np.array(app.oracle(problem), dtype=np.float64, copy=True)
        # Corrupt every entry: any sampled position must catch it.
        corrupted = output + 1.0
        assert not app.sample_check(problem, corrupted, seed=0)

    def test_histogram_rejects_corrupted_output(self):
        app = get_app("histogram")
        matrix = gen.power_law(40, 40, 4.0, 1.9, seed=11)
        problem = app.sweep_problem(matrix, 0)
        output = app.oracle(problem).copy()
        output += 1
        assert not app.sample_check(problem, output, seed=0)

    def test_rejects_wrong_shape(self):
        app = get_app("spmv")
        matrix = gen.uniform_random(16, 16, 3, seed=1)
        problem = app.sweep_problem(matrix, 0)
        assert not app.sample_check(problem, np.zeros(3), seed=0)

    @pytest.mark.parametrize("app_name", ("spmv", "spmm", "spmttkrp"))
    def test_degenerate_empty_problem_passes(self, app_name):
        """Nothing to sample must read as valid, never raise."""
        from repro.sparse.csr import CsrMatrix

        app = get_app(app_name)
        empty = CsrMatrix.empty((0, 0))
        problem = app.sweep_problem(empty, 0)
        output = app.oracle(problem)
        assert app.sample_check(problem, output, seed=0)

    def test_harness_runs_sample_checks(self, monkeypatch):
        """The harness must invoke the sampled check iff validating."""
        import dataclasses

        from repro.engine import registry

        app = get_app("spmv")
        real = app.sample_check
        calls = {"n": 0}

        def counting(problem, output, seed, samples=8):
            calls["n"] += 1
            return real(problem, output, seed, samples)

        # AppSpec is frozen; swap a counting clone into the registry.
        monkeypatch.setitem(
            registry._APPS, "spmv", dataclasses.replace(app, sample_check=counting)
        )
        ds = load_dataset("tiny_diag_32", "smoke")
        run_cell("spmv", "merge_path", ds)
        assert calls["n"] == 1

        # With validation off the sampled check must not run.
        run_cell("spmv", "merge_path", ds, validate=False)
        assert calls["n"] == 1

    def test_sample_check_failure_raises_assertion(self, monkeypatch):
        import dataclasses

        from repro.engine import registry

        app = get_app("spmv")
        monkeypatch.setitem(
            registry._APPS,
            "spmv",
            dataclasses.replace(
                app, sample_check=lambda problem, output, seed: False
            ),
        )
        ds = load_dataset("tiny_diag_32", "smoke")
        with pytest.raises(AssertionError, match="sampled dense check"):
            run_cell("spmv", "merge_path", ds)


class TestVectorizedTriangleCount:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle_and_simt(self, seed):
        from repro.apps.triangle_count import (
            triangle_count,
            triangle_count_reference,
        )

        matrix = gen.power_law(24, 24, 4.0, 1.9, seed=seed)
        expected = triangle_count_reference(matrix)
        vector = triangle_count(matrix, engine="vector").output
        simt = triangle_count(matrix, engine="simt").output
        assert vector == expected == simt

    def test_matches_brute_force(self):
        from itertools import combinations

        from repro.apps.triangle_count import triangle_count

        rng = np.random.default_rng(4)
        n = 14
        dense = (rng.random((n, n)) < 0.3).astype(float)
        dense = np.maximum(dense, dense.T)
        np.fill_diagonal(dense, 0.0)
        from repro.sparse.csr import CsrMatrix

        matrix = CsrMatrix.from_dense(dense)
        brute = sum(
            1
            for u, v, w in combinations(range(n), 3)
            if dense[u, v] and dense[v, w] and dense[u, w]
        )
        assert triangle_count(matrix).output == brute

    def test_upper_triangle_vectorized_semantics(self):
        from repro.apps.triangle_count import _symmetrized, _upper_triangle

        matrix = gen.power_law(30, 30, 5.0, 1.8, seed=9)
        upper = _upper_triangle(_symmetrized(matrix))
        rows = np.repeat(
            np.arange(upper.num_rows, dtype=np.int64), upper.row_lengths()
        )
        assert (upper.col_indices > rows).all()  # strictly upper
        # Sorted-unique per row: the invariant the intersections rely on.
        for u in range(upper.num_rows):
            cols, _ = upper.row_slice(u)
            assert (np.diff(cols) > 0).all()

    def test_triangle_free_and_empty_graphs(self):
        from repro.apps.triangle_count import triangle_count
        from repro.sparse.csr import CsrMatrix

        # A 4-cycle has no triangles.
        cycle = np.zeros((4, 4))
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            cycle[u, v] = cycle[v, u] = 1.0
        assert triangle_count(CsrMatrix.from_dense(cycle)).output == 0
        assert triangle_count(CsrMatrix.from_dense(np.zeros((3, 3)))).output == 0


class TestHashedSpgemmAccumulator:
    @pytest.mark.parametrize("seed", range(3))
    def test_simt_matches_vector_and_reference(self, seed):
        from repro.apps.spgemm import spgemm, spgemm_reference

        a = gen.power_law(16, 16, 3.0, 1.9, seed=seed)
        ref = spgemm_reference(a, a).to_dense()
        vec = spgemm(a, a, engine="vector").output.to_dense()
        simt = spgemm(a, a, engine="simt").output.to_dense()
        np.testing.assert_allclose(vec, ref)
        np.testing.assert_allclose(simt, ref)

    def test_no_dense_scratch_allocation(self):
        """The compute pass must not allocate O(rows * cols) scratch."""
        from repro.apps.spgemm import spgemm_driver

        src = open(spgemm_driver.__code__.co_filename).read()
        assert "np.zeros((a.num_rows, b.num_cols))" not in src.split(
            "def compute_kernel"
        )[1].split("def finalize")[0]


class TestSweptParity:
    """Cross-engine parity through the harness for every vectorized app."""

    @pytest.mark.parametrize(
        "app_name",
        [a for a in ("spmv", "spmm", "histogram", "triangle_count", "spgemm")],
    )
    def test_vector_and_simt_rows_agree(self, app_name):
        assert app_name in available_apps()
        ds = [load_dataset("tiny_uniform_64", "smoke")]
        vec = run_suite(["thread_mapped"], app=app_name, datasets=ds,
                        engine="vector")
        simt = run_suite(["thread_mapped"], app=app_name, datasets=ds,
                         engine="simt")
        assert [r.dataset for r in vec] == [r.dataset for r in simt]
