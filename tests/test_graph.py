"""Tests for the CSR graph view."""

import numpy as np
import pytest

from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import CsrGraph, random_graph


def _tiny_graph() -> CsrGraph:
    #   0 -> 1 (w=1), 0 -> 2 (w=4), 1 -> 2 (w=2), 2 -> 0 (w=3)
    dense = np.array(
        [[0.0, 1.0, 4.0], [0.0, 0.0, 2.0], [3.0, 0.0, 0.0]]
    )
    return CsrGraph(CsrMatrix.from_dense(dense))


class TestAccessors:
    def test_sizes(self):
        g = _tiny_graph()
        assert g.num_vertices == 3
        assert g.num_edges == 4

    def test_neighbors_and_degrees(self):
        g = _tiny_graph()
        np.testing.assert_array_equal(g.neighbors(0), [1, 2])
        assert g.out_degree(0) == 2
        assert g.out_degree(1) == 1
        np.testing.assert_array_equal(g.out_degrees(), [2, 1, 1])

    def test_edge_accessors_listing5(self):
        g = _tiny_graph()
        # Global edge ids follow CSR order: (0,1), (0,2), (1,2), (2,0).
        assert g.get_neighbor(1) == 2
        assert g.get_edge_weight(1) == 4.0
        assert g.get_source(0) == 0
        assert g.get_source(2) == 1
        assert g.get_source(3) == 2

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            CsrGraph(CsrMatrix.from_dense(np.ones((2, 3))))


class TestNetworkxInterop:
    def test_roundtrip(self):
        nx = pytest.importorskip("networkx")
        g = _tiny_graph()
        ng = g.to_networkx()
        assert ng.number_of_nodes() == 3
        assert ng.number_of_edges() == 4
        assert ng[0][2]["weight"] == 4.0

    def test_random_graph_properties(self):
        g = random_graph(200, 5.0, seed=1)
        assert g.num_vertices == 200
        assert 0 < g.num_edges < 200 * 20
        assert g.csr.values.min() > 0  # positive weights for SSSP

    def test_random_graph_deterministic(self):
        assert random_graph(50, 3.0, seed=9).csr == random_graph(50, 3.0, seed=9).csr
