"""Property tests: every schedule is a *partition* of the work.

The fundamental correctness invariant of the load-balancing stage
(Section 3.2): whatever the schedule, the union of all threads' assigned
(tile, atom) pairs covers every atom exactly once.  Violating it would
silently corrupt every application built on top.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schedule import LaunchParams, available_schedules, make_schedule
from repro.core.work import WorkSpec
from repro.gpusim.arch import TINY_GPU

from conftest import FakeCtx

ALL_SCHEDULES = sorted(available_schedules())

counts_strategy = st.lists(st.integers(0, 40), min_size=1, max_size=60)
launch_strategy = st.sampled_from(
    [(1, 4), (1, 8), (2, 8), (4, 8), (3, 16), (2, 32)]
)


def _collect_nested(sched, launch: LaunchParams):
    atoms: dict[int, int] = {}
    tiles_seen = set()
    for t in range(launch.num_threads):
        ctx = FakeCtx(t, launch.num_threads, launch.block_dim, TINY_GPU.warp_size)
        for tile in sched.tiles(ctx):
            tiles_seen.add(tile)
            for atom in sched.atoms(ctx, tile):
                atoms[atom] = atoms.get(atom, 0) + 1
    return atoms, tiles_seen


def _collect_flat(sched, launch: LaunchParams):
    atoms: dict[int, int] = {}
    pairs = []
    for t in range(launch.num_threads):
        ctx = FakeCtx(t, launch.num_threads, launch.block_dim, TINY_GPU.warp_size)
        for tile, atom in sched.flat_atoms(ctx):
            atoms[atom] = atoms.get(atom, 0) + 1
            pairs.append((tile, atom))
    return atoms, pairs


@pytest.mark.parametrize("name", ALL_SCHEDULES)
@given(counts=counts_strategy, launch_dims=launch_strategy)
@settings(max_examples=25, deadline=None)
def test_nested_view_covers_every_atom_exactly_once(name, counts, launch_dims):
    work = WorkSpec.from_counts(counts)
    launch = LaunchParams(*launch_dims)
    sched = make_schedule(name, work, TINY_GPU, launch)
    atoms, _tiles = _collect_nested(sched, launch)
    assert len(atoms) == work.num_atoms
    assert all(v == 1 for v in atoms.values()), f"{name}: duplicated atoms"


@pytest.mark.parametrize("name", ALL_SCHEDULES)
@given(counts=counts_strategy, launch_dims=launch_strategy)
@settings(max_examples=15, deadline=None)
def test_flat_view_covers_every_atom_exactly_once(name, counts, launch_dims):
    work = WorkSpec.from_counts(counts)
    launch = LaunchParams(*launch_dims)
    sched = make_schedule(name, work, TINY_GPU, launch)
    atoms, pairs = _collect_flat(sched, launch)
    assert len(atoms) == work.num_atoms
    assert all(v == 1 for v in atoms.values())
    # get_tile consistency: the flat stream's tile matches the owner.
    for tile, atom in pairs:
        lo, hi = work.atom_range(tile)
        assert lo <= atom < hi, f"{name}: atom {atom} not in tile {tile}"


@pytest.mark.parametrize("name", ALL_SCHEDULES)
def test_nonempty_tiles_all_visited(name):
    work = WorkSpec.from_counts([3, 0, 7, 1, 0, 2, 9, 1])
    launch = LaunchParams(2, 8)
    sched = make_schedule(name, work, TINY_GPU, launch)
    _atoms, tiles = _collect_nested(sched, launch)
    nonempty = {i for i in range(work.num_tiles) if work.atoms_per_tile()[i] > 0}
    assert nonempty <= tiles, f"{name}: missed non-empty tiles {nonempty - tiles}"


@pytest.mark.parametrize("name", ALL_SCHEDULES)
def test_empty_workload(name):
    work = WorkSpec.from_counts([0, 0, 0])
    launch = LaunchParams(1, 8)
    sched = make_schedule(name, work, TINY_GPU, launch)
    atoms, _ = _collect_nested(sched, launch)
    assert atoms == {}


@pytest.mark.parametrize("name", ALL_SCHEDULES)
def test_single_huge_tile(name):
    work = WorkSpec.from_counts([500])
    launch = LaunchParams(2, 8)
    sched = make_schedule(name, work, TINY_GPU, launch)
    atoms, _ = _collect_nested(sched, launch)
    assert len(atoms) == 500


@pytest.mark.parametrize("name", ALL_SCHEDULES)
def test_more_threads_than_work(name):
    work = WorkSpec.from_counts([1, 2])
    launch = LaunchParams(4, 32)
    sched = make_schedule(name, work, TINY_GPU, launch)
    atoms, _ = _collect_nested(sched, launch)
    assert len(atoms) == 3
    assert all(v == 1 for v in atoms.values())


class TestOwnership:
    """owns_tile_fully must be consistent with the assigned atom ranges."""

    @pytest.mark.parametrize("name", ["merge_path", "nonzero_split"])
    def test_full_ownership_matches_ranges(self, name):
        work = WorkSpec.from_counts([4, 1, 0, 9, 2, 2, 7])
        launch = LaunchParams(2, 8)
        sched = make_schedule(name, work, TINY_GPU, launch)
        for t in range(launch.num_threads):
            ctx = FakeCtx(t, launch.num_threads, 8, TINY_GPU.warp_size)
            for tile in sched.tiles(ctx):
                lo, hi = work.atom_range(tile)
                assigned = list(sched.atoms(ctx, tile))
                if sched.owns_tile_fully(ctx, tile):
                    assert assigned == list(range(lo, hi))
