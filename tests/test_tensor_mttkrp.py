"""Tests for sparse tensors and the MTTKRP application."""

import numpy as np
import pytest

from repro.apps.spmttkrp import mttkrp_costs, spmttkrp, spmttkrp_reference
from repro.gpusim.arch import V100
from repro.sparse.tensor import SparseTensor3, random_tensor


def _factors(shape, rank, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(-1, 1, size=(shape[1], rank)),
        rng.uniform(-1, 1, size=(shape[2], rank)),
    )


class TestSparseTensor:
    def test_construction_sorts_by_mode0(self):
        t = SparseTensor3.from_arrays(
            [2, 0, 1], [0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0], (3, 3, 3)
        )
        np.testing.assert_array_equal(t.i, [0, 1, 2])
        assert t.nnz == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            SparseTensor3.from_arrays([9], [0], [0], [1.0], (2, 2, 2))
        with pytest.raises(ValueError, match="identical"):
            SparseTensor3.from_arrays([0, 1], [0], [0], [1.0], (2, 2, 2))

    def test_slice_counts_and_offsets(self):
        t = SparseTensor3.from_arrays(
            [0, 0, 2], [0, 1, 2], [0, 1, 0], [1.0, 1.0, 1.0], (3, 3, 3)
        )
        np.testing.assert_array_equal(t.slice_counts(), [2, 0, 1])
        np.testing.assert_array_equal(t.slice_offsets(), [0, 2, 2, 3])

    def test_to_dense_accumulates_duplicates(self):
        t = SparseTensor3.from_arrays(
            [0, 0], [1, 1], [1, 1], [2.0, 3.0], (1, 2, 2)
        )
        assert t.to_dense()[0, 1, 1] == 5.0

    def test_random_tensor_skew(self):
        flat = random_tensor((200, 20, 20), 4000, skew=0.0, seed=1)
        skewed = random_tensor((200, 20, 20), 4000, skew=0.8, seed=1)
        cv = lambda t: t.slice_counts().std() / max(t.slice_counts().mean(), 1e-9)  # noqa: E731
        assert cv(skewed) > 2 * cv(flat)

    def test_random_tensor_deterministic(self):
        a = random_tensor((10, 10, 10), 50, seed=3)
        b = random_tensor((10, 10, 10), 50, seed=3)
        np.testing.assert_array_equal(a.values, b.values)


class TestMttkrp:
    def test_reference_matches_einsum(self):
        t = random_tensor((15, 12, 10), 300, seed=4)
        b, c = _factors(t.shape, 5)
        expected = np.einsum("ijk,jr,kr->ir", t.to_dense(), b, c)
        np.testing.assert_allclose(spmttkrp_reference(t, b, c), expected)

    @pytest.mark.parametrize(
        "schedule", ["thread_mapped", "merge_path", "group_mapped", "nonzero_split"]
    )
    def test_app_correct_under_schedules(self, schedule):
        t = random_tensor((30, 16, 16), 500, skew=0.6, seed=5)
        b, c = _factors(t.shape, 4)
        r = spmttkrp(t, b, c, schedule=schedule)
        expected = np.einsum("ijk,jr,kr->ir", t.to_dense(), b, c)
        np.testing.assert_allclose(r.output, expected, rtol=1e-9)

    def test_costs_scale_with_rank(self):
        assert mttkrp_costs(V100, 32).atom_cycles == pytest.approx(
            2 * mttkrp_costs(V100, 16).atom_cycles
        )

    def test_schedule_choice_matters_on_skew(self):
        t = random_tensor((5000, 32, 32), 200_000, skew=0.9, seed=6)
        b, c = _factors(t.shape, 16)
        t_thread = spmttkrp(t, b, c, schedule="thread_mapped").elapsed_ms
        t_merge = spmttkrp(t, b, c, schedule="merge_path").elapsed_ms
        assert t_merge < t_thread

    def test_factor_validation(self):
        t = random_tensor((5, 6, 7), 20, seed=7)
        b, c = _factors(t.shape, 3)
        with pytest.raises(ValueError, match="factor B"):
            spmttkrp(t, b[:-1], c)
        with pytest.raises(ValueError, match="factor C"):
            spmttkrp(t, b, c[:-1])
        with pytest.raises(ValueError, match="ranks disagree"):
            spmttkrp(t, b, c[:, :2])
