"""Unit and property tests for repro.gpusim.collectives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gpusim import collectives as col
from repro.gpusim.arch import V100

lane_values = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=128
)


class TestScans:
    def test_inclusive_add(self):
        np.testing.assert_array_equal(
            col.inclusive_scan(np.array([1, 2, 3, 4])), [1, 3, 6, 10]
        )

    def test_exclusive_add(self):
        np.testing.assert_array_equal(
            col.exclusive_scan(np.array([1, 2, 3, 4])), [0, 1, 3, 6]
        )

    def test_inclusive_max(self):
        np.testing.assert_array_equal(
            col.inclusive_scan(np.array([3, 1, 4, 1, 5]), "max"), [3, 3, 4, 4, 5]
        )

    def test_inclusive_min(self):
        np.testing.assert_array_equal(
            col.inclusive_scan(np.array([3, 1, 4, 1, 5]), "min"), [3, 1, 1, 1, 1]
        )

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unsupported scan op"):
            col.inclusive_scan(np.array([1]), "xor")

    @given(lane_values)
    def test_exclusive_shifts_inclusive(self, vals):
        v = np.array(vals)
        inc = col.inclusive_scan(v)
        exc = col.exclusive_scan(v)
        np.testing.assert_array_equal(exc[1:], inc[:-1])
        assert exc[0] == 0

    @given(lane_values)
    def test_inclusive_matches_cumsum(self, vals):
        v = np.array(vals)
        np.testing.assert_array_equal(col.inclusive_scan(v), np.cumsum(v))


class TestReduce:
    @given(lane_values)
    def test_add_matches_sum(self, vals):
        assert col.reduce(np.array(vals)) == sum(vals)

    @given(lane_values)
    def test_max_min(self, vals):
        v = np.array(vals)
        assert col.reduce(v, "max") == max(vals)
        assert col.reduce(v, "min") == min(vals)

    def test_empty_add_is_zero(self):
        assert col.reduce(np.array([])) == 0

    def test_empty_max_raises(self):
        with pytest.raises(ValueError):
            col.reduce(np.array([]), "max")

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            col.reduce(np.array([1]), "mean")


class TestBallotShfl:
    def test_ballot_bits(self):
        assert col.ballot(np.array([True, False, True, True])) == 0b1101

    def test_ballot_empty(self):
        assert col.ballot(np.array([], dtype=bool)) == 0

    def test_shfl_up(self):
        np.testing.assert_array_equal(
            col.shfl_up(np.array([1, 2, 3, 4]), 1, fill=0), [0, 1, 2, 3]
        )

    def test_shfl_down(self):
        np.testing.assert_array_equal(
            col.shfl_down(np.array([1, 2, 3, 4]), 2, fill=-1), [3, 4, -1, -1]
        )

    def test_shfl_rejects_negative(self):
        with pytest.raises(ValueError):
            col.shfl_up(np.array([1]), -1)

    def test_shfl_beyond_width(self):
        np.testing.assert_array_equal(
            col.shfl_down(np.array([1, 2]), 5, fill=9), [9, 9]
        )

    @given(lane_values, st.integers(min_value=0, max_value=8))
    def test_shfl_up_down_inverse_on_interior(self, vals, delta):
        v = np.array(vals)
        if delta >= v.size:
            return
        back = col.shfl_down(col.shfl_up(v, delta), delta)
        np.testing.assert_array_equal(back[: v.size - delta], v[: v.size - delta])


class TestCosts:
    def test_scan_cost_grows_with_group(self):
        assert col.scan_cost(V100, 64) > col.scan_cost(V100, 8)

    def test_scan_cost_multiple_passes(self):
        one = col.scan_cost(V100, 32, 32)
        two = col.scan_cost(V100, 32, 64)
        assert two == pytest.approx(2 * one)

    def test_scan_cost_rejects_bad_group(self):
        with pytest.raises(ValueError):
            col.scan_cost(V100, 0)

    def test_reduce_cost_log_steps(self):
        # Doubling the group adds one tree step.
        d = col.reduce_cost(V100, 64) - col.reduce_cost(V100, 32)
        d2 = col.reduce_cost(V100, 128) - col.reduce_cost(V100, 64)
        assert d == pytest.approx(d2)
        assert d > 0
