"""Tests for the sparse formats and conversions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    csr_transpose,
    offsets_from_counts,
)
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse import generators as gen


@st.composite
def random_coo(draw):
    rows = draw(st.integers(1, 20))
    cols = draw(st.integers(1, 20))
    nnz = draw(st.integers(0, 60))
    r = draw(
        st.lists(st.integers(0, rows - 1), min_size=nnz, max_size=nnz)
    )
    c = draw(
        st.lists(st.integers(0, cols - 1), min_size=nnz, max_size=nnz)
    )
    v = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CooMatrix.from_arrays(r, c, v, (rows, cols))


class TestCsr:
    def test_from_dense_roundtrip(self):
        d = np.array([[1.0, 0, 2], [0, 0, 0], [3, 4, 0]])
        m = CsrMatrix.from_dense(d)
        np.testing.assert_array_equal(m.to_dense(), d)
        assert m.nnz == 4
        np.testing.assert_array_equal(m.row_lengths(), [2, 0, 2])

    def test_empty(self):
        m = CsrMatrix.empty((3, 4))
        assert m.nnz == 0
        assert m.to_dense().shape == (3, 4)

    def test_row_slice(self):
        m = CsrMatrix.from_dense(np.array([[0, 5.0], [7.0, 0]]))
        cols, vals = m.row_slice(0)
        np.testing.assert_array_equal(cols, [1])
        np.testing.assert_array_equal(vals, [5.0])
        with pytest.raises(IndexError):
            m.row_slice(2)

    def test_validation_catches_corruption(self):
        with pytest.raises(ValueError, match="row_offsets\\[0\\]"):
            CsrMatrix.from_arrays([1, 2], [0], [1.0], (1, 1))
        with pytest.raises(ValueError, match="non-decreasing"):
            CsrMatrix.from_arrays([0, 2, 1], [0, 0], [1.0, 1.0], (2, 1))
        with pytest.raises(ValueError, match="nnz"):
            CsrMatrix.from_arrays([0, 5], [0], [1.0], (1, 1))
        with pytest.raises(ValueError, match="column index"):
            CsrMatrix.from_arrays([0, 1], [7], [1.0], (1, 2))
        with pytest.raises(ValueError, match="same length"):
            CsrMatrix.from_arrays([0, 1], [0], [1.0, 2.0], (1, 1))

    def test_sort_rows(self):
        m = CsrMatrix.from_arrays([0, 3], [2, 0, 1], [1.0, 2.0, 3.0], (1, 3))
        s = m.sort_rows()
        np.testing.assert_array_equal(s.col_indices, [0, 1, 2])
        np.testing.assert_array_equal(s.values, [2.0, 3.0, 1.0])
        np.testing.assert_array_equal(s.to_dense(), m.to_dense())

    def test_transpose_matches_numpy(self):
        m = gen.poisson_random(15, 9, 3.0, seed=4)
        np.testing.assert_allclose(m.transpose().to_dense(), m.to_dense().T)

    def test_degree_stats(self):
        m = CsrMatrix.from_dense(
            np.array([[1.0, 1, 1, 1], [0, 0, 0, 0], [1, 0, 0, 0], [1, 1, 0, 0]])
        )
        stats = m.degree_stats()
        assert stats["mean"] == pytest.approx(7 / 4)
        assert stats["max"] == 4
        assert stats["empty_frac"] == pytest.approx(0.25)

    def test_equality(self):
        a = gen.uniform_random(10, 10, 3, seed=5)
        b = gen.uniform_random(10, 10, 3, seed=5)
        c = gen.uniform_random(10, 10, 3, seed=6)
        assert a == b
        assert a != c

    def test_duplicate_entries_accumulate_in_dense(self):
        m = CsrMatrix.from_arrays([0, 2], [1, 1], [2.0, 3.0], (1, 2))
        np.testing.assert_array_equal(m.to_dense(), [[0.0, 5.0]])


class TestCoo:
    def test_sum_duplicates(self):
        coo = CooMatrix.from_arrays([0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0], (2, 2))
        s = coo.sum_duplicates()
        assert s.nnz == 2
        np.testing.assert_array_equal(s.to_dense(), [[0, 5.0], [4.0, 0]])

    def test_sorted_by_row(self):
        coo = CooMatrix.from_arrays([1, 0, 1], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))
        s = coo.sorted_by_row()
        assert list(s.rows) == [0, 1, 1]
        np.testing.assert_array_equal(s.to_dense(), coo.to_dense())

    def test_validation(self):
        with pytest.raises(ValueError, match="row index"):
            CooMatrix.from_arrays([5], [0], [1.0], (2, 2))
        with pytest.raises(ValueError, match="identical"):
            CooMatrix.from_arrays([0, 1], [0], [1.0], (2, 2))


class TestCsc:
    def test_col_semantics(self):
        d = np.array([[1.0, 0], [2.0, 3.0]])
        csc = csr_to_csc(CsrMatrix.from_dense(d))
        np.testing.assert_array_equal(csc.col_lengths(), [2, 1])
        rows, vals = csc.col_slice(0)
        np.testing.assert_array_equal(rows, [0, 1])
        np.testing.assert_array_equal(csc.to_dense(), d)

    def test_validation(self):
        with pytest.raises(ValueError, match="col_offsets"):
            CscMatrix.from_arrays([0, 1], [0], [1.0], (1, 2))


class TestConversions:
    @given(random_coo())
    @settings(max_examples=40, deadline=None)
    def test_all_paths_preserve_dense(self, coo):
        dense = coo.to_dense()
        np.testing.assert_allclose(coo_to_csr(coo).to_dense(), dense)
        np.testing.assert_allclose(coo_to_csc(coo).to_dense(), dense)
        np.testing.assert_allclose(
            csc_to_csr(coo_to_csc(coo)).to_dense(), dense
        )
        np.testing.assert_allclose(
            csr_to_csc(coo_to_csr(coo)).to_dense(), dense
        )
        np.testing.assert_allclose(
            csc_to_coo(coo_to_csc(coo)).to_dense(), dense
        )
        np.testing.assert_allclose(
            csr_to_coo(coo_to_csr(coo)).to_dense(), dense
        )

    @given(random_coo())
    @settings(max_examples=30, deadline=None)
    def test_transpose_involution(self, coo):
        csr = coo_to_csr(coo)
        np.testing.assert_allclose(
            csr_transpose(csr_transpose(csr)).to_dense(), csr.to_dense()
        )

    def test_offsets_from_counts(self):
        np.testing.assert_array_equal(
            offsets_from_counts([3, 0, 2]), [0, 3, 3, 5]
        )

    def test_against_scipy(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        m = gen.power_law(50, 40, 4.0, seed=9)
        s = scipy_sparse.csr_matrix(
            (m.values, m.col_indices, m.row_offsets), shape=m.shape
        )
        np.testing.assert_allclose(m.to_dense(), s.toarray())
        ours_csc = csr_to_csc(m)
        theirs_csc = s.tocsc()
        np.testing.assert_allclose(ours_csc.to_dense(), theirs_csc.toarray())
