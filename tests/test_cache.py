"""Tests for the locality/cache model (paper future work, Section 8)."""

import numpy as np
import pytest

from repro.apps.spmv import spmv
from repro.gpusim.arch import V100
from repro.gpusim.cache import (
    CacheModel,
    L2_V100_BYTES,
    effective_gather_cost,
    gather_hit_rate,
)
from repro.sparse import generators as gen


class TestHitRate:
    def test_resident_working_set_always_hits(self):
        assert gather_hit_rate(1024, L2_V100_BYTES) == 1.0
        assert gather_hit_rate(L2_V100_BYTES, L2_V100_BYTES) == 1.0

    def test_overflow_degrades_proportionally(self):
        assert gather_hit_rate(2 * L2_V100_BYTES, L2_V100_BYTES) == pytest.approx(0.5)
        assert gather_hit_rate(10 * L2_V100_BYTES, L2_V100_BYTES) == pytest.approx(0.1)

    def test_monotone_in_working_set(self):
        rates = [
            gather_hit_rate(w, L2_V100_BYTES)
            for w in np.logspace(3, 9, 20)
        ]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            gather_hit_rate(-1, 10)
        with pytest.raises(ValueError):
            gather_hit_rate(10, 0)


class TestCacheModel:
    def test_gather_cost_interpolates(self):
        m = CacheModel(capacity_bytes=1000, hit_cycles=5.0, miss_cycles=25.0)
        assert m.gather_cycles(500) == pytest.approx(5.0)
        assert m.gather_cycles(2000) == pytest.approx(0.5 * 5 + 0.5 * 25)

    def test_effective_cost_bounded_by_spec_extremes(self):
        small = effective_gather_cost(V100, 1024)
        huge = effective_gather_cost(V100, 10**10)
        assert small < huge
        assert huge <= V100.costs.global_load_random + 1e-9


class TestSpmvLocality:
    def test_small_vector_gets_faster_with_locality(self):
        # x easily fits in L2 -> cheaper gathers -> faster (or equal when
        # the bandwidth floor binds).
        m = gen.power_law(3000, 3000, 40.0, 1.8, seed=1)
        x = np.ones(m.num_cols)
        base = spmv(m, x, schedule="thread_mapped").elapsed_ms
        loc = spmv(m, x, schedule="thread_mapped", locality=True).elapsed_ms
        assert loc <= base

    def test_huge_vector_unaffected(self):
        # Working set far beyond L2: locality model converges to the
        # pessimistic default.
        m = gen.poisson_random(2_000_000, 2_000_000, 1.0, seed=2)
        x = np.ones(m.num_cols)
        base = spmv(m, x, schedule="merge_path").elapsed_ms
        loc = spmv(m, x, schedule="merge_path", locality=True).elapsed_ms
        assert loc == pytest.approx(base, rel=0.15)

    def test_locality_orthogonal_to_assignment(self):
        """The future-work requirement: locality changes costs, never the
        schedule's assignment (results identical, extras flagged)."""
        m = gen.power_law(200, 200, 4.0, seed=3)
        x = np.random.default_rng(0).uniform(size=m.num_cols)
        a = spmv(m, x, schedule="group_mapped")
        b = spmv(m, x, schedule="group_mapped", locality=True)
        np.testing.assert_array_equal(a.output, b.output)
        assert b.stats.extras["locality"] is True
        assert a.stats.extras["locality"] is False
