"""Tests for SpMM (Listing 4) and SpGEMM (Gustavson two-pass)."""

import numpy as np
import pytest

from repro.apps.spgemm import spgemm, spgemm_reference
from repro.apps.spmm import spmm, spmm_costs, spmm_reference
from repro.gpusim.arch import TINY_GPU, V100
from repro.sparse import generators as gen


def _b(matrix, n_cols=6, seed=1):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1, 1, size=(matrix.num_cols, n_cols))


class TestSpmm:
    @pytest.mark.parametrize(
        "schedule", ["thread_mapped", "merge_path", "group_mapped", "warp_mapped"]
    )
    def test_correct_under_schedules(self, schedule):
        m = gen.power_law(40, 30, 4.0, seed=2)
        b = _b(m)
        r = spmm(m, b, schedule=schedule)
        np.testing.assert_allclose(r.output, m.to_dense() @ b, rtol=1e-9)

    def test_reference_matches_dense(self):
        m = gen.poisson_random(25, 20, 3.0, seed=3)
        b = _b(m, 4)
        np.testing.assert_allclose(spmm_reference(m, b), m.to_dense() @ b)

    def test_simt_engine(self):
        m = gen.poisson_random(24, 24, 2.0, seed=4)
        b = _b(m, 3)
        r = spmm(m, b, schedule="merge_path", spec=TINY_GPU, engine="simt")
        np.testing.assert_allclose(r.output, m.to_dense() @ b, rtol=1e-9)

    def test_costs_scale_with_columns(self):
        c4 = spmm_costs(V100, 4)
        c8 = spmm_costs(V100, 8)
        assert c8.atom_cycles == pytest.approx(2 * c4.atom_cycles)
        assert c8.atom_bytes > c4.atom_bytes

    def test_elapsed_grows_with_columns(self):
        m = gen.poisson_random(500, 500, 8.0, seed=5)
        t4 = spmm(m, _b(m, 4)).elapsed_ms
        t32 = spmm(m, _b(m, 32)).elapsed_ms
        assert t32 > t4

    def test_rejects_mismatched_b(self):
        m = gen.diagonal(5)
        with pytest.raises(ValueError, match="dense matrix"):
            spmm(m, np.ones((4, 2)))

    def test_one_loop_away_from_spmv(self):
        """Listing 4's claim: SpMM with a single B column equals SpMV."""
        from repro.apps.spmv import spmv

        m = gen.poisson_random(30, 30, 3.0, seed=6)
        x = _b(m, 1)
        r_mm = spmm(m, x, schedule="merge_path")
        r_mv = spmv(m, x[:, 0], schedule="merge_path")
        np.testing.assert_allclose(r_mm.output[:, 0], r_mv.output, rtol=1e-9)


class TestSpgemm:
    def test_reference_matches_dense(self):
        a = gen.poisson_random(20, 15, 2.0, seed=7)
        b = gen.poisson_random(15, 25, 2.0, seed=8)
        c = spgemm_reference(a, b)
        np.testing.assert_allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    @pytest.mark.parametrize("schedule", ["merge_path", "group_mapped"])
    def test_app_correct(self, schedule):
        a = gen.poisson_random(18, 18, 2.5, seed=9)
        b = gen.poisson_random(18, 18, 2.5, seed=10)
        r = spgemm(a, b, schedule=schedule)
        np.testing.assert_allclose(
            r.output.to_dense(), a.to_dense() @ b.to_dense(), rtol=1e-9
        )

    def test_matches_scipy(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        a = gen.power_law(30, 30, 3.0, seed=11)
        b = gen.power_law(30, 30, 3.0, seed=12)
        sa = scipy_sparse.csr_matrix((a.values, a.col_indices, a.row_offsets), a.shape)
        sb = scipy_sparse.csr_matrix((b.values, b.col_indices, b.row_offsets), b.shape)
        r = spgemm(a, b)
        np.testing.assert_allclose(
            r.output.to_dense(), (sa @ sb).toarray(), rtol=1e-9
        )

    def test_two_kernel_stats_composed(self):
        a = gen.poisson_random(20, 20, 2.0, seed=13)
        r = spgemm(a, a)
        # The composed stats must exceed a single launch's overhead
        # (count kernel + compute kernel = two launches).
        assert r.stats.makespan_cycles > 2 * V100.costs.kernel_launch_cycles
        assert r.extras["intermediate_products"] >= r.output.nnz

    def test_dimension_check(self):
        a = gen.poisson_random(5, 6, 1.0, seed=14)
        with pytest.raises(ValueError, match="inner dimensions"):
            spgemm(a, a)

    def test_empty_product(self):
        from repro.sparse.csr import CsrMatrix

        a = CsrMatrix.empty((4, 4))
        r = spgemm(a, a)
        assert r.output.nnz == 0
