"""Tests for the SchedulePolicy hierarchy (fixed/heuristic/per-kernel/oracle)."""

import pickle

import pytest

from repro.apps.common import spmv_costs
from repro.core.heuristic import HeuristicParams, select_schedule
from repro.core.policy import (
    FixedPolicy,
    HeuristicPolicy,
    OracleBestPolicy,
    PerKernelPolicy,
    PolicyError,
    as_policy,
)
from repro.core.schedule import available_schedules, make_schedule
from repro.core.work import WorkSpec
from repro.engine import (
    DEFAULT_SEED,
    ExecutionContext,
    get_app,
    input_vector,
    run_app,
)
from repro.gpusim.arch import TINY_GPU, V100
from repro.sparse import generators as gen


@pytest.fixture
def matrix():
    return gen.power_law(64, 64, 4.0, 1.8, seed=11)


@pytest.fixture
def work(matrix):
    return WorkSpec.from_csr(matrix)


class TestAsPolicy:
    def test_coercions(self, work):
        assert as_policy("lrb") == FixedPolicy("lrb")
        assert isinstance(as_policy("heuristic"), HeuristicPolicy)
        assert isinstance(as_policy("oracle_best"), OracleBestPolicy)
        p = FixedPolicy("merge_path")
        assert as_policy(p) is p
        sched = make_schedule("merge_path", work, TINY_GPU)
        assert as_policy(sched).schedule is sched

    def test_rejects_garbage(self):
        with pytest.raises(TypeError, match="schedule policy"):
            as_policy(42)


class TestFixedPolicy:
    def test_select_returns_name(self, work):
        assert FixedPolicy("lrb").select(work, V100) == "lrb"

    def test_cache_token_for_instances_is_none(self, work):
        sched = make_schedule("merge_path", work, TINY_GPU)
        assert FixedPolicy(sched).cache_token() is None
        assert FixedPolicy("merge_path").cache_token() == ("fixed", "merge_path")


class TestHeuristicPolicy:
    def test_matches_selector(self, matrix, work):
        expected = select_schedule(matrix, HeuristicParams())
        assert HeuristicPolicy().select(work, V100, matrix=matrix) == expected

    def test_requires_matrix(self, work):
        with pytest.raises(PolicyError, match="requires the input matrix"):
            HeuristicPolicy().select(work, V100)

    def test_explicit_params_beat_options(self, matrix, work):
        # alpha below the matrix dims: always merge_path.
        strict = HeuristicParams(alpha=1, beta=1)
        chosen = HeuristicPolicy(strict).select(
            work, V100, matrix=matrix,
            schedule_options={"heuristic": HeuristicParams(alpha=10**6, beta=10**9)},
        )
        assert chosen == "merge_path"

    def test_params_from_schedule_options(self, matrix, work):
        # Huge alpha/beta force the small-matrix branch.
        loose = HeuristicParams(alpha=10**6, beta=10**9)
        chosen = HeuristicPolicy().select(
            work, V100, matrix=matrix, schedule_options={"heuristic": loose}
        )
        assert chosen == select_schedule(matrix, loose)


class TestPerKernelPolicy:
    def test_routes_by_kernel_label(self, work):
        policy = PerKernelPolicy({"count": "thread_mapped", "compute": "lrb"})
        assert policy.select(work, V100, kernel="count") == "thread_mapped"
        assert policy.select(work, V100, kernel="compute") == "lrb"

    def test_default_fallback(self, work):
        policy = PerKernelPolicy({"count": "lrb"}, default="merge_path")
        assert policy.select(work, V100, kernel="other") == "merge_path"

    def test_missing_kernel_fails_loudly(self, work):
        with pytest.raises(PolicyError, match="no entry for kernel"):
            PerKernelPolicy({"count": "lrb"}).select(work, V100, kernel="compute")

    def test_spgemm_passes_routed_independently(self, matrix):
        """The two SpGEMM passes (count/compute) really get their own
        schedules -- the multi-kernel acceptance path."""
        app = get_app("spgemm")
        problem = app.sweep_problem(matrix, DEFAULT_SEED)
        expected = app.oracle(problem)
        ctx = ExecutionContext(
            spec=TINY_GPU,
            policy=PerKernelPolicy({"count": "thread_mapped", "compute": "merge_path"}),
        )
        result = run_app(app, problem, ctx=ctx)
        assert app.match(result.output, expected)

    def test_traversal_advance_label(self, matrix):
        """BFS's frontier launches route through the 'advance' label."""
        app = get_app("bfs")
        problem = app.sweep_problem(matrix, DEFAULT_SEED)
        ctx = ExecutionContext(
            spec=TINY_GPU, policy=PerKernelPolicy({"advance": "merge_path"})
        )
        result = run_app(app, problem, ctx=ctx)
        assert app.match(result.output, app.oracle(problem))

    def test_picklable(self):
        policy = PerKernelPolicy({"a": "lrb"}, default=OracleBestPolicy())
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestOracleBestPolicy:
    def test_picks_exhaustive_min_cost(self, matrix, work):
        """The acceptance criterion: on a pinned fixture the policy's
        choice equals the argmin of exhaustively planning every
        registered schedule with the app's real costs."""
        costs = spmv_costs(V100)
        exhaustive = {}
        for name in available_schedules():
            try:
                sched = make_schedule(name, work, V100)
                exhaustive[name] = sched.plan(costs).elapsed_ms
            except Exception:
                continue
        best = min(sorted(exhaustive), key=lambda n: exhaustive[n])
        chosen = OracleBestPolicy().select(work, V100, costs=costs)
        assert chosen == best
        assert exhaustive[chosen] == min(exhaustive.values())

    def test_restricted_candidates(self, work):
        costs = spmv_costs(V100)
        names = ("thread_mapped", "merge_path")
        chosen = OracleBestPolicy(candidates=names).select(work, V100, costs=costs)
        assert chosen in names

    def test_app_run_is_at_least_as_fast_as_any_fixed(self, matrix):
        """End to end: oracle-best SpMV never loses to a fixed schedule."""
        from repro.apps.spmv import spmv

        x = input_vector(matrix.num_cols)
        oracle = spmv(matrix, x, ctx=ExecutionContext(policy=OracleBestPolicy()))
        for name in available_schedules():
            fixed = spmv(matrix, x, schedule=name)
            assert oracle.elapsed_ms <= fixed.elapsed_ms + 1e-12, name
        assert oracle.schedule in available_schedules()

    def test_deterministic(self, work):
        costs = spmv_costs(V100)
        picks = {OracleBestPolicy().select(work, V100, costs=costs)
                 for _ in range(3)}
        assert len(picks) == 1

    def test_empty_candidates_fail_loudly(self, work):
        with pytest.raises(PolicyError, match="no candidate"):
            OracleBestPolicy(candidates=("fictional",)).select(work, V100)

    def test_probe_costs_without_declared_costs(self, work):
        # Selection must still work before an app declares its costs.
        assert OracleBestPolicy().select(work, V100) in available_schedules()

    def test_probe_cache_keyed_by_schedule_options(self, work):
        """Regression: two runtimes sharing one plan cache but differing
        in schedule options must not answer each other's oracle probes
        (same geometry, different group_size => different plans)."""
        from repro.engine import PlanCache, Runtime, VectorEngine

        costs = spmv_costs(V100)
        eng = VectorEngine(plan_cache=PlanCache())
        rt_wide = Runtime(eng, schedule="group_mapped",
                          schedule_options={"group_size": 32})
        rt_narrow = Runtime(eng, schedule="group_mapped",
                            schedule_options={"group_size": 4})
        s_wide = rt_wide.schedule_for(work)
        s_narrow = rt_narrow.schedule_for(work)
        probe_wide = rt_wide._policy_planner()(s_wide, costs).elapsed_ms
        probe_narrow = rt_narrow._policy_planner()(s_narrow, costs).elapsed_ms
        assert probe_wide == s_wide.plan(costs).elapsed_ms
        assert probe_narrow == s_narrow.plan(costs).elapsed_ms
        assert probe_wide != probe_narrow
