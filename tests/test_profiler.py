"""Tests for profiling/reporting helpers."""

import pytest

from repro.gpusim.cost_model import KernelStats
from repro.gpusim.profiler import ProfileLog, geomean, summarize


def _stats(ms: float) -> KernelStats:
    return KernelStats(
        elapsed_ms=ms,
        makespan_cycles=ms * 1e6,
        grid_dim=1,
        block_dim=32,
        occupancy=0.5,
        simt_efficiency=0.9,
        utilization=0.7,
        tail_fraction=0.0,
        total_thread_cycles=1.0,
    )


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_ignores_nonpositive(self):
        assert geomean([2.0, 0.0, -1.0, 8.0]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])


class TestProfileLog:
    def _log(self) -> ProfileLog:
        log = ProfileLog()
        log.add("ours", "d1", _stats(1.0))
        log.add("ours", "d2", _stats(2.0))
        log.add("base", "d1", _stats(3.0))
        log.add("base", "d2", _stats(4.0))
        return log

    def test_kernels_in_insertion_order(self):
        assert self._log().kernels() == ["ours", "base"]

    def test_elapsed_map(self):
        assert self._log().elapsed("ours") == {"d1": 1.0, "d2": 2.0}

    def test_speedups(self):
        sp = self._log().speedups("ours", "base")
        assert sp == {"d1": 3.0, "d2": 2.0}

    def test_geomean_speedup(self):
        assert self._log().geomean_speedup("ours", "base") == pytest.approx(
            (3.0 * 2.0) ** 0.5
        )

    def test_win_fraction(self):
        log = self._log()
        assert log.win_fraction("ours", "base") == 1.0
        assert log.win_fraction("ours", "base", threshold=2.5) == 0.5

    def test_win_fraction_no_overlap_raises(self):
        log = ProfileLog()
        log.add("a", "d1", _stats(1.0))
        with pytest.raises(ValueError):
            log.win_fraction("a", "b")


class TestSummarize:
    def test_renders_columns(self):
        out = summarize(
            [{"name": "x", "val": 1.5}, {"name": "longer", "val": 0.00001}],
            ["name", "val"],
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in out
        assert "1.5" in out
        assert "e-05" in out  # tiny floats go scientific

    def test_missing_cells_blank(self):
        out = summarize([{"a": 1}], ["a", "b"])
        assert out.splitlines()[2].strip().startswith("1")
