"""Tests for the benchmark corpus."""

import pytest

from repro.sparse.corpus import SCALES, build_corpus, corpus_names, load_dataset


class TestNames:
    def test_names_stable_across_scales(self):
        assert corpus_names("smoke") == corpus_names("standard") == corpus_names("full")

    def test_enough_datasets(self):
        assert len(corpus_names()) >= 30

    def test_scales_tuple(self):
        assert SCALES == ("smoke", "standard", "full")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            corpus_names("huge")


class TestLoadDataset:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_deterministic(self):
        a = load_dataset("power_a21", "smoke")
        b = load_dataset("power_a21", "smoke")
        assert a.matrix == b.matrix

    def test_meta_populated(self):
        d = load_dataset("rmat_s", "smoke")
        assert d.meta["scale"] == "smoke"
        assert "cv" in d.meta
        assert d.family == "skewed"

    def test_scale_grows_matrices(self):
        small = load_dataset("uniform_8", "smoke")
        std = load_dataset("uniform_8", "standard")
        assert std.nnz > 4 * small.nnz

    def test_tiny_family_fixed_size(self):
        # Tiny matrices stay tiny at every scale (launch-overhead regime).
        assert (
            load_dataset("tiny_diag_32", "smoke").nnz
            == load_dataset("tiny_diag_32", "full").nnz
        )


class TestBuildCorpus:
    def test_full_build_smoke(self):
        corpus = build_corpus("smoke")
        assert len(corpus) == len(corpus_names())
        for d in corpus:
            d.matrix.validate()
            assert d.nnz > 0

    def test_family_filter(self):
        corpus = build_corpus("smoke", families=["spvec"])
        assert len(corpus) == 3
        assert all(d.cols == 1 for d in corpus)

    def test_limit(self):
        # Mirrors run.sh's "first N datasets" stop condition.
        corpus = build_corpus("smoke", limit=5)
        assert len(corpus) == 5

    def test_covers_imbalance_regimes(self):
        corpus = build_corpus("smoke")
        families = {d.family for d in corpus}
        assert {"tiny", "spvec", "regular", "mild", "skewed", "outlier"} <= families
        cvs = [d.meta["cv"] for d in corpus]
        assert min(cvs) < 0.1  # perfectly balanced exists
        assert max(cvs) > 2.0  # heavily skewed exists

    def test_nnz_spans_orders_of_magnitude(self):
        corpus = build_corpus("standard")
        nnzs = sorted(d.nnz for d in corpus)
        assert nnzs[0] < 100
        assert nnzs[-1] > 100_000
