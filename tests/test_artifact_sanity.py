"""The artifact's sanity check (paper appendix A.3.1).

The original: ``bin/loops.spmv.merge_path -m chesapeake.mtx --validate``
expecting ``Dimensions: 39 x 39 (340) / Errors: 0``.  Our stand-in
``datasets/chesapeake.mtx`` has the same dimensions and nnz.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.apps.spmv import spmv
from repro.baselines.reference import dense_spmv_oracle
from repro.sparse.convert import coo_to_csr
from repro.sparse.mtx_io import read_mtx

DATASET = Path(__file__).resolve().parent.parent / "datasets" / "chesapeake.mtx"


@pytest.fixture(scope="module")
def chesapeake():
    return coo_to_csr(read_mtx(DATASET))


class TestSanityCheck:
    def test_dataset_shipped(self):
        assert DATASET.exists()

    def test_dimensions_match_paper(self, chesapeake):
        # "Dimensions : 39 x 39 (340)"
        assert chesapeake.shape == (39, 39)
        assert chesapeake.nnz == 340

    def test_symmetric_expansion(self, chesapeake):
        d = chesapeake.to_dense()
        np.testing.assert_array_equal(d, d.T)

    def test_merge_path_spmv_zero_errors(self, chesapeake):
        # "Errors : 0" under --validate.
        x = np.random.default_rng(0).uniform(size=39)
        result = spmv(chesapeake, x, schedule="merge_path")
        errors = int(
            np.sum(~np.isclose(result.output, dense_spmv_oracle(chesapeake, x)))
        )
        assert errors == 0

    def test_elapsed_reported(self, chesapeake):
        # "Elapsed (ms): ..." -- a positive model time is reported.
        x = np.ones(39)
        result = spmv(chesapeake, x, schedule="merge_path")
        assert result.elapsed_ms > 0

    def test_all_schedules_validate(self, chesapeake):
        from repro.core.schedule import available_schedules

        x = np.random.default_rng(1).uniform(size=39)
        expected = dense_spmv_oracle(chesapeake, x)
        for name in available_schedules():
            result = spmv(chesapeake, x, schedule=name)
            np.testing.assert_allclose(result.output, expected, rtol=1e-9)
