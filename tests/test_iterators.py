"""Tests for the iterator vocabulary (repro.core.iterators)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.iterators import (
    ArrayIterator,
    ConstantIterator,
    CountingIterator,
    TransformIterator,
    ZipIterator,
    counting_iterator,
    make_transform_iterator,
)

indices = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=64)


class TestCountingIterator:
    def test_scalar(self):
        it = counting_iterator(5)
        assert it[0] == 5
        assert it[10] == 15

    @given(st.integers(-100, 100), indices)
    def test_vectorized_matches_scalar(self, first, idx):
        it = CountingIterator(first)
        arr = it[np.array(idx)]
        assert list(arr) == [it[i] for i in idx]

    def test_offset_add(self):
        assert (CountingIterator(3) + 4)[0] == 7

    def test_slice_rejected(self):
        with pytest.raises(TypeError):
            CountingIterator(0)[1:3]


class TestTransformIterator:
    def test_listing1_atoms_per_tile(self):
        # The paper's CSR atoms-per-tile iterator (Listing 1).
        row_offsets = np.array([0, 2, 2, 7, 9])
        it = make_transform_iterator(
            counting_iterator(0), lambda i: row_offsets[i + 1] - row_offsets[i]
        )
        assert [it[i] for i in range(4)] == [2, 0, 5, 2]

    @given(indices)
    def test_vectorized_matches_scalar(self, idx):
        it = TransformIterator(CountingIterator(0), lambda i: i * 3 + 1)
        arr = it[np.array(idx)]
        assert list(arr) == [it[i] for i in idx]

    def test_composition(self):
        inner = TransformIterator(CountingIterator(0), lambda i: i * 2)
        outer = TransformIterator(inner, lambda v: v + 1)
        assert outer[5] == 11


class TestConstantIterator:
    def test_scalar(self):
        assert ConstantIterator(42)[999] == 42

    def test_vectorized_shape(self):
        out = ConstantIterator(7)[np.arange(5)]
        np.testing.assert_array_equal(out, np.full(5, 7))


class TestArrayIterator:
    def test_wraps_array(self):
        it = ArrayIterator([10, 20, 30])
        assert it[1] == 20
        assert len(it) == 3

    @given(indices)
    def test_vectorized_gather(self, idx):
        base = np.arange(10_001) * 2
        it = ArrayIterator(base)
        np.testing.assert_array_equal(it[np.array(idx)], base[idx])


class TestZipIterator:
    def test_tuple_deref(self):
        z = ZipIterator(CountingIterator(0), ConstantIterator("x"))
        assert z[3] == (3, "x")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ZipIterator()
