"""Tests for the Table 1 lines-of-code measurement."""

from repro.evaluation.loc import (
    PAPER_TABLE1,
    count_loc,
    source_loc,
    table1_rows,
)


class TestCountLoc:
    def test_excludes_blanks_and_comments(self):
        src = """x = 1

# a comment
y = 2  # trailing comment
"""
        assert count_loc(src) == 2

    def test_excludes_docstrings(self):
        src = '''def f():
    """Docstring line.

    More docstring.
    """
    return 1
'''
        assert count_loc(src) == 2  # def + return

    def test_multiline_statement_counts_each_line(self):
        src = "x = (1 +\n     2 +\n     3)\n"
        assert count_loc(src) == 3

    def test_string_assignment_not_docstring(self):
        src = 'x = "hello"\n'
        assert count_loc(src) == 1

    def test_empty(self):
        assert count_loc("") == 0
        assert count_loc("# only comments\n\n") == 0


class TestSourceLoc:
    def test_counts_function(self):
        def sample():
            """Doc."""
            a = 1
            return a

        n = source_loc(sample)
        assert n == 3  # def, a = 1, return

    def test_larger_than_zero_for_schedules(self):
        from repro.core.schedules.merge_path import merge_path_partition

        assert source_loc(merge_path_partition) > 5


class TestTable1:
    def test_all_paper_rows_present(self):
        rows = table1_rows()
        assert {r.algorithm for r in rows} == set(PAPER_TABLE1)

    def test_measured_positive(self):
        for row in table1_rows():
            assert row.measured_ours > 0

    def test_paper_numbers_recorded(self):
        rows = {r.algorithm: r for r in table1_rows()}
        assert rows["merge_path"].paper_cub == 503
        assert rows["merge_path"].paper_ours == 36
        assert rows["thread_mapped"].paper_cub == 22
        assert rows["group_mapped"].paper_cub is None

    def test_merge_path_heavier_than_thread_mapped(self):
        # The qualitative Table 1 story: merge-path costs more schedule
        # code than thread-mapped, but far less than a hardwired kernel.
        rows = {r.algorithm: r for r in table1_rows()}
        assert rows["merge_path"].measured_ours > rows["thread_mapped"].measured_ours

    def test_warp_block_nearly_free(self):
        # Paper: warp- and block-mapped reuse the group machinery ("free").
        rows = {r.algorithm: r for r in table1_rows()}
        assert rows["warp_mapped"].measured_incremental <= 5
        assert rows["block_mapped"].measured_incremental <= 5

    def test_hardwired_baseline_much_larger(self):
        """The headline 14x claim, measured on this repo: the hardwired
        CUB-style SpMV file is much larger than the merge-path schedule's
        kernel-contributing code."""
        import sys
        from pathlib import Path

        import repro.baselines.cub_spmv  # noqa: F401  (ensure imported)

        path = Path(sys.modules["repro.baselines.cub_spmv"].__file__)
        hardwired = count_loc(path.read_text())
        rows = {r.algorithm: r for r in table1_rows()}
        # (The paper's 14x gap comes from CUB's fused dispatch machinery;
        # our hardwired model shares the simulator's folding helpers, so
        # the measured gap is smaller but still decisively > 1.)
        assert hardwired > 1.2 * rows["merge_path"].measured_ours
