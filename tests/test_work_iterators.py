"""Tests for the Listing 2 iterator-based WorkSpec constructor."""

import numpy as np
import pytest

from repro.core.iterators import (
    ArrayIterator,
    CountingIterator,
    TransformIterator,
    counting_iterator,
    make_transform_iterator,
)
from repro.core.work import WorkSpec


class TestFromIterators:
    def test_listing1_csr_construction(self):
        """Build a WorkSpec exactly as Listing 1 builds CSR iterators."""
        row_offsets = np.array([0, 2, 2, 7, 9], dtype=np.int64)
        nnz, rows = 9, 4
        atoms_iter = counting_iterator(0)
        tile_iter = counting_iterator(0)
        atoms_per_tile = make_transform_iterator(
            tile_iter, lambda i: row_offsets[i + 1] - row_offsets[i]
        )
        work = WorkSpec.from_iterators(atoms_iter, tile_iter, atoms_per_tile, nnz, rows)
        assert work.num_atoms == 9
        assert work.num_tiles == 4
        np.testing.assert_array_equal(work.tile_offsets, row_offsets)

    def test_array_iterator_counts(self):
        counts = ArrayIterator(np.array([3, 0, 2]))
        work = WorkSpec.from_iterators(
            CountingIterator(0), CountingIterator(0), counts, 5, 3
        )
        np.testing.assert_array_equal(work.atoms_per_tile(), [3, 0, 2])

    def test_scalar_only_iterator_fallback(self):
        """Iterators that reject array indexing still work (slow path)."""

        class ScalarOnly:
            def __getitem__(self, i):
                if isinstance(i, np.ndarray):
                    raise TypeError("scalar only")
                return 2

        work = WorkSpec.from_iterators(
            CountingIterator(0), CountingIterator(0), ScalarOnly(), 8, 4
        )
        np.testing.assert_array_equal(work.atoms_per_tile(), [2, 2, 2, 2])

    def test_count_mismatch_detected(self):
        with pytest.raises(ValueError, match="sums to"):
            WorkSpec.from_iterators(
                CountingIterator(0),
                CountingIterator(0),
                ArrayIterator([1, 1]),
                99,
                2,
            )

    def test_nonzero_based_iterators_rejected(self):
        with pytest.raises(ValueError, match="atom ids from 0"):
            WorkSpec.from_iterators(
                CountingIterator(5), CountingIterator(0), ArrayIterator([1]), 1, 1
            )
        with pytest.raises(ValueError, match="tile ids from 0"):
            WorkSpec.from_iterators(
                CountingIterator(0), CountingIterator(3), ArrayIterator([1]), 1, 1
            )

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            WorkSpec.from_iterators(
                CountingIterator(0), CountingIterator(0), ArrayIterator([1]), -1, 1
            )

    def test_custom_format_end_to_end(self):
        """A user-defined format (ELL) mapped through iterators, then run
        through a real schedule -- the full Section 3.1 user story."""
        from repro.core.schedule import make_schedule
        from repro.gpusim.arch import V100
        from repro.sparse import generators as gen
        from repro.sparse.ell import csr_to_ell

        csr = gen.poisson_random(50, 50, 4.0, seed=1)
        ell = csr_to_ell(csr)
        lengths = ell.row_lengths()
        work = WorkSpec.from_iterators(
            CountingIterator(0),
            CountingIterator(0),
            TransformIterator(CountingIterator(0), lambda i: lengths[i]),
            int(lengths.sum()),
            ell.num_rows,
        )
        sched = make_schedule("merge_path", work, V100)
        from repro.apps.common import spmv_costs

        assert sched.plan(spmv_costs(V100)).elapsed_ms > 0
