"""Tests for the analytic cost model (repro.gpusim.cost_model)."""

import numpy as np
import pytest

from repro.gpusim.arch import TINY_GPU, V100
from repro.gpusim.cost_model import (
    KernelStats,
    kernel_stats_from_thread_cycles,
    kernel_stats_from_warp_cycles,
    warp_fold,
)


class TestWarpFold:
    def test_takes_lockstep_max(self):
        tc = np.array([1.0, 9.0, 2.0, 3.0, 4.0, 4.0, 4.0, 4.0])
        np.testing.assert_array_equal(warp_fold(tc, 4), [9.0, 4.0])

    def test_pads_partial_warp(self):
        np.testing.assert_array_equal(warp_fold(np.array([5.0, 6.0]), 4), [6.0])

    def test_empty(self):
        assert warp_fold(np.array([]), 4).size == 0


class TestStatsFromThreadCycles:
    def test_rejects_too_many_entries(self):
        with pytest.raises(ValueError, match="thread cycle entries"):
            kernel_stats_from_thread_cycles(np.ones(100), 1, 8, TINY_GPU)

    def test_pads_short_input(self):
        s = kernel_stats_from_thread_cycles(np.ones(3), 1, 8, TINY_GPU)
        assert s.total_thread_cycles == pytest.approx(3.0)

    def test_skewed_slower_than_uniform_same_total(self):
        # 32 threads, same total work, one skewed distribution.
        uniform = np.full(32, 10.0)
        skewed = np.zeros(32)
        skewed[0] = 320.0
        su = kernel_stats_from_thread_cycles(uniform, 4, 8, TINY_GPU)
        ss = kernel_stats_from_thread_cycles(skewed, 4, 8, TINY_GPU)
        assert ss.elapsed_ms > su.elapsed_ms
        assert ss.simt_efficiency < su.simt_efficiency

    def test_min_body_cycles_floor_applies(self):
        s1 = kernel_stats_from_thread_cycles(np.ones(8), 1, 8, TINY_GPU)
        s2 = kernel_stats_from_thread_cycles(
            np.ones(8), 1, 8, TINY_GPU, min_body_cycles=1e6
        )
        assert s2.makespan_cycles == pytest.approx(
            1e6 + TINY_GPU.costs.kernel_launch_cycles
        )
        assert s2.elapsed_ms > s1.elapsed_ms

    def test_setup_cycles_added_per_warp(self):
        s1 = kernel_stats_from_thread_cycles(np.ones(8), 1, 8, TINY_GPU)
        s2 = kernel_stats_from_thread_cycles(
            np.ones(8), 1, 8, TINY_GPU, setup_cycles=50.0
        )
        assert s2.makespan_cycles > s1.makespan_cycles


class TestStatsFromWarpCycles:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="blocks"):
            kernel_stats_from_warp_cycles(np.ones((3, 2)), 2, 64, TINY_GPU)

    def test_occupancy_and_efficiency_bounds(self):
        s = kernel_stats_from_warp_cycles(np.ones((4, 2)), 4, 8, TINY_GPU)
        assert 0 <= s.occupancy <= 1
        assert 0 <= s.simt_efficiency <= 1
        assert 0 <= s.utilization <= 1

    def test_v100_large_launch(self):
        wc = np.random.default_rng(0).uniform(10, 100, size=(1000, 8))
        s = kernel_stats_from_warp_cycles(wc, 1000, 256, V100)
        assert s.elapsed_ms > 0
        assert s.grid_dim == 1000


class TestStatsComposition:
    def _mk(self, ms: float) -> KernelStats:
        return KernelStats(
            elapsed_ms=ms,
            makespan_cycles=ms * 1000,
            grid_dim=10,
            block_dim=128,
            occupancy=0.5,
            simt_efficiency=0.8,
            utilization=0.6,
            tail_fraction=0.1,
            total_thread_cycles=100.0,
        )

    def test_add_sums_elapsed(self):
        s = self._mk(1.0) + self._mk(2.0)
        assert s.elapsed_ms == pytest.approx(3.0)
        assert s.makespan_cycles == pytest.approx(3000.0)
        assert s.total_thread_cycles == pytest.approx(200.0)

    def test_add_blends_ratios(self):
        a, b = self._mk(1.0), self._mk(1.0)
        s = a + b
        assert s.occupancy == pytest.approx(0.5)
        assert s.simt_efficiency == pytest.approx(0.8)

    def test_add_type_error(self):
        with pytest.raises(TypeError):
            _ = self._mk(1.0) + 5  # type: ignore[operator]
