"""Tests for the plan cache's persistent (disk-backed) layer.

The disk layer must be *pure acceleration*: version mismatches,
corrupted files, digest collisions and concurrent writers can only ever
read as cache misses -- never as an error, never as a wrong plan.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.schedule import make_schedule
from repro.core.work import WorkSpec
from repro.engine import (
    CACHE_DIR_ENV,
    CACHE_FORMAT_VERSION,
    PlanCache,
    VectorEngine,
    configure_global_plan_cache,
    input_vector,
)
from repro.apps.common import spmv_costs
from repro.gpusim.arch import TINY_GPU
from repro.sparse import generators as gen

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture
def matrix():
    return gen.power_law(24, 24, 3.0, 1.9, seed=3)


def _plan_once(cache: PlanCache, matrix):
    work = WorkSpec.from_csr(matrix)
    sched = make_schedule("merge_path", work, TINY_GPU)
    costs = spmv_costs(TINY_GPU)
    return cache.plan(sched, costs, options_key=("merge_path",))


def _entry_files(cache_dir: Path) -> list[Path]:
    return sorted(cache_dir.glob("plan-*.pkl"))


class TestRoundTrip:
    def test_disk_round_trip_between_cache_instances(self, tmp_path, matrix):
        first = PlanCache(cache_dir=tmp_path)
        stats_cold = _plan_once(first, matrix)
        assert first.misses == 1 and first.disk_hits == 0
        assert len(_entry_files(tmp_path)) == 1

        # A brand-new cache (empty memory) over the same directory serves
        # the identical plan from disk.
        second = PlanCache(cache_dir=tmp_path)
        stats_warm = _plan_once(second, matrix)
        assert second.misses == 0
        assert second.hits == 1 and second.disk_hits == 1
        assert stats_warm == stats_cold  # every timing field identical

    def test_disk_hit_promotes_to_memory(self, tmp_path, matrix):
        _plan_once(PlanCache(cache_dir=tmp_path), matrix)  # seed the disk
        cache = PlanCache(cache_dir=tmp_path)
        _plan_once(cache, matrix)
        assert cache.disk_hits == 1
        _plan_once(cache, matrix)
        assert cache.hits == 2 and cache.disk_hits == 1  # second hit: memory

    def test_no_cache_dir_means_no_files(self, tmp_path, matrix):
        cache = PlanCache()
        _plan_once(cache, matrix)
        assert cache.cache_dir is None
        assert _entry_files(tmp_path) == []


class TestInvalidation:
    def test_version_mismatch_reads_as_miss(self, tmp_path, matrix):
        writer = PlanCache(cache_dir=tmp_path)
        stats = _plan_once(writer, matrix)
        (entry,) = _entry_files(tmp_path)
        payload = pickle.loads(entry.read_bytes())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        entry.write_bytes(pickle.dumps(payload))

        reader = PlanCache(cache_dir=tmp_path)
        replanned = _plan_once(reader, matrix)
        assert reader.disk_hits == 0 and reader.misses == 1
        assert replanned == stats  # planned live, same pure result

    @pytest.mark.parametrize(
        "garbage",
        [b"", b"not a pickle", pickle.dumps(["wrong", "shape"]),
         pickle.dumps({"version": CACHE_FORMAT_VERSION, "key": None, "stats": 42})],
        ids=["truncated", "non-pickle", "non-dict", "bad-stats"],
    )
    def test_corrupted_entry_falls_through_to_live_plan(
        self, tmp_path, matrix, garbage
    ):
        writer = PlanCache(cache_dir=tmp_path)
        stats = _plan_once(writer, matrix)
        (entry,) = _entry_files(tmp_path)
        entry.write_bytes(garbage)

        reader = PlanCache(cache_dir=tmp_path)
        replanned = _plan_once(reader, matrix)  # must not raise
        assert reader.disk_hits == 0 and reader.misses == 1
        assert replanned == stats

    def test_key_mismatch_in_payload_reads_as_miss(self, tmp_path, matrix):
        writer = PlanCache(cache_dir=tmp_path)
        _plan_once(writer, matrix)
        (entry,) = _entry_files(tmp_path)
        payload = pickle.loads(entry.read_bytes())
        payload["key"] = ("someone", "elses", "key")  # simulated collision
        entry.write_bytes(pickle.dumps(payload))

        reader = PlanCache(cache_dir=tmp_path)
        _plan_once(reader, matrix)
        assert reader.disk_hits == 0 and reader.misses == 1

    def test_clear_keeps_disk_entries(self, tmp_path, matrix):
        cache = PlanCache(cache_dir=tmp_path)
        _plan_once(cache, matrix)
        cache.clear()
        assert cache.info()["size"] == 0
        assert len(_entry_files(tmp_path)) == 1
        _plan_once(cache, matrix)
        assert cache.disk_hits == 1


class TestEngineIntegration:
    def test_vector_engine_persists_and_warm_starts(self, tmp_path, matrix):
        from repro.apps.spmv import spmv

        x = input_vector(matrix.num_cols)
        cold = VectorEngine(plan_cache=PlanCache(cache_dir=tmp_path))
        first = spmv(matrix, x, spec=TINY_GPU, engine=cold)

        warm = VectorEngine(plan_cache=PlanCache(cache_dir=tmp_path))
        second = spmv(matrix, x, spec=TINY_GPU, engine=warm)
        assert warm.plan_cache.disk_hits == 1
        assert second.stats == first.stats

    def test_configure_global_plan_cache_round_trips(self, tmp_path):
        cache = configure_global_plan_cache(tmp_path / "plans")
        try:
            assert cache.cache_dir == tmp_path / "plans"
            assert (tmp_path / "plans").is_dir()
        finally:
            configure_global_plan_cache(None)
        assert cache.cache_dir is None


class TestCrossProcess:
    """The acceptance check: a *fresh* process starts warm from disk."""

    def _sweep_info(self, cache_dir: Path) -> dict:
        script = (
            "import json, sys\n"
            "from repro.evaluation.harness import run_suite\n"
            "from repro.engine import global_plan_cache\n"
            "run_suite(['merge_path', 'thread_mapped'], scale='smoke',\n"
            "          limit=3, plan_cache_dir=sys.argv[1])\n"
            "print(json.dumps(global_plan_cache().info()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(CACHE_DIR_ENV, None)
        out = subprocess.run(
            [sys.executable, "-c", script, str(cache_dir)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        import json

        return json.loads(out.stdout.strip().splitlines()[-1])

    def test_second_process_sweep_hits_disk(self, tmp_path):
        cold = self._sweep_info(tmp_path)
        assert cold["misses"] > 0 and cold["disk_hits"] == 0
        warm = self._sweep_info(tmp_path)
        assert warm["misses"] == 0
        assert warm["disk_hits"] == cold["misses"]
        assert warm["hits"] > 0

    def test_unusable_env_dir_never_breaks_import(self, tmp_path):
        """The disk layer can only skip work: a bad REPRO_PLAN_CACHE_DIR
        must read as 'no persistence', not crash the package import."""
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        script = (
            "import json\n"
            "from repro.engine import global_plan_cache\n"
            "print(json.dumps(global_plan_cache().info()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env[CACHE_DIR_ENV] = str(blocker / "nested")  # path through a file
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        import json

        info = json.loads(out.stdout.strip().splitlines()[-1])
        assert info["cache_dir"] is None  # fell back to memory-only

    def test_env_var_attaches_global_cache(self, tmp_path):
        script = (
            "import json\n"
            "from repro.engine import global_plan_cache\n"
            "print(json.dumps(global_plan_cache().info()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env[CACHE_DIR_ENV] = str(tmp_path / "envcache")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        import json

        info = json.loads(out.stdout.strip().splitlines()[-1])
        assert info["cache_dir"] == str(tmp_path / "envcache")
