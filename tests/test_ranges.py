"""Tests for the CUDA-enabled ranges (repro.core.ranges)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.ranges import (
    InfiniteRange,
    StepRange,
    block_stride_range,
    grid_stride_range,
    infinite_range,
    step_range,
    warp_stride_range,
)


class _Ctx:
    def __init__(self, gtid, num_threads, thread_idx, block_dim, lane, ws):
        self.global_thread_id = gtid
        self.num_threads = num_threads
        self.thread_idx = thread_idx
        self.block_dim = block_dim
        self.lane_id = lane
        self.warp_size = ws


range_args = st.tuples(
    st.integers(-100, 100), st.integers(-100, 200), st.integers(1, 17)
)


class TestStepRange:
    def test_iterates(self):
        assert list(step_range(2, 10, 3)) == [2, 5, 8]

    def test_fluent_step_matches_listing2(self):
        # Listing 2: range(begin, end).step(stride)
        r = StepRange(0, 10).step(4)
        assert list(r) == [0, 4, 8]

    def test_stride_alias_matches_listing4(self):
        assert list(StepRange(0, 3).stride(1)) == [0, 1, 2]

    def test_empty(self):
        assert len(step_range(5, 5)) == 0
        assert list(step_range(7, 3)) == []

    def test_contains(self):
        r = step_range(2, 20, 3)
        assert 8 in r
        assert 9 not in r
        assert 20 not in r

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            step_range(0, 10, 0)

    @given(range_args)
    def test_len_matches_iteration(self, args):
        b, e, s = args
        r = StepRange(b, e, s)
        assert len(r) == len(list(r))

    @given(range_args)
    def test_to_array_matches_iteration(self, args):
        b, e, s = args
        r = StepRange(b, e, s)
        np.testing.assert_array_equal(r.to_array(), list(r))

    def test_equality_and_hash(self):
        assert step_range(0, 10, 2) == step_range(0, 10, 2)
        assert step_range(0, 0) == step_range(5, 3)  # both empty
        assert hash(step_range(4, 2)) == hash(step_range(9, 1))


class TestInfiniteRange:
    def test_take(self):
        assert list(infinite_range(3, 2).take(4)) == [3, 5, 7, 9]

    def test_take_zero(self):
        assert list(infinite_range().take(0)) == []

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            infinite_range().take(-1)

    def test_persistent_kernel_loop(self):
        # The persistent-kernel idiom: iterate until converged, then break.
        seen = []
        for i in InfiniteRange():
            seen.append(i)
            if i >= 5:
                break
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            InfiniteRange(0, 0)


class TestStrideRanges:
    def test_grid_stride_partitions_work(self):
        # Every element visited exactly once across the launch.
        n_threads, end = 8, 45
        seen = []
        for t in range(n_threads):
            ctx = _Ctx(t, n_threads, t, 8, t % 4, 4)
            seen.extend(grid_stride_range(ctx, 0, end))
        assert sorted(seen) == list(range(end))

    def test_block_stride(self):
        ctx = _Ctx(10, 64, 2, 8, 2, 4)
        assert list(block_stride_range(ctx, 0, 20)) == [2, 10, 18]

    def test_warp_stride(self):
        ctx = _Ctx(10, 64, 2, 8, 2, 4)
        assert list(warp_stride_range(ctx, 0, 12)) == [2, 6, 10]
