"""Tests for the SpMV application under every schedule and engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.spmv import spmv, spmv_reference
from repro.core.schedule import available_schedules, make_schedule
from repro.core.work import WorkSpec
from repro.gpusim.arch import AMD_WARP64, TINY_GPU, V100
from repro.sparse import generators as gen
from repro.sparse.csr import CsrMatrix

ALL = sorted(available_schedules())


def _x(matrix, seed=3):
    return np.random.default_rng(seed).uniform(-1, 1, size=matrix.num_cols)


class TestReference:
    def test_matches_dense(self):
        m = gen.power_law(40, 40, 4.0, seed=1)
        x = _x(m)
        np.testing.assert_allclose(spmv_reference(m, x), m.to_dense() @ x)

    def test_matches_scipy(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        m = gen.rmat(6, 6, seed=2)
        x = _x(m)
        s = scipy_sparse.csr_matrix(
            (m.values, m.col_indices, m.row_offsets), shape=m.shape
        )
        np.testing.assert_allclose(spmv_reference(m, x), s @ x)

    def test_rejects_bad_x(self):
        m = gen.diagonal(5)
        with pytest.raises(ValueError, match="length 5"):
            spmv_reference(m, np.ones(4))


class TestVectorEngine:
    @pytest.mark.parametrize("schedule", ALL + ["heuristic"])
    def test_correct_under_every_schedule(self, schedule):
        m = gen.power_law(60, 60, 5.0, seed=4)
        x = _x(m)
        r = spmv(m, x, schedule=schedule)
        np.testing.assert_allclose(r.output, m.to_dense() @ x, rtol=1e-9)
        assert r.elapsed_ms > 0

    def test_heuristic_reports_chosen_schedule(self):
        small = gen.uniform_random(50, 50, 2, seed=5)
        big = gen.poisson_random(5000, 5000, 10.0, seed=5)
        assert spmv(small, _x(small), schedule="heuristic").schedule == "thread_mapped"
        assert spmv(big, _x(big), schedule="heuristic").schedule == "merge_path"

    def test_schedule_instance_accepted(self):
        m = gen.poisson_random(40, 40, 3.0, seed=6)
        work = WorkSpec.from_csr(m)
        sched = make_schedule("merge_path", work, V100)
        r = spmv(m, _x(m), schedule=sched)
        assert r.schedule == "merge_path"

    def test_empty_matrix(self):
        m = CsrMatrix.empty((4, 4))
        r = spmv(m, np.ones(4))
        np.testing.assert_array_equal(r.output, np.zeros(4))

    def test_unknown_engine(self):
        m = gen.diagonal(4)
        with pytest.raises(ValueError, match="engine"):
            spmv(m, np.ones(4), engine="quantum")

    def test_unknown_schedule(self):
        m = gen.diagonal(4)
        with pytest.raises(KeyError, match="unknown schedule"):
            spmv(m, np.ones(4), schedule="magic")

    @given(
        rows=st.integers(1, 25),
        cols=st.integers(1, 25),
        mean=st.floats(0.5, 5.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_random_matrices(self, rows, cols, mean, seed):
        m = gen.poisson_random(rows, cols, mean, seed=seed)
        x = _x(m, seed)
        for schedule in ("thread_mapped", "merge_path", "group_mapped"):
            r = spmv(m, x, schedule=schedule)
            np.testing.assert_allclose(
                r.output, m.to_dense() @ x, rtol=1e-9, atol=1e-12
            )


class TestSimtEngine:
    @pytest.mark.parametrize("schedule", ALL)
    def test_interpreted_matches_reference(self, schedule):
        m = gen.power_law(48, 48, 3.0, seed=7)
        x = _x(m)
        r = spmv(m, x, schedule=schedule, spec=TINY_GPU, engine="simt")
        np.testing.assert_allclose(r.output, m.to_dense() @ x, rtol=1e-9)

    def test_simt_stats_have_engine_tag(self):
        m = gen.diagonal(16)
        r = spmv(m, np.ones(16), schedule="thread_mapped", spec=TINY_GPU, engine="simt")
        assert r.stats.extras["engine"] == "simt"


class TestPerformanceShape:
    """Relative-performance claims of the paper, at the app level."""

    def test_merge_path_wins_on_skew(self):
        m = gen.dense_row_outliers(1000, 1000, 2, 3, 900, seed=8)
        x = _x(m)
        t_thread = spmv(m, x, schedule="thread_mapped").elapsed_ms
        t_merge = spmv(m, x, schedule="merge_path").elapsed_ms
        assert t_merge < t_thread

    def test_thread_mapped_fine_on_diagonal(self):
        m = gen.diagonal(2000, seed=8)
        x = _x(m)
        t_thread = spmv(m, x, schedule="thread_mapped").elapsed_ms
        t_merge = spmv(m, x, schedule="merge_path").elapsed_ms
        assert t_thread <= t_merge * 1.25

    def test_heuristic_never_much_worse_than_best(self):
        for name in ("tiny_power_256", "small_uniform_1k"):
            from repro.sparse.corpus import load_dataset

            m = load_dataset(name, "smoke").matrix
            x = _x(m)
            times = {
                s: spmv(m, x, schedule=s).elapsed_ms
                for s in ("thread_mapped", "group_mapped", "merge_path")
            }
            t_heur = spmv(m, x, schedule="heuristic").elapsed_ms
            assert t_heur <= 1.6 * min(times.values())

    def test_warp64_spec_runs(self):
        m = gen.poisson_random(100, 100, 4.0, seed=9)
        r = spmv(m, _x(m), schedule="group_mapped", spec=AMD_WARP64)
        np.testing.assert_allclose(r.output, m.to_dense() @ _x(m), rtol=1e-9)
