"""Tests for the append-only single-file plan store (journal layout).

Contract mirrors the per-file disk layer: the store is *pure
acceleration*.  Truncated tails, corrupt records, version bumps, foreign
files and concurrent writers can only ever read as misses -- never as an
error, never as a wrong plan.
"""

from __future__ import annotations

import os
import pickle
import struct
import subprocess
import sys
import threading
import zlib
from pathlib import Path

import pytest

from repro.apps.common import spmv_costs
from repro.core.schedule import make_schedule
from repro.core.work import WorkSpec
from repro.engine import (
    PLAN_STORE_ENV,
    PlanCache,
    PlanStore,
    configure_global_plan_cache,
)
from repro.engine.plan_store import STORE_MAGIC, _HEADER, _RECORD
from repro.gpusim.arch import TINY_GPU
from repro.sparse import generators as gen

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def _record_bytes(key, value) -> bytes:
    payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
    return _RECORD.pack(len(payload), zlib.crc32(payload)) + payload


class TestRoundTrip:
    def test_put_get_same_instance(self, tmp_path):
        store = PlanStore(tmp_path / "plans.journal")
        store.put(("k", 1), {"v": 1})
        assert store.get(("k", 1)) == {"v": 1}
        assert store.get(("missing",)) is None
        assert len(store) == 1

    def test_journal_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "plans.journal"
        writer = PlanStore(path)
        writer.put(("a",), 1)
        writer.put(("b",), {"nested": [1, 2]})
        writer.close()

        reader = PlanStore(path)
        assert reader.get(("a",)) == 1
        assert reader.get(("b",)) == {"nested": [1, 2]}
        assert len(reader) == 2
        # One file on disk, nothing else.
        assert [p.name for p in tmp_path.iterdir()] == ["plans.journal"]

    def test_newest_record_wins(self, tmp_path):
        path = tmp_path / "plans.journal"
        store = PlanStore(path)
        for v in range(5):
            store.put(("k",), v)
        assert store.get(("k",)) == 4
        assert store.dead_records == 4
        store.close()
        assert PlanStore(path).get(("k",)) == 4

    def test_closed_store_rejects_puts(self, tmp_path):
        store = PlanStore(tmp_path / "s.journal")
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.put(("k",), 1)


class TestDamageTolerance:
    def _seeded(self, tmp_path) -> Path:
        path = tmp_path / "plans.journal"
        store = PlanStore(path)
        store.put(("a",), 1)
        store.put(("b",), 2)
        store.close()
        return path

    def test_truncated_tail_reads_fall_through(self, tmp_path):
        path = self._seeded(tmp_path)
        with open(path, "ab") as fh:
            fh.write(_record_bytes(("c",), 3)[:-5])  # writer died mid-append

        store = PlanStore(path)
        assert store.scan_damage
        assert store.get(("a",)) == 1 and store.get(("b",)) == 2
        assert store.get(("c",)) is None  # falls through to live planning

    def test_append_after_truncated_tail_recovers(self, tmp_path):
        path = self._seeded(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"\x99\x00\x00\x00partial")
        store = PlanStore(path)
        store.put(("c",), 3)  # truncates the garbage, then appends
        store.close()
        fresh = PlanStore(path)
        assert not fresh.scan_damage
        assert [fresh.get(k) for k in [("a",), ("b",), ("c",)]] == [1, 2, 3]

    def test_corrupt_record_stops_scan_benignly(self, tmp_path):
        path = tmp_path / "plans.journal"
        store = PlanStore(path)
        store.put(("a",), 1)
        offset_after_a = os.path.getsize(path)
        store.put(("b",), 2)
        store.put(("c",), 3)
        store.close()
        # Flip one payload byte of record "b": CRC breaks, framing after
        # it cannot be trusted, so "b" and "c" read as misses while "a"
        # still serves.
        data = bytearray(path.read_bytes())
        data[offset_after_a + _RECORD.size + 2] ^= 0xFF
        path.write_bytes(bytes(data))

        reader = PlanStore(path)
        assert reader.scan_damage
        assert reader.get(("a",)) == 1
        assert reader.get(("b",)) is None and reader.get(("c",)) is None

    def test_foreign_file_reads_cold_and_rotates_on_put(self, tmp_path):
        path = tmp_path / "plans.journal"
        path.write_bytes(b"this is not a plan store at all")
        store = PlanStore(path)
        assert len(store) == 0
        assert store.get(("a",)) is None
        store.put(("a",), 1)  # rotates to a fresh journal
        store.close()
        fresh = PlanStore(path)
        assert fresh.get(("a",)) == 1 and not fresh.scan_damage

    def test_version_bump_reads_cold(self, tmp_path):
        path = tmp_path / "plans.journal"
        store = PlanStore(path)
        store.put(("a",), 1)
        store.close()
        data = bytearray(path.read_bytes())
        data[: _HEADER.size] = _HEADER.pack(STORE_MAGIC, 999)
        path.write_bytes(bytes(data))
        assert len(PlanStore(path)) == 0

    def test_get_reverifies_crc(self, tmp_path):
        path = tmp_path / "plans.journal"
        store = PlanStore(path)
        store.put(("a",), 1)
        # Corrupt the payload *behind the live index*: the read-time CRC
        # check must degrade to a miss, not return garbage.
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(("a",)) is None
        assert len(store) == 0  # stale index entry dropped


class TestCompaction:
    def test_compaction_keeps_newest_record_per_key(self, tmp_path):
        path = tmp_path / "plans.journal"
        store = PlanStore(path)
        for v in range(10):
            store.put(("k", v % 2), v)
        size_before = os.path.getsize(path)
        dropped = store.compact()
        assert dropped == 8
        assert os.path.getsize(path) < size_before
        assert store.get(("k", 0)) == 8 and store.get(("k", 1)) == 9
        assert store.dead_records == 0
        store.close()
        fresh = PlanStore(path)
        assert len(fresh) == 2
        assert fresh.get(("k", 0)) == 8 and fresh.get(("k", 1)) == 9

    def test_store_usable_after_compaction(self, tmp_path):
        store = PlanStore(tmp_path / "plans.journal")
        store.put(("a",), 1)
        store.compact()
        store.put(("b",), 2)
        assert store.get(("a",)) == 1 and store.get(("b",)) == 2


class TestAutoCompaction:
    def test_put_auto_compacts_past_the_dead_ratio(self, tmp_path):
        from repro.engine.plan_store import AUTO_COMPACT_MIN_DEAD

        path = tmp_path / "plans.journal"
        store = PlanStore(path)
        # Rewrite one key until the dead-record floor is crossed; with
        # the default ratio (0.5) the journal then compacts itself.
        for v in range(AUTO_COMPACT_MIN_DEAD + 2):
            store.put(("hot",), v)
        assert store.auto_compactions >= 1
        assert store.dead_records < AUTO_COMPACT_MIN_DEAD
        assert store.get(("hot",)) == AUTO_COMPACT_MIN_DEAD + 1
        assert store.info()["auto_compactions"] == store.auto_compactions

    def test_small_journals_never_auto_compact(self, tmp_path):
        """Ratio alone would thrash tiny journals ("50% dead" after two
        puts of one key); the dead-record floor keeps them alone."""
        store = PlanStore(tmp_path / "plans.journal")
        for v in range(10):
            store.put(("k",), v)
        assert store.auto_compactions == 0
        assert store.dead_records == 9

    def test_non_positive_ratio_disables_auto_compaction(self, tmp_path):
        from repro.engine.plan_store import AUTO_COMPACT_MIN_DEAD

        store = PlanStore(tmp_path / "plans.journal", compact_ratio=0)
        for v in range(AUTO_COMPACT_MIN_DEAD + 16):
            store.put(("k",), v)
        assert store.auto_compactions == 0
        assert store.dead_records == AUTO_COMPACT_MIN_DEAD + 15

    def test_ratio_env_knob(self, tmp_path, monkeypatch):
        from repro.engine.plan_store import PLAN_STORE_COMPACT_RATIO_ENV

        monkeypatch.setenv(PLAN_STORE_COMPACT_RATIO_ENV, "0.25")
        assert PlanStore(tmp_path / "a.journal").compact_ratio == 0.25
        monkeypatch.setenv(PLAN_STORE_COMPACT_RATIO_ENV, "0")
        assert PlanStore(tmp_path / "b.journal").compact_ratio == 0

    def test_malformed_ratio_env_warns_and_defaults(self, tmp_path, monkeypatch):
        from repro.engine.plan_store import (
            DEFAULT_COMPACT_RATIO,
            PLAN_STORE_COMPACT_RATIO_ENV,
        )

        monkeypatch.setenv(PLAN_STORE_COMPACT_RATIO_ENV, "half")
        with pytest.warns(RuntimeWarning, match="COMPACT_RATIO"):
            store = PlanStore(tmp_path / "plans.journal")
        assert store.compact_ratio == DEFAULT_COMPACT_RATIO

    def test_explicit_ratio_overrides_env(self, tmp_path, monkeypatch):
        from repro.engine.plan_store import PLAN_STORE_COMPACT_RATIO_ENV

        monkeypatch.setenv(PLAN_STORE_COMPACT_RATIO_ENV, "0.9")
        store = PlanStore(tmp_path / "plans.journal", compact_ratio=0.1)
        assert store.compact_ratio == 0.1


class TestConcurrentWriters:
    def test_threaded_writers_interleave_benignly(self, tmp_path):
        path = tmp_path / "plans.journal"
        stores = [PlanStore(path) for _ in range(2)]

        def write(store, base):
            for i in range(50):
                store.put((base, i), {"writer": base, "i": i})

        threads = [
            threading.Thread(target=write, args=(s, n))
            for n, s in enumerate(stores)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for s in stores:
            s.close()

        reader = PlanStore(path)
        assert not reader.scan_damage
        assert len(reader) == 100
        for base in (0, 1):
            for i in range(50):
                assert reader.get((base, i)) == {"writer": base, "i": i}

    def test_process_writers_interleave_benignly(self, tmp_path):
        path = tmp_path / "plans.journal"
        script = (
            "import sys\n"
            "from repro.engine import PlanStore\n"
            "store = PlanStore(sys.argv[1])\n"
            "base = sys.argv[2]\n"
            "for i in range(40):\n"
            "    store.put((base, i), i)\n"
            "store.close()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), base], env=env
            )
            for base in ("x", "y")
        ]
        assert all(p.wait() == 0 for p in procs)

        reader = PlanStore(path)
        assert not reader.scan_damage
        assert len(reader) == 80
        assert reader.get(("x", 39)) == 39 and reader.get(("y", 0)) == 0


@pytest.fixture
def matrix():
    return gen.power_law(24, 24, 3.0, 1.9, seed=3)


def _plan_once(cache: PlanCache, matrix):
    work = WorkSpec.from_csr(matrix)
    sched = make_schedule("merge_path", work, TINY_GPU)
    return cache.plan(sched, spmv_costs(TINY_GPU), options_key=("merge_path",))


class TestPlanCacheIntegration:
    def test_store_backed_cache_round_trips(self, tmp_path, matrix):
        path = tmp_path / "plans.journal"
        cold = PlanCache(store_path=path)
        stats = _plan_once(cold, matrix)
        assert cold.misses == 1 and cold.disk_hits == 0

        warm = PlanCache(store_path=path)
        replayed = _plan_once(warm, matrix)
        assert warm.misses == 0 and warm.disk_hits == 1
        assert replayed == stats
        assert warm.info()["store_path"] == str(path)
        assert warm.info()["store_records"] == 1
        assert path.is_file()
        assert not list(tmp_path.glob("plan-*.pkl"))  # no per-file layout

    def test_cache_dir_and_store_path_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            PlanCache(cache_dir=tmp_path / "d", store_path=tmp_path / "s")
        with pytest.raises(ValueError, match="not both"):
            configure_global_plan_cache(
                tmp_path / "d", store_path=tmp_path / "s"
            )

    def test_attaching_store_detaches_dir_and_vice_versa(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path / "d")
        cache.set_store_path(tmp_path / "s.journal")
        assert cache.cache_dir is None
        assert cache.store_path == tmp_path / "s.journal"
        cache.set_cache_dir(tmp_path / "d2")
        assert cache.store_path is None and cache.cache_dir == tmp_path / "d2"

    def test_reattaching_same_store_is_a_noop(self, tmp_path, matrix):
        path = tmp_path / "plans.journal"
        cache = PlanCache(store_path=path)
        _plan_once(cache, matrix)
        store = cache.store
        cache.set_store_path(path)  # what warm pool workers do per shard
        assert cache.store is store  # same open journal, index kept

    def test_configure_global_with_store(self, tmp_path):
        cache = configure_global_plan_cache(store_path=tmp_path / "s.journal")
        try:
            assert cache.store_path == tmp_path / "s.journal"
        finally:
            configure_global_plan_cache(None)
        assert cache.store_path is None


class TestCrossProcess:
    def _sweep_info(self, store_path: Path) -> dict:
        script = (
            "import json, sys\n"
            "from repro.evaluation.harness import run_suite\n"
            "from repro.engine import global_plan_cache\n"
            "run_suite(['merge_path', 'thread_mapped'], scale='smoke',\n"
            "          limit=3, plan_store=sys.argv[1])\n"
            "print(json.dumps(global_plan_cache().info()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(PLAN_STORE_ENV, None)
        out = subprocess.run(
            [sys.executable, "-c", script, str(store_path)],
            capture_output=True, text=True, env=env, check=True,
        )
        import json

        return json.loads(out.stdout.strip().splitlines()[-1])

    def test_fresh_process_starts_warm_from_store(self, tmp_path):
        store_path = tmp_path / "plans.journal"
        cold = self._sweep_info(store_path)
        assert cold["misses"] > 0 and cold["disk_hits"] == 0
        warm = self._sweep_info(store_path)
        assert warm["misses"] == 0
        assert warm["disk_hits"] == cold["misses"]  # misses avoided
        assert [p.name for p in tmp_path.iterdir()] == ["plans.journal"]

    def test_env_var_attaches_store(self, tmp_path):
        script = (
            "import json\n"
            "from repro.engine import global_plan_cache\n"
            "print(json.dumps(global_plan_cache().info()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env[PLAN_STORE_ENV] = str(tmp_path / "env.journal")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        import json

        info = json.loads(out.stdout.strip().splitlines()[-1])
        assert info["store_path"] == str(tmp_path / "env.journal")

    def test_unusable_env_store_never_breaks_import(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        script = (
            "import json\n"
            "from repro.engine import global_plan_cache\n"
            "print(json.dumps(global_plan_cache().info()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env[PLAN_STORE_ENV] = str(blocker / "nested.journal")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        import json

        info = json.loads(out.stdout.strip().splitlines()[-1])
        assert info["store_path"] is None  # fell back to memory-only

    def test_struct_layout_stable(self):
        """The on-disk framing is load-bearing; freeze its sizes."""
        assert _HEADER.size == 12
        assert _RECORD.size == 8
        assert struct.calcsize("<8sI") == 12
