"""Tests for the dynamic (persistent-kernel, queue-based) schedule."""

import numpy as np
import pytest

from repro.apps.common import spmv_costs
from repro.core.schedule import LaunchParams, make_schedule
from repro.core.schedules.dynamic_queue import DynamicQueueSchedule
from repro.core.work import WorkSpec
from repro.gpusim.arch import TINY_GPU, V100

from conftest import FakeCtx


def _work(counts):
    return WorkSpec.from_counts(counts)


class TestQueueSemantics:
    def test_chunks_cover_tiles(self):
        sched = DynamicQueueSchedule(
            _work([1] * 10), TINY_GPU, LaunchParams(1, 8), chunk_size=3
        )
        assert sched.num_chunks() == 4
        spans = [sched.chunk_tiles(c) for c in range(4)]
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_pops_are_exactly_once(self):
        launch = LaunchParams(2, 8)
        sched = DynamicQueueSchedule(
            _work([2, 5, 0, 3, 1, 1, 4, 2]), TINY_GPU, launch, chunk_size=2
        )
        seen = []
        for t in range(launch.num_threads):
            ctx = FakeCtx(t, launch.num_threads)
            seen.extend(sched.tiles(ctx))
        assert sorted(seen) == list(range(8))

    def test_reset_queue_rearms(self):
        launch = LaunchParams(1, 4)
        sched = DynamicQueueSchedule(_work([1, 1]), TINY_GPU, launch)
        list(sched.tiles(FakeCtx(0, 4)))
        assert list(sched.tiles(FakeCtx(1, 4))) == []  # drained
        sched.reset_queue()
        assert list(sched.tiles(FakeCtx(1, 4))) == [0, 1]

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError, match="chunk_size"):
            DynamicQueueSchedule(
                _work([1]), TINY_GPU, LaunchParams(1, 4), chunk_size=0
            )

    def test_persistent_launch_capped_at_residency(self):
        work = _work([1] * 10_000_000)
        launch = DynamicQueueSchedule.default_launch(work, V100)
        resident = V100.resident_blocks_per_sm(launch.block_dim) * V100.num_sms
        assert launch.grid_dim <= resident


class TestDynamicBalancing:
    def test_immune_to_adversarial_striding(self):
        """An input whose giant tiles land, round after round, on the
        *same thread* under round-robin striding: static thread-mapped
        serializes every giant on one worker; the dynamic queue spreads
        them as workers free up."""
        costs = spmv_costs(V100)
        launch = LaunchParams(grid_dim=4, block_dim=256)  # T = 1024 threads
        n_threads = launch.num_threads
        rounds = 8
        counts = np.ones(n_threads * rounds, dtype=np.int64)
        counts[::n_threads] = 20_000  # thread 0 draws a giant every round
        work = _work(counts)
        t_static = (
            make_schedule("thread_mapped", work, V100, launch).plan(costs).elapsed_ms
        )
        t_dynamic = (
            DynamicQueueSchedule(work, V100, launch, chunk_size=1)
            .plan(costs)
            .elapsed_ms
        )
        assert t_dynamic < 0.5 * t_static

    def test_smaller_chunks_balance_better_on_skew(self):
        costs = spmv_costs(V100)
        counts = np.concatenate([np.full(64, 5000), np.full(10_000, 2)])
        work = _work(counts)
        launch = LaunchParams(grid_dim=64, block_dim=64)
        t_small = DynamicQueueSchedule(work, V100, launch, chunk_size=1).plan(costs)
        t_huge = DynamicQueueSchedule(work, V100, launch, chunk_size=2048).plan(costs)
        assert t_small.elapsed_ms <= t_huge.elapsed_ms

    def test_pop_atomic_charged(self):
        """On a uniform workload with one tile per worker, the queue
        schedule's warp time exceeds static thread-mapped's by exactly
        the pop overhead."""
        costs = spmv_costs(V100)
        launch = LaunchParams(4, 64)
        work = _work([3] * launch.num_threads)
        dynamic = DynamicQueueSchedule(work, V100, launch, chunk_size=1)
        static = make_schedule("thread_mapped", work, V100, launch)
        d = dynamic.warp_cycles(costs)
        s = static.warp_cycles(costs)
        np.testing.assert_allclose(d, s + V100.costs.atomic)


class TestSimtExecution:
    def test_spmv_correct_via_interpreter(self):
        from repro.apps.spmv import spmv
        from repro.sparse import generators as gen

        m = gen.power_law(40, 40, 3.0, seed=1)
        x = np.random.default_rng(2).uniform(size=40)
        r = spmv(m, x, schedule="dynamic_queue", spec=TINY_GPU, engine="simt")
        np.testing.assert_allclose(r.output, m.to_dense() @ x, rtol=1e-9)
