"""Tests for the multi-tenant sweep service (``repro serve``).

Most tests run the service with ``width=0`` (serial in-process unit
execution) on an ephemeral port: the protocol, admission, fairness and
drain machinery are identical to the pooled daemon, without paying
process-pool spawns per test.  The pooled path gets its own crash test.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.evaluation.harness import run_suite
from repro.service import (
    JobRejected,
    ResultsJournal,
    SweepClient,
    SweepService,
)
from repro.service.protocol import row_from_wire, row_to_wire

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

SMOKE_JOB = {"app": "spmv", "kernels": ["merge_path"], "scale": "smoke",
             "limit": 2}


def _kill_worker(_):
    """Simulate a worker crash (module-level: picklable by reference)."""
    import os

    os._exit(1)


def _start(svc: SweepService) -> tuple[str, int]:
    svc.start_background()
    return svc.wait_ready()


def _stop(svc: SweepService) -> None:
    svc.request_drain()
    svc.join()


@pytest.fixture
def service():
    svc = SweepService(width=0, queue_depth=8)
    yield svc
    if svc._thread is not None and svc._thread.is_alive():
        _stop(svc)


class TestProtocolBasics:
    def test_hello_ping_info(self, service):
        host, port = _start(service)
        with SweepClient(host, port, timeout=30) as client:
            assert client.server_hello["version"] == 1
            assert client.ping()
            info = client.info()
            assert info["executor"] == {"mode": "serial"}
            assert info["pending"] == 0
        _stop(service)

    def test_row_wire_roundtrip_preserves_equality(self):
        rows = run_suite(["merge_path"], scale="smoke", limit=1,
                         executor="serial")
        rebuilt = [row_from_wire(json.loads(
            json.dumps(row_to_wire(r)))) for r in rows]
        assert rebuilt == rows

    def test_unknown_op_keeps_connection_alive(self, service):
        host, port = _start(service)
        with SweepClient(host, port, timeout=30) as client:
            client._send_message({"op": "frobnicate"})
            answer = client._read_message()
            assert answer["type"] == "error"
            assert client.ping()  # still usable
        _stop(service)


class TestRoundTrip:
    def test_rows_bit_identical_to_direct_run_suite(self, service):
        host, port = _start(service)
        with SweepClient(host, port, timeout=60) as client:
            result = client.run(dict(SMOKE_JOB, kernels=[
                "merge_path", "thread_mapped"]))
        direct = run_suite(["merge_path", "thread_mapped"], scale="smoke",
                           limit=2, executor="serial")
        assert result.ok
        assert result.rows == direct  # SweepRow eq (meta excluded)
        _stop(service)

    def test_two_concurrent_clients_get_their_own_rows(self, service):
        host, port = _start(service)
        jobs = {
            "a": dict(SMOKE_JOB, kernels=["merge_path", "thread_mapped"]),
            "b": dict(SMOKE_JOB, kernels=["group_mapped"], limit=3),
        }
        results: dict[str, object] = {}

        def worker(tag: str) -> None:
            with SweepClient(host, port, timeout=60) as client:
                results[tag] = client.run(jobs[tag])

        threads = [threading.Thread(target=worker, args=(t,)) for t in jobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)
        direct_a = run_suite(["merge_path", "thread_mapped"], scale="smoke",
                             limit=2, executor="serial")
        direct_b = run_suite(["group_mapped"], scale="smoke", limit=3,
                             executor="serial")
        assert results["a"].rows == direct_a
        assert results["b"].rows == direct_b
        assert results["a"].ok and results["b"].ok
        _stop(service)

    def test_explicit_dataset_names(self, service):
        host, port = _start(service)
        with SweepClient(host, port, timeout=60) as client:
            result = client.run(dict(SMOKE_JOB, limit=None,
                                     datasets=["tiny_diag_32"]))
        assert result.units == 1
        assert {r.dataset for r in result.rows} == {"tiny_diag_32"}
        _stop(service)


class TestAdmission:
    def test_bad_request_rejections(self, service):
        host, port = _start(service)
        with SweepClient(host, port, timeout=30) as client:
            for bad in (
                dict(SMOKE_JOB, app="nope"),
                dict(SMOKE_JOB, kernels=["made_up_kernel"]),
                dict(SMOKE_JOB, engine="warp_drive"),
                dict(SMOKE_JOB, datasets=["no_such_dataset"], limit=None),
            ):
                with pytest.raises(JobRejected) as excinfo:
                    client.submit(bad)
                assert excinfo.value.reason == "bad_request"
            # The connection survives rejections.
            assert client.ping()
        assert service.jobs_accepted == 0
        assert service.jobs_rejected == 4
        _stop(service)

    def test_queue_full_backpressure(self):
        svc = SweepService(width=0, queue_depth=1)
        gate = threading.Event()
        orig = svc._execute_unit

        def gated(job, dataset):
            gate.wait(timeout=60)
            return orig(job, dataset)

        svc._execute_unit = gated
        host, port = _start(svc)
        with SweepClient(host, port, timeout=60) as first, \
                SweepClient(host, port, timeout=60) as second:
            accepted = first.submit(SMOKE_JOB)
            with pytest.raises(JobRejected) as excinfo:
                second.submit(SMOKE_JOB)
            assert excinfo.value.reason == "queue_full"
            gate.set()
            # The occupying job still completes normally.
            rows = [m for m in first.stream(accepted) if m["type"] == "row"]
            assert len(rows) == 2
            # And capacity is back: the same submission now goes through.
            retried = second.submit(SMOKE_JOB)
            assert retried["units"] == 2
            messages = list(second.stream(retried))
            assert messages[-1]["status"] == "ok"
        assert svc.jobs_rejected == 1
        _stop(svc)

    def test_retry_after_queue_full_succeeds(self):
        svc = SweepService(width=0, queue_depth=1)
        gate = threading.Event()
        orig = svc._execute_unit

        def gated(job, dataset):
            gate.wait(timeout=60)
            return orig(job, dataset)

        svc._execute_unit = gated
        host, port = _start(svc)
        with SweepClient(host, port, timeout=60) as occupier:
            occupier.submit(SMOKE_JOB)

            # Open the gate as soon as the retrying client has been
            # bounced once, so its later attempt finds capacity.
            def release_when_rejected():
                while svc.jobs_rejected == 0:
                    time.sleep(0.01)
                gate.set()

            releaser = threading.Thread(target=release_when_rejected)
            releaser.start()
            with SweepClient(host, port, timeout=60) as retrier:
                result = retrier.run(SMOKE_JOB, retries=30, retry_delay=0.05)
            releaser.join(timeout=30)
        assert result.ok
        assert len(result.rows) == 2
        assert svc.jobs_rejected >= 1
        _stop(svc)

    def test_client_reconnects_after_connection_failure(self, service,
                                                        monkeypatch):
        host, port = _start(service)
        original_connect = SweepClient.connect
        failures = {"left": 1}

        def flaky_connect(self):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise ConnectionRefusedError("synthetic connect failure")
            return original_connect(self)

        monkeypatch.setattr(SweepClient, "connect", flaky_connect)
        client = SweepClient(host, port, timeout=60)
        result = client.run(SMOKE_JOB, retries=2, retry_delay=0.01)
        client.close()
        assert result.ok
        assert len(result.rows) == 2
        assert failures["left"] == 0
        _stop(service)


class TestFairness:
    def test_units_interleave_across_clients(self, service):
        order: list[str] = []
        gate = threading.Event()
        orig = service._execute_unit

        def traced(job, dataset):
            gate.wait(timeout=60)
            order.append(job.job_id)
            return orig(job, dataset)

        service._execute_unit = traced
        host, port = _start(service)
        job = dict(SMOKE_JOB, limit=3)
        with SweepClient(host, port, timeout=120) as first, \
                SweepClient(host, port, timeout=120) as second:
            a = first.submit(job)
            b = second.submit(job)
            gate.set()  # both admitted; now let units run
            rows_a = [m for m in first.stream(a) if m["type"] == "row"]
            rows_b = [m for m in second.stream(b) if m["type"] == "row"]
        assert len(rows_a) == len(rows_b) == 3
        # One dispatcher, one unit per client per rotation: perfect
        # round-robin, so the big-tenant-starves-small-tenant failure
        # mode is structurally impossible.
        assert order == [a["job_id"], b["job_id"]] * 3
        _stop(service)


class TestFailureIsolation:
    def test_worker_crash_becomes_failed_row_not_hung_client(self):
        svc = SweepService(width=1, queue_depth=4)
        orig = svc._execute_unit
        state = {"crashed": False}

        def crashing(job, dataset):
            # Crash the (already spawned) worker on the second unit: the
            # real BrokenProcessPool surfaces mid-job, between healthy
            # units.
            if dataset.name == "tiny_uniform_64" and not state["crashed"]:
                state["crashed"] = True
                list(svc._pool._slots[0].pool.map(_kill_worker, [0]))
            return orig(job, dataset)

        svc._execute_unit = crashing
        host, port = _start(svc)
        with SweepClient(host, port, timeout=120) as client:
            result = client.run(dict(SMOKE_JOB, limit=3))
        assert state["crashed"]
        assert result.status == "partial"
        assert len(result.errors) == 1
        assert result.errors[0]["dataset"] == "tiny_uniform_64"
        assert "BrokenProcessPool" in result.errors[0]["error"]
        # The two healthy units produced their rows (pool respawned for
        # the third), bit-identical to a direct serial run.
        direct = run_suite(["merge_path"], scale="smoke", limit=3,
                           executor="serial")
        survivors = [r for r in direct if r.dataset != "tiny_uniform_64"]
        assert result.rows == survivors
        _stop(svc)


class TestDrain:
    def test_drain_finishes_in_flight_jobs_and_rejects_new(self, service):
        gate = threading.Event()
        orig = service._execute_unit

        def gated(job, dataset):
            gate.wait(timeout=60)
            return orig(job, dataset)

        service._execute_unit = gated
        host, port = _start(service)
        with SweepClient(host, port, timeout=60) as client, \
                SweepClient(host, port, timeout=60) as late:
            accepted = client.submit(SMOKE_JOB)
            service.request_drain()
            # Draining: new work is rejected explicitly...
            with pytest.raises(JobRejected) as excinfo:
                late.submit(SMOKE_JOB)
            assert excinfo.value.reason == "draining"
            gate.set()
            # ...but the in-flight job still streams to completion.
            messages = list(client.stream(accepted))
            assert [m["type"] for m in messages] == ["row", "row", "done"]
            assert messages[-1]["status"] == "ok"
        service.join()
        assert service.jobs_done == 1
        # The listener is gone after the drain.
        with pytest.raises(OSError):
            SweepClient(host, port, timeout=5).connect()

    def test_serve_subprocess_drains_on_sigterm(self, tmp_path):
        journal = tmp_path / "results.journal"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--width", "0", "--journal", str(journal)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", line)
            assert match, f"no listening announcement in {line!r}"
            host, port = match.group(1), int(match.group(2))
            with SweepClient(host, port, timeout=60) as client:
                result = client.run(SMOKE_JOB)
            assert result.ok
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "drained" in out
        # The journal survived the daemon and replays the whole job.
        jobs = ResultsJournal(journal).jobs()
        (summary,) = jobs.values()
        assert summary["done"] and summary["status"] == "ok"
        assert len(summary["rows"]) == 2


class TestResultsJournal:
    def test_journal_records_jobs_rows_and_completion(self, tmp_path):
        journal = tmp_path / "results.journal"
        svc = SweepService(width=0, queue_depth=4, journal_path=str(journal))
        host, port = _start(svc)
        with SweepClient(host, port, timeout=60) as client:
            result = client.run(SMOKE_JOB)
        _stop(svc)
        reader = ResultsJournal(journal)
        events = list(reader.replay())
        kinds = [e["event"] for e in events]
        assert kinds == ["job", "row", "row", "done"]
        jobs = reader.jobs()
        summary = jobs[result.job_id]
        assert summary["spec"]["kernels"] == ["merge_path"]
        assert [row_from_wire(r) for r in summary["rows"]] == result.rows
        reader.close()

    def test_replay_after_simulated_kill_keeps_whole_records(self, tmp_path):
        journal = tmp_path / "results.journal"
        svc = SweepService(width=0, queue_depth=4, journal_path=str(journal))
        host, port = _start(svc)
        with SweepClient(host, port, timeout=60) as client:
            result = client.run(SMOKE_JOB)
        _stop(svc)
        # Simulate a kill -9 mid-append: a torn half-record at the tail.
        with open(journal, "ab") as fh:
            fh.write(b"\x2a\x00\x00")
        reader = ResultsJournal(journal)
        events = list(reader.replay())
        assert [e["event"] for e in events] == ["job", "row", "row", "done"]
        assert reader.scan_damage  # the tear was seen and contained
        summary = reader.jobs()[result.job_id]
        assert summary["done"]
        assert [row_from_wire(r) for r in summary["rows"]] == result.rows
        reader.close()

    def test_abandoned_jobs_are_journaled(self, tmp_path):
        journal = tmp_path / "results.journal"
        svc = SweepService(width=0, queue_depth=4, journal_path=str(journal))
        gate = threading.Event()
        orig = svc._execute_unit

        def gated(job, dataset):
            gate.wait(timeout=60)
            return orig(job, dataset)

        svc._execute_unit = gated
        host, port = _start(svc)
        client = SweepClient(host, port, timeout=60)
        client.connect()
        client.submit(SMOKE_JOB)
        client.close()  # vanish with the job queued
        gate.set()
        _stop(svc)
        events = [e["event"] for e in ResultsJournal(journal).replay()]
        assert events[0] == "job"
        assert "abandoned" in events
