"""Tests for the oversubscribed SM block scheduler."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gpusim.arch import TINY_GPU, V100, GpuSpec
from repro.gpusim.sm_scheduler import block_cycles_from_warps, schedule_blocks

block_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=300
)


class TestBlockCyclesFromWarps:
    def test_critical_path_dominates_single_warp(self):
        wc = np.array([[100.0, 1.0, 1.0, 1.0]])
        out = block_cycles_from_warps(wc, V100)
        assert out[0] == pytest.approx(100.0)

    def test_bandwidth_dominates_many_equal_warps(self):
        wc = np.full((1, 8), 10.0)  # 8 warps, 4 schedulers -> 20 cycles
        out = block_cycles_from_warps(wc, V100)
        assert out[0] == pytest.approx(20.0)

    def test_1d_input_promoted(self):
        out = block_cycles_from_warps(np.array([5.0, 7.0]), V100)
        assert out.shape == (2,)


class TestScheduleBlocks:
    def test_empty_launch(self):
        out = schedule_blocks(np.array([]), 32, TINY_GPU)
        assert out.makespan_cycles == 0.0
        assert out.num_blocks == 0

    def test_single_wave_makespan_is_max(self):
        cycles = np.array([5.0, 9.0, 3.0])
        out = schedule_blocks(cycles, 32, TINY_GPU)
        assert out.makespan_cycles == pytest.approx(9.0)

    def test_uniform_fast_path_waves(self):
        spec = TINY_GPU
        slots = spec.resident_blocks_per_sm(32) * spec.num_sms
        cycles = np.full(3 * slots, 7.0)
        out = schedule_blocks(cycles, 32, spec)
        assert out.makespan_cycles == pytest.approx(21.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            schedule_blocks(np.array([-1.0]), 32, TINY_GPU)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            schedule_blocks(np.zeros((2, 2)), 32, TINY_GPU)

    def test_oversubscription_backfills(self):
        # One long block and many short ones: greedy scheduling should
        # overlap the short ones with the long one, not serialize.
        spec = GpuSpec(
            name="2SLOT",
            num_sms=1,
            warp_size=4,
            max_threads_per_block=32,
            max_resident_warps_per_sm=16,
            max_resident_blocks_per_sm=2,
            warp_schedulers_per_sm=2,
            clock_ghz=1.0,
        )
        cycles = np.array([100.0] + [10.0] * 10)
        out = schedule_blocks(cycles, 4, spec)
        assert out.makespan_cycles == pytest.approx(100.0)

    @given(block_lists)
    def test_makespan_bounds(self, blocks):
        cycles = np.array(blocks)
        out = schedule_blocks(cycles, 32, TINY_GPU)
        # Lower bounds: the longest block, and total work / slot count.
        assert out.makespan_cycles >= cycles.max() - 1e-9
        assert out.makespan_cycles >= cycles.sum() / out.num_slots - 1e-6
        # Upper bound: greedy list scheduling is within (2 - 1/m) of optimal,
        # so certainly <= total (serial execution).
        assert out.makespan_cycles <= cycles.sum() + 1e-6

    @given(block_lists)
    def test_utilization_bounded(self, blocks):
        out = schedule_blocks(np.array(blocks), 32, TINY_GPU)
        assert 0.0 <= out.utilization <= 1.0
        assert 0.0 <= out.tail_fraction <= 1.0

    def test_makespan_monotone_in_workload(self):
        base = np.array([10.0, 20.0, 30.0] * 20)
        out1 = schedule_blocks(base, 32, TINY_GPU)
        out2 = schedule_blocks(base * 2, 32, TINY_GPU)
        assert out2.makespan_cycles >= out1.makespan_cycles
