"""Tests for the harness's fan-out strategies (serial / thread / process).

The contract: all three executors return *identical* row lists for the
same grid and seed, in deterministic (dataset, kernel) order, and the
process executor shards work per dataset (problem + oracle built once
per shard, every kernel of the cell amortized against them).
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import (
    EXECUTORS,
    _run_shard,
    _ShardTask,
    run_suite,
)
from repro.gpusim.arch import V100
from repro.sparse.corpus import build_corpus, load_dataset

KERNELS = ["merge_path", "thread_mapped", "cub"]


def _key(rows):
    return [(r.app, r.kernel, r.dataset, r.rows, r.cols, r.nnzs, r.elapsed)
            for r in rows]


class TestExecutorEquivalence:
    def test_all_executors_return_identical_rows(self):
        serial = run_suite(KERNELS, scale="smoke", limit=4, executor="serial")
        thread = run_suite(
            KERNELS, scale="smoke", limit=4, executor="thread", max_workers=4
        )
        process = run_suite(
            KERNELS, scale="smoke", limit=4, executor="process", max_workers=2
        )
        assert _key(serial) == _key(thread) == _key(process)
        assert len(serial) == 4 * len(KERNELS)

    def test_every_execution_path_returns_identical_rows(self):
        """The acceptance matrix: serial / thread / fresh-process /
        persistent-pool / shared-memory / pickle-transport sweeps of the
        same seeded grid produce identical SweepRows."""
        from repro.engine import SweepExecutor

        kwargs = dict(scale="smoke", limit=4, seed=11)
        paths = {
            "serial": run_suite(KERNELS, executor="serial", **kwargs),
            "thread": run_suite(KERNELS, executor="thread", max_workers=4,
                                **kwargs),
            "fresh_process": run_suite(KERNELS, executor="process",
                                       max_workers=2, **kwargs),
            "pickle_transport": run_suite(KERNELS, executor="process",
                                          max_workers=2, transport="pickle",
                                          **kwargs),
            "shared_memory": run_suite(KERNELS, executor="process",
                                       max_workers=2, transport="shm",
                                       **kwargs),
        }
        with SweepExecutor(max_workers=2) as pool:
            paths["persistent_pool"] = run_suite(
                KERNELS, executor="process", pool=pool, **kwargs
            )
            paths["persistent_pool_again"] = run_suite(
                KERNELS, executor="process", pool=pool, **kwargs
            )
        reference = _key(paths["serial"])
        for name, rows in paths.items():
            assert _key(rows) == reference, f"{name} diverged from serial"

    def test_process_executor_non_spmv_app(self):
        rows = run_suite(
            ["thread_mapped", "group_mapped"],
            app="histogram",
            scale="smoke",
            limit=3,
            executor="process",
            max_workers=2,
        )
        serial = run_suite(
            ["thread_mapped", "group_mapped"],
            app="histogram",
            scale="smoke",
            limit=3,
            executor="serial",
        )
        assert _key(rows) == _key(serial)

    def test_process_executor_explicit_datasets(self):
        ds = [load_dataset("tiny_diag_32", "smoke"),
              load_dataset("tiny_uniform_64", "smoke")]
        rows = run_suite(
            ["merge_path"], datasets=ds, executor="process", max_workers=2
        )
        assert [r.dataset for r in rows] == ["tiny_diag_32", "tiny_uniform_64"]

    def test_process_executor_seed_determinism(self):
        a = run_suite(["merge_path"], scale="smoke", limit=3,
                      executor="process", seed=7)
        b = run_suite(["merge_path"], scale="smoke", limit=3,
                      executor="process", seed=7)
        assert _key(a) == _key(b)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_suite(["merge_path"], scale="smoke", limit=1, executor="gpu")
        assert EXECUTORS == ("serial", "thread", "process")

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_unknown_transport_rejected_for_every_executor(self, executor):
        """A bogus transport fails fast even where it would never be
        used (serial/thread), instead of being silently ignored."""
        with pytest.raises(ValueError, match="unknown transport"):
            run_suite(["merge_path"], scale="smoke", limit=1,
                      executor=executor, transport="telepathy")

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_explicit_transport_requires_process_executor(self, executor):
        """Same contract as the CLI: asking for a specific transport on
        an executor that will never use it is an error, not a no-op."""
        with pytest.raises(ValueError, match="executor='process'"):
            run_suite(["merge_path"], scale="smoke", limit=1,
                      executor=executor, transport="shm")

    def test_tensor_corpus_shm_sweep_matches_pickle_and_serial(self):
        """The 5-path row-set equality, extended to a *tensor corpus*:
        spmttkrp over native SparseTensor3 datasets travels through the
        generalized array-bundle shm transport bit-for-bit."""
        from repro.engine import SweepExecutor
        from repro.sparse.corpus import Dataset
        from repro.sparse.tensor import random_tensor

        tensors = [
            Dataset(
                name=f"tensor_{i}",
                family="tensor",
                matrix=random_tensor(
                    (40 + 8 * i, 32, 12), 500 + 40 * i, skew=0.6, seed=i
                ),
            )
            for i in range(3)
        ]
        grid = ["merge_path", "thread_mapped"]
        kwargs = dict(app="spmttkrp", datasets=tensors, seed=3)
        paths = {
            "serial": run_suite(grid, executor="serial", **kwargs),
            "thread": run_suite(grid, executor="thread", max_workers=4,
                                **kwargs),
            "pickle_transport": run_suite(grid, executor="process",
                                          max_workers=2, transport="pickle",
                                          **kwargs),
            "shared_memory": run_suite(grid, executor="process",
                                       max_workers=2, transport="shm",
                                       **kwargs),
        }
        with SweepExecutor(max_workers=2, transport="shm") as pool:
            paths["persistent_pool_shm"] = run_suite(
                grid, executor="process", pool=pool, transport="shm", **kwargs
            )
        reference = _key(paths["serial"])
        assert len(reference) == len(tensors) * len(grid)
        assert [r.rows for r in paths["serial"][::len(grid)]] == [40, 48, 56]
        for name, rows in paths.items():
            assert _key(rows) == reference, f"{name} diverged from serial"

    def test_empty_dataset_list(self):
        assert run_suite(["merge_path"], datasets=[], executor="process") == []

    def test_plan_cache_dir_restored_after_suite(self, tmp_path):
        """run_suite must not leave the global cache pointed at the
        caller's (possibly temporary) directory."""
        from repro.engine import clear_plan_cache, global_plan_cache

        before = global_plan_cache().cache_dir
        clear_plan_cache()  # memory hits would skip the disk store
        run_suite(["merge_path"], scale="smoke", limit=2,
                  plan_cache_dir=tmp_path / "plans")
        assert global_plan_cache().cache_dir == before
        assert list((tmp_path / "plans").glob("plan-*.pkl"))  # used meanwhile


class TestSharding:
    def test_shard_runs_every_kernel_once(self):
        ds = load_dataset("tiny_power_256", "smoke")
        task = _ShardTask(
            app="spmv",
            kernels=tuple(KERNELS),
            dataset=ds,
            spec=V100,
            engine="vector",
            seed=0,
            validate=True,
            plan_cache_dir=None,
        )
        rows = _run_shard(task)
        assert [r.kernel for r in rows] == KERNELS
        assert all(r.dataset == ds.name for r in rows)

    def test_shard_is_picklable(self):
        import pickle

        ds = load_dataset("tiny_diag_32", "smoke")
        task = _ShardTask(
            app="spmv",
            kernels=("merge_path",),
            dataset=ds,
            spec=V100,
            engine="vector",
            seed=0,
            validate=False,
            plan_cache_dir=None,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.dataset.name == ds.name
        assert _key(_run_shard(clone)) == _key(_run_shard(task))

    def test_shard_configures_worker_plan_store(self, tmp_path):
        """A ctx carrying plan_store attaches the journal in the worker."""
        from repro.engine import (
            ExecutionContext,
            clear_plan_cache,
            configure_global_plan_cache,
            global_plan_cache,
        )

        ds = load_dataset("tiny_diag_32", "smoke")
        store_path = tmp_path / "plans.journal"
        task = _ShardTask(
            app="spmv",
            kernels=("merge_path",),
            dataset=ds,
            seed=0,
            validate=False,
            ctx=ExecutionContext(plan_store=str(store_path)),
        )
        try:
            clear_plan_cache()
            _run_shard(task)
            assert global_plan_cache().store_path == store_path
            assert store_path.is_file()
            assert len(global_plan_cache().store) > 0
        finally:
            configure_global_plan_cache(None)

    def test_shard_configures_worker_plan_cache(self, tmp_path):
        from repro.engine import (
            clear_plan_cache,
            configure_global_plan_cache,
            global_plan_cache,
        )

        ds = load_dataset("tiny_diag_32", "smoke")
        task = _ShardTask(
            app="spmv",
            kernels=("merge_path",),
            dataset=ds,
            spec=V100,
            engine="vector",
            seed=0,
            validate=False,
            plan_cache_dir=str(tmp_path / "plans"),
        )
        try:
            # Memory hits skip the disk store; start the key cold so the
            # shard's plan demonstrably reaches the directory.
            clear_plan_cache()
            _run_shard(task)
            assert global_plan_cache().cache_dir == tmp_path / "plans"
            assert list((tmp_path / "plans").glob("plan-*.pkl"))
        finally:
            configure_global_plan_cache(None)


class TestAmbientRestoreWarning:
    def test_unusable_env_target_warns_once_per_process(self, monkeypatch, tmp_path):
        """Regression: a typo'd REPRO_PLAN_STORE used to degrade to
        no-persistence with zero signal."""
        import warnings

        from repro.engine import PLAN_STORE_ENV, configure_global_plan_cache
        from repro.evaluation import harness

        # A directory is not openable as a journal file.
        monkeypatch.setenv(PLAN_STORE_ENV, str(tmp_path))
        monkeypatch.setattr(harness, "_AMBIENT_RESTORE_WARNED", False)
        try:
            with pytest.warns(RuntimeWarning, match="plan persistence"):
                harness._restore_ambient_plan_persistence()
            # Once per process: the second restore stays silent.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                harness._restore_ambient_plan_persistence()
        finally:
            configure_global_plan_cache(None)

    def test_usable_env_target_does_not_warn(self, monkeypatch, tmp_path):
        import warnings

        from repro.engine import PLAN_STORE_ENV, configure_global_plan_cache
        from repro.evaluation import harness

        monkeypatch.setenv(PLAN_STORE_ENV, str(tmp_path / "plans.journal"))
        monkeypatch.setattr(harness, "_AMBIENT_RESTORE_WARNED", False)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                harness._restore_ambient_plan_persistence()
        finally:
            configure_global_plan_cache(None)


class TestIncompatibleDatasets:
    def test_rectangular_skipped_for_graph_apps_in_process_mode(self):
        rows = run_suite(
            ["group_mapped"], app="bfs", scale="smoke", executor="process",
            max_workers=2,
        )
        names = {d.name for d in build_corpus("smoke")
                 if d.matrix.num_rows == d.matrix.num_cols}
        assert {r.dataset for r in rows} <= names
        assert all(r.rows == r.cols for r in rows)
