"""Tests for MatrixMarket IO."""

import io

import numpy as np
import pytest

from repro.sparse.convert import coo_to_csr
from repro.sparse.mtx_io import MtxFormatError, read_mtx, write_mtx
from repro.sparse import generators as gen


def _roundtrip(matrix, **kwargs):
    buf = io.StringIO()
    write_mtx(buf, matrix, **kwargs)
    buf.seek(0)
    return read_mtx(buf)


class TestRoundTrip:
    def test_real_general(self):
        m = gen.poisson_random(20, 15, 3.0, seed=1)
        back = coo_to_csr(_roundtrip(m))
        np.testing.assert_allclose(back.to_dense(), m.to_dense())

    def test_pattern(self):
        m = gen.uniform_random(10, 10, 2, seed=2)
        back = _roundtrip(m, field="pattern")
        assert back.nnz == m.nnz
        assert np.all(back.values == 1.0)

    def test_integer(self):
        from repro.sparse.csr import CsrMatrix

        m = CsrMatrix.from_dense(np.array([[3.0, 0], [0, -7.0]]))
        back = _roundtrip(m, field="integer")
        np.testing.assert_array_equal(back.to_dense(), m.to_dense())

    def test_comment_written(self):
        buf = io.StringIO()
        write_mtx(buf, gen.diagonal(3), comment="hello\nworld")
        text = buf.getvalue()
        assert "% hello" in text and "% world" in text
        buf.seek(0)
        assert read_mtx(buf).nnz == 3


class TestSymmetry:
    def test_symmetric_expansion(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 5.0
2 1 1.0
3 2 2.0
"""
        coo = read_mtx(io.StringIO(text))
        assert coo.nnz == 5  # diagonal kept once, off-diagonals mirrored
        d = coo.to_dense()
        np.testing.assert_allclose(d, d.T)
        assert d[0, 1] == 1.0 and d[1, 0] == 1.0

    def test_skew_symmetric(self):
        text = """%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
"""
        d = read_mtx(io.StringIO(text)).to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0


class TestArrayFormat:
    def test_general_column_major(self):
        text = """%%MatrixMarket matrix array real general
2 2
1.0
2.0
3.0
4.0
"""
        d = read_mtx(io.StringIO(text)).to_dense()
        np.testing.assert_allclose(d, [[1.0, 3.0], [2.0, 4.0]])

    def test_symmetric_lower_packed(self):
        text = """%%MatrixMarket matrix array real symmetric
2 2
1.0
2.0
3.0
"""
        d = read_mtx(io.StringIO(text)).to_dense()
        np.testing.assert_allclose(d, [[1.0, 2.0], [2.0, 3.0]])

    def test_wrong_entry_count(self):
        text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n"
        with pytest.raises(MtxFormatError, match="expected"):
            read_mtx(io.StringIO(text))


class TestMalformedInputs:
    """The artifact warns that mislabeled .mtx files raise runtime errors."""

    @pytest.mark.parametrize(
        "text,match",
        [
            ("not a matrix\n", "header"),
            ("%%MatrixMarket tensor coordinate real general\n1 1 0\n", "malformed"),
            ("%%MatrixMarket matrix weird real general\n1 1 0\n", "format"),
            ("%%MatrixMarket matrix coordinate complex general\n1 1 0\n", "field"),
            ("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n", "symmetry"),
            ("%%MatrixMarket matrix coordinate real general\n", "size line"),
            ("%%MatrixMarket matrix coordinate real general\n1 1\n", "size line"),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
                "out of bounds",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
                "declared",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 oops\n",
                "bad entry",
            ),
        ],
    )
    def test_raises_format_error(self, text, match):
        with pytest.raises(MtxFormatError, match=match):
            read_mtx(io.StringIO(text))

    def test_extra_entries_detected(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n1 1 1.0\n2 2 2.0\n"
        )
        with pytest.raises(MtxFormatError, match="more than"):
            read_mtx(io.StringIO(text))


class TestCrossCheckScipy:
    def test_matches_scipy_mmread(self, tmp_path):
        scipy_io = pytest.importorskip("scipy.io")
        m = gen.power_law(30, 30, 3.0, seed=5)
        path = tmp_path / "m.mtx"
        write_mtx(path, m)
        theirs = scipy_io.mmread(str(path)).toarray()
        np.testing.assert_allclose(theirs, m.to_dense())

    def test_reads_scipy_written_file(self, tmp_path):
        scipy_io = pytest.importorskip("scipy.io")
        scipy_sparse = pytest.importorskip("scipy.sparse")
        rng = np.random.default_rng(0)
        dense = (rng.uniform(size=(12, 8)) < 0.3) * rng.uniform(size=(12, 8))
        path = tmp_path / "s.mtx"
        scipy_io.mmwrite(str(path), scipy_sparse.coo_matrix(dense))
        ours = read_mtx(path)
        np.testing.assert_allclose(ours.to_dense(), dense)
