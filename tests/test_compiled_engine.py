"""Tests for the compiled engine (JIT path, load materialization, cache).

The compiled engine's contract has three legs:

* **bit-for-bit parity** with the vector engine for every registered
  app under every registered schedule (the JIT runs the same dataflow);
* **schedule-shaped timing**: per-thread load vectors materialized in
  closed form must agree exactly with a generic probe of the schedule's
  ``tiles()``/``atoms()`` iterator view;
* a **process-wide compilation cache** with observable hit/miss
  counters, working with or without numba installed.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.schedule import available_schedules, make_schedule
from repro.core.work import WorkSpec
from repro.engine import (
    EngineError,
    ExecutionContext,
    Runtime,
    UnknownEngineError,
    available_engines,
    clear_compilation_cache,
    compilation_cache_stats,
    engine_description,
    get_engine,
    precompile_kernels,
    register_jit_warmup,
    registered_warmups,
    run_app,
)
from repro.engine import compiled as compiled_mod
from repro.engine.compiled import (
    CompiledKernel,
    _generic_loads,
    materialize_loads,
)
from repro.engine.registry import available_apps, get_app
from repro.gpusim.arch import TINY_GPU
from repro.sparse.csr import CsrMatrix

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def _skewed_matrix(n: int = 48, seed: int = 0) -> CsrMatrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.12) * rng.standard_normal((n, n))
    dense[3, :] = rng.standard_normal(n) * (rng.random(n) < 0.8)  # heavy row
    dense[7, :] = 0.0  # empty row
    return CsrMatrix.from_dense(dense)


def _outputs_equal(a, b) -> bool:
    if isinstance(a, np.ndarray):
        return a.shape == b.shape and bool(np.array_equal(a, b))
    if hasattr(a, "row_offsets"):  # CSR-like
        return (
            np.array_equal(a.row_offsets, b.row_offsets)
            and np.array_equal(a.col_indices, b.col_indices)
            and np.array_equal(a.values, b.values)
        )
    return a == b


class TestRegistration:
    def test_compiled_is_registered(self):
        assert "compiled" in available_engines()
        assert get_engine("compiled").name == "compiled"

    def test_engine_description(self):
        assert "JIT" in engine_description("compiled")
        assert engine_description("vector")

    def test_unknown_engine_raises_with_suggestion(self):
        with pytest.raises(UnknownEngineError, match="did you mean 'compiled'"):
            get_engine("compield")

    def test_unknown_engine_lists_available(self):
        with pytest.raises(EngineError, match="available"):
            get_engine("gpu")

    def test_unknown_engine_is_still_a_value_error(self):
        # Backward compatibility: pre-existing callers catch ValueError.
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("nope")


class TestBitForBitParity:
    """Compiled output equals vector output exactly: every app, every
    schedule."""

    @pytest.mark.parametrize("app", sorted(
        # Resolved lazily so a registry change shows up as a test change.
        __import__("repro.engine.registry", fromlist=["available_apps"])
        .available_apps()
    ))
    def test_app_parity_all_schedules(self, app):
        matrix = _skewed_matrix()
        spec = get_app(app)
        if spec.accepts is not None and not spec.accepts(matrix):
            pytest.skip(f"{app} rejects the test matrix")
        for sched in available_schedules():
            pv = spec.sweep_problem(matrix, 7)
            pc = spec.sweep_problem(matrix, 7)
            rv = run_app(app, pv, schedule=sched, engine="vector")
            rc = run_app(app, pc, schedule=sched, engine="compiled")
            assert _outputs_equal(rv.output, rc.output), (app, sched)

    def test_simt_agreement_on_small_matrix(self):
        # The SIMT interpreter is the slow ground truth; agreement is by
        # the app's own match predicate (simt accumulation order is
        # schedule-dependent, so exact equality is not the contract).
        matrix = _skewed_matrix(n=16, seed=3)
        for app in available_apps():
            spec = get_app(app)
            if spec.accepts is not None and not spec.accepts(matrix):
                continue
            ps = spec.sweep_problem(matrix, 7)
            pc = spec.sweep_problem(matrix, 7)
            rs = run_app(app, ps, engine="simt")
            rc = run_app(app, pc, engine="compiled")
            assert spec.match(rc.output, rs.output), app

    def test_compiled_stats_extras(self):
        matrix = _skewed_matrix()
        spec = get_app("spmv")
        result = run_app(
            "spmv", spec.sweep_problem(matrix, 7),
            schedule="merge_path", engine="compiled",
        )
        extras = result.stats.extras
        assert extras["engine"] == "compiled"
        assert extras["jit"] in ("numba", "numpy")
        assert extras["compile_cache"] in ("hit", "miss")
        assert extras["compile_cache_misses"] >= 1


class TestLoadMaterialization:
    """Closed-form per-thread loads equal the generic iterator probe."""

    @pytest.mark.parametrize("sched_name", available_schedules())
    @pytest.mark.parametrize("counts", [
        [0],
        [5, 0, 3, 1, 0, 9, 2],
        list(range(33)),
        [100] + [1] * 60,
    ])
    def test_builder_matches_generic(self, sched_name, counts):
        work = WorkSpec.from_counts(np.asarray(counts, dtype=np.int64))
        sched = make_schedule(sched_name, work, spec=TINY_GPU)
        atoms_b, visits_b = materialize_loads(sched)
        atoms_g, visits_g = _generic_loads(sched)
        np.testing.assert_array_equal(atoms_b, atoms_g, err_msg=sched_name)
        np.testing.assert_array_equal(visits_b, visits_g, err_msg=sched_name)

    def test_unknown_schedule_name_uses_generic(self):
        work = WorkSpec.from_counts(np.asarray([3, 1, 4], dtype=np.int64))
        sched = make_schedule("thread_mapped", work, spec=TINY_GPU)
        sched.name = "somebody_elses_schedule"
        atoms, visits = materialize_loads(sched)
        sched.name = "thread_mapped"
        atoms_g, visits_g = _generic_loads(sched)
        np.testing.assert_array_equal(atoms, atoms_g)
        np.testing.assert_array_equal(visits, visits_g)


class TestCompilationCache:
    def test_hit_after_miss(self):
        clear_compilation_cache()
        matrix = _skewed_matrix()
        spec = get_app("spmv")
        first = run_app(
            "spmv", spec.sweep_problem(matrix, 7),
            schedule="merge_path", engine="compiled",
        )
        second = run_app(
            "spmv", spec.sweep_problem(matrix, 7),
            schedule="merge_path", engine="compiled",
        )
        assert first.stats.extras["compile_cache"] == "miss"
        assert second.stats.extras["compile_cache"] == "hit"
        stats = compilation_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1
        assert stats["entries"] >= 1

    def test_distinct_schedules_are_distinct_entries(self):
        clear_compilation_cache()
        matrix = _skewed_matrix()
        spec = get_app("spmv")
        for sched in ("thread_mapped", "merge_path"):
            run_app("spmv", spec.sweep_problem(matrix, 7),
                    schedule=sched, engine="compiled")
        assert compilation_cache_stats()["entries"] >= 2
        assert compilation_cache_stats()["hits"] == 0

    def test_cache_is_bounded(self):
        cache = compiled_mod.CompilationCache(max_entries=2)
        matrix = _skewed_matrix()
        work = WorkSpec.from_csr(matrix)
        kernel = CompiledKernel(
            label="k", args=(matrix.row_offsets,), vector_fn=lambda ro: ro
        )
        for name in ("thread_mapped", "merge_path", "group_mapped"):
            sched = make_schedule(name, work, spec=TINY_GPU)
            cache.loads(sched, kernel)
        assert len(cache) <= 2

    def test_counters_flow_into_suite_rows(self):
        from repro.evaluation.harness import run_suite

        clear_compilation_cache()
        rows = run_suite(
            ["merge_path"], app="spmv", scale="smoke", limit=2,
            engine="compiled", executor="serial",
        )
        assert rows
        for row in rows:
            assert row.meta["engine"] == "compiled"
            assert row.meta["compile_cache"] in ("hit", "miss")
            assert "compile_cache_hits" in row.meta
            assert "compile_cache_misses" in row.meta


class _StubDispatcher:
    """Stands in for the callable ``numba.njit`` returns."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0

    def __call__(self, *args):
        self.calls += 1
        return self.fn(*args)


class _StubNumba:
    """Interface-compatible numba stand-in: njit is an identity wrap."""

    def __init__(self):
        self.compiled = []

    def njit(self, fn):
        disp = _StubDispatcher(fn)
        self.compiled.append(fn)
        return disp


@pytest.fixture
def stub_numba(monkeypatch):
    stub = _StubNumba()
    monkeypatch.setattr(compiled_mod, "_NUMBA", stub)
    monkeypatch.setattr(compiled_mod, "_FN_CACHE", {})
    return stub


@pytest.fixture
def no_numba(monkeypatch):
    monkeypatch.setattr(compiled_mod, "_NUMBA", None)
    monkeypatch.setattr(compiled_mod, "_FN_CACHE", {})


class TestJitGating:
    def test_numba_absent_falls_back_to_vector_fn(self, no_numba):
        assert not compiled_mod.numba_available()
        matrix = _skewed_matrix()
        spec = get_app("spmv")
        rv = run_app("spmv", spec.sweep_problem(matrix, 7), engine="vector")
        rc = run_app("spmv", spec.sweep_problem(matrix, 7), engine="compiled")
        assert rc.stats.extras["jit"] == "numpy"
        assert _outputs_equal(rv.output, rc.output)

    def test_stub_numba_exercises_njit_path(self, stub_numba):
        assert compiled_mod.numba_available()
        matrix = _skewed_matrix()
        spec = get_app("spmv")
        rv = run_app("spmv", spec.sweep_problem(matrix, 7), engine="vector")
        rc = run_app("spmv", spec.sweep_problem(matrix, 7), engine="compiled")
        assert rc.stats.extras["jit"] == "numba"
        assert _outputs_equal(rv.output, rc.output)
        assert stub_numba.compiled  # the scalar body went through njit

    def test_scalar_parity_all_apps_under_stub_jit(self, stub_numba):
        # With the stub, the *scalar* bodies execute (pure Python) -- the
        # strongest parity statement this suite can make without numba
        # in the container: flat-loop dataflow equals vectorized dataflow
        # bit-for-bit for every app.
        matrix = _skewed_matrix(n=24, seed=5)
        for app in available_apps():
            spec = get_app(app)
            if spec.accepts is not None and not spec.accepts(matrix):
                continue
            rv = run_app(app, spec.sweep_problem(matrix, 7), engine="vector")
            rc = run_app(app, spec.sweep_problem(matrix, 7), engine="compiled")
            assert _outputs_equal(rv.output, rc.output), app

    def test_njit_wrapper_is_cached_per_function(self, stub_numba):
        matrix = _skewed_matrix()
        spec = get_app("spmv")
        run_app("spmv", spec.sweep_problem(matrix, 7), engine="compiled")
        run_app("spmv", spec.sweep_problem(matrix, 7), engine="compiled")
        from repro.apps.spmv import _spmv_scalar

        assert stub_numba.compiled.count(_spmv_scalar) == 1

    def test_precompile_kernels_noop_without_numba(self, no_numba):
        assert precompile_kernels() == 0

    def test_precompile_kernels_compiles_registered_warmups(self, stub_numba):
        n = precompile_kernels()
        assert n == len(registered_warmups())
        # One body per jit-able kernel: spmv, spmm, spgemm count, mttkrp,
        # histogram, intersect, bfs, sssp (pagerank shares spmv's; the
        # spgemm compute pass is sort-based and stays vectorized).
        assert n >= 8
        # Each registered body was run once on its example args.
        assert all(
            d.calls >= 1 for d in compiled_mod._FN_CACHE.values()
        )

    def test_register_jit_warmup_is_idempotent(self):
        before = registered_warmups()

        def fn(x):
            return x

        register_jit_warmup("_test_warmup", fn, lambda: (1,))
        register_jit_warmup("_test_warmup", fn, lambda: (1,))
        assert registered_warmups().count("_test_warmup") == 1
        compiled_mod._WARMUPS.pop("_test_warmup")
        assert registered_warmups() == before


class TestEngineContract:
    def test_missing_compiled_kernel_raises(self):
        from repro.apps.common import spmv_costs

        matrix = _skewed_matrix()
        rt = Runtime("compiled", spec=TINY_GPU, schedule="thread_mapped")
        work = WorkSpec.from_csr(matrix)
        costs = spmv_costs(rt.spec)
        sched = rt.schedule_for(work, matrix=matrix, kernel="spmv", costs=costs)
        with pytest.raises(EngineError, match="compiled kernel"):
            rt.run_launch(sched, costs, compute=lambda: None)

    def test_other_engines_ignore_compiled_argument(self):
        # The widened launch signature must not change vector behaviour.
        matrix = _skewed_matrix()
        spec = get_app("spmv")
        r = run_app("spmv", spec.sweep_problem(matrix, 7), engine="vector")
        assert r.output is not None


class TestPerKernelEngineOverride:
    def test_context_normalizes_and_pickles(self):
        ctx = ExecutionContext(engines={"count": "compiled"})
        assert ctx.engines == (("count", "compiled"),)
        assert pickle.loads(pickle.dumps(ctx)).engines == ctx.engines
        assert "engines=count:compiled" in ctx.describe()

    def test_spgemm_count_pass_routed_to_compiled(self):
        clear_compilation_cache()
        matrix = _skewed_matrix()
        spec = get_app("spgemm")
        pv = spec.sweep_problem(matrix, 7)
        po = spec.sweep_problem(matrix, 7)
        rv = run_app("spgemm", pv, ctx=ExecutionContext(engine="vector"))
        assert compilation_cache_stats()["misses"] == 0  # vector never compiles
        ro = run_app(
            "spgemm", po,
            ctx=ExecutionContext(
                engine="vector", engines={"count": "compiled"}
            ),
        )
        assert compilation_cache_stats()["misses"] >= 1  # count pass did
        assert _outputs_equal(rv.output, ro.output)

    def test_unknown_override_engine_fails_at_runtime_construction(self):
        ctx = ExecutionContext(engines={"count": "compield"})
        with pytest.raises(UnknownEngineError, match="did you mean"):
            ctx.runtime()

    def test_mixed_engines_parity_on_frontier_app(self):
        matrix = _skewed_matrix()
        spec = get_app("bfs")
        pv = spec.sweep_problem(matrix, 7)
        po = spec.sweep_problem(matrix, 7)
        rv = run_app("bfs", pv, ctx=ExecutionContext(engine="vector"))
        ro = run_app(
            "bfs", po,
            ctx=ExecutionContext(
                engine="vector", engines={"advance": "compiled"}
            ),
        )
        assert _outputs_equal(rv.output, ro.output)


class TestSuiteIntegration:
    """Cross-engine and cross-executor parity through ``run_suite``."""

    def test_fail_fast_on_unknown_engine_every_executor(self):
        from repro.evaluation.harness import run_suite

        for executor in ("serial", "thread", "process"):
            with pytest.raises(UnknownEngineError, match="compield"):
                run_suite(
                    ["merge_path"], scale="smoke", limit=1,
                    engine="compield", executor=executor,
                )

    def test_fail_fast_on_unknown_override_engine(self):
        from repro.evaluation.harness import run_suite

        with pytest.raises(UnknownEngineError, match="vektor"):
            run_suite(
                ["merge_path"], scale="smoke", limit=1,
                ctx=ExecutionContext(engines={"spmv": "vektor"}),
            )

    @pytest.mark.parametrize("app", ["spmv", "histogram", "bfs", "spgemm"])
    def test_compiled_rows_match_vector_rows(self, app):
        from repro.evaluation.harness import run_suite

        kwargs = dict(app=app, scale="smoke", limit=2, executor="serial")
        vec = run_suite(["merge_path"], engine="vector", **kwargs)
        comp = run_suite(["merge_path"], engine="compiled", **kwargs)
        # SweepRow equality ignores meta; elapsed differs by engine (the
        # compiled engine folds materialized loads, the vector engine
        # prices the plan analytically), so compare identity columns.
        assert [(r.kernel, r.dataset, r.rows, r.cols, r.nnzs) for r in vec] \
            == [(r.kernel, r.dataset, r.rows, r.cols, r.nnzs) for r in comp]
        # Validation ran for every compiled cell (validate defaults True):
        # reaching here means each output matched the oracle and the
        # independent sampled check.  Single-launch apps surface the
        # engine in row extras (multi-launch stats sums drop extras).
        if app in ("spmv", "histogram"):
            assert all(r.meta["engine"] == "compiled" for r in comp)

    def test_compiled_engine_identical_rows_across_executors(self):
        from repro.evaluation.harness import run_suite

        kwargs = dict(
            app="spmv", scale="smoke", limit=3, engine="compiled",
            kernels=["merge_path", "thread_mapped"],
        )

        def key(rows):
            return [
                (r.kernel, r.dataset, r.rows, r.cols, r.nnzs, r.elapsed)
                for r in rows
            ]

        serial = run_suite(executor="serial", **kwargs)
        thread = run_suite(executor="thread", max_workers=4, **kwargs)
        process = run_suite(
            executor="process", max_workers=2, transport="shm", **kwargs
        )
        assert key(serial) == key(thread) == key(process)
        assert serial  # non-empty sweep


class TestEnginesCli:
    def test_engines_subcommand(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in available_engines():
            assert name in out

    def test_spmv_unknown_engine_exits_2(self, capsys):
        from repro.cli import main

        code = main([
            "spmv", "--dataset", "tiny_diag_32", "--scale", "smoke",
            "--engine", "compield",
        ])
        assert code == 2
        assert "did you mean 'compiled'" in capsys.readouterr().err

    def test_sweep_unknown_engine_exits_2(self, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--scale", "smoke", "--limit", "1",
            "--engine", "vektor",
        ])
        assert code == 2
        assert "did you mean 'vector'" in capsys.readouterr().err

    def test_spmv_compiled_engine_validates(self, capsys):
        from repro.cli import main

        code = main([
            "spmv", "--dataset", "tiny_diag_32", "--scale", "smoke",
            "--engine", "compiled", "--validate",
        ])
        assert code == 0
        assert "Errors: 0" in capsys.readouterr().out
