"""Tests for the Section 6.2 schedule-selection heuristic."""

from repro.core.heuristic import DEFAULT_HEURISTIC, HeuristicParams, select_schedule
from repro.sparse import generators as gen


class TestPaperRule:
    def test_large_matrix_uses_merge_path(self):
        m = gen.poisson_random(5000, 5000, 10.0, seed=0)
        assert select_schedule(m) == "merge_path"

    def test_large_nnz_uses_merge_path_even_if_narrow(self):
        # rows < alpha but nnz >= beta: the conjunct fails -> merge-path.
        m = gen.uniform_random(400, 400, 50, seed=0)  # 20k nnz >= beta
        assert select_schedule(m) == "merge_path"

    def test_small_uniform_uses_thread_mapped(self):
        m = gen.uniform_random(100, 100, 2, seed=0)
        assert select_schedule(m) == "thread_mapped"

    def test_small_skewed_uses_group_mapped(self):
        m = gen.dense_row_outliers(300, 300, 2, 3, 80, seed=0)
        assert select_schedule(m) == "group_mapped"

    def test_single_column_uses_thread_mapped(self):
        # The sparse-vector case (CUB's own heuristic agrees).
        m = gen.single_column(400, 0.5, seed=0)
        assert select_schedule(m) == "thread_mapped"

    def test_diagonal_uses_thread_mapped(self):
        m = gen.diagonal(100, seed=0)
        assert select_schedule(m) == "thread_mapped"


class TestThresholds:
    def test_alpha_boundary(self):
        params = HeuristicParams(alpha=500, beta=10_000)
        m = gen.uniform_random(499, 600, 2, seed=1)  # rows < alpha
        assert select_schedule(m, params) == "thread_mapped"
        m2 = gen.uniform_random(500, 600, 2, seed=1)  # neither dim < alpha
        assert select_schedule(m2, params) == "merge_path"

    def test_beta_boundary(self):
        params = HeuristicParams(alpha=500, beta=100)
        m = gen.uniform_random(100, 100, 2, seed=1)  # nnz=200 >= beta
        assert select_schedule(m, params) == "merge_path"

    def test_custom_cutoffs_flip_branch(self):
        m = gen.uniform_random(100, 100, 3, seed=1)
        eager = HeuristicParams(uniform_mean_cutoff=100.0, uniform_cv_cutoff=10.0)
        strict = HeuristicParams(uniform_mean_cutoff=0.5)
        assert select_schedule(m, eager) == "thread_mapped"
        assert select_schedule(m, strict) == "group_mapped"

    def test_defaults_match_paper(self):
        assert DEFAULT_HEURISTIC.alpha == 500
        assert DEFAULT_HEURISTIC.beta == 10_000
