"""Tests for the reusable CRC-framed record journal."""

import os
import threading
from pathlib import Path

import pytest

from repro.engine.journal import (
    JOURNAL_HEADER,
    JOURNAL_RECORD,
    MAGIC_LENGTH,
    RecordJournal,
    RecordLocation,
)

MAGIC = b"RPTESTJ1"


@pytest.fixture
def path(tmp_path) -> Path:
    return tmp_path / "test.journal"


class TestBasics:
    def test_magic_must_be_eight_bytes(self, path):
        with pytest.raises(ValueError, match="8 bytes"):
            RecordJournal(path, magic=b"short")

    def test_new_file_gets_header(self, path):
        j = RecordJournal(path, magic=MAGIC, version=3)
        j.close()
        raw = path.read_bytes()
        assert raw == JOURNAL_HEADER.pack(MAGIC, 3)
        assert len(MAGIC) == MAGIC_LENGTH

    def test_append_and_scan_roundtrip(self, path):
        j = RecordJournal(path, magic=MAGIC)
        payloads = [b"alpha", b"beta", b"x" * 1000]
        locations = [j.append(p) for p in payloads]
        assert j.payloads() == payloads
        for loc, payload in zip(locations, payloads):
            assert j.read(loc) == payload
            assert loc.length == len(payload)
            assert loc.end == loc.offset + loc.length
        j.close()

    def test_reopen_sees_everything(self, path):
        j = RecordJournal(path, magic=MAGIC)
        j.append(b"persisted")
        j.close()
        j2 = RecordJournal(path, magic=MAGIC)
        assert j2.payloads() == [b"persisted"]
        assert not j2.scan_damage
        assert not j2.foreign
        j2.close()

    def test_closed_journal_raises(self, path):
        j = RecordJournal(path, magic=MAGIC)
        j.close()
        assert j.closed
        with pytest.raises(ValueError, match="closed"):
            j.append(b"nope")
        with pytest.raises(ValueError, match="closed"):
            j.records()

    def test_read_is_crc_verified(self, path):
        j = RecordJournal(path, magic=MAGIC)
        loc = j.append(b"fragile")
        bogus = RecordLocation(loc.offset, loc.length, loc.crc ^ 0xFF)
        assert j.read(bogus) is None
        assert j.read(loc) == b"fragile"
        j.close()


class TestDamageTolerance:
    def test_truncated_tail_stops_scan(self, path):
        j = RecordJournal(path, magic=MAGIC)
        j.append(b"whole")
        j.append(b"will-be-cut")
        j.close()
        os.truncate(path, os.path.getsize(path) - 3)
        j2 = RecordJournal(path, magic=MAGIC)
        assert j2.payloads() == [b"whole"]
        assert j2.scan_damage
        j2.close()

    def test_corrupt_record_stops_scan(self, path):
        j = RecordJournal(path, magic=MAGIC)
        loc1 = j.append(b"good")
        j.append(b"flipped")
        j.append(b"after")
        j.close()
        raw = bytearray(path.read_bytes())
        raw[loc1.end + JOURNAL_RECORD.size] ^= 0xFF  # corrupt record 2's payload
        path.write_bytes(bytes(raw))
        j2 = RecordJournal(path, magic=MAGIC)
        # Framing after a bad CRC cannot be trusted: record 3 is invisible.
        assert j2.payloads() == [b"good"]
        assert j2.scan_damage
        j2.close()

    def test_append_truncates_damaged_tail(self, path):
        j = RecordJournal(path, magic=MAGIC)
        j.append(b"keep")
        j.close()
        with open(path, "ab") as fh:
            fh.write(b"\x07")  # torn write
        j2 = RecordJournal(path, magic=MAGIC)
        assert j2.payloads() == [b"keep"]
        j2.append(b"fresh")
        assert j2.payloads() == [b"keep", b"fresh"]
        assert not j2.scan_damage
        j2.close()

    def test_implausible_length_is_damage(self, path):
        j = RecordJournal(path, magic=MAGIC)
        j.append(b"fine")
        j.close()
        with open(path, "ab") as fh:
            fh.write(JOURNAL_RECORD.pack(2**31, 0))
        j2 = RecordJournal(path, magic=MAGIC)
        assert j2.payloads() == [b"fine"]
        assert j2.scan_damage
        j2.close()


class TestForeignFiles:
    def test_wrong_magic_reads_cold(self, path):
        other = RecordJournal(path, magic=b"OTHERMAG")
        other.append(b"not-ours")
        other.close()
        j = RecordJournal(path, magic=MAGIC)
        assert j.payloads() == []
        assert j.foreign
        j.close()

    def test_wrong_version_reads_cold_and_rotates(self, path):
        old = RecordJournal(path, magic=MAGIC, version=1)
        old.append(b"v1-data")
        old.close()
        j = RecordJournal(path, magic=MAGIC, version=2)
        assert j.payloads() == []
        j.append(b"v2-data")
        assert j.payloads() == [b"v2-data"]
        assert not j.foreign
        j.close()
        # The file now carries the new version header.
        magic, version = JOURNAL_HEADER.unpack(
            path.read_bytes()[: JOURNAL_HEADER.size]
        )
        assert (magic, version) == (MAGIC, 2)


class TestRewrite:
    def test_rewrite_replaces_contents(self, path):
        j = RecordJournal(path, magic=MAGIC)
        for i in range(5):
            j.append(f"old-{i}".encode())
        locations = j.rewrite([b"new-a", b"new-b"])
        assert j.payloads() == [b"new-a", b"new-b"]
        assert [j.read(loc) for loc in locations] == [b"new-a", b"new-b"]
        j.close()

    def test_rewrite_empty_resets(self, path):
        j = RecordJournal(path, magic=MAGIC)
        j.append(b"gone")
        assert j.rewrite([]) == []
        assert j.payloads() == []
        assert j.file_bytes() == JOURNAL_HEADER.size
        j.close()

    def test_append_after_rewrite(self, path):
        j = RecordJournal(path, magic=MAGIC)
        j.append(b"a")
        j.rewrite([b"b"])
        j.append(b"c")
        assert j.payloads() == [b"b", b"c"]
        j.close()


class TestConcurrency:
    def test_threaded_appends_all_survive(self, path):
        j = RecordJournal(path, magic=MAGIC)

        def writer(tag: int) -> None:
            for i in range(25):
                j.append(f"{tag}:{i}".encode())

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        payloads = j.payloads()
        assert len(payloads) == 100
        assert len(set(payloads)) == 100
        assert not j.scan_damage
        j.close()
