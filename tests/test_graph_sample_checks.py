"""Tests for the graph apps' independent sampled validation audits.

``AppSpec.sample_check`` for bfs/sssp/pagerank re-derives per-vertex
invariants straight from the raw CSR arrays -- a code path disjoint from
both the oracles (queue BFS, heap Dijkstra, dense power iteration) and
the drivers.  These tests pin that the audits accept correct outputs on
every sweepable dataset and reject corrupted ones, and that the sweep
``--validate`` path runs them.
"""

import numpy as np
import pytest

from repro.engine import DEFAULT_SEED, get_app, run_app
from repro.gpusim.arch import TINY_GPU
from repro.sparse import generators as gen
from repro.sparse.corpus import build_corpus

GRAPH_APPS = ("bfs", "sssp", "pagerank")


@pytest.fixture
def matrix():
    return gen.power_law(48, 48, 3.0, 1.8, seed=9)


class TestRegistration:
    @pytest.mark.parametrize("app_name", GRAPH_APPS)
    def test_graph_apps_declare_sample_check(self, app_name):
        assert get_app(app_name).sample_check is not None


class TestAcceptCorrectOutputs:
    @pytest.mark.parametrize("app_name", GRAPH_APPS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_oracle_output_passes(self, app_name, matrix, seed):
        app = get_app(app_name)
        problem = app.sweep_problem(matrix, DEFAULT_SEED)
        expected = app.oracle(problem)
        assert app.sample_check(problem, expected, seed)

    @pytest.mark.parametrize("app_name", GRAPH_APPS)
    def test_engine_output_passes(self, app_name, matrix):
        app = get_app(app_name)
        problem = app.sweep_problem(matrix, DEFAULT_SEED)
        result = run_app(app, problem, spec=TINY_GPU)
        assert app.sample_check(problem, result.output, 123)

    @pytest.mark.parametrize("app_name", GRAPH_APPS)
    def test_every_smoke_dataset_passes(self, app_name):
        """The audit must hold on every dataset the sweep will feed it."""
        app = get_app(app_name)
        for ds in build_corpus("smoke"):
            if app.accepts is not None and not app.accepts(ds.matrix):
                continue
            problem = app.sweep_problem(ds.matrix, DEFAULT_SEED)
            expected = app.oracle(problem)
            assert app.sample_check(problem, expected, 7), ds.name


class TestRejectCorruptedOutputs:
    def _corruptions(self, app_name, output, problem):
        n = output.shape[0]
        bad_shape = output[:-1].copy()
        if app_name == "bfs":
            off_by_one = output.copy()
            reached = np.nonzero(output > 0)[0]
            off_by_one[reached[0]] += 1
            zeroed = output.copy()
            zeroed[problem.source] = 1
            return [bad_shape, off_by_one, zeroed]
        if app_name == "sssp":
            scaled = output.copy()
            finite = np.isfinite(scaled) & (np.arange(n) != problem.source)
            scaled[np.nonzero(finite)[0][0]] *= 1.5
            negative = output.copy()
            negative[problem.source] = -1.0
            return [bad_shape, scaled, negative]
        # pagerank
        shifted = output.copy()
        shifted[0] += 0.05
        unnormalized = output * 2.0
        return [bad_shape, shifted, unnormalized]

    @pytest.mark.parametrize("app_name", GRAPH_APPS)
    def test_corruptions_rejected(self, app_name, matrix):
        app = get_app(app_name)
        problem = app.sweep_problem(matrix, DEFAULT_SEED)
        good = app.oracle(problem)
        for i, bad in enumerate(self._corruptions(app_name, good, problem)):
            rejected = not any(
                app.sample_check(problem, bad, seed) for seed in range(6)
            )
            assert rejected, f"{app_name} corruption #{i} escaped the audit"


class TestWiredIntoSweepValidate:
    def test_validate_runs_graph_audits(self, monkeypatch):
        """sweep --validate actually invokes the graph sample checks."""
        import dataclasses

        from repro.evaluation import harness

        calls = []
        app = get_app("bfs")
        real = app.sample_check

        def counting(problem, output, seed):
            calls.append(seed)
            return real(problem, output, seed)

        patched = dataclasses.replace(app, sample_check=counting)
        monkeypatch.setattr(harness, "get_app", lambda name: patched)
        harness.run_suite(
            ["group_mapped"], app="bfs", scale="smoke", limit=2, validate=True
        )
        assert calls

    def test_failing_audit_fails_the_cell(self, monkeypatch):
        import dataclasses

        from repro.evaluation import harness

        patched = dataclasses.replace(
            get_app("sssp"), sample_check=lambda *a: False
        )
        monkeypatch.setattr(harness, "get_app", lambda name: patched)
        with pytest.raises(AssertionError, match="sampled dense check failed"):
            harness.run_suite(
                ["group_mapped"], app="sssp", scale="smoke", limit=1,
                validate=True,
            )
