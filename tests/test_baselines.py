"""Tests for the CUB and cuSparse comparator models."""

import numpy as np
import pytest

from repro.baselines.cub_spmv import cub_spmv
from repro.baselines.cusparse_spmv import (
    CUSPARSE_ANALYSIS_CYCLES,
    VECTOR_DISPATCH_MEAN_NNZ,
    cusparse_spmv,
)
from repro.baselines.reference import dense_spmv_oracle
from repro.sparse import generators as gen


def _x(m, seed=0):
    return np.random.default_rng(seed).uniform(size=m.num_cols)


class TestCubSpmv:
    def test_correct(self):
        m = gen.power_law(200, 200, 5.0, seed=1)
        x = _x(m)
        y, stats = cub_spmv(m, x)
        np.testing.assert_allclose(y, dense_spmv_oracle(m, x), rtol=1e-12)
        assert stats.elapsed_ms > 0

    def test_merge_path_dispatch_default(self):
        m = gen.poisson_random(100, 100, 4.0, seed=2)
        _, stats = cub_spmv(m, _x(m))
        assert stats.extras["dispatch"] == "merge_path"

    def test_single_column_heuristic(self):
        # Section 6.1: CUB launches a specialized thread-mapped kernel for
        # single-column matrices.
        m = gen.single_column(500, 0.5, seed=3)
        y, stats = cub_spmv(m, _x(m))
        assert stats.extras["dispatch"] == "thread_mapped_spvv"
        np.testing.assert_allclose(y, dense_spmv_oracle(m, _x(m)))

    def test_spvv_heuristic_wins_on_single_column(self):
        """The paper's Figure 2 finding: CUB beats the framework's
        merge-path on sparse vectors because of this special case."""
        from repro.apps.spmv import spmv

        m = gen.single_column(4000, 0.5, seed=4)
        x = _x(m)
        _, cub_stats = cub_spmv(m, x)
        ours = spmv(m, x, schedule="merge_path")
        assert cub_stats.elapsed_ms < ours.elapsed_ms

    def test_hardwired_not_slower_than_abstraction(self):
        """Figure 2's premise: the framework's merge-path pays a small
        overhead relative to the fused CUB kernel on identical work."""
        from repro.apps.spmv import spmv

        for seed in range(3):
            m = gen.power_law(2000, 2000, 8.0, seed=seed)
            x = _x(m, seed)
            _, cub_stats = cub_spmv(m, x)
            ours = spmv(m, x, schedule="merge_path")
            assert cub_stats.elapsed_ms <= ours.elapsed_ms * 1.001
            # ... but the overhead stays small (the paper's claim).
            assert ours.elapsed_ms <= cub_stats.elapsed_ms * 1.10

    def test_rejects_bad_x(self):
        m = gen.diagonal(5)
        with pytest.raises(ValueError):
            cub_spmv(m, np.ones(4))


class TestCusparseSpmv:
    def test_correct(self):
        m = gen.rmat(7, 6, seed=5)
        x = _x(m)
        y, stats = cusparse_spmv(m, x)
        np.testing.assert_allclose(y, dense_spmv_oracle(m, x), rtol=1e-12)

    def test_scalar_dispatch_short_rows(self):
        m = gen.uniform_random(100, 100, 2, seed=6)
        assert m.nnz / m.num_rows < VECTOR_DISPATCH_MEAN_NNZ
        _, stats = cusparse_spmv(m, _x(m))
        assert stats.extras["dispatch"] == "csr_scalar"

    def test_vector_dispatch_long_rows(self):
        m = gen.uniform_random(100, 400, 32, seed=7)
        _, stats = cusparse_spmv(m, _x(m))
        assert stats.extras["dispatch"] == "csr_vector"

    def test_fixed_overhead_dominates_tiny(self):
        m = gen.diagonal(16, seed=8)
        _, stats = cusparse_spmv(m, _x(m))
        assert stats.makespan_cycles >= CUSPARSE_ANALYSIS_CYCLES

    def test_loses_to_merge_path_on_skew(self):
        """Figure 3/4's driving mechanism: no intra-row splitting, so a
        few mega-rows serialize the vendor kernel."""
        from repro.apps.spmv import spmv

        m = gen.dense_row_outliers(3000, 3000, 3, 4, 2500, seed=9)
        x = _x(m)
        _, vendor = cusparse_spmv(m, x)
        ours = spmv(m, x, schedule="merge_path")
        assert vendor.elapsed_ms > 3 * ours.elapsed_ms

    def test_competitive_on_large_regular(self):
        """...but the vendor model must NOT be a strawman: on large
        regular matrices both sides sit near the bandwidth floor."""
        from repro.apps.spmv import spmv

        m = gen.uniform_random(20000, 20000, 32, seed=10)
        x = _x(m)
        _, vendor = cusparse_spmv(m, x)
        ours = spmv(m, x, schedule="merge_path")
        assert vendor.elapsed_ms < 1.8 * ours.elapsed_ms

    def test_rejects_bad_x(self):
        m = gen.diagonal(5)
        with pytest.raises(ValueError):
            cusparse_spmv(m, np.ones(6))
