"""Chaos matrix: injected faults x bounded-time failure semantics.

The contract under test (see ``repro.faults`` and the PR-9 hardening):
every injected failure -- hung worker, crashed worker, corrupt shm
attach, torn journal write, dropped connection, blown job deadline --
degrades to a *typed, bounded-time* outcome (retry, fallback, synthetic
error row, ``status:"timeout"``), never a hang, a wrong row, or a
leaked shm segment.  Surviving rows stay bit-identical to a fault-free
run.

Worker-side faults travel via the ``REPRO_FAULTS`` environment (worker
processes build their own registries from the inherited env, with their
own per-process hit counters); parent/in-process faults use
:func:`repro.faults.configure_faults`.
"""

from __future__ import annotations

import os
import socket
import time
import warnings

import pytest

from repro.engine.journal import RecordJournal
from repro.engine.plan_store import PlanStore
from repro.engine.worker_pool import (
    BATCH_TIMEOUT_ENV,
    SweepExecutor,
)
from repro.evaluation.harness import run_suite
from repro.faults import (
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    HANG_SECONDS_ENV,
    SLOW_SECONDS_ENV,
    FaultInjected,
    clear_faults,
    configure_faults,
    faults_active,
    inject,
    parse_fault_spec,
)
from repro.service import SweepClient, SweepService
from repro.service.client import ServiceError
from repro.service.server import SERVE_JOB_TIMEOUT_ENV

KERNELS = ["merge_path"]

SMOKE_JOB = {"app": "spmv", "kernels": KERNELS, "scale": "smoke",
             "limit": 2}


def _key(rows):
    return [(r.app, r.kernel, r.dataset, r.rows, r.cols, r.nnzs, r.elapsed)
            for r in rows]


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """Every test starts and ends fault-free, env and registry both.

    Teardown also drops the parent's process-global problem cache: the
    in-parent runs here (serial baselines, degraded shards) warm it,
    and forked workers in *later* test files would inherit that warmth
    and skip the oracle builds those files assert on.
    """
    import repro.engine.worker_pool as worker_pool

    for var in (FAULTS_ENV, FAULTS_SEED_ENV, HANG_SECONDS_ENV,
                SLOW_SECONDS_ENV, BATCH_TIMEOUT_ENV, SERVE_JOB_TIMEOUT_ENV):
        monkeypatch.delenv(var, raising=False)
    clear_faults()
    yield
    clear_faults()
    with worker_pool._PROBLEM_CACHE_LOCK:
        worker_pool._PROBLEM_CACHE = None


@pytest.fixture
def shm_ledger():
    """Assert zero leaked /dev/shm segments across the test body."""
    def _listing():
        try:
            return set(os.listdir("/dev/shm"))
        except OSError:  # pragma: no cover - non-Linux
            return set()

    before = _listing()
    yield
    leaked = _listing() - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


@pytest.fixture(scope="module")
def serial_rows():
    clear_faults()
    return run_suite(KERNELS, scale="smoke", limit=2, executor="serial")


class TestFaultSpec:
    def test_parse_kinds_and_triggers(self):
        rules = parse_fault_spec(
            "worker.batch:hang@0.25; shm.attach:crc@2 ;journal.write:torn"
        )
        assert [(r.site, r.kind) for r in rules] == [
            ("worker.batch", "hang"), ("shm.attach", "crc"),
            ("journal.write", "torn"),
        ]
        assert rules[0].probability == 0.25
        assert rules[1].nth == 2
        assert rules[2].nth == 1  # default trigger: first hit

    @pytest.mark.parametrize("bad", [
        "worker.batch",            # no kind
        "worker.batch:sabotage",   # unknown kind
        "worker.batch:hang@soon",  # unparseable trigger
        "worker.batch:hang@1.5",   # probability outside [0, 1]
        "worker.batch:hang@0",     # hit counts start at 1
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_malformed_env_spec_warns_and_disables(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker.batch:sabotage@*")
        clear_faults()
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert inject("worker.batch") is None
        assert not faults_active()["enabled"]

    def test_nth_trigger_fires_exactly_once(self):
        configure_faults("site.x:crc@3")
        hits = [inject("site.x") for _ in range(6)]
        assert hits == [None, None, "crc", None, None, None]

    def test_every_trigger_fires_always(self):
        configure_faults("site.x:drop@*")
        assert [inject("site.x") for _ in range(3)] == ["drop"] * 3

    def test_probability_trigger_is_seed_deterministic(self):
        configure_faults("site.x:crc@0.5", seed=1234)
        first = [inject("site.x") for _ in range(64)]
        configure_faults("site.x:crc@0.5", seed=1234)
        assert [inject("site.x") for _ in range(64)] == first
        assert "crc" in first and None in first  # actually probabilistic
        configure_faults("site.x:crc@0.5", seed=99)
        assert [inject("site.x") for _ in range(64)] != first

    def test_err_kind_raises_fault_injected(self):
        configure_faults("site.x:err@1")
        with pytest.raises(FaultInjected, match="site.x"):
            inject("site.x")
        assert inject("site.x") is None  # fired once, never again

    def test_slow_kind_sleeps(self):
        configure_faults("site.x:slow@1", slow_seconds=0.05)
        start = time.monotonic()
        assert inject("site.x") == "slow"
        assert time.monotonic() - start >= 0.05

    def test_unknown_site_never_fires_and_report_counts(self):
        configure_faults("no.such.site:crash@*;site.x:crc@1")
        assert inject("site.y") is None  # crash would have killed us
        inject("site.x")
        report = faults_active()
        assert report["enabled"]
        rule = report["sites"]["site.x"][0]
        assert (rule["kind"], rule["hits"], rule["fires"]) == ("crc", 1, 1)
        assert report["sites"]["no.such.site"][0]["hits"] == 0

    def test_clear_faults_returns_to_noop(self):
        configure_faults("site.x:err@*")
        clear_faults()
        assert inject("site.x") is None


class TestExecutorChaos:
    """Hang / crash / corrupt-attach against the process executor."""

    def _sweep(self, pool):
        return run_suite(KERNELS, scale="smoke", limit=2,
                         executor="process", pool=pool)

    def test_hung_batch_is_killed_and_retried(self, monkeypatch, shm_ledger,
                                              serial_rows):
        # batch_atoms=1 pins one shard per batch: the single slot runs
        # batch 1 clean (hit 1), hangs on batch 2 (hit 2), the watchdog
        # SIGKILLs it, and the respawned worker (fresh counters, hit 1)
        # completes the retry.
        monkeypatch.setenv(FAULTS_ENV, "worker.batch:hang@2")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        start = time.monotonic()
        pool = SweepExecutor(max_workers=1, transport="pickle",
                             batch_atoms=1, batch_timeout=1.0)
        try:
            rows = self._sweep(pool)
            info = pool.info()
        finally:
            pool.shutdown()
        assert time.monotonic() - start < 25  # bounded: never slept 30 s
        assert _key(rows) == _key(serial_rows)
        assert info["batch_timeouts"] >= 1
        assert info["batch_retries"] >= 1
        assert info["pool_spawns"] == 2
        assert info["error_rows"] == 0
        attempts = sorted(r.meta["attempts"] for r in rows)
        assert attempts == [1, 2]
        assert not any(r.meta["degraded"] for r in rows)

    def test_crashed_batch_is_retried_on_respawned_slot(
            self, monkeypatch, shm_ledger, serial_rows):
        monkeypatch.setenv(FAULTS_ENV, "worker.batch:crash@2")
        pool = SweepExecutor(max_workers=1, transport="pickle",
                             batch_atoms=1, batch_timeout=30.0)
        try:
            rows = self._sweep(pool)
            info = pool.info()
        finally:
            pool.shutdown()
        assert _key(rows) == _key(serial_rows)
        assert info["batch_retries"] >= 1
        assert info["pool_spawns"] == 2
        assert sorted(r.meta["attempts"] for r in rows) == [1, 2]
        assert all(r.meta["status"] == "ok" for r in rows)

    def test_persistent_crash_degrades_to_in_parent_rows(
            self, monkeypatch, shm_ledger, serial_rows):
        # Every worker batch crashes, on every attempt: round 1 dies,
        # the retry (fresh worker, fresh counters) dies again, and the
        # shards degrade to bounded in-parent execution -- which still
        # produces the *real* rows, stamped degraded.
        monkeypatch.setenv(FAULTS_ENV, "worker.batch:crash@*")
        start = time.monotonic()
        pool = SweepExecutor(max_workers=2, transport="pickle",
                             batch_timeout=30.0)
        try:
            rows = self._sweep(pool)
            info = pool.info()
        finally:
            pool.shutdown()
        assert time.monotonic() - start < 60
        assert _key(rows) == _key(serial_rows)
        assert info["degraded_shards"] >= 1
        assert info["error_rows"] == 0
        assert all(r.meta["attempts"] == 3 for r in rows)
        assert all(r.meta["degraded"] for r in rows)
        assert all(r.meta["placement"]["mode"] == "degraded" for r in rows)
        assert all(r.meta["placement"]["slot"] == -1 for r in rows)

    @pytest.mark.parametrize("kind", ["crc", "drop"])
    def test_shm_attach_failure_falls_back_to_pickle(
            self, monkeypatch, shm_ledger, serial_rows, kind):
        import repro.engine.worker_pool as wp

        monkeypatch.setenv(FAULTS_ENV, f"shm.attach:{kind}@1")
        monkeypatch.setattr(wp, "_TRANSPORT_FALLBACK_WARNED", False)
        pool = SweepExecutor(max_workers=1, transport="shm",
                             batch_timeout=30.0)
        try:
            with pytest.warns(RuntimeWarning, match="pickle"):
                rows = self._sweep(pool)
            info = pool.info()
        finally:
            pool.shutdown()
        assert _key(rows) == _key(serial_rows)
        assert info["transport_fallbacks"] == 1
        fallback = [r for r in rows if r.meta.get("transport_fallback")]
        assert fallback and all(r.meta["attempts"] == 2 for r in fallback)
        clean = [r for r in rows if not r.meta.get("transport_fallback")]
        assert all(r.meta["attempts"] == 1 for r in clean)

    def test_faults_off_rows_are_first_attempt_only(self, shm_ledger,
                                                    serial_rows):
        pool = SweepExecutor(max_workers=2, transport="auto")
        try:
            rows = self._sweep(pool)
            info = pool.info()
        finally:
            pool.shutdown()
        assert _key(rows) == _key(serial_rows)
        assert all(r.meta["attempts"] == 1 for r in rows)
        assert all(not r.meta["degraded"] for r in rows)
        assert info["batch_timeouts"] == 0
        assert info["batch_retries"] == 0
        assert info["degraded_shards"] == 0
        assert info["transport_fallbacks"] == 0


class TestSharingFaults:
    """Publish/attach faults on the shm sharing paths degrade to local work.

    The sharing layer's contract: a refused publish (``shm.publish``,
    ``oracle.publish``) means the caller keeps its pickle/local path, a
    failed payload attach (``oracle.attach``) means the worker rebuilds
    locally, and a ``worker.start`` fault surfaces as the warmup error
    the pool's respawn logic handles -- never a wrong row or leaked
    segment.
    """

    def test_shm_publish_refusal_returns_none(self, shm_ledger):
        from repro.engine.worker_pool import publish_dataset
        from repro.sparse.corpus import build_corpus

        dataset = build_corpus("smoke")[0]
        configure_faults("shm.publish:drop@*")
        assert publish_dataset(dataset) is None
        clear_faults()
        published = publish_dataset(dataset)
        assert published is not None  # the refusal was the fault, not shm
        published.shm.close()
        published.shm.unlink()

    def test_oracle_publish_refusal_and_attach_fallback(self, shm_ledger):
        from multiprocessing import shared_memory

        import numpy as np

        from repro.engine.worker_pool import attach_payload, publish_payload

        payload = np.arange(16.0)
        configure_faults("oracle.publish:drop@*")
        assert publish_payload(payload) is None
        clear_faults()
        handle = publish_payload(payload)
        assert handle is not None
        try:
            configure_faults("oracle.attach:drop@*")
            assert attach_payload(handle) is None  # caller rebuilds locally
            clear_faults()
            attached = attach_payload(handle)
            assert np.array_equal(attached, payload)
        finally:
            clear_faults()
            shm = shared_memory.SharedMemory(name=handle.shm_name)
            shm.close()
            shm.unlink()

    def test_worker_start_fault_raises_in_warmup(self):
        from repro.engine.worker_pool import _worker_warmup

        configure_faults("worker.start:err@1")
        with pytest.raises(FaultInjected, match="worker.start"):
            _worker_warmup(None, None)
        _worker_warmup(None, None)  # fired once; the respawned slot warms up


class TestJournalChaos:
    def test_torn_write_loses_exactly_one_record(self, tmp_path):
        configure_faults("journal.write:torn@2")
        journal = RecordJournal(tmp_path / "j.journal", magic=b"RPTEST01")
        try:
            journal.append(b"one")
            journal.append(b"two")       # torn: half the record hits disk
            assert journal.scan_damage   # the tear is known immediately
            journal.append(b"three")     # heals: truncates the tear first
            assert journal.payloads() == [b"one", b"three"]
            assert not journal.scan_damage
        finally:
            journal.close()

    def test_torn_write_is_invisible_to_a_fresh_reader(self, tmp_path):
        configure_faults("journal.write:torn@2")
        journal = RecordJournal(tmp_path / "j.journal", magic=b"RPTEST01")
        journal.append(b"one")
        journal.append(b"two")
        journal.close()
        clear_faults()
        reader = RecordJournal(tmp_path / "j.journal", magic=b"RPTEST01")
        try:
            assert reader.payloads() == [b"one"]
            assert reader.scan_damage
        finally:
            reader.close()

    def test_plan_store_write_error_degrades_to_a_miss(self, tmp_path):
        configure_faults("journal.write:err@*")
        store = PlanStore(tmp_path / "plans.journal")
        try:
            with pytest.warns(RuntimeWarning, match="not persisted"):
                store.put("k1", {"v": 1})
            store.put("k2", {"v": 2})  # warned once, still counted
            assert store.write_errors == 2
            assert store.get("k1") is None and len(store) == 0
            clear_faults()
            store.put("k3", {"v": 3})  # the store recovers in place
            assert store.get("k3") == {"v": 3}
            assert store.info()["write_errors"] == 2
        finally:
            store.close()


class TestServiceChaos:
    def _run_service(self, svc):
        svc.start_background()
        return svc.wait_ready()

    def _stop(self, svc):
        svc.request_drain()
        svc.join()

    def test_job_deadline_yields_timeout_status(self):
        # Unit 2 hangs past the 1 s job deadline; the service stops
        # waiting, fails every remaining unit, and closes the job with
        # status:"timeout" -- a bounded stream, not a hung client.
        configure_faults("serve.dispatch:hang@2", hang_seconds=4.0)
        svc = SweepService(width=0, job_timeout=1.0)
        host, port = self._run_service(svc)
        start = time.monotonic()
        try:
            with SweepClient(host, port, timeout=30) as client:
                result = client.run({**SMOKE_JOB, "limit": 3})
        finally:
            self._stop(svc)
        assert time.monotonic() - start < 30
        assert result.status == "timeout"
        assert len(result.errors) == 2  # the hung unit + the flushed one
        assert all("deadline" in e["error"] for e in result.errors)
        assert result.rows  # unit 1 completed before the deadline
        assert svc.jobs_timed_out == 1

    def test_connection_drop_is_survived_by_client_retry(self):
        # hello(1) + accepted(2) stream fine; the first row write (3)
        # drops the connection.  SweepClient.run reconnects with backoff
        # and the resubmitted job streams to completion.
        configure_faults("serve.connection:drop@3")
        svc = SweepService(width=0)
        host, port = self._run_service(svc)
        try:
            client = SweepClient(host, port, timeout=30)
            result = client.run(SMOKE_JOB, retries=3, retry_delay=0.05,
                                seed=7)
            client.close()
        finally:
            self._stop(svc)
        assert result.ok
        assert len(result.rows) == 2 * len(KERNELS)
        assert svc.jobs_accepted == 2  # the dropped attempt + the retry

    def test_journal_fault_loses_the_record_not_the_job(self, tmp_path):
        configure_faults("serve.journal:err@*")
        svc = SweepService(width=0, journal_path=str(tmp_path / "r.journal"))
        host, port = self._run_service(svc)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with SweepClient(host, port, timeout=30) as client:
                    result = client.run(SMOKE_JOB)
        finally:
            self._stop(svc)
        assert result.ok and len(result.rows) == 2 * len(KERNELS)
        assert svc.journal_errors > 0

    def test_status_probe_reports_gauges_and_faults(self):
        configure_faults("worker.batch:hang@0.5", seed=11)
        svc = SweepService(width=0)
        host, port = self._run_service(svc)
        try:
            with SweepClient(host, port, timeout=30) as client:
                client.run(SMOKE_JOB)
                status = client.status()
        finally:
            self._stop(svc)
        assert status["pending"] == 0 and status["in_flight"] == []
        assert status["width"] == 0 and not status["draining"]
        assert status["jobs"] == {"accepted": 1, "done": 1, "rejected": 0,
                                  "timed_out": 0}
        assert status["rows_streamed"] == 2 * len(KERNELS)
        assert set(status["retries"]) == {
            "batch_timeouts", "batch_retries", "degraded_shards",
            "error_rows", "transport_fallbacks",
        }
        assert all(v == 0 for v in status["retries"].values())
        assert status["faults"]["enabled"]
        assert "worker.batch" in status["faults"]["sites"]

    def test_wait_ready_timeout_raises_instead_of_hanging(self):
        svc = SweepService(width=0)  # never started
        with pytest.raises(TimeoutError, match="did not come up"):
            svc.wait_ready(timeout=0.05)


class TestClientBackoff:
    @pytest.fixture
    def dead_port(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_backoff_is_seeded_capped_and_exponential(self, monkeypatch,
                                                      dead_port):
        sleeps: list[float] = []
        monkeypatch.setattr("repro.service.client.time.sleep",
                            sleeps.append)
        client = SweepClient("127.0.0.1", dead_port, connect_timeout=0.5)

        def _attempt():
            with pytest.raises(ServiceError, match="did not complete"):
                client.run(SMOKE_JOB, retries=4, retry_delay=0.1,
                           max_delay=0.3, seed=42)

        _attempt()
        first = sleeps[:]
        sleeps.clear()
        _attempt()
        assert sleeps == first  # same seed, same job: same delays
        assert len(first) == 4
        assert all(0.05 <= s <= 0.3 for s in first)  # jittered, capped
        assert first[0] < first[1]  # exponential below the cap

    def test_deadline_bounds_total_retry_time(self, monkeypatch, dead_port):
        sleeps: list[float] = []
        monkeypatch.setattr("repro.service.client.time.sleep",
                            sleeps.append)
        client = SweepClient("127.0.0.1", dead_port, connect_timeout=0.5)
        with pytest.raises(ServiceError, match="did not complete"):
            client.run(SMOKE_JOB, retries=50, deadline=0.0, seed=1)
        assert sleeps == []  # the deadline already passed: no sleeps

    def test_timeout_knob_sets_both_phases(self):
        both = SweepClient("h", 1, timeout=17.0)
        assert both.connect_timeout == 17.0
        assert both.idle_timeout == 17.0 == both.timeout
        split = SweepClient("h", 1, connect_timeout=2.0, idle_timeout=40.0)
        assert split.connect_timeout == 2.0 and split.idle_timeout == 40.0
