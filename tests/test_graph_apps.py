"""Tests for the graph applications: BFS, SSSP, PageRank, triangles."""

import numpy as np
import pytest

from repro.apps.bfs import bfs, bfs_reference
from repro.apps.pagerank import pagerank, pagerank_reference
from repro.apps.sssp import sssp, sssp_reference
from repro.apps.triangle_count import triangle_count, triangle_count_reference
from repro.sparse import generators as gen
from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import CsrGraph, random_graph


class TestSssp:
    @pytest.mark.parametrize(
        "schedule", ["group_mapped", "merge_path", "thread_mapped", "warp_mapped"]
    )
    def test_matches_dijkstra(self, schedule):
        g = random_graph(150, 5.0, seed=1)
        r = sssp(g, 0, schedule=schedule)
        np.testing.assert_allclose(
            r.output, sssp_reference(g, 0), rtol=1e-12, equal_nan=True
        )

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(100, 4.0, seed=2)
        r = sssp(g, 0)
        lengths = nx.single_source_dijkstra_path_length(g.to_networkx(), 0)
        for v in range(g.num_vertices):
            if v in lengths:
                assert r.output[v] == pytest.approx(lengths[v])
            else:
                assert np.isinf(r.output[v])

    def test_unreachable_is_inf(self):
        # Two disconnected vertices.
        csr = CsrMatrix.from_dense(np.zeros((3, 3)))
        r = sssp(CsrGraph(csr), 0)
        assert r.output[0] == 0.0
        assert np.isinf(r.output[1]) and np.isinf(r.output[2])

    def test_rejects_negative_weights(self):
        csr = CsrMatrix.from_dense(np.array([[0.0, -1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError, match="non-negative"):
            sssp(CsrGraph(csr), 0)

    def test_rejects_bad_source(self):
        g = random_graph(5, 1.0, seed=3)
        with pytest.raises(ValueError, match="source"):
            sssp(g, 99)

    def test_iterations_recorded(self):
        g = random_graph(200, 4.0, seed=4)
        r = sssp(g, 0)
        assert r.extras["iterations"] >= 1
        trace = r.extras["trace"]
        assert trace[0].frontier_size == 1  # starts from the source

    def test_max_iterations_caps_loop(self):
        g = random_graph(500, 3.0, seed=5)
        r = sssp(g, 0, max_iterations=2)
        assert r.extras["iterations"] <= 2


class TestBfs:
    @pytest.mark.parametrize("schedule", ["group_mapped", "merge_path"])
    def test_matches_queue_reference(self, schedule):
        g = random_graph(200, 4.0, seed=6)
        r = bfs(g, 3, schedule=schedule)
        np.testing.assert_array_equal(r.output, bfs_reference(g, 3))

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(120, 3.0, seed=7)
        r = bfs(g, 0)
        lengths = nx.single_source_shortest_path_length(g.to_networkx(), 0)
        for v in range(g.num_vertices):
            assert r.output[v] == lengths.get(v, -1)

    def test_source_depth_zero(self):
        g = random_graph(50, 3.0, seed=8)
        assert bfs(g, 7).output[7] == 0

    def test_bfs_depth_leq_sssp_hops(self):
        # With unit weights, SSSP distances equal BFS depths.
        g = random_graph(100, 4.0, seed=9)
        unit = CsrGraph(
            CsrMatrix.from_arrays(
                g.csr.row_offsets, g.csr.col_indices, np.ones(g.num_edges), g.csr.shape
            )
        )
        d_bfs = bfs(unit, 0).output.astype(float)
        d_sssp = sssp(unit, 0).output
        reachable = d_bfs >= 0
        np.testing.assert_allclose(d_bfs[reachable], d_sssp[reachable])


class TestPagerank:
    def test_matches_reference(self):
        m = gen.poisson_random(60, 60, 4.0, seed=10)
        r = pagerank(m)
        np.testing.assert_allclose(r.output, pagerank_reference(m), atol=1e-8)

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.sparse.convert import coo_to_csr, csr_to_coo

        g = random_graph(80, 4.0, seed=11)
        # networkx.DiGraph collapses parallel edges, so compare on the
        # deduplicated graph (our CSR semantics is a multigraph).
        dedup = csr_to_coo(g.csr).sum_duplicates()
        import numpy as _np

        simple = coo_to_csr(
            type(dedup).from_arrays(
                dedup.rows, dedup.cols, _np.ones(dedup.nnz), dedup.shape
            )
        )
        r = pagerank(simple, damping=0.85, tol=1e-12)
        theirs = nx.pagerank(
            CsrGraph(simple).to_networkx(), alpha=0.85, tol=1e-10, max_iter=500,
            weight=None,
        )
        for v in range(80):
            assert r.output[v] == pytest.approx(theirs[v], abs=1e-6)

    def test_ranks_sum_to_one(self):
        m = gen.power_law(100, 100, 3.0, seed=12)
        r = pagerank(m)
        assert r.output.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            pagerank(gen.poisson_random(5, 6, 1.0, seed=13))
        with pytest.raises(ValueError, match="damping"):
            pagerank(gen.diagonal(5), damping=1.5)

    def test_stats_accumulate_iterations(self):
        m = gen.poisson_random(50, 50, 3.0, seed=14)
        r = pagerank(m)
        assert r.extras["iterations"] > 1
        from repro.gpusim.arch import V100

        assert (
            r.stats.makespan_cycles
            > r.extras["iterations"] * V100.costs.kernel_launch_cycles
        )


class TestTriangleCount:
    def test_known_triangle(self):
        dense = np.array(
            [[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float
        )
        r = triangle_count(CsrMatrix.from_dense(dense))
        assert r.output == 1

    def test_known_two_triangles(self):
        # K4 minus one edge has 2 triangles.
        dense = np.ones((4, 4)) - np.eye(4)
        dense[0, 3] = dense[3, 0] = 0
        r = triangle_count(CsrMatrix.from_dense(dense))
        assert r.output == 2

    def test_matches_reference_random(self):
        m = gen.poisson_random(40, 40, 4.0, seed=15)
        assert triangle_count(m).output == triangle_count_reference(m)

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(60, 5.0, seed=16)
        r = triangle_count(g.csr)
        ung = g.to_networkx().to_undirected()
        ung.remove_edges_from(nx.selfloop_edges(ung))
        expected = sum(nx.triangles(ung).values()) // 3
        assert r.output == expected

    def test_triangle_free(self):
        m = gen.banded(20, 1, seed=17)  # tridiagonal path-like graph
        # A path graph (band 1 off-diagonals) has no triangles.
        assert triangle_count(m).output == 0

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            triangle_count(gen.poisson_random(4, 5, 1.0, seed=18))
