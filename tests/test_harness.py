"""Tests for the experiment harness."""

import csv

import pytest

from repro.evaluation.harness import (
    SPMV_KERNELS,
    run_spmv_kernel,
    run_spmv_suite,
    write_csv,
)
from repro.sparse.corpus import load_dataset


class TestRunKernel:
    @pytest.mark.parametrize("kernel", SPMV_KERNELS)
    def test_every_kernel_runs_and_validates(self, kernel):
        ds = load_dataset("tiny_power_256", "smoke")
        row = run_spmv_kernel(kernel, ds)
        assert row.kernel == kernel
        assert row.dataset == ds.name
        assert row.rows == ds.rows and row.cols == ds.cols and row.nnzs == ds.nnz
        assert row.elapsed > 0
        assert 0 <= row.meta["simt_efficiency"] <= 1

    def test_unknown_kernel(self):
        ds = load_dataset("tiny_diag_32", "smoke")
        with pytest.raises(KeyError, match="unknown kernel"):
            run_spmv_kernel("fictional", ds)

    def test_heuristic_records_choice(self):
        ds = load_dataset("tiny_uniform_64", "smoke")
        row = run_spmv_kernel("heuristic", ds)
        assert row.meta["schedule"] in {
            "thread_mapped",
            "group_mapped",
            "merge_path",
        }

    @pytest.mark.parametrize("baseline", ["cub", "cusparse"])
    def test_baseline_rows_record_schedule_uniformly(self, baseline):
        """Regression: baseline rows lacked the ``schedule`` extras key
        that policy/schedule rows carry, forcing consumers to
        special-case the kernel class."""
        ds = load_dataset("tiny_power_256", "smoke")
        row = run_spmv_kernel(baseline, ds)
        assert row.meta["schedule"] == baseline


class TestWrapperContext:
    """ctx= threads through the paper-era wrappers (legacy-API migration)."""

    def test_run_spmv_kernel_accepts_ctx(self):
        from repro.engine import ExecutionContext
        from repro.gpusim.arch import get_spec

        ds = load_dataset("tiny_power_256", "smoke")
        spec = get_spec("AMD-WARP64")
        via_ctx = run_spmv_kernel("merge_path", ds, ctx=ExecutionContext(spec=spec))
        via_spec = run_spmv_kernel("merge_path", ds, spec)
        assert via_ctx.elapsed == via_spec.elapsed

    def test_run_spmv_kernel_ctx_and_spec_conflict(self):
        from repro.engine import ExecutionContext
        from repro.gpusim.arch import V100

        ds = load_dataset("tiny_diag_32", "smoke")
        with pytest.raises(ValueError, match="not both"):
            run_spmv_kernel("merge_path", ds, V100, ctx=ExecutionContext())

    def test_run_spmv_suite_accepts_ctx(self):
        from repro.engine import ExecutionContext

        ds = [load_dataset("tiny_uniform_64", "smoke")]
        via_ctx = run_spmv_suite(
            ["merge_path"], datasets=ds, ctx=ExecutionContext(engine="vector")
        )
        plain = run_spmv_suite(["merge_path"], datasets=ds)
        assert [(r.dataset, r.elapsed) for r in via_ctx] == [
            (r.dataset, r.elapsed) for r in plain
        ]

    def test_run_spmv_suite_ctx_and_spec_conflict(self):
        from repro.engine import ExecutionContext
        from repro.gpusim.arch import V100

        with pytest.raises(ValueError, match="not both"):
            run_spmv_suite(
                ["merge_path"],
                datasets=[load_dataset("tiny_diag_32", "smoke")],
                spec=V100,
                ctx=ExecutionContext(),
            )


class TestSuite:
    def test_limit_and_kernel_grid(self):
        rows = run_spmv_suite(["merge_path", "cub"], scale="smoke", limit=4)
        assert len(rows) == 8
        assert {r.kernel for r in rows} == {"merge_path", "cub"}

    def test_explicit_datasets(self):
        ds = [load_dataset("tiny_diag_32", "smoke")]
        rows = run_spmv_suite(["cusparse"], datasets=ds)
        assert len(rows) == 1

    def test_deterministic(self):
        a = run_spmv_suite(["merge_path"], scale="smoke", limit=3)
        b = run_spmv_suite(["merge_path"], scale="smoke", limit=3)
        assert [(r.dataset, r.elapsed) for r in a] == [
            (r.dataset, r.elapsed) for r in b
        ]


class TestCsv:
    def test_paper_schema(self, tmp_path):
        rows = run_spmv_suite(["merge_path"], scale="smoke", limit=3)
        path = write_csv(rows, tmp_path / "out" / "results.csv")
        with open(path) as fh:
            reader = csv.DictReader(fh)
            assert reader.fieldnames == [
                "kernel",
                "dataset",
                "rows",
                "cols",
                "nnzs",
                "elapsed",
            ]
            parsed = list(reader)
        assert len(parsed) == 3
        assert parsed[0]["kernel"] == "merge_path"
        assert float(parsed[0]["elapsed"]) > 0
