"""Tests for the experiment harness."""

import csv

import pytest

from repro.evaluation.harness import (
    SPMV_KERNELS,
    run_spmv_kernel,
    run_spmv_suite,
    write_csv,
)
from repro.sparse.corpus import load_dataset


class TestRunKernel:
    @pytest.mark.parametrize("kernel", SPMV_KERNELS)
    def test_every_kernel_runs_and_validates(self, kernel):
        ds = load_dataset("tiny_power_256", "smoke")
        row = run_spmv_kernel(kernel, ds)
        assert row.kernel == kernel
        assert row.dataset == ds.name
        assert row.rows == ds.rows and row.cols == ds.cols and row.nnzs == ds.nnz
        assert row.elapsed > 0
        assert 0 <= row.meta["simt_efficiency"] <= 1

    def test_unknown_kernel(self):
        ds = load_dataset("tiny_diag_32", "smoke")
        with pytest.raises(KeyError, match="unknown kernel"):
            run_spmv_kernel("fictional", ds)

    def test_heuristic_records_choice(self):
        ds = load_dataset("tiny_uniform_64", "smoke")
        row = run_spmv_kernel("heuristic", ds)
        assert row.meta["schedule"] in {
            "thread_mapped",
            "group_mapped",
            "merge_path",
        }


class TestSuite:
    def test_limit_and_kernel_grid(self):
        rows = run_spmv_suite(["merge_path", "cub"], scale="smoke", limit=4)
        assert len(rows) == 8
        assert {r.kernel for r in rows} == {"merge_path", "cub"}

    def test_explicit_datasets(self):
        ds = [load_dataset("tiny_diag_32", "smoke")]
        rows = run_spmv_suite(["cusparse"], datasets=ds)
        assert len(rows) == 1

    def test_deterministic(self):
        a = run_spmv_suite(["merge_path"], scale="smoke", limit=3)
        b = run_spmv_suite(["merge_path"], scale="smoke", limit=3)
        assert [(r.dataset, r.elapsed) for r in a] == [
            (r.dataset, r.elapsed) for r in b
        ]


class TestCsv:
    def test_paper_schema(self, tmp_path):
        rows = run_spmv_suite(["merge_path"], scale="smoke", limit=3)
        path = write_csv(rows, tmp_path / "out" / "results.csv")
        with open(path) as fh:
            reader = csv.DictReader(fh)
            assert reader.fieldnames == [
                "kernel",
                "dataset",
                "rows",
                "cols",
                "nnzs",
                "elapsed",
            ]
            parsed = list(reader)
        assert len(parsed) == 3
        assert parsed[0]["kernel"] == "merge_path"
        assert float(parsed[0]["elapsed"]) > 0
