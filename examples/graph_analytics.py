#!/usr/bin/env python3
"""Data-centric graph analytics on the load-balancing abstraction.

The paper's Section 5.3 claim: the *same* schedules that balance sparse
linear algebra balance graph traversal, because both are tiles+atoms
workloads.  This example runs SSSP (Listing 5), BFS, PageRank and
triangle counting on two structurally opposite graphs:

* a road-network-like graph (near-uniform degrees: any schedule works);
* a social-network-like graph (power-law degrees: schedule choice is
  decisive, exactly as for SpMV).

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import bfs, pagerank, sssp, triangle_count
from repro.sparse import CsrGraph, coo_to_csr, csr_to_coo
from repro.sparse import generators as gen


def road_network(n: int = 4000) -> CsrGraph:
    """Banded adjacency: every junction connects to a few neighbours."""
    return CsrGraph(gen.banded(n, 2, seed=1))


def social_network(n_scale: int = 12) -> CsrGraph:
    """R-MAT graph: hubs with thousands of followers next to leaves."""
    csr = gen.rmat(n_scale, 8, seed=2)
    coo = csr_to_coo(csr)
    keep = coo.rows != coo.cols  # drop self-loops
    import dataclasses

    coo = dataclasses.replace(
        coo, rows=coo.rows[keep], cols=coo.cols[keep], values=coo.values[keep]
    )
    return CsrGraph(coo_to_csr(coo))


def profile(name: str, graph: CsrGraph) -> None:
    stats = graph.csr.degree_stats()
    print(f"\n== {name}: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"degree CV = {stats['cv']:.2f} ==")

    print(f"{'app':<12} {'schedule':<16} {'model ms':>10} {'iterations':>11}")
    for schedule in ("thread_mapped", "group_mapped", "merge_path"):
        r = sssp(graph, 0, schedule=schedule)
        print(f"{'sssp':<12} {schedule:<16} {r.elapsed_ms:>10.4f} "
              f"{r.extras['iterations']:>11}")

    r = bfs(graph, 0, schedule="group_mapped")
    reach = int((r.output >= 0).sum())
    print(f"{'bfs':<12} {'group_mapped':<16} {r.elapsed_ms:>10.4f} "
          f"{r.extras['iterations']:>11}   ({reach} reachable)")

    r = pagerank(graph.csr, schedule="merge_path")
    top = int(np.argmax(r.output))
    print(f"{'pagerank':<12} {'merge_path':<16} {r.elapsed_ms:>10.4f} "
          f"{r.extras['iterations']:>11}   (top vertex: {top})")

    r = triangle_count(graph.csr, schedule="lrb")
    print(f"{'triangles':<12} {'lrb':<16} {r.elapsed_ms:>10.4f} "
          f"{'-':>11}   ({r.output} triangles)")


def main() -> None:
    profile("road network (uniform)", road_network())
    profile("social network (power law)", social_network())
    print("\nOn the uniform graph, schedule choice barely matters; on the")
    print("power-law graph, the balanced schedules pull decisively ahead --")
    print("the same story as SpMV, with zero graph-specific balancing code.")


if __name__ == "__main__":
    main()
