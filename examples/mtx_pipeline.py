#!/usr/bin/env python3
"""The artifact's end-to-end pipeline on a MatrixMarket file.

Reproduces the paper's appendix A.3.1 sanity check:

    bin/loops.spmv.merge_path -m chesapeake.mtx --validate

using the bundled ``datasets/chesapeake.mtx`` stand-in (39 x 39, 340
nonzeros), then emits a results CSV in the paper's schema, like run.sh.

Run:  python examples/mtx_pipeline.py [path/to/matrix.mtx]
"""

import sys
from pathlib import Path

import numpy as np

from repro import read_mtx, spmv
from repro.baselines import dense_spmv_oracle
from repro.sparse import coo_to_csr

DEFAULT = Path(__file__).resolve().parent.parent / "datasets" / "chesapeake.mtx"


def main(path: Path) -> None:
    matrix = coo_to_csr(read_mtx(path))
    x = np.random.default_rng(0).uniform(size=matrix.num_cols)

    result = spmv(matrix, x, schedule="merge_path")
    errors = int(np.sum(~np.isclose(result.output, dense_spmv_oracle(matrix, x))))

    # The artifact's sanity-check output format:
    print(f"Elapsed (ms): {result.elapsed_ms:.6f}")
    print(f"Matrix: {path.name}")
    print(f"Dimensions: {matrix.num_rows} x {matrix.num_cols} ({matrix.nnz})")
    print(f"Errors: {errors}")

    # And the run.sh CSV schema:
    print("\nkernel,dataset,rows,cols,nnzs,elapsed")
    for kernel in ("merge_path", "thread_mapped", "group_mapped"):
        r = spmv(matrix, x, schedule=kernel)
        print(
            f"{kernel.replace('_', '-')},{path.stem},{matrix.num_rows},"
            f"{matrix.num_cols},{matrix.nnz},{r.elapsed_ms:.6f}"
        )


if __name__ == "__main__":
    main(Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT)
