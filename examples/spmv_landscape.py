#!/usr/bin/env python3
"""The SpMV performance landscape (Figures 3 and 4 in miniature).

Sweeps three framework schedules plus the vendor-model baseline over a
slice of the corpus, prints the per-dataset winners, and shows what the
Section 6.2 heuristic would pick -- the "facilitate exploration of
optimizations" design goal in action.

Run:  python examples/spmv_landscape.py [scale]
"""

import sys

import numpy as np

from repro import build_corpus, select_schedule, spmv
from repro.baselines import cusparse_spmv
from repro.gpusim import geomean

SCHEDULES = ("thread_mapped", "group_mapped", "merge_path")


def main(scale: str = "smoke") -> None:
    corpus = build_corpus(scale)
    print(f"{len(corpus)} datasets at scale={scale!r}\n")
    header = (
        f"{'dataset':<18} {'nnz':>9} "
        + "".join(f"{s:>15}" for s in SCHEDULES)
        + f"{'cusparse':>12} {'winner':>15} {'heuristic':>15}"
    )
    print(header)
    print("-" * len(header))

    speedups = []
    agreements = 0
    for ds in corpus:
        x = np.random.default_rng(7).uniform(size=ds.cols)
        times = {s: spmv(ds.matrix, x, schedule=s).elapsed_ms for s in SCHEDULES}
        _, vendor_stats = cusparse_spmv(ds.matrix, x)
        vendor = vendor_stats.elapsed_ms
        winner = min(times, key=times.get)
        chosen = select_schedule(ds.matrix)
        agreements += winner == chosen
        speedups.append(vendor / times[chosen])
        row = (
            f"{ds.name:<18} {ds.nnz:>9} "
            + "".join(f"{times[s]:>15.5f}" for s in SCHEDULES)
            + f"{vendor:>12.5f} {winner:>15} {chosen:>15}"
        )
        print(row)

    print("-" * len(header))
    print(f"\nheuristic agrees with the true winner on {agreements}/{len(corpus)} "
          f"datasets")
    print(f"geomean speedup of heuristic vs vendor model: "
          f"{geomean(speedups):.2f}x   (paper Figure 4: 2.7x)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "smoke")
