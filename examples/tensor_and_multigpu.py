#!/usr/bin/env python3
"""Beyond the paper's evaluation: tensors and multiple GPUs.

Two extension surfaces built on the same abstraction:

1. **Sparse MTTKRP** (Section 3.3's tensor contractions): mode-0 slices
   are tiles, tensor nonzeros are atoms -- every SpMV schedule applies
   unchanged, and the related work's F-COO "equal nonzeros per thread"
   format becomes simply the ``nonzero_split`` *schedule*.
2. **Multi-GPU** (Section 8's future work): the merge-path partitioner
   applied one level up, splitting the tile set across devices.

Run:  python examples/tensor_and_multigpu.py
"""

import numpy as np

from repro.apps.common import spmv_costs
from repro.apps.spmttkrp import spmttkrp, spmttkrp_reference
from repro.core import WorkSpec
from repro.gpusim import V100, multi_gpu_plan
from repro.sparse.tensor import random_tensor


def tensor_demo() -> None:
    print("== Sparse MTTKRP (3-way tensor x Khatri-Rao product) ==")
    tensor = random_tensor((5000, 64, 64), 150_000, skew=0.9, seed=0)
    counts = tensor.slice_counts()
    print(f"tensor {tensor.shape}, {tensor.nnz} nnz, "
          f"slice-degree CV = {counts.std() / counts.mean():.2f}")
    rng = np.random.default_rng(1)
    b = rng.uniform(size=(64, 16))
    c = rng.uniform(size=(64, 16))
    expected = spmttkrp_reference(tensor, b, c)

    print(f"{'schedule':<16} {'model ms':>10}")
    for schedule in ("thread_mapped", "nonzero_split", "merge_path"):
        r = spmttkrp(tensor, b, c, schedule=schedule)
        assert np.allclose(r.output, expected)
        print(f"{schedule:<16} {r.elapsed_ms:>10.4f}")
    print("nonzero_split reproduces F-COO's balance as a *schedule*, with")
    print("no special storage format.\n")


def multigpu_demo() -> None:
    print("== Multi-GPU split (future work, Section 8) ==")
    skewed = np.random.default_rng(2).permutation(
        np.concatenate([np.full(32, 100_000), np.full(60_000, 3)])
    )
    work = WorkSpec.from_counts(skewed, label="skewed")
    costs = spmv_costs(V100)

    print(f"{'devices':>8} {'partition':<12} {'model ms':>10} {'imbalance':>10}")
    for n in (1, 2, 4, 8):
        for strategy in ("tiles", "merge_path"):
            plan = multi_gpu_plan(
                work, costs, num_devices=n, partition=strategy
            )
            print(f"{n:>8} {strategy:<12} {plan.elapsed_ms:>10.4f} "
                  f"{plan.device_imbalance:>10.3f}")
    print("the merge-path partitioner balances devices that an equal-tile")
    print("split cannot -- the same algorithm, one level up the hierarchy.")


if __name__ == "__main__":
    tensor_demo()
    multigpu_demo()
