#!/usr/bin/env python3
"""Writing a *new* load-balancing schedule in ~30 lines.

The paper's extensibility claim (design goal: "be able to add new
load-balancing algorithms"): a schedule only has to say which tiles and
atoms each thread consumes, plus how to cost its own machinery.  Here we
implement **chunked-tile** scheduling -- each thread takes one contiguous
chunk of tiles (instead of striding) -- register it, and immediately use
it from the unmodified SpMV application.

Run:  python examples/custom_schedule.py
"""

import numpy as np

from repro import load_dataset, spmv
from repro.core import Schedule, StepRange, WorkCosts, register_schedule
from repro.gpusim import warp_fold


@register_schedule("chunked_tile")
class ChunkedTileSchedule(Schedule):
    """One contiguous chunk of tiles per thread.

    Contiguous chunks improve locality of the offsets array but
    concentrate hot rows on single threads -- a deliberately different
    trade-off from the built-in thread-mapped schedule, visible below.
    """

    def _chunk(self, thread_id: int) -> tuple[int, int]:
        tiles = self.work.num_tiles
        per = -(-tiles // self.launch.num_threads)
        lo = min(thread_id * per, tiles)
        return lo, min(lo + per, tiles)

    # -- per-thread view (what a CUDA kernel would consume) --------------
    def tiles(self, ctx) -> StepRange:
        lo, hi = self._chunk(ctx.global_thread_id)
        return StepRange(lo, hi)

    def atoms(self, ctx, tile: int) -> StepRange:
        lo, hi = self.work.atom_range(tile)
        return StepRange(lo, hi)

    # -- planner view (how the simulator costs it) ------------------------
    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        n_threads = self.launch.num_threads
        per = -(-self.work.num_tiles // n_threads)
        offsets = self.work.tile_offsets
        lo = np.minimum(np.arange(n_threads, dtype=np.int64) * per, self.work.num_tiles)
        hi = np.minimum(lo + per, self.work.num_tiles)
        atoms = (offsets[hi] - offsets[lo]).astype(np.float64)
        tiles = (hi - lo).astype(np.float64)
        per_thread = atoms * costs.atom_total(self.spec) + tiles * (
            costs.tile_cycles + self.spec.costs.loop_overhead
        )
        wc = warp_fold(per_thread, self.spec.warp_size)
        warps_per_block = self.launch.block_dim // self.spec.warp_size
        out = np.zeros(self.launch.grid_dim * warps_per_block)
        out[: wc.size] = wc
        return out.reshape(self.launch.grid_dim, warps_per_block)


def main() -> None:
    dataset = load_dataset("power_a21", scale="smoke")
    matrix = dataset.matrix
    x = np.random.default_rng(0).uniform(size=matrix.num_cols)
    expected = matrix.to_dense() @ x

    print(f"dataset: {dataset.name} ({matrix.nnz} nnz, "
          f"CV = {dataset.meta['cv']:.2f})\n")
    print(f"{'schedule':<16} {'model ms':>10} {'SIMT efficiency':>16}")
    for name in ("chunked_tile", "thread_mapped", "merge_path"):
        r = spmv(matrix, x, schedule=name)
        assert np.allclose(r.output, expected)
        print(f"{name:<16} {r.elapsed_ms:>10.5f} {r.stats.simt_efficiency:>16.3f}")

    print("\nThe new schedule plugged into the unmodified SpMV app: the")
    print("computation stage never changed -- only the mapping did.")


if __name__ == "__main__":
    main()
