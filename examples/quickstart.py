#!/usr/bin/env python3
"""Quickstart: load-balanced SpMV in a dozen lines.

Mirrors the paper's Listing 3 workflow:

1. a sparse matrix (the *tile set*: rows are tiles, nonzeros are atoms);
2. a load-balancing schedule picked by name -- switching schedules is a
   one-identifier change (Section 6.2);
3. the SpMV computation, which is the same four lines regardless of the
   schedule.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import available_schedules, load_dataset, spmv

def main() -> None:
    # A heavy-tailed matrix: the irregular workload GPUs struggle with.
    dataset = load_dataset("power_a19", scale="smoke")
    matrix = dataset.matrix
    print(f"dataset: {dataset.name}  {matrix.num_rows} x {matrix.num_cols}, "
          f"{matrix.nnz} nonzeros, degree CV = {dataset.meta['cv']:.2f}\n")

    x = np.random.default_rng(0).uniform(size=matrix.num_cols)
    expected = matrix.to_dense() @ x

    print(f"{'schedule':<16} {'model ms':>10} {'SIMT eff':>9} {'occupancy':>10}")
    for name in sorted(available_schedules()) + ["heuristic"]:
        result = spmv(matrix, x, schedule=name)
        assert np.allclose(result.output, expected), name
        print(
            f"{name:<16} {result.elapsed_ms:>10.5f} "
            f"{result.stats.simt_efficiency:>9.3f} "
            f"{result.stats.occupancy:>10.3f}"
        )

    chosen = spmv(matrix, x, schedule="heuristic").schedule
    print(f"\nheuristic (Section 6.2) picked: {chosen}")
    print("all schedules produced identical results -- load balancing is")
    print("fully decoupled from the computation.")


if __name__ == "__main__":
    main()
