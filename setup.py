"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``).

All metadata lives in ``pyproject.toml``; setuptools >= 61 reads it from
there.  Environments without the ``wheel`` package need this file for
the non-PEP-517 editable path.
"""

from setuptools import setup

setup()
