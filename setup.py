from setuptools import setup  # shim for legacy editable installs (no-wheel envs); all metadata lives in pyproject.toml

setup()
