"""MatrixMarket (``.mtx``) reading and writing.

The paper's artifact evaluates on SuiteSparse matrices distributed as
MatrixMarket files (and notes that some mislabeled files fail to parse --
we raise :class:`MtxFormatError` for those).  Supported here:

* ``coordinate`` and ``array`` formats;
* ``real``, ``integer`` and ``pattern`` fields (``complex`` is rejected);
* ``general``, ``symmetric`` and ``skew-symmetric`` symmetries, with
  off-diagonal expansion on read.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from .coo import CooMatrix
from .csr import CsrMatrix

__all__ = ["read_mtx", "write_mtx", "MtxFormatError"]

_VALID_FORMATS = {"coordinate", "array"}
_VALID_FIELDS = {"real", "integer", "pattern"}
_VALID_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


class MtxFormatError(ValueError):
    """Raised for files that are not valid MatrixMarket format."""


def read_mtx(path_or_file: str | Path | TextIO) -> CooMatrix:
    """Parse a MatrixMarket file into a :class:`CooMatrix`.

    Symmetric and skew-symmetric inputs are expanded (off-diagonal entries
    mirrored), matching how SpMV treats them.
    """
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "r", encoding="utf-8", errors="replace") as fh:
            return _read(fh)
    return _read(path_or_file)


def _read(fh: TextIO) -> CooMatrix:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise MtxFormatError("missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5 or parts[1].lower() != "matrix":
        raise MtxFormatError(f"malformed header line: {header.strip()!r}")
    fmt, field, symmetry = (p.lower() for p in parts[2:5])
    if fmt not in _VALID_FORMATS:
        raise MtxFormatError(f"unsupported format {fmt!r}")
    if field not in _VALID_FIELDS:
        raise MtxFormatError(f"unsupported field {field!r}")
    if symmetry not in _VALID_SYMMETRIES:
        raise MtxFormatError(f"unsupported symmetry {symmetry!r}")

    # Skip comments and blank lines to the size line.
    line = fh.readline()
    while line and (line.startswith("%") or not line.strip()):
        line = fh.readline()
    if not line:
        raise MtxFormatError("missing size line")

    if fmt == "coordinate":
        return _read_coordinate(fh, line, field, symmetry)
    return _read_array(fh, line, field, symmetry)


def _read_coordinate(fh: TextIO, size_line: str, field: str, symmetry: str) -> CooMatrix:
    try:
        rows_s, cols_s, nnz_s = size_line.split()
        rows, cols, nnz = int(rows_s), int(cols_s), int(nnz_s)
    except ValueError as exc:
        raise MtxFormatError(f"bad coordinate size line: {size_line.strip()!r}") from exc
    if rows < 0 or cols < 0 or nnz < 0:
        raise MtxFormatError("negative dimensions in size line")

    want_value = field != "pattern"
    r = np.empty(nnz, dtype=np.int64)
    c = np.empty(nnz, dtype=np.int64)
    v = np.empty(nnz, dtype=np.float64)
    count = 0
    for line in fh:
        s = line.strip()
        if not s or s.startswith("%"):
            continue
        parts = s.split()
        if count >= nnz:
            raise MtxFormatError(f"more than the declared {nnz} entries")
        try:
            ri, ci = int(parts[0]), int(parts[1])
            vi = float(parts[2]) if want_value else 1.0
        except (IndexError, ValueError) as exc:
            raise MtxFormatError(f"bad entry line: {s!r}") from exc
        if not (1 <= ri <= rows and 1 <= ci <= cols):
            raise MtxFormatError(f"entry ({ri},{ci}) out of bounds {rows}x{cols}")
        r[count], c[count], v[count] = ri - 1, ci - 1, vi
        count += 1
    if count != nnz:
        raise MtxFormatError(f"declared {nnz} entries but found {count}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = r != c
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        r, c, v = (
            np.concatenate([r, c[off_diag]]),
            np.concatenate([c, r[off_diag]]),
            np.concatenate([v, sign * v[off_diag]]),
        )
    return CooMatrix.from_arrays(r, c, v, (rows, cols))


def _read_array(fh: TextIO, size_line: str, field: str, symmetry: str) -> CooMatrix:
    try:
        rows_s, cols_s = size_line.split()
        rows, cols = int(rows_s), int(cols_s)
    except ValueError as exc:
        raise MtxFormatError(f"bad array size line: {size_line.strip()!r}") from exc
    if field == "pattern":
        raise MtxFormatError("array format cannot have a pattern field")
    entries = []
    for line in fh:
        s = line.strip()
        if not s or s.startswith("%"):
            continue
        try:
            entries.append(float(s))
        except ValueError as exc:
            raise MtxFormatError(f"bad array entry: {s!r}") from exc
    expected = rows * cols if symmetry == "general" else rows * (rows + 1) // 2
    if len(entries) != expected:
        raise MtxFormatError(
            f"array body has {len(entries)} entries, expected {expected}"
        )
    dense = np.zeros((rows, cols))
    if symmetry == "general":
        dense[:] = np.asarray(entries).reshape(cols, rows).T  # column-major
    else:
        k = 0
        for j in range(cols):
            for i in range(j, rows):
                dense[i, j] = entries[k]
                if i != j:
                    dense[j, i] = (
                        -entries[k] if symmetry == "skew-symmetric" else entries[k]
                    )
                k += 1
    csr = CsrMatrix.from_dense(dense)
    from .convert import csr_to_coo

    return csr_to_coo(csr)


def write_mtx(
    path_or_file: str | Path | TextIO,
    matrix: CooMatrix | CsrMatrix,
    *,
    field: str = "real",
    comment: str | None = None,
) -> None:
    """Write a matrix as a general-coordinate MatrixMarket file."""
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    if isinstance(matrix, CsrMatrix):
        from .convert import csr_to_coo

        coo = csr_to_coo(matrix)
    else:
        coo = matrix
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            _write(fh, coo, field, comment)
    else:
        _write(path_or_file, coo, field, comment)


def _write(fh: TextIO, coo: CooMatrix, field: str, comment: str | None) -> None:
    fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    if comment:
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
    fh.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
    buf = io.StringIO()
    if field == "pattern":
        for r, c in zip(coo.rows, coo.cols):
            buf.write(f"{r + 1} {c + 1}\n")
    elif field == "integer":
        for r, c, v in zip(coo.rows, coo.cols, coo.values):
            buf.write(f"{r + 1} {c + 1} {int(v)}\n")
    else:
        for r, c, v in zip(coo.rows, coo.cols, coo.values):
            buf.write(f"{r + 1} {c + 1} {v:.17g}\n")
    fh.write(buf.getvalue())
