"""Compressed Sparse Row (CSR) matrices.

CSR is the paper's canonical input format (Listing 1): three arrays --
``row_offsets`` (the extent of each row), ``col_indices`` and ``values``.
In the load-balancing vocabulary, each nonzero is a *work atom*, each row a
*work tile*, and the matrix a *tile set*; ``row_offsets`` doubles as the
exclusive prefix sum of atoms-per-tile that every schedule consumes.

Implemented from scratch on NumPy (no SciPy dependency in library code;
SciPy appears only in tests as an independent oracle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CsrMatrix"]


@dataclass(frozen=True)
class CsrMatrix:
    """An immutable CSR sparse matrix."""

    row_offsets: np.ndarray  # (rows + 1,) int64, non-decreasing
    col_indices: np.ndarray  # (nnz,) int64
    values: np.ndarray  # (nnz,) float64
    shape: tuple[int, int]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(
        row_offsets,
        col_indices,
        values,
        shape: tuple[int, int],
        *,
        validate: bool = True,
    ) -> "CsrMatrix":
        m = CsrMatrix(
            row_offsets=np.ascontiguousarray(row_offsets, dtype=np.int64),
            col_indices=np.ascontiguousarray(col_indices, dtype=np.int64),
            values=np.ascontiguousarray(values, dtype=np.float64),
            shape=(int(shape[0]), int(shape[1])),
        )
        if validate:
            m.validate()
        return m

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CsrMatrix":
        d = np.asarray(dense, dtype=np.float64)
        if d.ndim != 2:
            raise ValueError("dense input must be two-dimensional")
        rows, cols = d.shape
        mask = d != 0
        counts = mask.sum(axis=1)
        offsets = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        cidx = np.nonzero(mask)[1].astype(np.int64)
        vals = d[mask]
        return CsrMatrix.from_arrays(offsets, cidx, vals, (rows, cols))

    @staticmethod
    def empty(shape: tuple[int, int]) -> "CsrMatrix":
        return CsrMatrix.from_arrays(
            np.zeros(shape[0] + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
            shape,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.col_indices.size)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the three CSR arrays (cache budgeting)."""
        return int(
            self.row_offsets.nbytes + self.col_indices.nbytes + self.values.nbytes
        )

    def row_lengths(self) -> np.ndarray:
        """Number of nonzeros in each row (= atoms per tile)."""
        return np.diff(self.row_offsets)

    def row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of one row, as views."""
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range for {self.num_rows} rows")
        lo, hi = self.row_offsets[row], self.row_offsets[row + 1]
        return self.col_indices[lo:hi], self.values[lo:hi]

    # ------------------------------------------------------------------
    # Validation & conversion
    # ------------------------------------------------------------------
    def validate(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise ValueError(f"negative shape {self.shape}")
        if self.row_offsets.ndim != 1 or self.row_offsets.size != rows + 1:
            raise ValueError(
                f"row_offsets must have length rows+1={rows + 1}, "
                f"got {self.row_offsets.size}"
            )
        if self.row_offsets[0] != 0:
            raise ValueError("row_offsets[0] must be 0")
        if np.any(np.diff(self.row_offsets) < 0):
            raise ValueError("row_offsets must be non-decreasing")
        if self.row_offsets[-1] != self.col_indices.size:
            raise ValueError(
                f"row_offsets[-1]={self.row_offsets[-1]} does not match "
                f"nnz={self.col_indices.size}"
            )
        if self.values.shape != self.col_indices.shape:
            raise ValueError("values and col_indices must have the same length")
        if self.nnz and (
            self.col_indices.min() < 0 or self.col_indices.max() >= cols
        ):
            raise ValueError("column index out of range")

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        rows = np.repeat(np.arange(self.num_rows), self.row_lengths())
        # Duplicate (row, col) entries accumulate, matching sparse semantics.
        np.add.at(out, (rows, self.col_indices), self.values)
        return out

    def transpose(self) -> "CsrMatrix":
        """Transpose via a stable counting sort on column indices."""
        from .convert import csr_transpose

        return csr_transpose(self)

    def sort_rows(self) -> "CsrMatrix":
        """Return a copy with column indices sorted within each row."""
        cidx = self.col_indices.copy()
        vals = self.values.copy()
        lengths = self.row_lengths()
        # Sort key: row id * cols + col -> global lexicographic order.
        rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), lengths)
        order = np.lexsort((cidx, rows))
        return CsrMatrix.from_arrays(
            self.row_offsets, cidx[order], vals[order], self.shape, validate=False
        )

    # ------------------------------------------------------------------
    # Statistics (drive corpus characterization and imbalance reports)
    # ------------------------------------------------------------------
    def degree_stats(self) -> dict[str, float]:
        lengths = self.row_lengths().astype(np.float64)
        if lengths.size == 0:
            return {"mean": 0.0, "std": 0.0, "max": 0.0, "cv": 0.0, "empty_frac": 0.0}
        mean = float(lengths.mean())
        std = float(lengths.std())
        return {
            "mean": mean,
            "std": std,
            "max": float(lengths.max()),
            "cv": std / mean if mean > 0 else 0.0,
            "empty_frac": float((lengths == 0).mean()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"cv={self.degree_stats()['cv']:.2f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CsrMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.row_offsets, other.row_offsets)
            and np.array_equal(self.col_indices, other.col_indices)
            and np.array_equal(self.values, other.values)
        )
