"""Graph view over CSR adjacency matrices.

The paper's SSSP listing (Listing 5) accesses the input through a graph
interface -- ``G.get_neighbor(source, edge)`` and ``G.get_edge_weight(edge)``
-- while the load-balancing machinery sees the same data as a tile set
(vertices = tiles, edges = atoms).  This module provides that dual view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrMatrix
from .generators import random_graph_csr

__all__ = ["CsrGraph", "random_graph"]


@dataclass(frozen=True)
class CsrGraph:
    """A directed, optionally weighted graph stored as CSR adjacency."""

    csr: CsrMatrix

    def __post_init__(self) -> None:
        if self.csr.num_rows != self.csr.num_cols:
            raise ValueError(
                f"graph adjacency must be square, got {self.csr.shape}"
            )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.csr.num_rows

    @property
    def num_edges(self) -> int:
        return self.csr.nnz

    # ------------------------------------------------------------------
    # Paper-style accessors (Listing 5)
    # ------------------------------------------------------------------
    def get_neighbor(self, edge: int) -> int:
        """Destination vertex of a global edge id."""
        return int(self.csr.col_indices[edge])

    def get_edge_weight(self, edge: int) -> float:
        return float(self.csr.values[edge])

    def get_source(self, edge: int) -> int:
        """Source vertex of a global edge id (binary search in offsets)."""
        return int(
            np.searchsorted(self.csr.row_offsets, edge, side="right") - 1
        )

    def neighbors(self, vertex: int) -> np.ndarray:
        lo, hi = self.csr.row_offsets[vertex], self.csr.row_offsets[vertex + 1]
        return self.csr.col_indices[lo:hi]

    def out_degree(self, vertex: int) -> int:
        return int(
            self.csr.row_offsets[vertex + 1] - self.csr.row_offsets[vertex]
        )

    def out_degrees(self) -> np.ndarray:
        return self.csr.row_lengths()

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a networkx.DiGraph (used by tests as an oracle)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_vertices))
        for u in range(self.num_vertices):
            lo, hi = self.csr.row_offsets[u], self.csr.row_offsets[u + 1]
            for e in range(lo, hi):
                v = int(self.csr.col_indices[e])
                w = float(self.csr.values[e])
                # Parallel edges collapse to the lightest one -- the only
                # one shortest-path algorithms can ever use.
                if g.has_edge(u, v):
                    w = min(w, g[u][v]["weight"])
                g.add_edge(u, v, weight=w)
        return g


def random_graph(
    n: int, mean_degree: float = 8.0, *, weighted: bool = True, seed: int = 0
) -> CsrGraph:
    """A random directed graph (Poisson out-degrees, uniform weights)."""
    return CsrGraph(random_graph_csr(n, mean_degree, weighted=weighted, seed=seed))
