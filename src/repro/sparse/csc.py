"""Compressed Sparse Column (CSC) matrices.

The column-major twin of CSR; included because the paper's library ships
CSR, CSC and COO out of the box (Section 3.1).  For load balancing, a CSC
matrix's tiles are its *columns*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CscMatrix"]


@dataclass(frozen=True)
class CscMatrix:
    """An immutable CSC sparse matrix."""

    col_offsets: np.ndarray  # (cols + 1,) int64
    row_indices: np.ndarray  # (nnz,) int64
    values: np.ndarray  # (nnz,) float64
    shape: tuple[int, int]

    @staticmethod
    def from_arrays(col_offsets, row_indices, values, shape, *, validate=True) -> "CscMatrix":
        m = CscMatrix(
            col_offsets=np.ascontiguousarray(col_offsets, dtype=np.int64),
            row_indices=np.ascontiguousarray(row_indices, dtype=np.int64),
            values=np.ascontiguousarray(values, dtype=np.float64),
            shape=(int(shape[0]), int(shape[1])),
        )
        if validate:
            m.validate()
        return m

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.row_indices.size)

    def col_lengths(self) -> np.ndarray:
        """Number of nonzeros in each column (= atoms per tile for CSC)."""
        return np.diff(self.col_offsets)

    def col_slice(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= col < self.num_cols:
            raise IndexError(f"column {col} out of range for {self.num_cols} columns")
        lo, hi = self.col_offsets[col], self.col_offsets[col + 1]
        return self.row_indices[lo:hi], self.values[lo:hi]

    def validate(self) -> None:
        rows, cols = self.shape
        if self.col_offsets.ndim != 1 or self.col_offsets.size != cols + 1:
            raise ValueError(
                f"col_offsets must have length cols+1={cols + 1}, "
                f"got {self.col_offsets.size}"
            )
        if self.col_offsets[0] != 0:
            raise ValueError("col_offsets[0] must be 0")
        if np.any(np.diff(self.col_offsets) < 0):
            raise ValueError("col_offsets must be non-decreasing")
        if self.col_offsets[-1] != self.row_indices.size:
            raise ValueError("col_offsets[-1] must equal nnz")
        if self.values.shape != self.row_indices.shape:
            raise ValueError("values and row_indices must have the same length")
        if self.nnz and (self.row_indices.min() < 0 or self.row_indices.max() >= rows):
            raise ValueError("row index out of range")

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        cols = np.repeat(np.arange(self.num_cols), self.col_lengths())
        np.add.at(out, (self.row_indices, cols), self.values)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CscMatrix(shape={self.shape}, nnz={self.nnz})"
