"""Coordinate (COO) sparse matrices.

COO stores one ``(row, col, value)`` triple per nonzero.  In the paper's
vocabulary it is the format whose atom iterator is trivially the triple
index and whose atoms-per-tile iterator requires a row-pointer build or a
search -- which is why schedules in this framework consume a
:class:`~repro.core.work.WorkSpec` rather than a concrete format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CooMatrix"]


@dataclass(frozen=True)
class CooMatrix:
    """An immutable COO sparse matrix (triples need not be sorted)."""

    rows: np.ndarray  # (nnz,) int64
    cols: np.ndarray  # (nnz,) int64
    values: np.ndarray  # (nnz,) float64
    shape: tuple[int, int]

    @staticmethod
    def from_arrays(rows, cols, values, shape, *, validate: bool = True) -> "CooMatrix":
        m = CooMatrix(
            rows=np.ascontiguousarray(rows, dtype=np.int64),
            cols=np.ascontiguousarray(cols, dtype=np.int64),
            values=np.ascontiguousarray(values, dtype=np.float64),
            shape=(int(shape[0]), int(shape[1])),
        )
        if validate:
            m.validate()
        return m

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    def validate(self) -> None:
        if not (self.rows.shape == self.cols.shape == self.values.shape):
            raise ValueError("rows, cols and values must have identical shapes")
        if self.rows.ndim != 1:
            raise ValueError("COO arrays must be one-dimensional")
        if self.nnz:
            if self.rows.min() < 0 or self.rows.max() >= self.shape[0]:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= self.shape[1]:
                raise ValueError("column index out of range")

    def sorted_by_row(self) -> "CooMatrix":
        """Stable sort by (row, col) -- the canonical order for CSR builds."""
        order = np.lexsort((self.cols, self.rows))
        return CooMatrix.from_arrays(
            self.rows[order],
            self.cols[order],
            self.values[order],
            self.shape,
            validate=False,
        )

    def sum_duplicates(self) -> "CooMatrix":
        """Combine duplicate (row, col) entries by summing their values."""
        if self.nnz == 0:
            return self
        s = self.sorted_by_row()
        key_changes = np.empty(s.nnz, dtype=bool)
        key_changes[0] = True
        key_changes[1:] = (np.diff(s.rows) != 0) | (np.diff(s.cols) != 0)
        group_ids = np.cumsum(key_changes) - 1
        n_groups = int(group_ids[-1]) + 1
        vals = np.zeros(n_groups)
        np.add.at(vals, group_ids, s.values)
        first = np.nonzero(key_changes)[0]
        return CooMatrix.from_arrays(
            s.rows[first], s.cols[first], vals, self.shape, validate=False
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        np.add.at(out, (self.rows, self.cols), self.values)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CooMatrix(shape={self.shape}, nnz={self.nnz})"
