"""Format conversions between COO, CSR and CSC.

All conversions are vectorized (stable counting-sort / prefix-sum based,
the same algorithms a GPU library would use) and preserve duplicate
entries; callers wanting canonical matrices should ``sum_duplicates``
first on the COO side.
"""

from __future__ import annotations

import numpy as np

from .coo import CooMatrix
from .csc import CscMatrix
from .csr import CsrMatrix

__all__ = [
    "coo_to_csr",
    "csr_to_coo",
    "coo_to_csc",
    "csc_to_coo",
    "csr_to_csc",
    "csc_to_csr",
    "csr_transpose",
    "offsets_from_counts",
]


def offsets_from_counts(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum turning per-tile counts into offsets."""
    counts = np.asarray(counts, dtype=np.int64)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def coo_to_csr(coo: CooMatrix) -> CsrMatrix:
    s = coo.sorted_by_row()
    counts = np.bincount(s.rows, minlength=s.shape[0]).astype(np.int64)
    offsets = offsets_from_counts(counts)
    return CsrMatrix.from_arrays(offsets, s.cols, s.values, s.shape, validate=False)


def csr_to_coo(csr: CsrMatrix) -> CooMatrix:
    rows = np.repeat(
        np.arange(csr.num_rows, dtype=np.int64), csr.row_lengths()
    )
    return CooMatrix.from_arrays(
        rows, csr.col_indices.copy(), csr.values.copy(), csr.shape, validate=False
    )


def coo_to_csc(coo: CooMatrix) -> CscMatrix:
    order = np.lexsort((coo.rows, coo.cols))
    cols = coo.cols[order]
    counts = np.bincount(cols, minlength=coo.shape[1]).astype(np.int64)
    offsets = offsets_from_counts(counts)
    return CscMatrix.from_arrays(
        offsets, coo.rows[order], coo.values[order], coo.shape, validate=False
    )


def csc_to_coo(csc: CscMatrix) -> CooMatrix:
    cols = np.repeat(np.arange(csc.num_cols, dtype=np.int64), csc.col_lengths())
    return CooMatrix.from_arrays(
        csc.row_indices.copy(), cols, csc.values.copy(), csc.shape, validate=False
    )


def csr_to_csc(csr: CsrMatrix) -> CscMatrix:
    return coo_to_csc(csr_to_coo(csr))


def csc_to_csr(csc: CscMatrix) -> CsrMatrix:
    return coo_to_csr(csc_to_coo(csc))


def csr_transpose(csr: CsrMatrix) -> CsrMatrix:
    """Transpose a CSR matrix, returning CSR (rows and cols swapped)."""
    csc = csr_to_csc(csr)
    return CsrMatrix.from_arrays(
        csc.col_offsets,
        csc.row_indices,
        csc.values,
        (csr.num_cols, csr.num_rows),
        validate=False,
    )
