"""ELLPACK (ELL) sparse matrices.

ELL pads every row to the same width: a dense ``rows x width`` block of
column indices and values with a sentinel for padding.  It trades memory
for *structural* load balance -- every tile has exactly ``width``
(padded) atoms, so even the trivial thread-mapped schedule is perfectly
balanced on it.  The related work's "store the input in already-load-
balanced formats" family (F-COO et al., Section 7) is represented by
this format in the reproduction.

The pathology is equally classic: one long row inflates ``width`` and
the padding explodes -- which is precisely why the paper balances
*schedules* rather than *storage*.  ``padding_ratio`` quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrMatrix

__all__ = ["EllMatrix", "csr_to_ell", "ell_to_csr"]

#: Sentinel column index marking padding slots.
PAD = -1


@dataclass(frozen=True)
class EllMatrix:
    """An immutable ELL matrix (row-major padded storage)."""

    col_indices: np.ndarray  # (rows, width) int64, PAD for padding
    values: np.ndarray  # (rows, width) float64, 0 for padding
    shape: tuple[int, int]

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def width(self) -> int:
        return int(self.col_indices.shape[1]) if self.col_indices.ndim == 2 else 0

    @property
    def nnz(self) -> int:
        return int((self.col_indices != PAD).sum())

    @property
    def padded_size(self) -> int:
        return int(self.col_indices.size)

    def padding_ratio(self) -> float:
        """Padded slots / real nonzeros (0 = no waste)."""
        nnz = self.nnz
        if nnz == 0:
            return 0.0
        return (self.padded_size - nnz) / nnz

    def validate(self) -> None:
        if self.col_indices.shape != self.values.shape:
            raise ValueError("col_indices and values must have identical shapes")
        if self.col_indices.ndim != 2:
            raise ValueError("ELL storage must be two-dimensional")
        if self.col_indices.shape[0] != self.shape[0]:
            raise ValueError("row count mismatch")
        real = self.col_indices[self.col_indices != PAD]
        if real.size and (real.min() < 0 or real.max() >= self.shape[1]):
            raise ValueError("column index out of range")
        # Padding must be right-aligned within each row (canonical ELL).
        mask = self.col_indices != PAD
        if mask.size and np.any(np.diff(mask.astype(np.int8), axis=1) > 0):
            raise ValueError("padding must be trailing within each row")

    def row_lengths(self) -> np.ndarray:
        return (self.col_indices != PAD).sum(axis=1).astype(np.int64)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        rows, slots = np.nonzero(self.col_indices != PAD)
        np.add.at(out, (rows, self.col_indices[rows, slots]), self.values[rows, slots])
        return out


def csr_to_ell(csr: CsrMatrix, max_width: int | None = None) -> EllMatrix:
    """Convert CSR to ELL; raises if a row exceeds ``max_width``."""
    lengths = csr.row_lengths()
    width = int(lengths.max()) if lengths.size else 0
    if max_width is not None and width > max_width:
        raise ValueError(
            f"longest row has {width} nonzeros, exceeding max_width={max_width}; "
            f"ELL padding would explode (use a schedule, not storage!)"
        )
    rows = csr.num_rows
    col_indices = np.full((rows, width), PAD, dtype=np.int64)
    values = np.zeros((rows, width))
    slot = np.concatenate(
        [np.arange(n, dtype=np.int64) for n in lengths]
    ) if csr.nnz else np.zeros(0, dtype=np.int64)
    row_ids = np.repeat(np.arange(rows, dtype=np.int64), lengths)
    col_indices[row_ids, slot] = csr.col_indices
    values[row_ids, slot] = csr.values
    return EllMatrix(col_indices=col_indices, values=values, shape=csr.shape)


def ell_to_csr(ell: EllMatrix) -> CsrMatrix:
    lengths = ell.row_lengths()
    offsets = np.zeros(ell.num_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    mask = ell.col_indices != PAD
    return CsrMatrix.from_arrays(
        offsets, ell.col_indices[mask], ell.values[mask], ell.shape
    )
