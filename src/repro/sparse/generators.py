"""Synthetic sparse-matrix generators.

The paper evaluates on (approximately) the entire SuiteSparse Matrix
Collection -- ~2,800 matrices, 886 GB on disk.  That corpus is not
available offline, so this module generates matrices spanning the same
structural axes the paper's figures sweep:

* total work (nnz from tens to millions);
* row-degree distribution, from perfectly uniform (regular FEM-like
  meshes) through Poisson to heavy-tailed power laws (web/social graphs),
  which is the axis that determines which load-balancing schedule wins;
* degenerate shapes the paper explicitly discusses: single-column
  matrices (sparse vectors, where CUB's thread-mapped heuristic wins) and
  tiny matrices (where launch overheads dominate cuSparse).

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

import numpy as np

from .convert import coo_to_csr, offsets_from_counts
from .coo import CooMatrix
from .csr import CsrMatrix

__all__ = [
    "uniform_random",
    "poisson_random",
    "power_law",
    "rmat",
    "banded",
    "block_diagonal",
    "diagonal",
    "single_column",
    "dense_row_outliers",
    "empty_heavy",
    "random_graph_csr",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _fill_from_row_lengths(
    lengths: np.ndarray, cols: int, rng: np.random.Generator
) -> CsrMatrix:
    """Build a CSR matrix with prescribed per-row nonzero counts.

    Column indices within a row are sampled without replacement when the
    row is sparse relative to ``cols`` (rejection would be cheap), and by
    choice-without-replacement otherwise; values are uniform in (0, 1].
    """
    lengths = np.minimum(np.asarray(lengths, dtype=np.int64), cols)
    offsets = offsets_from_counts(lengths)
    nnz = int(offsets[-1])
    rows = lengths.size
    # Vectorized sampling *with* replacement: duplicate (row, col) entries
    # are legal CSR and every consumer in this library treats them as
    # summed, so exact per-row uniqueness is not required for benchmarking.
    col_indices = rng.integers(0, cols, size=nnz, dtype=np.int64)
    # Sort columns within each row (canonical CSR ordering).
    row_ids = np.repeat(np.arange(rows, dtype=np.int64), lengths)
    order = np.lexsort((col_indices, row_ids))
    col_indices = col_indices[order]
    values = rng.uniform(0.001, 1.0, size=nnz)
    return CsrMatrix.from_arrays(offsets, col_indices, values, (rows, cols))


def uniform_random(rows: int, cols: int, nnz_per_row: int, seed: int = 0) -> CsrMatrix:
    """Every row has exactly ``nnz_per_row`` nonzeros (perfectly balanced)."""
    rng = _rng(seed)
    lengths = np.full(rows, min(nnz_per_row, cols), dtype=np.int64)
    return _fill_from_row_lengths(lengths, cols, rng)


def poisson_random(rows: int, cols: int, mean_nnz: float, seed: int = 0) -> CsrMatrix:
    """Row lengths drawn from a Poisson distribution (mild imbalance)."""
    rng = _rng(seed)
    lengths = rng.poisson(mean_nnz, size=rows).astype(np.int64)
    return _fill_from_row_lengths(lengths, cols, rng)


def power_law(
    rows: int,
    cols: int,
    mean_nnz: float,
    alpha: float = 2.1,
    seed: int = 0,
    max_degree: int | None = None,
) -> CsrMatrix:
    """Heavy-tailed row degrees (Zipf-like), the classic irregular workload.

    ``alpha`` is the power-law exponent; smaller values give heavier tails
    and therefore worse load imbalance for tile-per-thread schedules.
    """
    rng = _rng(seed)
    raw = rng.zipf(alpha, size=rows).astype(np.float64)
    cap = max_degree if max_degree is not None else cols
    raw = np.minimum(raw, cap)
    scale = mean_nnz / max(raw.mean(), 1e-12)
    lengths = np.maximum(0, np.round(raw * scale)).astype(np.int64)
    return _fill_from_row_lengths(np.minimum(lengths, cols), cols, rng)


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CsrMatrix:
    """Recursive-MATrix (R-MAT) graph generator (Graph500-style).

    Produces a ``2**scale`` square matrix with ``edge_factor * 2**scale``
    edges and a skewed degree distribution -- the canonical graph-analytics
    stress test for GPU load balancing.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("R-MAT probabilities must satisfy 0 < a+b+c < 1")
    n = 1 << scale
    nnz = edge_factor * n
    rng = _rng(seed)
    rows = np.zeros(nnz, dtype=np.int64)
    cols = np.zeros(nnz, dtype=np.int64)
    for level in range(scale):
        r = rng.uniform(size=nnz)
        quad_b = (r >= a) & (r < a + b)
        quad_c = (r >= a + b) & (r < a + b + c)
        quad_d = r >= a + b + c
        bit = 1 << (scale - level - 1)
        cols[quad_b | quad_d] += bit
        rows[quad_c | quad_d] += bit
    values = rng.uniform(0.001, 1.0, size=nnz)
    coo = CooMatrix.from_arrays(rows, cols, values, (n, n)).sum_duplicates()
    return coo_to_csr(coo)


def banded(rows: int, bandwidth: int, seed: int = 0) -> CsrMatrix:
    """A banded square matrix (regular stencil-like workload)."""
    rng = _rng(seed)
    r_list = []
    c_list = []
    for off in range(-bandwidth, bandwidth + 1):
        rr = np.arange(max(0, -off), min(rows, rows - off), dtype=np.int64)
        r_list.append(rr)
        c_list.append(rr + off)
    r = np.concatenate(r_list)
    c = np.concatenate(c_list)
    v = rng.uniform(0.001, 1.0, size=r.size)
    coo = CooMatrix.from_arrays(r, c, v, (rows, rows))
    return coo_to_csr(coo)


def block_diagonal(num_blocks: int, block_size: int, seed: int = 0) -> CsrMatrix:
    """Dense blocks on the diagonal (balanced, high nnz/row)."""
    rng = _rng(seed)
    n = num_blocks * block_size
    base = np.arange(block_size, dtype=np.int64)
    r = np.concatenate(
        [b * block_size + np.repeat(base, block_size) for b in range(num_blocks)]
    )
    c = np.concatenate(
        [b * block_size + np.tile(base, block_size) for b in range(num_blocks)]
    )
    v = rng.uniform(0.001, 1.0, size=r.size)
    return coo_to_csr(CooMatrix.from_arrays(r, c, v, (n, n)))


def diagonal(n: int, seed: int = 0) -> CsrMatrix:
    """A diagonal matrix: one atom per tile, the minimal-work extreme."""
    rng = _rng(seed)
    idx = np.arange(n, dtype=np.int64)
    return CsrMatrix.from_arrays(
        np.arange(n + 1, dtype=np.int64),
        idx,
        rng.uniform(0.001, 1.0, size=n),
        (n, n),
    )


def single_column(rows: int, density: float = 0.6, seed: int = 0) -> CsrMatrix:
    """A sparse vector stored as an ``rows x 1`` matrix.

    This is the exact shape for which CUB's SpMV dispatches a specialized
    thread-mapped kernel (paper, Section 6.1) -- included so Figure 2's
    "CUB wins on single-column datasets" behaviour is reproducible.
    """
    rng = _rng(seed)
    mask = rng.uniform(size=rows) < density
    lengths = mask.astype(np.int64)
    offsets = offsets_from_counts(lengths)
    nnz = int(offsets[-1])
    return CsrMatrix.from_arrays(
        offsets,
        np.zeros(nnz, dtype=np.int64),
        rng.uniform(0.001, 1.0, size=nnz),
        (rows, 1),
    )


def dense_row_outliers(
    rows: int,
    cols: int,
    base_nnz: int,
    num_outliers: int,
    outlier_nnz: int,
    seed: int = 0,
) -> CsrMatrix:
    """Mostly short rows plus a few very long ones.

    The worst case for thread-mapped scheduling: a handful of threads
    serialize the whole kernel while their warp-mates idle.
    """
    rng = _rng(seed)
    lengths = np.full(rows, base_nnz, dtype=np.int64)
    outliers = rng.choice(rows, size=min(num_outliers, rows), replace=False)
    lengths[outliers] = outlier_nnz
    return _fill_from_row_lengths(np.minimum(lengths, cols), cols, rng)


def empty_heavy(rows: int, cols: int, frac_empty: float, nnz_per_row: int, seed: int = 0) -> CsrMatrix:
    """Many empty rows (common in graph frontiers and filtered matrices)."""
    rng = _rng(seed)
    lengths = np.full(rows, nnz_per_row, dtype=np.int64)
    empty = rng.uniform(size=rows) < frac_empty
    lengths[empty] = 0
    return _fill_from_row_lengths(np.minimum(lengths, cols), cols, rng)


def random_graph_csr(
    n: int, mean_degree: float, *, weighted: bool = True, seed: int = 0
) -> CsrMatrix:
    """A random directed graph as a square CSR adjacency matrix.

    Edge weights are uniform in (0, 1] (used as SSSP distances); pass
    ``weighted=False`` for unit weights (BFS).
    """
    rng = _rng(seed)
    lengths = rng.poisson(mean_degree, size=n).astype(np.int64)
    csr = _fill_from_row_lengths(np.minimum(lengths, n), n, rng)
    if not weighted:
        csr = CsrMatrix.from_arrays(
            csr.row_offsets, csr.col_indices, np.ones(csr.nnz), csr.shape
        )
    return csr
