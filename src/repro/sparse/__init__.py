"""``repro.sparse`` -- sparse formats, IO, generators and the corpus.

Implements the data substrate the paper's framework consumes: CSR/CSC/COO
formats (Section 3.1 lists these as built-ins), MatrixMarket IO (the
artifact's dataset format), and the synthetic SuiteSparse-like corpus used
by the evaluation harness.
"""

from .convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    csr_transpose,
    offsets_from_counts,
)
from .coo import CooMatrix
from .corpus import SCALES, Dataset, build_corpus, corpus_names, load_dataset
from .csc import CscMatrix
from .ell import EllMatrix, csr_to_ell, ell_to_csr
from .csr import CsrMatrix
from .graph import CsrGraph, random_graph
from .tensor import SparseTensor3, random_tensor
from .mtx_io import MtxFormatError, read_mtx, write_mtx

__all__ = [
    "CooMatrix",
    "CscMatrix",
    "EllMatrix",
    "csr_to_ell",
    "ell_to_csr",
    "SparseTensor3",
    "random_tensor",
    "CsrMatrix",
    "CsrGraph",
    "random_graph",
    "coo_to_csc",
    "coo_to_csr",
    "csc_to_coo",
    "csc_to_csr",
    "csr_to_coo",
    "csr_to_csc",
    "csr_transpose",
    "offsets_from_counts",
    "MtxFormatError",
    "read_mtx",
    "write_mtx",
    "SCALES",
    "Dataset",
    "build_corpus",
    "corpus_names",
    "load_dataset",
]
