"""Sparse third-order tensors (COO storage).

Section 3.3 lists sparse-tensor contractions among the computations the
abstraction expresses, and the related work covers load-balanced
SpMTTKRP (Nisa et al.) and the F-COO balanced tensor format (Liu et
al.).  This module provides the data substrate: a 3-way COO tensor whose
mode-0 *slices* are the work tiles and whose nonzeros are the atoms --
the same vocabulary as a sparse matrix, one rank higher.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SparseTensor3", "random_tensor"]


@dataclass(frozen=True)
class SparseTensor3:
    """An immutable sparse 3-way tensor in coordinate form.

    Coordinates are sorted by mode-0 index so each slice's nonzeros form
    a contiguous atom range (the invariant the schedules need).
    """

    i: np.ndarray  # (nnz,) int64, sorted
    j: np.ndarray  # (nnz,) int64
    k: np.ndarray  # (nnz,) int64
    values: np.ndarray  # (nnz,) float64
    shape: tuple[int, int, int]

    @staticmethod
    def from_arrays(i, j, k, values, shape, *, validate: bool = True) -> "SparseTensor3":
        i = np.ascontiguousarray(i, dtype=np.int64)
        j = np.ascontiguousarray(j, dtype=np.int64)
        k = np.ascontiguousarray(k, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if not (i.shape == j.shape == k.shape == values.shape):
            raise ValueError("coordinate arrays must have identical shapes")
        order = np.lexsort((k, j, i))
        t = SparseTensor3(
            i=i[order], j=j[order], k=k[order], values=values[order],
            shape=(int(shape[0]), int(shape[1]), int(shape[2])),
        )
        if validate:
            t.validate()
        return t

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    # Matrix-compatible accessors: mode-0 slices are the tiles (rows) and
    # mode-1 the matricized columns, so tensor datasets flow through the
    # harness's (rows, cols, nnz) row schema and shard sizing unchanged.
    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def nbytes(self) -> int:
        """Resident bytes of the coordinate + value arrays."""
        return int(
            self.i.nbytes + self.j.nbytes + self.k.nbytes + self.values.nbytes
        )

    def validate(self) -> None:
        if not (self.i.shape == self.j.shape == self.k.shape == self.values.shape):
            raise ValueError("coordinate arrays must have identical shapes")
        for name, idx, dim in (("i", self.i, 0), ("j", self.j, 1), ("k", self.k, 2)):
            if idx.size and (idx.min() < 0 or idx.max() >= self.shape[dim]):
                raise ValueError(f"{name} index out of range for dim {self.shape[dim]}")
        if np.any(np.diff(self.i) < 0):
            raise ValueError("coordinates must be sorted by mode-0 index")

    def slice_counts(self) -> np.ndarray:
        """Nonzeros per mode-0 slice (= atoms per tile)."""
        return np.bincount(self.i, minlength=self.shape[0]).astype(np.int64)

    def slice_offsets(self) -> np.ndarray:
        counts = self.slice_counts()
        offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        np.add.at(out, (self.i, self.j, self.k), self.values)
        return out


def random_tensor(
    shape: tuple[int, int, int],
    nnz: int,
    *,
    skew: float = 0.0,
    seed: int = 0,
) -> SparseTensor3:
    """A random sparse tensor; ``skew > 0`` concentrates nonzeros on few
    mode-0 slices (Zipf-distributed), mimicking real tensor corpora."""
    rng = np.random.default_rng(seed)
    if skew > 0:
        raw = rng.zipf(1.0 + skew, size=nnz).astype(np.int64)
        i = (raw - 1) % shape[0]
    else:
        i = rng.integers(0, shape[0], size=nnz, dtype=np.int64)
    j = rng.integers(0, shape[1], size=nnz, dtype=np.int64)
    k = rng.integers(0, shape[2], size=nnz, dtype=np.int64)
    values = rng.uniform(0.1, 1.0, size=nnz)
    return SparseTensor3.from_arrays(i, j, k, values, shape)
