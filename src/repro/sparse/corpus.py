"""The benchmark corpus: a SuiteSparse-like collection of named matrices.

The paper's evaluation runs over ~the entire SuiteSparse Matrix Collection.
Offline, we substitute a deterministic synthetic corpus that spans the same
regimes the paper's scatter plots cover (see ``DESIGN.md``):

* five orders of magnitude in nnz,
* balanced / mildly-skewed / heavy-tailed row-degree distributions,
* the degenerate shapes the paper singles out (single-column sparse
  vectors, tiny matrices, few-dense-row outliers).

Three scale tiers keep runtimes proportionate: ``smoke`` for unit tests,
``standard`` for the benchmark harness (default), ``full`` for longer runs.
Every dataset is generated from a seed derived from its name, so the corpus
is stable across processes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

from . import generators as gen
from .csr import CsrMatrix

__all__ = ["Dataset", "corpus_names", "load_dataset", "build_corpus", "SCALES"]

SCALES = ("smoke", "standard", "full")


@dataclass(frozen=True)
class Dataset:
    """A named corpus entry."""

    name: str
    family: str
    matrix: CsrMatrix
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def rows(self) -> int:
        return self.matrix.num_rows

    @property
    def cols(self) -> int:
        return self.matrix.num_cols

    @property
    def nnz(self) -> int:
        return self.matrix.nnz


def _seed(name: str) -> int:
    return zlib.crc32(name.encode()) & 0x7FFFFFFF


# ----------------------------------------------------------------------
# Corpus definition.  Each entry: (name, family, builder(scale_mult, seed)).
# ``scale_mult`` multiplies row counts: smoke=1, standard=8, full=32.
# ----------------------------------------------------------------------
_SCALE_MULT = {"smoke": 1, "standard": 8, "full": 32}

_Builder = Callable[[int, int], CsrMatrix]


def _entry(name: str, family: str, builder: _Builder) -> tuple[str, str, _Builder]:
    return (name, family, builder)


_CORPUS_SPEC: list[tuple[str, str, _Builder]] = [
    # --- tiny matrices (launch overhead regime; fixed size at all scales) ---
    _entry("tiny_diag_32", "tiny", lambda m, s: gen.diagonal(32, s)),
    _entry("tiny_uniform_64", "tiny", lambda m, s: gen.uniform_random(64, 64, 4, s)),
    _entry("tiny_band_128", "tiny", lambda m, s: gen.banded(128, 2, s)),
    _entry("tiny_power_256", "tiny", lambda m, s: gen.power_law(256, 256, 6.0, 2.0, s)),
    _entry("tiny_poisson_512", "tiny", lambda m, s: gen.poisson_random(512, 512, 5.0, s)),
    _entry("small_uniform_1k", "tiny", lambda m, s: gen.uniform_random(1024, 1024, 8, s)),
    _entry("small_power_1k", "tiny", lambda m, s: gen.power_law(1024, 1024, 8.0, 1.9, s)),
    # --- single-column sparse vectors (CUB heuristic regime) ---
    _entry("spvec_2k", "spvec", lambda m, s: gen.single_column(2048, 0.6, s)),
    _entry("spvec_16k", "spvec", lambda m, s: gen.single_column(16384, 0.5, s)),
    _entry("spvec_64k", "spvec", lambda m, s: gen.single_column(65536, 0.4, s)),
    # --- regular/balanced (FEM- and stencil-like) ---
    _entry("band_3p", "regular", lambda m, s: gen.banded(1500 * m, 1, s)),
    _entry("band_9p", "regular", lambda m, s: gen.banded(1200 * m, 4, s)),
    _entry("band_27p", "regular", lambda m, s: gen.banded(800 * m, 13, s)),
    _entry("uniform_8", "regular", lambda m, s: gen.uniform_random(1000 * m, 1000 * m, 8, s)),
    _entry("uniform_32", "regular", lambda m, s: gen.uniform_random(700 * m, 700 * m, 32, s)),
    _entry("uniform_128", "regular", lambda m, s: gen.uniform_random(250 * m, 250 * m, 128, s)),
    _entry("blockdiag_16", "regular", lambda m, s: gen.block_diagonal(60 * m, 16, s)),
    _entry("blockdiag_64", "regular", lambda m, s: gen.block_diagonal(8 * m, 64, s)),
    _entry("diag_large", "regular", lambda m, s: gen.diagonal(4000 * m, s)),
    # --- mild skew ---
    _entry("poisson_4", "mild", lambda m, s: gen.poisson_random(1500 * m, 1500 * m, 4.0, s)),
    _entry("poisson_16", "mild", lambda m, s: gen.poisson_random(900 * m, 900 * m, 16.0, s)),
    _entry("poisson_64", "mild", lambda m, s: gen.poisson_random(300 * m, 300 * m, 64.0, s)),
    # --- heavy-tailed (graph-like; merge-path's home turf) ---
    _entry("power_a17", "skewed", lambda m, s: gen.power_law(1000 * m, 1000 * m, 12.0, 1.7, s)),
    _entry("power_a19", "skewed", lambda m, s: gen.power_law(1200 * m, 1200 * m, 10.0, 1.9, s)),
    _entry("power_a21", "skewed", lambda m, s: gen.power_law(1500 * m, 1500 * m, 8.0, 2.1, s)),
    _entry("power_a25", "skewed", lambda m, s: gen.power_law(1500 * m, 1500 * m, 6.0, 2.5, s)),
    _entry("rmat_s", "skewed", lambda m, s: gen.rmat(10 + _log2i(m), 8, seed=s)),
    _entry("rmat_m", "skewed", lambda m, s: gen.rmat(11 + _log2i(m), 12, seed=s)),
    _entry("rmat_wide", "skewed", lambda m, s: gen.rmat(12 + _log2i(m), 4, seed=s)),
    # --- pathological outliers (thread-mapped worst case) ---
    _entry(
        "outlier_few",
        "outlier",
        lambda m, s: gen.dense_row_outliers(800 * m, 800 * m, 3, 4, 600 * m, s),
    ),
    _entry(
        "outlier_many",
        "outlier",
        lambda m, s: gen.dense_row_outliers(600 * m, 600 * m, 5, 24, 200 * m, s),
    ),
    _entry(
        "outlier_extreme",
        "outlier",
        lambda m, s: gen.dense_row_outliers(400 * m, 400 * m, 2, 2, 350 * m, s),
    ),
    # --- empty-row heavy (frontier-like) ---
    _entry("empty_half", "empty", lambda m, s: gen.empty_heavy(1200 * m, 1200 * m, 0.5, 8, s)),
    _entry("empty_most", "empty", lambda m, s: gen.empty_heavy(1500 * m, 1500 * m, 0.9, 16, s)),
    # --- rectangular ---
    _entry("wide_4x", "rect", lambda m, s: gen.poisson_random(400 * m, 1600 * m, 12.0, s)),
    _entry("tall_4x", "rect", lambda m, s: gen.poisson_random(1600 * m, 400 * m, 6.0, s)),
]


def _log2i(m: int) -> int:
    return max(0, m.bit_length() - 1)


def corpus_names(scale: str = "standard") -> list[str]:
    """Names of all datasets in the corpus (same at every scale)."""
    _check_scale(scale)
    return [name for name, _, _ in _CORPUS_SPEC]


def load_dataset(name: str, scale: str = "standard") -> Dataset:
    """Build one corpus dataset by name."""
    _check_scale(scale)
    for entry_name, family, builder in _CORPUS_SPEC:
        if entry_name == name:
            mult = _SCALE_MULT[scale]
            matrix = builder(mult, _seed(f"{name}@{scale}"))
            return Dataset(
                name=name,
                family=family,
                matrix=matrix,
                meta={"scale": scale, **matrix.degree_stats()},
            )
    raise KeyError(f"unknown dataset {name!r}; see corpus_names()")


def build_corpus(
    scale: str = "standard",
    *,
    families: list[str] | None = None,
    limit: int | None = None,
) -> list[Dataset]:
    """Build the whole corpus (optionally filtered by family, truncated).

    Mirrors the artifact's ``run.sh`` knob that limits the run to the first
    N datasets.
    """
    _check_scale(scale)
    out: list[Dataset] = []
    for name, family, _ in _CORPUS_SPEC:
        if families is not None and family not in families:
            continue
        out.append(load_dataset(name, scale))
        if limit is not None and len(out) >= limit:
            break
    return out


def _check_scale(scale: str) -> None:
    if scale not in _SCALE_MULT:
        raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
