"""``repro.baselines`` -- the evaluation's comparators.

* :func:`cub_spmv` -- hardwired merge-path SpMV in the style of CUB's
  ``DeviceSpmv`` (Figure 2's baseline), bypassing the abstraction.
* :func:`cusparse_spmv` -- behavioural model of the closed-source vendor
  library (Figures 3 and 4's baseline).
* :func:`dense_spmv_oracle` -- scheduling-free ground truth.
"""

from .cub_spmv import CUB_ITEMS_PER_THREAD, cub_spmv
from .cusparse_spmv import (
    CUSPARSE_ANALYSIS_CYCLES,
    VECTOR_DISPATCH_MEAN_NNZ,
    cusparse_spmv,
)
from .reference import dense_spmv_oracle

__all__ = [
    "CUB_ITEMS_PER_THREAD",
    "cub_spmv",
    "CUSPARSE_ANALYSIS_CYCLES",
    "VECTOR_DISPATCH_MEAN_NNZ",
    "cusparse_spmv",
    "dense_spmv_oracle",
]
