"""A model of NVIDIA cuSparse's (closed-source) CSR SpMV.

cuSparse cannot be run offline (or on a simulator at all), so Figures 3
and 4's vendor baseline is substituted with a behavioural model that
encodes the publicly observable mechanisms responsible for the paper's
comparison shape:

1. **Generic-API overhead** -- ``cusparseSpMV`` performs dispatch/analysis
   work per call on top of the kernel launch; on tiny matrices this fixed
   cost dominates and is what the paper's largest speedups (up to 39x)
   come from.
2. **Scalar/vector dispatch, but no merge-path** -- a thread-per-row
   kernel for short-row matrices and a warp-per-row kernel otherwise.
   Neither splits *within* a row across processors, so heavy-tailed rows
   serialize on one warp -- the regime where the framework's merge-path
   wins in Figure 3.

Both internal kernels charge the same per-atom arithmetic as every other
SpMV in this repo; only scheduling and overheads differ.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.arch import GpuSpec, V100
from ..gpusim.collectives import reduce_cost
from ..gpusim.cost_model import KernelStats, kernel_stats_from_warp_cycles
from ..sparse.csr import CsrMatrix
from .reference import dense_spmv_oracle

__all__ = ["cusparse_spmv", "CUSPARSE_ANALYSIS_CYCLES", "VECTOR_DISPATCH_MEAN_NNZ"]

#: Fixed per-call dispatch/analysis cost of the generic SpMV API, in
#: cycles (a few microseconds at V100 clocks) -- the mechanism behind the
#: paper's Figure 4 speedups on sub-10k-nnz matrices.
CUSPARSE_ANALYSIS_CYCLES = 6000.0

#: Mean nnz/row at which the model switches from the scalar (thread-per-
#: row) kernel to the vector (warp-per-row) kernel.
VECTOR_DISPATCH_MEAN_NNZ = 8.0

_BLOCK_DIM = 256


def cusparse_spmv(
    matrix: CsrMatrix,
    x: np.ndarray,
    spec: GpuSpec = V100,
) -> tuple[np.ndarray, KernelStats]:
    """Vendor-model SpMV; returns ``(y, stats)``."""
    x = np.ascontiguousarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size != matrix.num_cols:
        raise ValueError(
            f"x must have length {matrix.num_cols}, got shape {x.shape}"
        )
    y = dense_spmv_oracle(matrix, x)
    mean_nnz = matrix.nnz / max(1, matrix.num_rows)
    if mean_nnz < VECTOR_DISPATCH_MEAN_NNZ:
        stats = _scalar_kernel_stats(matrix, spec)
        dispatch = "csr_scalar"
    else:
        stats = _vector_kernel_stats(matrix, spec)
        dispatch = "csr_vector"
    stats.extras.update({"kernel": "cusparse", "dispatch": dispatch})
    return y, stats


def _atom_cycles(spec: GpuSpec) -> float:
    c = spec.costs
    return (
        c.global_load_coalesced
        + c.global_load_coalesced
        + c.global_load_random
        + c.fma
        + c.loop_overhead
    )


def _tile_cycles(spec: GpuSpec) -> float:
    c = spec.costs
    return c.global_load_coalesced + c.global_store + c.loop_overhead


def _bandwidth_floor(matrix: CsrMatrix, spec: GpuSpec) -> float:
    total_bytes = matrix.nnz * 20.0 + matrix.num_rows * 12.0
    return total_bytes / spec.dram_bytes_per_cycle


def _finish(
    warp_cycles: np.ndarray,
    grid_dim: int,
    block_dim: int,
    spec: GpuSpec,
    useful: float,
    floor: float,
) -> KernelStats:
    stats = kernel_stats_from_warp_cycles(
        warp_cycles,
        grid_dim,
        block_dim,
        spec,
        total_thread_cycles=useful,
        setup_cycles=0.0,
        min_body_cycles=floor,
    )
    # Add the generic-API analysis overhead on top of the launch cost.
    extra = CUSPARSE_ANALYSIS_CYCLES
    makespan = stats.makespan_cycles + extra
    return KernelStats(
        elapsed_ms=spec.cycles_to_ms(makespan),
        makespan_cycles=makespan,
        grid_dim=stats.grid_dim,
        block_dim=stats.block_dim,
        occupancy=stats.occupancy,
        simt_efficiency=stats.simt_efficiency,
        utilization=stats.utilization,
        tail_fraction=stats.tail_fraction,
        total_thread_cycles=stats.total_thread_cycles,
        extras=dict(stats.extras),
    )


def _scalar_kernel_stats(matrix: CsrMatrix, spec: GpuSpec) -> KernelStats:
    """Thread-per-row (csr_scalar): fast on uniform short rows, lockstep-
    stalled by any long row in a warp."""
    counts = matrix.row_lengths().astype(np.float64)
    block_dim = min(_BLOCK_DIM, spec.max_threads_per_block)
    block_dim -= block_dim % spec.warp_size
    grid_dim = max(1, -(-matrix.num_rows // block_dim))
    n_threads = grid_dim * block_dim

    padded = np.zeros(n_threads)
    padded[: counts.size] = counts
    exists = np.zeros(n_threads)
    exists[: counts.size] = 1.0
    per_thread = padded * _atom_cycles(spec) + exists * _tile_cycles(spec)

    ws = spec.warp_size
    warp_cycles = per_thread.reshape(grid_dim, block_dim // ws, ws).max(axis=2)
    return _finish(
        warp_cycles, grid_dim, block_dim, spec, float(per_thread.sum()),
        _bandwidth_floor(matrix, spec),
    )


def _vector_kernel_stats(matrix: CsrMatrix, spec: GpuSpec) -> KernelStats:
    """Warp-per-row (csr_vector): lanes stride a row's atoms; a warp
    processes its rows one after another.  No intra-row split across
    warps, so a mega-row serializes on a single warp."""
    counts = matrix.row_lengths().astype(np.float64)
    ws = spec.warp_size
    block_dim = min(_BLOCK_DIM, spec.max_threads_per_block)
    block_dim -= block_dim % ws
    warps_per_block = block_dim // ws
    resident = spec.resident_blocks_per_sm(block_dim) * spec.num_sms
    target_warps = resident * warps_per_block * 8
    n_warps = min(max(1, matrix.num_rows), target_warps)
    grid_dim = max(1, -(-n_warps // warps_per_block))
    n_warps = grid_dim * warps_per_block

    rounds = max(1, -(-matrix.num_rows // n_warps))
    padded = np.zeros(rounds * n_warps)
    padded[: counts.size] = counts
    exists = np.zeros(rounds * n_warps)
    exists[: counts.size] = 1.0
    finalize = _tile_cycles(spec) + reduce_cost(spec, ws)
    per_row = np.ceil(padded / ws) * _atom_cycles(spec) + exists * finalize
    warp_totals = per_row.reshape(rounds, n_warps).sum(axis=0)
    warp_cycles = warp_totals.reshape(grid_dim, warps_per_block)
    useful = float(counts.sum() * _atom_cycles(spec) + counts.size * finalize)
    return _finish(
        warp_cycles, grid_dim, block_dim, spec, useful,
        _bandwidth_floor(matrix, spec),
    )
