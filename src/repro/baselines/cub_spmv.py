"""Hardwired merge-path SpMV: the CUB comparator of Figure 2.

CUB's ``DeviceSpmv`` (Merrill & Garland) fuses the merge-path scheduling
into the SpMV kernel -- ~503 lines of kernel code that cannot be reused
for any other computation.  This module reproduces that *structure* on the
simulator:

* the merge-path partitioning and traversal are re-implemented here,
  tightly coupled, **bypassing the framework's Schedule/WorkSpec/ranges
  machinery entirely** -- so no abstraction tax is charged;
* CUB's dispatch heuristic is included: a single-column input (a sparse
  vector) takes a specialized thread-mapped kernel with zero
  load-balancing overhead (the one regime where CUB beats the framework
  in Figure 2).

Figure 2 compares this against ``repro.apps.spmv(schedule="merge_path")``
on identical work; the measured delta is the abstraction's overhead.
"""

from __future__ import annotations

import numpy as np

from ..core.schedules.merge_path import merge_path_partition
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.cost_model import KernelStats, kernel_stats_from_warp_cycles
from ..sparse.csr import CsrMatrix
from .reference import dense_spmv_oracle

__all__ = ["cub_spmv", "CUB_ITEMS_PER_THREAD"]

#: CUB's merge tile grain (items of the merge decision path per thread).
CUB_ITEMS_PER_THREAD = 8
_BLOCK_DIM = 128


def cub_spmv(
    matrix: CsrMatrix,
    x: np.ndarray,
    spec: GpuSpec = V100,
) -> tuple[np.ndarray, KernelStats]:
    """Hardwired CUB-style SpMV; returns ``(y, stats)``."""
    x = np.ascontiguousarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size != matrix.num_cols:
        raise ValueError(
            f"x must have length {matrix.num_cols}, got shape {x.shape}"
        )
    y = dense_spmv_oracle(matrix, x)
    if matrix.num_cols == 1:
        # CUB's dispatch heuristic: single-column matrices (SpVV) go to a
        # trivially balanced thread-mapped kernel with no scheduling cost.
        stats = _thread_mapped_spvv_stats(matrix, spec)
    else:
        stats = _merge_path_stats(matrix, spec)
    return y, stats


def _spmv_atom_cycles(spec: GpuSpec) -> float:
    """Identical per-atom work to the framework's SpMV (same loads + FMA)
    -- the comparison isolates scheduling, not arithmetic."""
    c = spec.costs
    return (
        c.global_load_coalesced
        + c.global_load_coalesced
        + c.global_load_random
        + c.fma
        + c.loop_overhead
    )


def _spmv_tile_cycles(spec: GpuSpec) -> float:
    c = spec.costs
    return c.global_load_coalesced + c.global_store + c.loop_overhead


def _bandwidth_floor(matrix: CsrMatrix, spec: GpuSpec) -> float:
    """Raw DRAM floor -- no abstraction tax for the hardwired kernel."""
    total_bytes = matrix.nnz * 20.0 + matrix.num_rows * 12.0
    return total_bytes / spec.dram_bytes_per_cycle


def _merge_path_stats(matrix: CsrMatrix, spec: GpuSpec) -> KernelStats:
    """Timing of the fused merge-path kernel (no abstraction tax)."""
    num_tiles, num_atoms = matrix.num_rows, matrix.nnz
    total = num_tiles + num_atoms
    n_threads = max(1, -(-total // CUB_ITEMS_PER_THREAD))
    block_dim = min(_BLOCK_DIM, spec.max_threads_per_block)
    block_dim -= block_dim % spec.warp_size
    grid_dim = max(1, -(-n_threads // block_dim))

    diagonals = np.minimum(
        np.arange(n_threads + 1, dtype=np.int64) * CUB_ITEMS_PER_THREAD, total
    )
    tile_bounds, atom_bounds = merge_path_partition(
        matrix.row_offsets, num_atoms, diagonals
    )
    atoms_per_thread = np.diff(atom_bounds).astype(np.float64)
    tiles_per_thread = np.diff(tile_bounds).astype(np.float64)
    c = spec.costs
    ends_mid = (
        atom_bounds[1:]
        > matrix.row_offsets[np.minimum(tile_bounds[1:], num_tiles)]
    ).astype(np.float64)
    per_thread = (
        atoms_per_thread * _spmv_atom_cycles(spec)
        + tiles_per_thread * _spmv_tile_cycles(spec)
        + ends_mid * c.atomic
    )

    ws = spec.warp_size
    warps_per_block = block_dim // ws
    padded = np.zeros(grid_dim * warps_per_block * ws)
    padded[: min(n_threads, per_thread.size)] = per_thread[:n_threads]
    warp_cycles = padded.reshape(grid_dim, warps_per_block, ws).max(axis=2)
    setup = float(np.ceil(np.log2(max(2, total)))) * c.binary_search_step
    return kernel_stats_from_warp_cycles(
        warp_cycles,
        grid_dim,
        block_dim,
        spec,
        total_thread_cycles=float(per_thread.sum()),
        setup_cycles=setup,
        min_body_cycles=_bandwidth_floor(matrix, spec),
        extras={"kernel": "cub", "dispatch": "merge_path"},
    )


def _thread_mapped_spvv_stats(matrix: CsrMatrix, spec: GpuSpec) -> KernelStats:
    """CUB's specialized SpVV kernel: one thread per row, no scheduling."""
    counts = matrix.row_lengths().astype(np.float64)
    block_dim = min(_BLOCK_DIM, spec.max_threads_per_block)
    block_dim -= block_dim % spec.warp_size
    grid_dim = max(1, -(-matrix.num_rows // block_dim))
    n_threads = grid_dim * block_dim

    padded = np.zeros(n_threads)
    padded[: counts.size] = counts
    exists = np.zeros(n_threads)
    exists[: counts.size] = 1.0
    per_thread = padded * _spmv_atom_cycles(spec) + exists * _spmv_tile_cycles(spec)

    ws = spec.warp_size
    warps_per_block = block_dim // ws
    warp_cycles = per_thread.reshape(grid_dim, warps_per_block, ws).max(axis=2)
    return kernel_stats_from_warp_cycles(
        warp_cycles,
        grid_dim,
        block_dim,
        spec,
        total_thread_cycles=float(per_thread.sum()),
        min_body_cycles=_bandwidth_floor(matrix, spec),
        extras={"kernel": "cub", "dispatch": "thread_mapped_spvv"},
    )
