"""Correctness oracles shared by baselines and tests."""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CsrMatrix

__all__ = ["dense_spmv_oracle"]


def dense_spmv_oracle(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """SpMV without any scheduling: the ground-truth ``y = A @ x``."""
    y = np.zeros(matrix.num_rows)
    row_ids = np.repeat(
        np.arange(matrix.num_rows, dtype=np.int64), matrix.row_lengths()
    )
    np.add.at(y, row_ids, matrix.values * x[matrix.col_indices])
    return y
