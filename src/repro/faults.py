"""Deterministic, seedable fault injection for chaos testing.

The executor, transport, journal and service layers call
:func:`inject` at named *sites* (e.g. ``"worker.batch"``,
``"shm.attach"``, ``"journal.write"``).  With no spec configured the
call is a cheap no-op; with a spec it compiles into per-site rules that
fire deterministically, so every failure path in the stack can be
exercised from a test or from the environment:

    REPRO_FAULTS="worker.batch:hang@0.1;shm.attach:crc@2;journal.write:torn@1"

Spec grammar — semicolon-separated rules, each ``site:kind@trigger``:

``site``
    Dotted checkpoint name.  The instrumented sites are listed in
    :data:`KNOWN_SITES`; unknown sites are accepted (they simply never
    fire) so specs survive refactors.
``kind``
    ``hang``   sleep for ``REPRO_FAULTS_HANG_SECONDS`` (default 300 s)
               — simulates a stalled worker/job;
    ``crash``  ``os._exit(13)`` — simulates a SIGKILL'd process;
    ``slow``   sleep ``REPRO_FAULTS_SLOW_SECONDS`` (default 0.25 s);
    ``err``    raise :class:`FaultInjected`;
    ``crc``    data corruption — *returned* to the call site, which
               applies it (e.g. fail the attach CRC check);
    ``torn``   partial write — returned to the call site;
    ``drop``   lose the artifact (vanished shm block, dropped
               connection) — returned to the call site.
``trigger`` (optional, default ``1``)
    ``*``      fire on every hit;
    integer N  fire exactly once, on the Nth hit of that site;
    float p    fire each hit with probability p, drawn from a
               per-rule ``random.Random`` seeded from
               ``REPRO_FAULTS_SEED`` and the rule text — the same
               seed always yields the same firing sequence.

Counters are per-process: a forked worker re-reads the environment and
starts its own hit counts, so ``@2`` means "second hit *in that
process*".  :func:`faults_active` reports every rule's hit/fire counts
for the current process (surfaced by the service ``status`` probe).
"""

from __future__ import annotations

import os
import random
import threading
import time
import zlib
from dataclasses import dataclass, field

__all__ = [
    "FaultInjected",
    "FaultRule",
    "KNOWN_SITES",
    "clear_faults",
    "configure_faults",
    "faults_active",
    "inject",
    "parse_fault_spec",
]

FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
HANG_SECONDS_ENV = "REPRO_FAULTS_HANG_SECONDS"
SLOW_SECONDS_ENV = "REPRO_FAULTS_SLOW_SECONDS"

DEFAULT_HANG_SECONDS = 300.0
DEFAULT_SLOW_SECONDS = 0.25

#: Kinds inject() performs itself; the remaining kinds (crc/torn/drop)
#: are returned for the call site to apply in a site-specific way.
BEHAVIORAL_KINDS = frozenset({"hang", "crash", "slow", "err"})
DATA_KINDS = frozenset({"crc", "torn", "drop"})
KINDS = BEHAVIORAL_KINDS | DATA_KINDS

#: The checkpoints instrumented across the stack (documentation +
#: spec sanity checking; unknown sites still parse).
KNOWN_SITES = (
    "worker.start",      # worker warmup (initializer)
    "worker.batch",      # entry of a worker batch run
    "shm.publish",       # parent publishing a dataset bundle
    "shm.attach",        # worker attaching a dataset bundle
    "oracle.publish",    # worker publishing an oracle payload
    "oracle.attach",     # worker attaching a shared oracle payload
    "journal.write",     # RecordJournal.append (plan store + results)
    "serve.dispatch",    # service executing one job unit
    "serve.journal",     # service journaling a job event
    "serve.connection",  # service writing a reply to a client
)


class FaultInjected(RuntimeError):
    """Raised by an ``err`` fault (and usable by call sites for data
    kinds they choose to surface as exceptions)."""


@dataclass
class FaultRule:
    """One compiled ``site:kind@trigger`` clause."""

    site: str
    kind: str
    trigger: str            # the raw trigger text, for reporting
    nth: int | None = None  # fire once, on the Nth hit
    probability: float | None = None
    every: bool = False
    hits: int = 0
    fires: int = 0
    _rng: random.Random | None = field(default=None, repr=False)

    def should_fire(self) -> bool:
        self.hits += 1
        if self.every:
            fire = True
        elif self.nth is not None:
            fire = self.hits == self.nth
        else:
            assert self._rng is not None
            fire = self._rng.random() < (self.probability or 0.0)
        if fire:
            self.fires += 1
        return fire


def parse_fault_spec(spec: str, *, seed: int = 0) -> list[FaultRule]:
    """Compile a ``site:kind@trigger;...`` spec into rules.

    Raises ``ValueError`` on malformed clauses so a typo'd
    ``REPRO_FAULTS`` fails loudly rather than silently injecting
    nothing.
    """

    rules: list[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        head, _, trigger = clause.partition("@")
        site, sep, kind = head.rpartition(":")
        if not sep or not site or not kind:
            raise ValueError(
                f"malformed fault clause {clause!r}: expected site:kind[@trigger]"
            )
        kind = kind.strip().lower()
        if kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {clause!r} "
                f"(choose from {sorted(KINDS)})"
            )
        trigger = trigger.strip() or "1"
        rule = FaultRule(site=site.strip(), kind=kind, trigger=trigger)
        if trigger == "*":
            rule.every = True
        else:
            try:
                if "." in trigger or "e" in trigger.lower():
                    rule.probability = float(trigger)
                else:
                    rule.nth = int(trigger)
            except ValueError:
                raise ValueError(
                    f"bad fault trigger {trigger!r} in {clause!r}: "
                    "expected '*', an integer hit count, or a float probability"
                ) from None
            if rule.probability is not None:
                if not 0.0 <= rule.probability <= 1.0:
                    raise ValueError(
                        f"fault probability {rule.probability} in {clause!r} "
                        "outside [0, 1]"
                    )
                rule._rng = random.Random(
                    seed ^ zlib.crc32(f"{rule.site}:{rule.kind}".encode())
                )
            elif rule.nth is not None and rule.nth < 1:
                raise ValueError(f"fault hit count in {clause!r} must be >= 1")
        rules.append(rule)
    return rules


class FaultRegistry:
    """Per-process compiled spec with hit counters."""

    def __init__(
        self,
        rules: list[FaultRule],
        *,
        spec: str = "",
        seed: int = 0,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
        slow_seconds: float = DEFAULT_SLOW_SECONDS,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.hang_seconds = hang_seconds
        self.slow_seconds = slow_seconds
        self.pid = os.getpid()
        self.rules_by_site: dict[str, list[FaultRule]] = {}
        for rule in rules:
            self.rules_by_site.setdefault(rule.site, []).append(rule)
        self._lock = threading.Lock()

    def fire(self, site: str) -> str | None:
        rules = self.rules_by_site.get(site)
        if not rules:
            return None
        fired: FaultRule | None = None
        with self._lock:
            for rule in rules:
                if rule.should_fire() and fired is None:
                    fired = rule
        if fired is None:
            return None
        kind = fired.kind
        if kind == "hang":
            time.sleep(self.hang_seconds)
        elif kind == "crash":
            os._exit(13)
        elif kind == "slow":
            time.sleep(self.slow_seconds)
        elif kind == "err":
            raise FaultInjected(f"injected fault at {site!r}")
        return kind

    def report(self) -> dict:
        with self._lock:
            return {
                "enabled": bool(self.rules_by_site),
                "spec": self.spec,
                "seed": self.seed,
                "sites": {
                    site: [
                        {
                            "kind": r.kind,
                            "trigger": r.trigger,
                            "hits": r.hits,
                            "fires": r.fires,
                        }
                        for r in rules
                    ]
                    for site, rules in self.rules_by_site.items()
                },
            }


_LOCK = threading.Lock()
_REGISTRY: FaultRegistry | None = None
_EXPLICIT = False  # configure_faults() wins over the environment


def _float_env(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _build_from_env() -> FaultRegistry:
    spec = os.environ.get(FAULTS_ENV, "") or ""
    seed = int(_float_env(FAULTS_SEED_ENV, 0))
    try:
        rules = parse_fault_spec(spec, seed=seed)
    except ValueError as exc:
        import warnings

        warnings.warn(
            f"ignoring malformed {FAULTS_ENV}: {exc}",
            RuntimeWarning,
            stacklevel=3,
        )
        rules = []
    return FaultRegistry(
        rules,
        spec=spec,
        seed=seed,
        hang_seconds=_float_env(HANG_SECONDS_ENV, DEFAULT_HANG_SECONDS),
        slow_seconds=_float_env(SLOW_SECONDS_ENV, DEFAULT_SLOW_SECONDS),
    )


def _registry() -> FaultRegistry:
    """The current process's registry, rebuilt lazily after a fork so
    worker processes get fresh counters from their inherited env."""

    global _REGISTRY, _EXPLICIT
    reg = _REGISTRY
    pid = os.getpid()
    if reg is not None and reg.pid == pid:
        return reg
    with _LOCK:
        reg = _REGISTRY
        if reg is not None and reg.pid == pid:
            return reg
        _EXPLICIT = False  # explicit config does not survive a fork
        _REGISTRY = _build_from_env()
        return _REGISTRY


def inject(site: str) -> str | None:
    """Fault checkpoint.

    Returns ``None`` when no fault fires.  Behavioral kinds (hang,
    crash, slow, err) are performed here; data kinds (``"crc"``,
    ``"torn"``, ``"drop"``) are returned for the call site to apply.
    """

    reg = _REGISTRY
    if reg is not None and reg.pid == os.getpid():
        if not reg.rules_by_site:
            return None
        return reg.fire(site)
    return _registry().fire(site)


def configure_faults(
    spec: str | None,
    *,
    seed: int = 0,
    hang_seconds: float | None = None,
    slow_seconds: float | None = None,
) -> FaultRegistry:
    """Programmatically install a fault spec for this process
    (overrides the environment until :func:`clear_faults`)."""

    global _REGISTRY, _EXPLICIT
    rules = parse_fault_spec(spec or "", seed=seed)
    reg = FaultRegistry(
        rules,
        spec=spec or "",
        seed=seed,
        hang_seconds=(
            _float_env(HANG_SECONDS_ENV, DEFAULT_HANG_SECONDS)
            if hang_seconds is None
            else hang_seconds
        ),
        slow_seconds=(
            _float_env(SLOW_SECONDS_ENV, DEFAULT_SLOW_SECONDS)
            if slow_seconds is None
            else slow_seconds
        ),
    )
    with _LOCK:
        _REGISTRY = reg
        _EXPLICIT = True
    return reg


def clear_faults() -> None:
    """Drop any configured registry; the next :func:`inject` re-reads
    the environment."""

    global _REGISTRY, _EXPLICIT
    with _LOCK:
        _REGISTRY = None
        _EXPLICIT = False


def faults_active() -> dict:
    """Report the current process's fault rules and counters."""

    return _registry().report()
