"""Shadow-write dynamic probe: soundness check for the race verdicts.

The static verdicts (:mod:`.races`) claim that on a ``SAFE`` cell no two
threads can ever write the same output element.  This module checks that
claim empirically: it runs the real application drivers through the
interpreted SIMT path with a :class:`ShadowSimtEngine` that records the
exact per-thread write set of every kernel launch -- direct stores
through shadow views of the kernels' allocations, atomics through a
wrapping thread context -- and reports any element written by two or
more distinct threads within one launch.

The probe never *proves* safety (it observes one input); its job is the
converse: a single cross-thread overlap on a ``SAFE`` cell falsifies the
analysis.  Tier-1 asserts zero overlaps over every ``SAFE`` cell of the
full 9-app x 8-schedule matrix on a skewed probe instance.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..engine.dispatch import SimtEngine
from ..gpusim.arch import TINY_GPU, GpuSpec

__all__ = [
    "ProbeResult",
    "ShadowArray",
    "ShadowSimtEngine",
    "WriteRecorder",
    "probe_matrix",
    "run_probe",
]


def _root_of(arr: np.ndarray) -> np.ndarray:
    root = arr
    while isinstance(root.base, np.ndarray):
        root = root.base
    return root


def _flat_keys(arr: np.ndarray, index) -> set:
    """Root-relative flat positions an assignment ``arr[index] = v`` hits.

    Works for any index form numpy accepts by building an array of
    root-flat positions shaped like ``arr`` and applying the same index
    to it.  Views (e.g. a column of a 2-D output) resolve to the same
    keys as the parent, so overlaps through different views are caught.
    Probe instances are tiny, so the position array is cheap.
    """
    root = _root_of(arr)
    itemsize = arr.itemsize
    base = (
        arr.__array_interface__["data"][0]
        - root.__array_interface__["data"][0]
    ) // itemsize
    if arr.ndim == 0:
        return {int(base)}
    strides = tuple(s // itemsize for s in arr.strides)
    grid = np.indices(arr.shape, dtype=np.int64)
    flat = np.full(arr.shape, base, dtype=np.int64)
    for dim in range(arr.ndim):
        flat += grid[dim] * strides[dim]
    selected = np.asarray(flat[index])
    return set(int(k) for k in np.atleast_1d(selected).ravel())


class ShadowArray(np.ndarray):
    """An ndarray whose element stores report to a :class:`WriteRecorder`.

    Allocated by :meth:`WriteRecorder.capture_allocations` around kernel
    materialization; views keep the recorder (``__array_finalize__``), so
    column views and slices of a shadowed output stay shadowed.
    Recording only happens while a thread is current -- host-side prep
    and finalization write silently.
    """

    _recorder = None

    def __array_finalize__(self, obj):
        if obj is not None:
            self._recorder = getattr(obj, "_recorder", None)

    def __setitem__(self, index, value):
        rec = self._recorder
        if rec is not None and rec.current_thread is not None:
            rec.record(("array", id(_root_of(self))), _flat_keys(self, index))
        super().__setitem__(index, value)


class _ShadowCtx:
    """Thread-context wrapper recording atomic write targets.

    Atomics on :class:`ShadowArray` targets are *not* noted here -- the
    interpreter's read-modify-write lands in ``ShadowArray.__setitem__``
    and would double count.  Plain ndarrays (driver-allocated state like
    BFS depths) and dict accumulators (SpGEMM's per-row maps) only pass
    through the atomic API, so they are noted per call.
    """

    __slots__ = ("_ctx", "_rec")

    def __init__(self, ctx, rec):
        object.__setattr__(self, "_ctx", ctx)
        object.__setattr__(self, "_rec", rec)

    def __getattr__(self, name):
        return getattr(self._ctx, name)

    def _note(self, array, index) -> None:
        if isinstance(array, ShadowArray):
            return
        if isinstance(array, np.ndarray):
            self._rec.record(("array", id(_root_of(array))),
                             _flat_keys(array, index))
        elif isinstance(array, dict):
            self._rec.record(("dict", id(array)), {index})

    def atomic_add(self, array, index, value):
        self._note(array, index)
        return self._ctx.atomic_add(array, index, value)

    def atomic_min(self, array, index, value):
        self._note(array, index)
        return self._ctx.atomic_min(array, index, value)

    def atomic_max(self, array, index, value):
        self._note(array, index)
        return self._ctx.atomic_max(array, index, value)

    def atomic_cas(self, array, index, compare, value):
        self._note(array, index)
        return self._ctx.atomic_cas(array, index, compare, value)


@dataclass
class _LabelOverlaps:
    launches: int = 0
    overlapping_keys: int = 0
    array_overlapping_keys: int = 0
    examples: list = field(default_factory=list)


class WriteRecorder:
    """Per-launch, per-thread write sets and their cross-thread overlaps.

    One recorder spans a whole probed run (possibly many launches);
    :meth:`finish_launch` folds the current launch's write sets into
    per-kernel-label overlap totals and clears them, so iterative
    applications accumulate per label rather than smearing iterations
    together (a target element legitimately written by different threads
    in *different* launches is not a race).
    """

    def __init__(self):
        self.current_thread: int | None = None
        self._launch_writes: dict = {}
        self.by_label: dict[str, _LabelOverlaps] = {}

    def record(self, target, keys) -> None:
        thread = self.current_thread
        if thread is None:
            return
        per_thread = self._launch_writes.setdefault(target, {})
        per_thread.setdefault(thread, set()).update(keys)

    def finish_launch(self, label: str) -> None:
        entry = self.by_label.setdefault(label, _LabelOverlaps())
        entry.launches += 1
        for target, per_thread in self._launch_writes.items():
            if len(per_thread) < 2:
                continue
            writers: dict = {}
            for thread, keys in per_thread.items():
                for key in keys:
                    writers.setdefault(key, set()).add(thread)
            for key, threads in writers.items():
                if len(threads) < 2:
                    continue
                entry.overlapping_keys += 1
                if target[0] == "array":
                    entry.array_overlapping_keys += 1
                if len(entry.examples) < 4:
                    entry.examples.append(
                        {
                            "target": target[0],
                            "key": repr(key),
                            "threads": sorted(threads)[:8],
                        }
                    )
        self._launch_writes = {}

    @contextmanager
    def capture_allocations(self):
        """Patch the numpy allocators to hand out shadow views.

        Active only around kernel materialization: buffers the kernel
        closure allocates (outputs, next-frontier masks) become
        :class:`ShadowArray`; per-thread scratch allocated inside the
        body stays plain and unrecorded, as thread-private state should.
        """
        names = ("zeros", "empty", "full", "ones")
        originals = {name: getattr(np, name) for name in names}
        recorder = self

        def shadowed(orig):
            def alloc(*args, **kwargs):
                arr = orig(*args, **kwargs)
                view = arr.view(ShadowArray)
                view._recorder = recorder
                return view

            return alloc

        for name in names:
            setattr(np, name, shadowed(originals[name]))
        try:
            yield
        finally:
            for name in names:
                setattr(np, name, originals[name])


class ShadowSimtEngine(SimtEngine):
    """The interpreted SIMT engine with shadow-write recording.

    Uses the two :class:`~repro.engine.dispatch.SimtEngine` seams:
    kernel materialization runs under :meth:`capture_allocations`, and
    each per-thread body is wrapped to mark the current thread and hand
    the kernel a :class:`_ShadowCtx`.  Overlaps are attributed to the
    launch's kernel label (``compiled.label``) so multi-kernel
    applications keep their passes separate.
    """

    name = "shadow_simt"

    def __init__(self, recorder: WriteRecorder | None = None):
        self.recorder = recorder if recorder is not None else WriteRecorder()

    def _materialize_kernel(self, kernel):
        with self.recorder.capture_allocations():
            return kernel()

    def _instrument_body(self, body):
        recorder = self.recorder

        def instrumented(ctx):
            recorder.current_thread = int(ctx.global_thread_id)
            try:
                return body(_ShadowCtx(ctx, recorder))
            finally:
                recorder.current_thread = None

        return instrumented

    def launch(self, sched, costs, *, compute=None, kernel=None, compiled=None,
               extras=None, cache_key=None):
        label = (
            compiled.label
            if compiled is not None and getattr(compiled, "label", None)
            else (extras or {}).get("app", "?")
        )
        try:
            return super().launch(
                sched, costs, compute=compute, kernel=kernel,
                compiled=compiled, extras=extras, cache_key=cache_key,
            )
        finally:
            self.recorder.finish_launch(label)


@dataclass(frozen=True)
class ProbeResult:
    """Observed overlaps for one ``(app, schedule)`` probed run."""

    app: str
    schedule: str
    labels: tuple  # (label, launches, overlapping_keys, array_overlaps)

    def overlaps_for(self, label: str, arrays_only: bool = True) -> int:
        for name, _launches, total, arrays in self.labels:
            if name == label:
                return arrays if arrays_only else total
        return 0

    @property
    def total_overlaps(self) -> int:
        return sum(total for _n, _launches, total, _a in self.labels)


def probe_instance():
    """The skewed 12x12 CSR the probe drives every app with.

    Row 0 is dense (12 entries: a heavy tile), rows 1-5 carry 3 entries,
    rows 6-8 are empty, rows 9-11 hold a single entry -- small enough
    for the interpreter, skewed enough that atom-splitting schedules
    split row 0 across threads.  Values are deterministic positives, the
    pattern is symmetric enough to serve the graph apps (every vertex
    reaches the dense row 0), and the diagonal is kept out so triangle
    counting sees clean edges.
    """
    from ..sparse.csr import CsrMatrix

    n = 12
    rows: list[int] = []
    cols: list[int] = []
    for col in range(n):
        if col != 0:
            rows.append(0)
            cols.append(col)
    for r in range(1, 6):
        for c in (0, (r + 3) % n or 1, (2 * r + 5) % n or 2):
            rows.append(r)
            cols.append(c)
    for r in range(9, 12):
        rows.append(r)
        cols.append((r * 5) % n)
    keys = sorted(
        {r * n + c for r, c in zip(rows, cols) if r != c}
    )
    row_ids = np.array([k // n for k in keys], dtype=np.int64)
    col_ids = np.array([k % n for k in keys], dtype=np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(row_ids, minlength=n), out=offsets[1:])
    values = 0.25 + (np.arange(col_ids.size, dtype=np.float64) % 7)
    return CsrMatrix.from_arrays(offsets, col_ids, values, (n, n))


def run_probe(
    app: str, schedule: str, spec: GpuSpec = TINY_GPU, seed: int = 7
) -> ProbeResult:
    """Run one app under one schedule with shadow-write recording."""
    from ..engine import get_app, run_app

    matrix = probe_instance()
    problem = get_app(app).sweep_problem(matrix, seed)
    if hasattr(problem, "max_iter"):
        # Power iteration converges slowly; two iterations exercise the
        # kernel's write pattern just as well.
        problem.max_iter = 2
    recorder = WriteRecorder()
    engine = ShadowSimtEngine(recorder)
    run_app(app, problem, engine=engine, schedule=schedule, spec=spec)
    labels = tuple(
        (label, entry.launches, entry.overlapping_keys,
         entry.array_overlapping_keys)
        for label, entry in sorted(recorder.by_label.items())
    )
    return ProbeResult(app=app, schedule=schedule, labels=labels)


def probe_matrix(
    apps=None, schedules=None, spec: GpuSpec = TINY_GPU, seed: int = 7
) -> dict:
    """Probe every requested ``(app, schedule)`` cell.

    Returns ``{(app, schedule): ProbeResult}``; callers cross it with
    :func:`~repro.analysis.races.verdict_matrix` to check soundness.
    """
    from ..core.schedule import available_schedules
    from ..engine import available_apps

    app_names = list(apps) if apps is not None else list(available_apps())
    sched_names = (
        list(schedules) if schedules is not None else list(available_schedules())
    )
    return {
        (app, sched): run_probe(app, sched, spec=spec, seed=seed)
        for app in app_names
        for sched in sched_names
    }
