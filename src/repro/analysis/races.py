"""Race verdicts: fold write classes through the schedules' load forms.

For each ``(kernel, schedule)`` cell the analyzer answers the question a
GPU race detector answers dynamically -- can two threads write the same
output element? -- but from the schedule's closed-form work partition
(:func:`~repro.engine.compiled.materialize_loads` and
:func:`~repro.engine.compiled.tile_writer_counts`), evaluated on a
canonical skewed workload chosen to exercise every splitting behaviour a
schedule is capable of (a heavy tile, empty tiles, singleton tiles):

``SAFE``
    Every write's cross-thread sets are provably disjoint: atom-private
    writes always; tile-private writes when no tile ever has more than
    one writer; a global accumulator when at most one thread holds work.
``REDUCE``
    One tile's atoms (or the one shared cell) are split across threads:
    partial results must be combined -- by the ``owns_tile_fully``
    direct-store contract plus atomics the kernel bodies already follow.
``SCATTER``
    A data-dependent write: overlap is possible under *any* partition,
    so atomics/privatization are required regardless of schedule.

Verdicts depend only on the write classes and the schedule's partition
capability, never on a specific probe input -- which is what makes the
shadow-write validation (:mod:`.probe`) a soundness check: a ``SAFE``
cell must never observe a cross-thread overlap, on any instance.

Matrices are memoized content-keyed (like plans): the key digests the
declared kernel sources, the schedule set and the canonical workload,
so edits to any of them invalidate the cached verdicts.
"""

from __future__ import annotations

import hashlib
import inspect
import json

import numpy as np

from ..core.schedule import available_schedules, make_schedule
from ..core.work import WorkSpec
from ..engine.compiled import materialize_loads, tile_writer_counts
from ..gpusim.arch import TINY_GPU, GpuSpec
from .effects import KernelEffects, kernel_effects

__all__ = [
    "VERDICTS",
    "FORMAT_VERSION",
    "canonical_work",
    "schedule_profile",
    "cell_verdict",
    "verdict_matrix",
]

#: Ordered least- to most-hazardous; a cell takes its worst write.
VERDICTS = ("SAFE", "REDUCE", "SCATTER")
FORMAT_VERSION = 1


def canonical_work() -> WorkSpec:
    """The skewed workload the verdicts are evaluated on.

    One heavy tile (it spans several threads under atom-splitting
    schedules and several lanes under group schedules), a band of
    mid-size tiles, a run of empty tiles (merge-path full-ownership
    spans), and singleton tiles -- every partition behaviour a built-in
    schedule can exhibit shows up on this shape.
    """
    counts = [64] + [5] * 12 + [0] * 16 + [1] * 19
    offsets = np.concatenate(
        ([0], np.cumsum(np.asarray(counts, dtype=np.int64)))
    )
    return WorkSpec.from_offsets(offsets, label="analysis-canonical")


def schedule_profile(
    name: str, work: WorkSpec | None = None, spec: GpuSpec = TINY_GPU
) -> dict:
    """The partition facts one schedule contributes to every verdict."""
    sched = make_schedule(name, work if work is not None else canonical_work(),
                          spec)
    writers = tile_writer_counts(sched)
    atoms, _visits = materialize_loads(sched)
    if hasattr(sched, "num_chunks"):
        # Queue schedules are probed under the interpreter's
        # linearization (one thread drains everything), but concurrent
        # executions pop chunks from many threads at once: the honest
        # worker bound is the chunk count.
        potential = min(int(sched.launch.num_threads), int(sched.num_chunks()))
    else:
        potential = int(np.count_nonzero(atoms))
    return {
        "schedule": name,
        "max_tile_writers": int(writers.max(initial=0)),
        "potential_writers": potential,
    }


def _verdict_for_write(write_class: str, profile: dict) -> str:
    if write_class == "scatter":
        return "SCATTER"
    if write_class == "atom_private":
        return "SAFE"
    if write_class == "tile_private":
        return "SAFE" if profile["max_tile_writers"] <= 1 else "REDUCE"
    if write_class == "global_reduce":
        return "SAFE" if profile["potential_writers"] <= 1 else "REDUCE"
    raise ValueError(f"unknown write class {write_class!r}")


def cell_verdict(effects: KernelEffects, profile: dict) -> str:
    """Worst verdict over a kernel's writes under one schedule."""
    verdict = "SAFE"
    for write in effects.writes:
        v = _verdict_for_write(write.write_class, profile)
        if VERDICTS.index(v) > VERDICTS.index(verdict):
            verdict = v
    return verdict


def _resolve(effects_list) -> list:
    """Replace delegating entries with their target's effects."""
    by_key = {(e.app, e.label): e for e in effects_list}
    by_app: dict = {}
    for e in effects_list:
        by_app.setdefault(e.app, []).append(e)
    resolved = []
    for e in effects_list:
        if e.delegates_to is None:
            resolved.append((e, None))
            continue
        target = by_key.get((e.delegates_to, e.label))
        if target is None:
            candidates = by_app.get(e.delegates_to, [])
            target = candidates[0] if candidates else None
        if target is None or target.delegates_to is not None:
            raise ValueError(
                f"{e.app}/{e.label} delegates to unknown or further-"
                f"delegating app {e.delegates_to!r}"
            )
        resolved.append((target, e))
    return resolved


_MATRIX_CACHE: dict = {}


def _content_key(apps, schedules, spec: GpuSpec) -> str:
    from ..engine.compiled import effect_declarations

    h = hashlib.sha256()
    h.update(f"races-v{FORMAT_VERSION}".encode())
    for decl in effect_declarations():
        h.update(f"{decl.app}/{decl.label}".encode())
        if decl.scalar_fn is not None:
            h.update(inspect.getsource(decl.scalar_fn).encode())
        h.update(json.dumps(decl.writes, sort_keys=True).encode())
        h.update(str(decl.delegates_to).encode())
    h.update(",".join(schedules).encode())
    h.update(",".join(apps).encode() if apps else b"*")
    h.update(canonical_work().tile_offsets.tobytes())
    h.update(spec.name.encode())
    return h.hexdigest()


def verdict_matrix(
    apps=None, schedules=None, spec: GpuSpec = TINY_GPU
) -> dict:
    """The full (kernel x schedule) verdict matrix.

    Returns ``{"schedules": [...], "rows": [{app, label, delegates_to,
    writes, verdicts: {schedule: verdict}}, ...]}``, covering every
    registered app (all of them declare effects -- enforced by the
    ``kernel-parity`` lint) and every registered schedule.
    """
    effects_list = kernel_effects()
    if apps is not None:
        apps = list(apps)
        effects_list = [e for e in effects_list if e.app in apps]
    sched_names = list(schedules) if schedules else available_schedules()
    key = _content_key(
        sorted(e.app for e in effects_list), sched_names, spec
    )
    cached = _MATRIX_CACHE.get(key)
    if cached is not None:
        return cached

    profiles = {name: schedule_profile(name, spec=spec)
                for name in sched_names}
    rows = []
    for target, delegator in _resolve(effects_list):
        entry = delegator if delegator is not None else target
        rows.append(
            {
                "app": entry.app,
                "label": entry.label,
                "delegates_to": entry.delegates_to,
                "writes": [
                    {
                        "array": w.array,
                        "class": w.write_class,
                        "declared": w.declared,
                    }
                    for w in target.writes
                ],
                "verdicts": {
                    name: cell_verdict(target, profiles[name])
                    for name in sched_names
                },
            }
        )
    result = {
        "schedules": sched_names,
        "profiles": profiles,
        "rows": rows,
        "content_key": key,
    }
    _MATRIX_CACHE[key] = result
    return result
