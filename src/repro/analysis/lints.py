"""Repo lints: cheap static invariants the codebase promises to keep.

Each lint is a pure function from a repo root to findings, registered in
a table exactly like schedules and engines, so adding an invariant is a
registration -- ``repro analyze --lint`` and CI pick it up with no
plumbing.  The built-ins guard the contracts earlier PRs introduced:

``env-docs``
    Every ``REPRO_*`` environment variable read anywhere under ``src/``
    or ``benchmarks/`` must appear (backticked) in README's environment
    table.  Prefix globs in code (``REPRO_PROBLEM_CACHE_*`` spellings)
    are skipped.
``fault-sites``
    Every ``faults.inject("...")`` site string must be declared in
    :data:`repro.faults.KNOWN_SITES` and exercised by name in
    ``tests/test_faults.py`` -- an injection point nobody can schedule
    or test is dead armor.
``kernel-parity``
    The three kernel registries stay aligned: every JIT warmup label has
    a matching effect declaration, every registered app declares
    effects, and every declaration carries a source of truth (a scalar
    body, declared writes, or a delegation target).

Lint results are memoized content-keyed on the scanned files' bytes, so
repeated CLI/CI invocations in one process are free and any edit
invalidates the memo.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "LintFinding",
    "available_lints",
    "lint_descriptions",
    "repo_root",
    "run_lints",
]


@dataclass(frozen=True)
class LintFinding:
    """One violated invariant, pointing at the offending location."""

    lint: str
    path: str
    line: int
    message: str


def repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


_ENV_VAR = re.compile(r"REPRO_[A-Z0-9_]+")


def _python_files(root: Path, subdirs) -> list[Path]:
    files: list[Path] = []
    for sub in subdirs:
        base = root / sub
        if base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
    return files


def _iter_env_reads(root: Path):
    """Yield ``(path, line_number, var)`` for every env var in code.

    Skips prefix globs: a match immediately followed by ``*`` (e.g. the
    ``REPRO_PROBLEM_CACHE_*`` family reset helper) or ending in ``_`` is
    a pattern over variables, not a variable.
    """
    for path in _python_files(root, ("src", "benchmarks")):
        text = path.read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in _ENV_VAR.finditer(line):
                var = match.group(0)
                end = match.end()
                if var.endswith("_"):
                    continue
                if end < len(line) and line[end] == "*":
                    continue
                yield path, lineno, var


def _lint_env_docs(root: Path) -> list[LintFinding]:
    readme = root / "README.md"
    documented = (
        set(_ENV_VAR.findall(readme.read_text())) if readme.is_file() else set()
    )
    findings = []
    seen: set[str] = set()
    for path, lineno, var in _iter_env_reads(root):
        if var in documented or var in seen:
            continue
        seen.add(var)
        findings.append(
            LintFinding(
                lint="env-docs",
                path=str(path.relative_to(root)),
                line=lineno,
                message=(
                    f"environment variable {var} is read here but missing "
                    "from README.md's environment table"
                ),
            )
        )
    return findings


_INJECT_CALL = re.compile(
    r"""\binject\(\s*["']([a-z0-9_]+(?:\.[a-z0-9_]+)+)["']"""
)


def _lint_fault_sites(root: Path) -> list[LintFinding]:
    from ..faults import KNOWN_SITES

    findings = []
    test_file = root / "tests" / "test_faults.py"
    test_text = test_file.read_text() if test_file.is_file() else ""
    exercised: set[str] = set()
    for path in _python_files(root, ("src",)):
        if path.name == "faults.py":
            continue
        text = path.read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in _INJECT_CALL.finditer(line):
                site = match.group(1)
                rel = str(path.relative_to(root))
                if site not in KNOWN_SITES:
                    findings.append(
                        LintFinding(
                            lint="fault-sites",
                            path=rel,
                            line=lineno,
                            message=(
                                f"fault site {site!r} is injected here but "
                                "not declared in repro.faults.KNOWN_SITES"
                            ),
                        )
                    )
                elif site not in test_text:
                    if site not in exercised:
                        exercised.add(site)
                        findings.append(
                            LintFinding(
                                lint="fault-sites",
                                path=rel,
                                line=lineno,
                                message=(
                                    f"fault site {site!r} is never exercised "
                                    "in tests/test_faults.py"
                                ),
                            )
                        )
    return findings


def _lint_kernel_parity(root: Path) -> list[LintFinding]:
    from ..engine import available_apps, effect_declarations
    from ..engine import compiled as compiled_mod

    findings = []
    apps = available_apps()  # imports the apps package -> registers decls
    decls = effect_declarations()
    decl_labels = {decl.label for decl in decls}
    decl_apps = {decl.app for decl in decls}
    # Warmup labels need not equal effect labels (BFS/SSSP both warm
    # their own scalar but share the "advance" effect label), so a
    # warmup is covered if its label *or* its scalar function matches.
    decl_fns = {id(decl.scalar_fn) for decl in decls if decl.scalar_fn}
    for label in compiled_mod.registered_warmups():
        scalar_fn = compiled_mod._WARMUPS[label][0]
        if label not in decl_labels and id(scalar_fn) not in decl_fns:
            findings.append(
                LintFinding(
                    lint="kernel-parity",
                    path="src/repro/engine/compiled.py",
                    line=0,
                    message=(
                        f"JIT warmup label {label!r} has no matching "
                        "declare_kernel_effects() declaration"
                    ),
                )
            )
    for app in apps:
        if app not in decl_apps:
            findings.append(
                LintFinding(
                    lint="kernel-parity",
                    path=f"src/repro/apps/{app}.py",
                    line=0,
                    message=(
                        f"registered app {app!r} declares no kernel effects "
                        "(call declare_kernel_effects in its module)"
                    ),
                )
            )
    for decl in decls:
        if decl.scalar_fn is None and not decl.writes and decl.delegates_to is None:
            findings.append(
                LintFinding(
                    lint="kernel-parity",
                    path=f"src/repro/apps/{decl.app}.py",
                    line=0,
                    message=(
                        f"effect declaration {decl.app}/{decl.label} carries "
                        "no scalar_fn, writes, or delegates_to"
                    ),
                )
            )
    return findings


LINTS = {
    "env-docs": (
        "every REPRO_* variable read in src/ or benchmarks/ is documented "
        "in README.md",
        _lint_env_docs,
    ),
    "fault-sites": (
        "every faults.inject() site is declared in KNOWN_SITES and "
        "exercised in tests/test_faults.py",
        _lint_fault_sites,
    ),
    "kernel-parity": (
        "JIT warmups, registered apps and kernel effect declarations "
        "stay aligned",
        _lint_kernel_parity,
    ),
}


def available_lints() -> tuple[str, ...]:
    """Names of every registered lint."""
    return tuple(sorted(LINTS))


def lint_descriptions() -> dict[str, str]:
    """``{name: one-line description}`` for CLI listings."""
    return {name: LINTS[name][0] for name in available_lints()}


_LINT_CACHE: dict = {}


def _content_digest(root: Path) -> str:
    h = hashlib.sha256()
    for path in _python_files(root, ("src", "benchmarks", "tests")):
        h.update(str(path.relative_to(root)).encode())
        h.update(path.read_bytes())
    readme = root / "README.md"
    if readme.is_file():
        h.update(readme.read_bytes())
    return h.hexdigest()


def run_lints(names=None, root: Path | str | None = None) -> list[LintFinding]:
    """Run the named lints (all by default) against a repo root.

    Findings come back sorted by (lint, path, line); an empty list means
    the invariants hold.  Unknown names raise ``KeyError`` with the
    available set, mirroring the schedule/engine registries.
    """
    root = Path(root) if root is not None else repo_root()
    selected = list(names) if names else list(available_lints())
    for name in selected:
        if name not in LINTS:
            raise KeyError(
                f"unknown lint {name!r}; available: {available_lints()}"
            )
    key = (tuple(selected), str(root), _content_digest(root))
    cached = _LINT_CACHE.get(key)
    if cached is not None:
        return list(cached)
    findings: list[LintFinding] = []
    for name in selected:
        findings.extend(LINTS[name][1](root))
    findings.sort(key=lambda f: (f.lint, f.path, f.line))
    _LINT_CACHE[key] = tuple(findings)
    return findings
