"""``repro.analysis`` -- static analysis over kernels and schedules.

The paper's central promise -- swap the load-balancing schedule, keep
the kernel body -- is only sound when the schedule's work partition
cannot make two threads write the same output element.  This package
proves that per (kernel x schedule), the way a GPU race detector would,
but statically:

* **Effects** (:mod:`.effects`) -- parse each registered app's scalar
  kernel body (the :class:`~repro.engine.compiled.CompiledKernel`
  declaration) and classify every array write's index expression by
  provenance: work-item private, range-derived, or data-dependent
  scatter.
* **Races** (:mod:`.races`) -- fold those write classes through the
  closed-form per-thread load builders of every registered schedule
  into a verdict matrix: ``SAFE`` (cross-thread write sets provably
  disjoint), ``REDUCE`` (one tile's atoms split across threads; partial
  results need combination), ``SCATTER`` (data-dependent overlap
  possible; atomics or privatization required).
* **Probe** (:mod:`.probe`) -- a shadow-write dynamic probe that runs
  small instances through the interpreted SIMT path recording
  per-thread write sets; tier-1 asserts no ``SAFE`` verdict ever
  observes a cross-thread overlap.
* **Lints** (:mod:`.lints`) -- pluggable repo hygiene checks (env-var
  doc coverage, fault-site coverage, kernel registration parity)
  behind the ``repro analyze`` CLI.

Layering: ``analysis`` consumes ``core`` + ``engine`` + ``apps`` but
nothing imports it back -- it is tooling over the stack, not part of
the execution path.
"""

from .effects import KernelEffects, WriteEffect, kernel_effects
from .lints import LintFinding, available_lints, lint_descriptions, run_lints
from .probe import ProbeResult, probe_matrix, run_probe
from .races import (
    VERDICTS,
    cell_verdict,
    schedule_profile,
    verdict_matrix,
)

__all__ = [
    "KernelEffects",
    "WriteEffect",
    "kernel_effects",
    "LintFinding",
    "available_lints",
    "lint_descriptions",
    "run_lints",
    "ProbeResult",
    "run_probe",
    "probe_matrix",
    "VERDICTS",
    "cell_verdict",
    "schedule_profile",
    "verdict_matrix",
]
