"""Effect extraction: classify kernel writes by index provenance.

Every registered app declares a flat scalar kernel body (the
``scalar_fn`` of its :class:`~repro.engine.compiled.CompiledKernel`).
Those bodies follow one shared shape -- an extent-array preamble
(``num_rows = offsets.shape[0] - 1``), tile loops over ``range`` of a
count, atom loops over ``range(offsets[i], offsets[i + 1])`` or a flat
array extent -- which makes the write side of the kernel statically
recoverable from the AST:

``atom_private``
    Indexed by an atom-loop variable: each atom is consumed by exactly
    one thread under every schedule, so the write sets are disjoint by
    construction (sssp's per-edge scratch).
``tile_private``
    Indexed by a tile-loop variable (optionally together with a dense
    inner dimension): disjoint iff the schedule never splits one tile's
    atoms across threads (spmv's ``y[row]``, spmm's ``c[row, col]``).
``global_reduce``
    A single shared cell -- a bare accumulator that the kernel returns
    (triangle count's ``count += 1``) or a constant index.
``scatter``
    The index is data-dependent -- derived from array loads (histogram
    bins, BFS/SSSP relax targets) -- so overlap is possible under any
    schedule and the kernel must use atomics or privatization.

Index *taint* is tracked through control dependence: a name assigned
inside a loop or branch whose condition is data-derived is itself
data-derived (histogram's ``bin_id`` is built by a ``while`` over the
row length).  Anything the classifier cannot prove falls to
``scatter`` -- the conservative side for a race analysis.

Apps whose kernels inference cannot see hint the analyzer through
:func:`~repro.engine.compiled.declare_kernel_effects`: spgemm's
``compute`` pass keeps ``scalar_fn=None`` and declares its hashed
accumulation a scatter; pagerank delegates to spmv's kernels outright.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable

from ..engine.compiled import EffectDecl, effect_declarations

__all__ = [
    "WRITE_CLASSES",
    "WriteEffect",
    "KernelEffects",
    "classify_scalar_fn",
    "kernel_effects",
]

#: Ordered least- to most-hazardous; verdict folding takes the worst.
WRITE_CLASSES = ("atom_private", "tile_private", "global_reduce", "scatter")


@dataclass(frozen=True)
class WriteEffect:
    """One classified array write in a kernel body."""

    array: str
    write_class: str
    line: int | None = None
    index: str = ""
    #: True when the class came from a declaration, not inference.
    declared: bool = False


@dataclass(frozen=True)
class KernelEffects:
    """The extracted read/write effects of one ``(app, kernel)`` pair."""

    app: str
    label: str
    params: tuple = ()
    reads: tuple = ()
    writes: tuple = ()
    outputs: tuple = ()
    delegates_to: str | None = None

    def worst_write_class(self) -> str | None:
        classes = [w.write_class for w in self.writes]
        if not classes:
            return None
        return max(classes, key=WRITE_CLASSES.index)


@dataclass
class _FnState:
    """Mutable classification state while walking one scalar body."""

    params: list
    tile_counts: set = field(default_factory=set)
    flat_counts: set = field(default_factory=set)
    dense_counts: set = field(default_factory=set)
    offsets: set = field(default_factory=set)
    tile_vars: set = field(default_factory=set)
    atom_vars: set = field(default_factory=set)
    dense_vars: set = field(default_factory=set)
    tainted: set = field(default_factory=set)
    allocs: set = field(default_factory=set)
    returned: set = field(default_factory=set)
    reads: set = field(default_factory=set)
    scalar_accs: set = field(default_factory=set)
    raw_writes: list = field(default_factory=list)  # (name, index, lineno)


def _names_in(node: ast.AST) -> set:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _has_subscript(node: ast.AST) -> bool:
    return any(isinstance(n, ast.Subscript) for n in ast.walk(node))


def _is_shape_index(node: ast.AST, axis: int) -> str | None:
    """Match ``<name>.shape[axis]``; return the array name."""
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "shape"
        and isinstance(node.value.value, ast.Name)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == axis
    ):
        return node.value.value.id
    return None


def _is_alloc_call(node: ast.AST) -> bool:
    """Match ``np.zeros/empty/full/ones(...)``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("zeros", "empty", "full", "ones")
    )


def _value_tainted(node: ast.AST, st: _FnState) -> bool:
    return _has_subscript(node) or bool(_names_in(node) & st.tainted)


class _Classifier:
    """Statement-order walker with control-dependence taint."""

    def __init__(self, fndef: ast.FunctionDef):
        self.st = _FnState(params=[a.arg for a in fndef.args.args])
        for node in ast.walk(fndef):
            if isinstance(node, ast.Return) and node.value is not None:
                elts = (
                    node.value.elts
                    if isinstance(node.value, ast.Tuple)
                    else [node.value]
                )
                for e in elts:
                    if isinstance(e, ast.Name):
                        self.st.returned.add(e.id)
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id in {a.arg for a in fndef.args.args}
            ):
                self.st.reads.add(node.value.id)
        self._walk(fndef.body, control_tainted=False)

    # -- statement dispatch -------------------------------------------
    def _walk(self, stmts, control_tainted: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                self._assign(stmt, control_tainted)
            elif isinstance(stmt, ast.AugAssign):
                self._augassign(stmt, control_tainted)
            elif isinstance(stmt, ast.For):
                self._for(stmt, control_tainted)
            elif isinstance(stmt, (ast.While, ast.If)):
                branch_tainted = control_tainted or _value_tainted(
                    stmt.test, self.st
                )
                self._walk(stmt.body, branch_tainted)
                self._walk(stmt.orelse, branch_tainted)

    def _assign(self, stmt: ast.Assign, control_tainted: bool) -> None:
        st = self.st
        value = stmt.value
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                self._record_write(target)
                continue
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            # Extent preamble: num = a.shape[0] - 1 / n = a.shape[0] /
            # cols = b.shape[1].
            if (
                isinstance(value, ast.BinOp)
                and isinstance(value.op, ast.Sub)
                and isinstance(value.right, ast.Constant)
                and value.right.value == 1
            ):
                arr = _is_shape_index(value.left, 0)
                if arr is not None:
                    st.tile_counts.add(name)
                    st.offsets.add(arr)
                    continue
            if _is_shape_index(value, 0) is not None:
                st.flat_counts.add(name)
                continue
            if _is_shape_index(value, 1) is not None:
                st.dense_counts.add(name)
                continue
            if _is_alloc_call(value):
                st.allocs.add(name)
                continue
            if control_tainted or _value_tainted(value, st):
                st.tainted.add(name)
            else:
                st.tainted.discard(name)

    def _augassign(self, stmt: ast.AugAssign, control_tainted: bool) -> None:
        st = self.st
        if isinstance(stmt.target, ast.Subscript):
            self._record_write(stmt.target)
        elif isinstance(stmt.target, ast.Name):
            st.scalar_accs.add(stmt.target.id)
            if control_tainted or _value_tainted(stmt.value, st):
                st.tainted.add(stmt.target.id)

    def _for(self, stmt: ast.For, control_tainted: bool) -> None:
        st = self.st
        target = stmt.target.id if isinstance(stmt.target, ast.Name) else None
        rng = stmt.iter
        classified = False
        if (
            target is not None
            and isinstance(rng, ast.Call)
            and isinstance(rng.func, ast.Name)
            and rng.func.id == "range"
        ):
            args = rng.args
            if len(args) == 1:
                arg = args[0]
                if isinstance(arg, ast.Name):
                    if arg.id in st.tile_counts:
                        st.tile_vars.add(target)
                        classified = True
                    elif arg.id in st.flat_counts:
                        st.atom_vars.add(target)
                        classified = True
                    elif arg.id in st.dense_counts:
                        st.dense_vars.add(target)
                        classified = True
                elif _is_shape_index(arg, 0) is not None:
                    st.atom_vars.add(target)
                    classified = True
            elif len(args) == 2:
                # range(a[i], a[i + 1]): atoms of tile i through the
                # extent array a.  Also back-classifies i as a tile
                # variable (triangle count's outer loop bound is a
                # plain parameter, so i arrives unclassified).
                lo, hi = args
                arrs = (_offsets_range(lo, 0), _offsets_range(hi, 1))
                if arrs[0] and arrs[1] and arrs[0] == arrs[1]:
                    arr, idx = arrs[0]
                    st.offsets.add(arr)
                    st.atom_vars.add(target)
                    if idx is not None:
                        st.tile_vars.add(idx)
                        st.tainted.discard(idx)
                    classified = True
        if target is not None and not classified:
            st.tainted.add(target)
        self._walk(stmt.body, control_tainted)
        self._walk(stmt.orelse, control_tainted)

    # -- writes --------------------------------------------------------
    def _record_write(self, target: ast.Subscript) -> None:
        if isinstance(target.value, ast.Name):
            self.st.raw_writes.append(
                (target.value.id, target.slice, target.lineno)
            )

    def classify_index(self, index: ast.AST) -> str:
        st = self.st
        if _has_subscript(index) or _names_in(index) & st.tainted:
            return "scatter"
        comps = index.elts if isinstance(index, ast.Tuple) else [index]
        kinds = []
        for comp in comps:
            if isinstance(comp, ast.Name):
                if comp.id in st.tile_vars:
                    kinds.append("tile")
                elif comp.id in st.atom_vars:
                    kinds.append("atom")
                elif comp.id in st.dense_vars:
                    kinds.append("dense")
                else:
                    return "scatter"  # unknown provenance: assume the worst
            elif isinstance(comp, ast.Constant):
                kinds.append("const")
            else:
                return "scatter"
        if "tile" in kinds:
            return "tile_private"
        if "atom" in kinds:
            return "atom_private"
        return "global_reduce"


def _offsets_range(node: ast.AST, plus: int):
    """Match ``a[i]`` (plus=0) or ``a[i + 1]`` (plus=1); return
    ``(array_name, index_name)`` with index_name possibly None."""
    if not (
        isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name)
    ):
        return None
    arr = node.value.id
    sl = node.slice
    if plus == 0:
        if isinstance(sl, ast.Name):
            return (arr, sl.id)
        if isinstance(sl, ast.Constant):
            return (arr, None)
        return None
    if (
        isinstance(sl, ast.BinOp)
        and isinstance(sl.op, ast.Add)
        and isinstance(sl.right, ast.Constant)
        and sl.right.value == 1
    ):
        if isinstance(sl.left, ast.Name):
            return (arr, sl.left.id)
        if isinstance(sl.left, ast.Constant):
            return (arr, None)
    return None


def classify_scalar_fn(fn: Callable) -> tuple:
    """Infer ``(params, reads, writes, outputs)`` from a scalar body."""
    src = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(src)
    fndef = next(
        n
        for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    cls = _Classifier(fndef)
    st = cls.st
    writes: list[WriteEffect] = []
    seen: set = set()
    for name, index, lineno in st.raw_writes:
        write_class = cls.classify_index(index)
        key = (name, write_class)
        if key in seen:
            continue
        seen.add(key)
        writes.append(
            WriteEffect(
                array=name,
                write_class=write_class,
                line=lineno,
                index=ast.unparse(index),
            )
        )
    # A returned bare-name accumulator is one shared output cell.
    for name in sorted(st.scalar_accs & st.returned):
        writes.append(
            WriteEffect(array=name, write_class="global_reduce", index=name)
        )
    written = {w.array for w in writes}
    outputs = sorted(
        name
        for name in written
        if name in st.returned or name in st.params
    )
    return (
        tuple(st.params),
        tuple(sorted(st.reads)),
        tuple(writes),
        tuple(outputs),
    )


def _effects_for_decl(decl: EffectDecl) -> KernelEffects:
    if decl.delegates_to is not None:
        return KernelEffects(
            app=decl.app, label=decl.label, delegates_to=decl.delegates_to
        )
    params: tuple = ()
    reads: tuple = ()
    writes: list[WriteEffect] = []
    outputs: list = []
    if decl.scalar_fn is not None:
        params, reads, inferred, inferred_outputs = classify_scalar_fn(
            decl.scalar_fn
        )
        writes.extend(inferred)
        outputs.extend(inferred_outputs)
    if decl.writes:
        for array, write_class in sorted(decl.writes.items()):
            if write_class not in WRITE_CLASSES:
                raise ValueError(
                    f"unknown write class {write_class!r} declared for "
                    f"{decl.app}/{decl.label}"
                )
            writes = [w for w in writes if w.array != array]
            writes.append(
                WriteEffect(array=array, write_class=write_class, declared=True)
            )
            if array not in outputs:
                outputs.append(array)
    for name in decl.outputs:
        if name not in outputs:
            outputs.append(name)
    return KernelEffects(
        app=decl.app,
        label=decl.label,
        params=params,
        reads=reads,
        writes=tuple(writes),
        outputs=tuple(sorted(outputs)),
    )


def _ensure_apps_registered() -> None:
    from .. import apps  # noqa: F401  (importing registers declarations)


def kernel_effects(app: str | None = None) -> tuple:
    """Effects of every registered kernel, optionally for one app."""
    _ensure_apps_registered()
    return tuple(_effects_for_decl(d) for d in effect_declarations(app))
