"""The application registry: each app declared exactly once.

An :class:`AppSpec` is the framework-side record of one application --
its driver (the declaration of work, costs and kernel body, written
against :class:`~repro.engine.dispatch.Runtime` only), its oracle, how
to derive a sweep problem from a corpus matrix, and any hardwired
baseline implementations it competes against.  Registering the spec is
what makes an application sweepable: the harness, the CLI and the parity
tests all enumerate :func:`available_apps` instead of hand-listing
modules.

:func:`run_app` is the single entry point every public app function
(``spmv(...)``, ``bfs(...)``, ...) delegates to: it builds the Runtime
from the caller's engine/schedule/spec selection and invokes the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..gpusim.arch import GpuSpec
from .dispatch import Engine, Runtime

__all__ = [
    "AppSpec",
    "register_app",
    "get_app",
    "available_apps",
    "run_app",
    "default_match",
]


def default_match(output: Any, expected: Any) -> bool:
    """Default output validation: dense ``allclose`` at oracle tolerance."""
    if hasattr(output, "to_dense"):
        output = output.to_dense()
    if hasattr(expected, "to_dense"):
        expected = expected.to_dense()
    return bool(
        np.allclose(
            np.asarray(output, dtype=np.float64),
            np.asarray(expected, dtype=np.float64),
            rtol=1e-9,
            atol=1e-12,
        )
    )


@dataclass(frozen=True)
class AppSpec:
    """Everything the framework needs to know about one application.

    Attributes
    ----------
    driver:
        ``driver(problem, runtime) -> AppResult``.  The whole application:
        builds WorkSpecs, resolves schedules via ``runtime.schedule_for``
        and executes kernels via ``runtime.run_launch`` -- never touching
        an engine name.
    oracle:
        ``oracle(problem) -> expected output`` (pure NumPy/CPU reference).
    sweep_problem:
        ``sweep_problem(matrix, seed) -> problem``: derive a deterministic
        problem instance from a corpus CSR matrix, for harness sweeps.
    match:
        ``match(output, expected) -> bool`` -- output validation predicate.
    baselines:
        Hardwired comparator kernels by name (e.g. SpMV's ``cub``):
        ``fn(problem, spec) -> (output, stats)``.
    accepts:
        Optional predicate over the input matrix restricting which corpus
        datasets the app can sweep (e.g. graph apps need square inputs).
    sample_check:
        ``sample_check(problem, output, seed) -> bool`` -- a *second*,
        genuinely independent validation: re-derives a seeded sample of
        the output entries directly from the problem data
        (O(samples * row_nnz) for per-row outputs; one cheap linear
        pass for aggregate outputs like the histogram), through a
        different code path than both the oracle and the vector
        engine's ``compute()``.  Used by the
        harness's ``--validate`` so the vector path is never compared
        only against the function that produced it.
    """

    name: str
    driver: Callable[[Any, Runtime], Any]
    default_schedule: str = "merge_path"
    oracle: Callable[[Any], Any] | None = None
    sweep_problem: Callable[[Any, int], Any] | None = None
    match: Callable[[Any, Any], bool] = default_match
    baselines: dict = field(default_factory=dict)
    accepts: Callable[[Any], bool] | None = None
    sample_check: Callable[[Any, Any, int], bool] | None = None
    description: str = ""


_APPS: dict[str, AppSpec] = {}


def register_app(spec: AppSpec) -> AppSpec:
    """Add an application to the global registry (import-time hook)."""
    if spec.name in _APPS:
        raise ValueError(f"app {spec.name!r} already registered")
    _APPS[spec.name] = spec
    return spec


def _ensure_registered() -> None:
    # Importing the apps package registers every built-in application.
    from .. import apps  # noqa: F401


def available_apps() -> list[str]:
    """Names of every registered application."""
    _ensure_registered()
    return sorted(_APPS)


def get_app(name: str) -> AppSpec:
    """Look up a registered application by name."""
    _ensure_registered()
    if name not in _APPS:
        raise KeyError(f"unknown app {name!r}; available: {available_apps()}")
    return _APPS[name]


def run_app(
    app: str | AppSpec,
    problem: Any,
    *,
    ctx: "ExecutionContext | None" = None,
    schedule: str | Schedule | None = None,
    engine: str | Engine | None = None,
    spec: GpuSpec | None = None,
    launch: LaunchParams | None = None,
    policy=None,
    **schedule_options,
):
    """Run one application through the engine dispatcher.

    ``ctx`` is the single execution-selection argument: an
    :class:`~repro.engine.context.ExecutionContext` bundling engine,
    device spec, schedule policy, launch override and schedule options.
    The loose kwargs (``engine=``, ``schedule=``, ``spec=``, ``launch=``,
    ``**schedule_options``) are the deprecated pre-context spelling,
    still accepted via :meth:`ExecutionContext.from_kwargs`; passing both
    is an error.  A context (or ``schedule``/``policy``) without a
    schedule selection falls back to the app's registered default.
    """
    from .context import ExecutionContext

    app_spec = app if isinstance(app, AppSpec) else get_app(app)
    context = ExecutionContext.from_kwargs(
        ctx=ctx,
        engine=engine,
        schedule=schedule,
        spec=spec,
        launch=launch,
        policy=policy,
        **schedule_options,
    )
    runtime = context.runtime(default_schedule=app_spec.default_schedule)
    return app_spec.driver(problem, runtime)
