"""Memoized schedule planning for corpus-scale sweeps.

Analytic planning (:meth:`Schedule.plan`) is pure: its result depends
only on the schedule class and options, the launch geometry, the work
shape, the device spec and the application's :class:`WorkCosts`.  Corpus
sweeps re-plan the exact same launch over and over -- every figure bench
re-runs the same (kernel, dataset) grid -- so the vector engine routes
planning through this small thread-safe LRU memo.

The key deliberately fingerprints the *content* of the work (a CRC over
the tile-offsets array), not object identity, so two loads of the same
corpus dataset hit the same entry.  Schedules constructed by the caller
as instances (rather than resolved from a registry name) bypass the
cache entirely: an instance may carry options the key cannot observe.

Persistence
-----------
On top of the in-memory LRU sits an optional *disk layer*: give the
cache a directory (``PlanCache(cache_dir=...)``, the harness/CLI
``plan_cache_dir`` knob, or the ``REPRO_PLAN_CACHE_DIR`` environment
variable for the process-wide cache) and every planned launch is also
written to one file under that directory, keyed by the same content
fingerprints.  A fresh process -- a repeated figure bench, or a
:class:`~concurrent.futures.ProcessPoolExecutor` sweep worker -- then
starts warm: in-memory misses fall through to the disk before planning
live.

The disk layer can never change behaviour, only skip recomputation:

* writes are atomic (temp file + ``os.replace``), so concurrent workers
  sharing one directory race benignly (last write wins, all writes
  contain the identical pure plan);
* entries are versioned (:data:`CACHE_FORMAT_VERSION`) and carry their
  full key; a version bump, a hash collision or a corrupted/truncated
  file reads as a miss, never as an error.

Two disk layouts are available, selected by which knob is set:

``cache_dir``
    One pickle file per plan under a directory -- simple, fully
    concurrent, but corpus-squared workloads (full scale x every
    schedule) pay one ``open`` per plan and leave thousands of files.
``store_path``
    One append-only journal file for *all* plans
    (:class:`~repro.engine.plan_store.PlanStore`): a single open + one
    sequential scan per process, CRC-verified records, in-memory index,
    compaction.  The harness/CLI spelling is ``plan_store`` /
    ``--plan-store``; the process-wide cache reads
    ``REPRO_PLAN_STORE`` (which outranks ``REPRO_PLAN_CACHE_DIR``).

Both layouts share the versioned-payload contract; a cache can have at
most one disk layer attached at a time.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import zlib
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path

import numpy as np

from ..core.schedule import Schedule, WorkCosts
from ..core.work import WorkSpec
from ..gpusim.cost_model import KernelStats
from .plan_store import PlanStore

__all__ = [
    "PlanCache",
    "work_fingerprint",
    "global_plan_cache",
    "configure_global_plan_cache",
    "clear_plan_cache",
    "CACHE_FORMAT_VERSION",
    "CACHE_DIR_ENV",
    "PLAN_STORE_ENV",
]

#: Bump whenever the key schema, the pickled payload layout, or the
#: planner semantics change: old cache directories then read as cold
#: (version-mismatch entries are ignored) instead of serving stale plans.
#: v2: ``options_key`` became the policy cache token of the
#: ExecutionContext redesign (``("fixed", name)`` instead of the bare
#: schedule name).
CACHE_FORMAT_VERSION = 2

#: Environment variable the process-wide cache reads its directory from
#: (how process-pool sweep workers under ``spawn`` inherit the knob).
CACHE_DIR_ENV = "REPRO_PLAN_CACHE_DIR"

#: Environment variable selecting the single-file journal store for the
#: process-wide cache.  When both are set, the store wins.
PLAN_STORE_ENV = "REPRO_PLAN_STORE"


def work_fingerprint(work: WorkSpec) -> tuple[int, int, int]:
    """Content hash of a workload: counts plus a CRC of the offsets."""
    offsets = np.ascontiguousarray(work.tile_offsets, dtype=np.int64)
    return (work.num_tiles, work.num_atoms, zlib.crc32(offsets.tobytes()))


class PlanCache:
    """A bounded LRU memo for :meth:`Schedule.plan` results.

    ``plan`` is a drop-in replacement for calling ``sched.plan(costs)``
    directly; unhashable keys and ``options_key=None`` fall through to a
    live plan, so the cache can never change behaviour -- only skip
    recomputation.  ``hits`` / ``misses`` counters make the skipping
    observable to tests; with a ``cache_dir``, ``disk_hits`` counts the
    subset of hits served from the persistent layer (warm starts of a
    fresh process).
    """

    def __init__(
        self,
        maxsize: int = 1024,
        cache_dir: str | Path | None = None,
        store_path: str | Path | None = None,
    ):
        if cache_dir is not None and store_path is not None:
            raise ValueError("pass either cache_dir= or store_path=, not both")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self._entries: OrderedDict[tuple, KernelStats] = OrderedDict()
        self._lock = threading.Lock()
        self._cache_dir: Path | None = None
        self._store: PlanStore | None = None
        if store_path is not None:
            self.set_store_path(store_path)
        else:
            self.set_cache_dir(cache_dir)

    # ------------------------------------------------------------------
    # Persistence plumbing
    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Path | None:
        return self._cache_dir

    @property
    def store_path(self) -> Path | None:
        return self._store.path if self._store is not None else None

    @property
    def store(self) -> PlanStore | None:
        """The attached journal store, if that disk layout is selected."""
        return self._store

    def _detach_disk(self) -> None:
        self._cache_dir = None
        if self._store is not None:
            self._store.close()
            self._store = None

    def set_cache_dir(self, cache_dir: str | Path | None) -> None:
        """Attach the per-file disk layer (``None`` detaches any layer).

        Re-attaching the directory already in use is a no-op, so warm
        pool workers can assert their configuration per shard for free.
        """
        if cache_dir is not None and self._cache_dir == Path(cache_dir):
            return
        self._detach_disk()
        if cache_dir is None:
            return
        path = Path(cache_dir)
        path.mkdir(parents=True, exist_ok=True)
        self._cache_dir = path

    def set_store_path(self, store_path: str | Path | None) -> None:
        """Attach the single-file journal layer (``None`` detaches).

        Re-attaching the journal already open is a no-op (the in-memory
        index and its warmth are kept).
        """
        if (
            store_path is not None
            and self._store is not None
            and self._store.path == Path(store_path)
        ):
            return
        self._detach_disk()
        if store_path is None:
            return
        self._store = PlanStore(store_path)

    def _entry_path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        assert self._cache_dir is not None
        return self._cache_dir / f"plan-{digest}.pkl"

    def _disk_load(self, key: tuple) -> KernelStats | None:
        """Read one persisted plan; any defect whatsoever reads as a miss."""
        if self._store is not None:
            try:
                payload = self._store.get(key)
            except Exception:
                return None
            if not isinstance(payload, dict):
                return None
            if payload.get("version") != CACHE_FORMAT_VERSION:
                return None
            stats = payload.get("stats")
            return stats if isinstance(stats, KernelStats) else None
        if self._cache_dir is None:
            return None
        try:
            with open(self._entry_path(key), "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict):
                return None
            if payload.get("version") != CACHE_FORMAT_VERSION:
                return None
            if payload.get("key") != key:  # digest collision or stale repr
                return None
            stats = payload.get("stats")
            return stats if isinstance(stats, KernelStats) else None
        except Exception:  # corrupted, truncated, unreadable: fall through
            return None

    def _disk_store(self, key: tuple, stats: KernelStats) -> None:
        """Persist one plan atomically; failures are silently dropped."""
        if self._store is not None:
            try:
                self._store.put(
                    key, {"version": CACHE_FORMAT_VERSION, "stats": stats}
                )
            except Exception:  # unpicklable key part, disk full, ...: skip
                pass
            return
        if self._cache_dir is None:
            return
        path = self._entry_path(key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            payload = {
                "version": CACHE_FORMAT_VERSION,
                "key": key,
                "stats": stats,
            }
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:  # unpicklable key part, disk full, ...: skip
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Memoization
    # ------------------------------------------------------------------
    def key_for(
        self, sched: Schedule, costs: WorkCosts, options_key: tuple
    ) -> tuple:
        """Cache key of one planned launch (content-based, no identity)."""
        return (
            type(sched).__name__,
            sched.name,
            sched.launch.grid_dim,
            sched.launch.block_dim,
            sched.spec,
            work_fingerprint(sched.work),
            costs,
            options_key,
        )

    def plan(
        self,
        sched: Schedule,
        costs: WorkCosts,
        *,
        extras: dict | None = None,
        options_key: tuple | None = None,
    ) -> KernelStats:
        """Return ``sched.plan(costs, extras=...)``, memoized when safe."""
        if options_key is None or self.maxsize <= 0:
            return sched.plan(costs, extras=extras)
        try:
            key = self.key_for(sched, costs, options_key)
            hash(key)
        except TypeError:  # unhashable spec/costs/options: plan live
            return sched.plan(costs, extras=extras)

        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if cached is None:
            cached = self._disk_load(key)
            if cached is not None:
                with self._lock:
                    self.hits += 1
                    self.disk_hits += 1
                    self._entries[key] = cached
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.maxsize:
                        self._entries.popitem(last=False)
        if cached is not None:
            # Same numbers, caller's extras (extras never affect timing).
            return replace(cached, extras={"schedule": sched.name, **(extras or {})})

        stats = sched.plan(costs, extras=extras)
        with self._lock:
            self.misses += 1
            self._entries[key] = stats
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        self._disk_store(key, stats)
        return stats

    def clear(self) -> None:
        """Drop the in-memory entries and counters (disk files persist)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0

    def info(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "cache_dir": str(self._cache_dir) if self._cache_dir else None,
                "store_path": (
                    str(self._store.path) if self._store is not None else None
                ),
                "store_records": (
                    len(self._store) if self._store is not None else None
                ),
            }


def _build_global() -> PlanCache:
    # The env-var attachment must honour the disk layer's contract --
    # never change behaviour, only skip recomputation -- so an unusable
    # REPRO_PLAN_STORE / REPRO_PLAN_CACHE_DIR (unwritable, path through a
    # file, foreign journal, ...) reads as "no disk layer" instead of
    # crashing every import of the package.
    store = os.environ.get(PLAN_STORE_ENV) or None
    if store is not None:
        try:
            return PlanCache(store_path=store)
        except Exception:
            return PlanCache()
    try:
        return PlanCache(cache_dir=os.environ.get(CACHE_DIR_ENV) or None)
    except OSError:
        return PlanCache()


_GLOBAL = _build_global()


def global_plan_cache() -> PlanCache:
    """The process-wide cache the default :class:`VectorEngine` uses."""
    return _GLOBAL


def configure_global_plan_cache(
    cache_dir: str | Path | None = ...,  # type: ignore[assignment]
    *,
    store_path: str | Path | None = ...,  # type: ignore[assignment]
    maxsize: int | None = None,
) -> PlanCache:
    """Reconfigure the process-wide cache (the CLI/harness knob).

    ``cache_dir`` attaches the per-file disk layer; ``store_path``
    attaches the single-file journal layer instead (a cache holds at
    most one layer, so setting either detaches the other).  ``None``
    detaches; leave both unset to keep the current attachment.
    ``maxsize`` resizes the in-memory LRU.  Returns the global cache for
    chaining.
    """
    if cache_dir is not ... and store_path is not ...:
        raise ValueError("pass either cache_dir= or store_path=, not both")
    if store_path is not ...:
        _GLOBAL.set_store_path(store_path)
    elif cache_dir is not ...:
        _GLOBAL.set_cache_dir(cache_dir)
    if maxsize is not None:
        _GLOBAL.maxsize = maxsize
    return _GLOBAL


def clear_plan_cache() -> None:
    """Drop every memoized plan (tests; spec/cost-constant experiments)."""
    _GLOBAL.clear()
