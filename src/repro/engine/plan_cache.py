"""Memoized schedule planning for corpus-scale sweeps.

Analytic planning (:meth:`Schedule.plan`) is pure: its result depends
only on the schedule class and options, the launch geometry, the work
shape, the device spec and the application's :class:`WorkCosts`.  Corpus
sweeps re-plan the exact same launch over and over -- every figure bench
re-runs the same (kernel, dataset) grid -- so the vector engine routes
planning through this small thread-safe LRU memo.

The key deliberately fingerprints the *content* of the work (a CRC over
the tile-offsets array), not object identity, so two loads of the same
corpus dataset hit the same entry.  Schedules constructed by the caller
as instances (rather than resolved from a registry name) bypass the
cache entirely: an instance may carry options the key cannot observe.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import replace

import numpy as np

from ..core.schedule import Schedule, WorkCosts
from ..core.work import WorkSpec
from ..gpusim.cost_model import KernelStats

__all__ = [
    "PlanCache",
    "work_fingerprint",
    "global_plan_cache",
    "clear_plan_cache",
]


def work_fingerprint(work: WorkSpec) -> tuple[int, int, int]:
    """Content hash of a workload: counts plus a CRC of the offsets."""
    offsets = np.ascontiguousarray(work.tile_offsets, dtype=np.int64)
    return (work.num_tiles, work.num_atoms, zlib.crc32(offsets.tobytes()))


class PlanCache:
    """A bounded LRU memo for :meth:`Schedule.plan` results.

    ``plan`` is a drop-in replacement for calling ``sched.plan(costs)``
    directly; unhashable keys and ``options_key=None`` fall through to a
    live plan, so the cache can never change behaviour -- only skip
    recomputation.  ``hits`` / ``misses`` counters make the skipping
    observable to tests.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, KernelStats] = OrderedDict()
        self._lock = threading.Lock()

    def key_for(
        self, sched: Schedule, costs: WorkCosts, options_key: tuple
    ) -> tuple:
        """Cache key of one planned launch (content-based, no identity)."""
        return (
            type(sched).__name__,
            sched.name,
            sched.launch.grid_dim,
            sched.launch.block_dim,
            sched.spec,
            work_fingerprint(sched.work),
            costs,
            options_key,
        )

    def plan(
        self,
        sched: Schedule,
        costs: WorkCosts,
        *,
        extras: dict | None = None,
        options_key: tuple | None = None,
    ) -> KernelStats:
        """Return ``sched.plan(costs, extras=...)``, memoized when safe."""
        if options_key is None or self.maxsize <= 0:
            return sched.plan(costs, extras=extras)
        try:
            key = self.key_for(sched, costs, options_key)
            hash(key)
        except TypeError:  # unhashable spec/costs/options: plan live
            return sched.plan(costs, extras=extras)

        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if cached is not None:
            # Same numbers, caller's extras (extras never affect timing).
            return replace(cached, extras={"schedule": sched.name, **(extras or {})})

        stats = sched.plan(costs, extras=extras)
        with self._lock:
            self.misses += 1
            self._entries[key] = stats
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return stats

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def info(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }


_GLOBAL = PlanCache()


def global_plan_cache() -> PlanCache:
    """The process-wide cache the default :class:`VectorEngine` uses."""
    return _GLOBAL


def clear_plan_cache() -> None:
    """Drop every memoized plan (tests; spec/cost-constant experiments)."""
    _GLOBAL.clear()
