"""Engine dispatch: the one execution layer behind every application.

The paper's pitch is that an application is *declared* once -- work, cost
model, kernel body -- and the execution strategy is an identifier switch.
This module is that switch.  An :class:`Engine` knows how to execute one
load-balanced kernel launch described by four pieces:

* a resolved :class:`~repro.core.schedule.Schedule` (the assignment),
* the application's :class:`~repro.core.schedule.WorkCosts`,
* ``compute()`` -- the vectorized functional result (NumPy, corpus scale),
* ``kernel()`` -- a factory returning ``(body, finalize)`` where ``body``
  is a per-thread kernel for the SIMT interpreter and ``finalize()``
  yields the output buffer.

Engines live in a *registry* mirroring the schedule registry: built-ins
(:class:`VectorEngine`, :class:`SimtEngine`, and the multi-device
:class:`~repro.engine.multi_gpu.MultiGpuEngine`) register themselves via
:func:`register_engine`, :func:`available_engines` enumerates them, and
:func:`get_engine` resolves an identifier -- so adding an execution
strategy is a registration, never another plumbing pass through the call
sites.

:class:`VectorEngine` runs ``compute()`` and prices the launch through
the analytic planner (memoized via :mod:`repro.engine.plan_cache`, whose
optional disk layer persists plans across processes -- see the
``plan_cache_dir`` knob on the harness and CLI);
:class:`SimtEngine` interprets ``kernel()`` thread-by-thread and folds
the measured charges with the same cost model, so the two engines are
cross-validated by construction.  Applications never branch on an engine
name -- they describe launches to a :class:`Runtime` and the selected
engine does the rest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from ..core.heuristic import HeuristicParams, select_schedule
from ..core.policy import SchedulePolicy, as_policy
from ..core.schedule import LaunchParams, Schedule, WorkCosts, make_schedule
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.cost_model import KernelStats, kernel_stats_from_thread_cycles
from ..gpusim.simt import launch_interpreted
from ..sparse.csr import CsrMatrix
from .plan_cache import PlanCache, global_plan_cache

__all__ = [
    "EngineError",
    "UnknownEngineError",
    "Engine",
    "VectorEngine",
    "SimtEngine",
    "register_engine",
    "available_engines",
    "get_engine",
    "ensure_known_engine",
    "engine_description",
    "Runtime",
    "resolve_schedule",
]


class EngineError(RuntimeError):
    """Raised when an engine cannot execute the requested launch."""


class UnknownEngineError(EngineError, ValueError):
    """An engine identifier that matches no registry entry.

    Subclasses :class:`ValueError` too, so pre-registry callers catching
    the old error class keep working.
    """


def resolve_schedule(
    schedule: str | Schedule,
    work: WorkSpec,
    spec: GpuSpec,
    launch: LaunchParams | None = None,
    *,
    matrix: CsrMatrix | None = None,
    heuristic: HeuristicParams | None = None,
    **options,
) -> Schedule:
    """Turn a schedule name (or ``"heuristic"``) into an instance.

    ``"heuristic"`` applies the Section 6.2 selector and requires the
    matrix for its shape statistics.
    """
    if isinstance(schedule, Schedule):
        return schedule
    name = schedule
    if name == "heuristic":
        if matrix is None:
            raise ValueError("schedule='heuristic' requires the input matrix")
        name = select_schedule(matrix, heuristic or HeuristicParams())
    return make_schedule(name, work, spec, launch, **options)


class Engine(ABC):
    """One strategy for executing a load-balanced kernel launch."""

    name: str = "?"

    @abstractmethod
    def launch(
        self,
        sched: Schedule,
        costs: WorkCosts,
        *,
        compute: Callable[[], Any] | None = None,
        kernel: Callable[[], tuple[Callable, Callable[[], Any]]] | None = None,
        compiled: Any | None = None,
        extras: dict | None = None,
        cache_key: tuple | None = None,
    ) -> tuple[Any, KernelStats]:
        """Execute one launch; return ``(output, stats)``.

        ``compiled`` is the application's optional
        :class:`~repro.engine.compiled.CompiledKernel` declaration; only
        the compiled engine consumes it, the others ignore it (the same
        way the vector engine ignores ``kernel`` and the SIMT engine
        ignores ``compute``).
        """


class VectorEngine(Engine):
    """Vectorized functional result + analytic planner timing.

    The corpus-scale engine: the output comes from the application's
    NumPy ``compute()`` and the time from the schedule's planner view,
    memoized in a :class:`~repro.engine.plan_cache.PlanCache` so sweeps
    never re-plan an identical launch.
    """

    name = "vector"

    def __init__(self, plan_cache: PlanCache | None = None):
        self.plan_cache = global_plan_cache() if plan_cache is None else plan_cache

    def launch(self, sched, costs, *, compute=None, kernel=None, compiled=None,
               extras=None, cache_key=None):
        if compute is None:
            raise EngineError("the vector engine requires a compute() callable")
        output = compute()
        stats = self.plan_cache.plan(
            sched, costs, extras=extras, options_key=cache_key
        )
        return output, stats


class SimtEngine(Engine):
    """Thread-by-thread ground truth on the interpreted GPU.

    Executes the application's kernel body through the schedule's
    per-thread ranges and folds the measured per-thread charges with the
    same cost model the planners use (small inputs only).
    """

    name = "simt"

    def _materialize_kernel(self, kernel):
        """Build the (body, finalize) pair for one launch.

        Seam for instrumenting engines: the shadow-write race probe
        (:mod:`repro.analysis.probe`) overrides this to capture the
        arrays the kernel closure allocates.
        """
        return kernel()

    def _instrument_body(self, body):
        """Wrap the per-thread body before interpretation (seam for
        instrumenting engines; identity here)."""
        return body

    def launch(self, sched, costs, *, compute=None, kernel=None, compiled=None,
               extras=None, cache_key=None):
        if kernel is None:
            app = (extras or {}).get("app", "this application")
            raise EngineError(f"{app} does not define a SIMT kernel body")
        body, finalize = self._materialize_kernel(kernel)
        result = launch_interpreted(
            self._instrument_body(body),
            sched.launch.grid_dim,
            sched.launch.block_dim,
            (),
            sched.spec,
        )
        stats = kernel_stats_from_thread_cycles(
            result.thread_cycles,
            sched.launch.grid_dim,
            sched.launch.block_dim,
            sched.spec,
            setup_cycles=sched.setup_cycles(costs),
            extras={"schedule": sched.name, "engine": "simt", **(extras or {})},
        )
        return finalize(), stats


# ----------------------------------------------------------------------
# Engine registry: execution strategies are selectable by name, exactly
# like schedules -- registering an Engine is what makes it reachable
# from every app, the harness and the CLI at once.
# ----------------------------------------------------------------------
_ENGINE_REGISTRY: dict[str, Callable[..., Engine]] = {}


def register_engine(name: str, factory: Callable[..., Engine]) -> None:
    """Add an engine to the global registry.

    ``factory(**options) -> Engine`` is typically the engine class
    itself; ``options`` are engine-specific construction knobs (e.g. the
    multi-GPU engine's ``num_devices``).
    """
    if name in _ENGINE_REGISTRY:
        raise ValueError(f"engine {name!r} already registered")
    _ENGINE_REGISTRY[name] = factory


def _ensure_engines() -> None:
    # Importing the modules registers every built-in engine (the
    # multi-GPU and compiled engines live in their own modules to keep
    # this one lean).
    from . import compiled, multi_gpu  # noqa: F401


def available_engines() -> tuple[str, ...]:
    """Names of every registered engine."""
    _ensure_engines()
    return tuple(sorted(_ENGINE_REGISTRY))


def ensure_known_engine(name: str) -> None:
    """Fail fast on an unregistered engine name (with a suggestion).

    Raises :class:`UnknownEngineError` listing :func:`available_engines`
    -- the same validation :func:`get_engine` applies, available to
    front-ends (CLI, harness) that want to reject a bad name before any
    work is sharded out.
    """
    import difflib

    _ensure_engines()
    if name in _ENGINE_REGISTRY:
        return
    close = difflib.get_close_matches(name, available_engines(), n=3, cutoff=0.5)
    hint = f" -- did you mean {', '.join(repr(c) for c in close)}?" if close else ""
    raise UnknownEngineError(
        f"unknown engine {name!r}; available: {available_engines()}{hint}"
    )


def engine_description(name: str) -> str:
    """First docstring line of a registered engine (CLI listings)."""
    _ensure_engines()
    ensure_known_engine(name)
    doc = _ENGINE_REGISTRY[name].__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def get_engine(engine: str | Engine, **options) -> Engine:
    """Resolve an engine identifier (or pass an instance through).

    ``options`` are forwarded to the registered factory -- engine
    construction knobs like the multi-GPU engine's ``num_devices``.
    Unknown names raise :class:`UnknownEngineError` listing
    :func:`available_engines`.
    """
    if isinstance(engine, Engine):
        if options:
            raise ValueError("engine options require an engine name, not an instance")
        return engine
    ensure_known_engine(engine)
    return _ENGINE_REGISTRY[engine](**options)


register_engine("vector", VectorEngine)
register_engine("simt", SimtEngine)


class Runtime:
    """Execution context of one application run.

    Binds the engine, the device spec and the schedule selection -- a
    :class:`~repro.core.policy.SchedulePolicy` plus launch override and
    schedule options -- so application drivers only describe *what* to
    launch.  Iterative applications (frontier loops, power iteration,
    multi-pass SpGEMM) call :meth:`run_launch` once per kernel;
    single-kernel applications call it once.

    The legacy ``schedule=`` argument (a name, ``"heuristic"``, or a
    pre-built instance) is coerced into a policy via
    :func:`~repro.core.policy.as_policy`; new code should construct an
    :class:`~repro.engine.context.ExecutionContext` and call
    :meth:`~repro.engine.context.ExecutionContext.runtime` instead.
    """

    def __init__(
        self,
        engine: str | Engine = "vector",
        *,
        spec: GpuSpec = V100,
        schedule: str | Schedule | None = None,
        launch: LaunchParams | None = None,
        schedule_options: dict | None = None,
        policy: SchedulePolicy | None = None,
        engines: dict | None = None,
    ):
        if policy is not None and schedule is not None:
            raise ValueError("pass either schedule= or policy=, not both")
        self.engine = get_engine(engine)
        self.spec = spec
        self.schedule = schedule
        self.launch = launch
        self.schedule_options = dict(schedule_options or {})
        # Per-kernel engine overrides, the engine-side mirror of
        # PerKernelPolicy: ``{kernel_label: engine}`` routes individual
        # launches of a multi-kernel application (e.g. spgemm's "count"
        # vs "compute" passes) to different engines.  Resolved eagerly so
        # a typo fails at construction, not mid-run.
        self.engines = {
            label: get_engine(value) for label, value in (engines or {}).items()
        }
        if policy is None and schedule is not None:
            policy = as_policy(schedule)
        self.policy = policy

    def schedule_label(self) -> str:
        """Printable name of this runtime's schedule selection."""
        if isinstance(self.schedule, Schedule):
            return self.schedule.name
        if isinstance(self.schedule, str):
            return self.schedule
        return self.policy.describe() if self.policy is not None else "?"

    def _policy_planner(self):
        """Pricing hook for cost-aware policies (plan-cache backed).

        The probe key must carry the runtime's schedule options: the same
        (schedule, work, costs) planned under different options (e.g.
        ``group_size``) yields different stats, and a constant key would
        let one configuration's cached timings answer another's probe.
        Unhashable options fall back to planning live.
        """
        cache = getattr(self.engine, "plan_cache", None)
        if cache is None:
            cache = global_plan_cache()
        try:
            options = tuple(sorted(self.schedule_options.items()))
            hash(options)
            probe_key = ("policy_probe",) + options
        except TypeError:
            probe_key = None  # options_key=None -> PlanCache plans live

        def plan(sched: Schedule, costs: WorkCosts) -> KernelStats:
            return cache.plan(sched, costs, options_key=probe_key)

        return plan

    def schedule_for(
        self,
        work: WorkSpec,
        *,
        matrix: CsrMatrix | None = None,
        launch: LaunchParams | None | type[Ellipsis] = ...,
        kernel: str | None = None,
        costs: WorkCosts | None = None,
    ) -> Schedule:
        """Resolve this runtime's schedule selection against a workload.

        ``launch`` overrides the runtime's launch parameters for this one
        resolution (pass ``None`` to force the schedule's default sizing
        -- e.g. a secondary pass whose work shape differs from the first).
        ``kernel`` labels the launch for :class:`PerKernelPolicy` routing
        in multi-kernel applications; ``costs`` lets cost-aware policies
        (:class:`OracleBestPolicy`) price candidates with the
        application's real :class:`WorkCosts`.
        """
        if self.policy is None:
            raise EngineError("Runtime was constructed without a schedule")
        launch_params = self.launch if launch is ... else launch
        selected = self.policy.select(
            work,
            self.spec,
            matrix=matrix,
            kernel=kernel,
            costs=costs,
            launch=launch_params,
            plan=self._policy_planner(),
            schedule_options=self.schedule_options,
        )
        if isinstance(selected, Schedule):
            return selected
        return resolve_schedule(
            selected,
            work,
            self.spec,
            launch_params,
            matrix=matrix,
            **self.schedule_options,
        )

    def _cache_key(self) -> tuple | None:
        # Only policies with a stable identity are cacheable: a pre-built
        # Schedule instance may carry options the key cannot observe.
        if self.policy is None:
            return None
        token = self.policy.cache_token()
        if token is None:
            return None
        try:
            options = tuple(sorted(self.schedule_options.items()))
            hash((token, options))
        except TypeError:
            return None
        return (token,) + options

    def run_launch(
        self,
        sched: Schedule,
        costs: WorkCosts,
        *,
        compute: Callable[[], Any] | None = None,
        kernel: Callable[[], tuple[Callable, Callable[[], Any]]] | None = None,
        compiled: Any | None = None,
        kernel_label: str | None = None,
        extras: dict | None = None,
    ) -> tuple[Any, KernelStats]:
        """Execute one described launch on the bound engine.

        ``kernel_label`` names the launch within the application (the
        same labels ``schedule_for(kernel=...)`` uses); a matching entry
        in the runtime's per-kernel ``engines`` mapping overrides the
        bound engine for this one launch.  ``compiled`` is the optional
        :class:`~repro.engine.compiled.CompiledKernel` declaration.
        """
        engine = self.engine
        if kernel_label is not None and kernel_label in self.engines:
            engine = self.engines[kernel_label]
        kwargs = dict(
            compute=compute,
            kernel=kernel,
            compiled=compiled,
            extras=extras,
            cache_key=self._cache_key(),
        )
        try:
            return engine.launch(sched, costs, **kwargs)
        except TypeError as exc:
            # Third-party engines predating the ``compiled=`` keyword:
            # retry without it rather than requiring a signature bump.
            if "compiled" not in str(exc):
                raise
            kwargs.pop("compiled")
            return engine.launch(sched, costs, **kwargs)
