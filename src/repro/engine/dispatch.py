"""Engine dispatch: the one execution layer behind every application.

The paper's pitch is that an application is *declared* once -- work, cost
model, kernel body -- and the execution strategy is an identifier switch.
This module is that switch.  An :class:`Engine` knows how to execute one
load-balanced kernel launch described by four pieces:

* a resolved :class:`~repro.core.schedule.Schedule` (the assignment),
* the application's :class:`~repro.core.schedule.WorkCosts`,
* ``compute()`` -- the vectorized functional result (NumPy, corpus scale),
* ``kernel()`` -- a factory returning ``(body, finalize)`` where ``body``
  is a per-thread kernel for the SIMT interpreter and ``finalize()``
  yields the output buffer.

:class:`VectorEngine` runs ``compute()`` and prices the launch through
the analytic planner (memoized via :mod:`repro.engine.plan_cache`, whose
optional disk layer persists plans across processes -- see the
``plan_cache_dir`` knob on the harness and CLI);
:class:`SimtEngine` interprets ``kernel()`` thread-by-thread and folds
the measured charges with the same cost model, so the two engines are
cross-validated by construction.  Applications never branch on an engine
name -- they describe launches to a :class:`Runtime` and the selected
engine does the rest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from ..core.heuristic import HeuristicParams, select_schedule
from ..core.schedule import LaunchParams, Schedule, WorkCosts, make_schedule
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.cost_model import KernelStats, kernel_stats_from_thread_cycles
from ..gpusim.simt import launch_interpreted
from ..sparse.csr import CsrMatrix
from .plan_cache import PlanCache, global_plan_cache

__all__ = [
    "ENGINES",
    "EngineError",
    "Engine",
    "VectorEngine",
    "SimtEngine",
    "get_engine",
    "Runtime",
    "resolve_schedule",
]

#: Engine identifiers the dispatcher understands.
ENGINES = ("vector", "simt")


class EngineError(RuntimeError):
    """Raised when an engine cannot execute the requested launch."""


def resolve_schedule(
    schedule: str | Schedule,
    work: WorkSpec,
    spec: GpuSpec,
    launch: LaunchParams | None = None,
    *,
    matrix: CsrMatrix | None = None,
    heuristic: HeuristicParams | None = None,
    **options,
) -> Schedule:
    """Turn a schedule name (or ``"heuristic"``) into an instance.

    ``"heuristic"`` applies the Section 6.2 selector and requires the
    matrix for its shape statistics.
    """
    if isinstance(schedule, Schedule):
        return schedule
    name = schedule
    if name == "heuristic":
        if matrix is None:
            raise ValueError("schedule='heuristic' requires the input matrix")
        name = select_schedule(matrix, heuristic or HeuristicParams())
    return make_schedule(name, work, spec, launch, **options)


class Engine(ABC):
    """One strategy for executing a load-balanced kernel launch."""

    name: str = "?"

    @abstractmethod
    def launch(
        self,
        sched: Schedule,
        costs: WorkCosts,
        *,
        compute: Callable[[], Any] | None = None,
        kernel: Callable[[], tuple[Callable, Callable[[], Any]]] | None = None,
        extras: dict | None = None,
        cache_key: tuple | None = None,
    ) -> tuple[Any, KernelStats]:
        """Execute one launch; return ``(output, stats)``."""


class VectorEngine(Engine):
    """Vectorized functional result + analytic planner timing.

    The corpus-scale engine: the output comes from the application's
    NumPy ``compute()`` and the time from the schedule's planner view,
    memoized in a :class:`~repro.engine.plan_cache.PlanCache` so sweeps
    never re-plan an identical launch.
    """

    name = "vector"

    def __init__(self, plan_cache: PlanCache | None = None):
        self.plan_cache = global_plan_cache() if plan_cache is None else plan_cache

    def launch(self, sched, costs, *, compute=None, kernel=None, extras=None,
               cache_key=None):
        if compute is None:
            raise EngineError("the vector engine requires a compute() callable")
        output = compute()
        stats = self.plan_cache.plan(
            sched, costs, extras=extras, options_key=cache_key
        )
        return output, stats


class SimtEngine(Engine):
    """Thread-by-thread ground truth on the interpreted GPU.

    Executes the application's kernel body through the schedule's
    per-thread ranges and folds the measured per-thread charges with the
    same cost model the planners use (small inputs only).
    """

    name = "simt"

    def launch(self, sched, costs, *, compute=None, kernel=None, extras=None,
               cache_key=None):
        if kernel is None:
            app = (extras or {}).get("app", "this application")
            raise EngineError(f"{app} does not define a SIMT kernel body")
        body, finalize = kernel()
        result = launch_interpreted(
            body, sched.launch.grid_dim, sched.launch.block_dim, (), sched.spec
        )
        stats = kernel_stats_from_thread_cycles(
            result.thread_cycles,
            sched.launch.grid_dim,
            sched.launch.block_dim,
            sched.spec,
            setup_cycles=sched.setup_cycles(costs),
            extras={"schedule": sched.name, "engine": "simt", **(extras or {})},
        )
        return finalize(), stats


_ENGINE_TYPES: dict[str, type[Engine]] = {
    "vector": VectorEngine,
    "simt": SimtEngine,
}


def get_engine(engine: str | Engine) -> Engine:
    """Resolve an engine identifier (or pass an instance through)."""
    if isinstance(engine, Engine):
        return engine
    if engine not in _ENGINE_TYPES:
        raise ValueError(f"unknown engine {engine!r}; available: {ENGINES}")
    return _ENGINE_TYPES[engine]()


class Runtime:
    """Execution context of one application run.

    Binds the engine, the device spec and the schedule selection
    (name/instance + launch override + schedule options) so application
    drivers only describe *what* to launch.  Iterative applications
    (frontier loops, power iteration, multi-pass SpGEMM) call
    :meth:`run_launch` once per kernel; single-kernel applications call
    it once.
    """

    def __init__(
        self,
        engine: str | Engine = "vector",
        *,
        spec: GpuSpec = V100,
        schedule: str | Schedule | None = None,
        launch: LaunchParams | None = None,
        schedule_options: dict | None = None,
    ):
        self.engine = get_engine(engine)
        self.spec = spec
        self.schedule = schedule
        self.launch = launch
        self.schedule_options = dict(schedule_options or {})

    def schedule_for(
        self,
        work: WorkSpec,
        *,
        matrix: CsrMatrix | None = None,
        launch: LaunchParams | None | type[Ellipsis] = ...,
    ) -> Schedule:
        """Resolve this runtime's schedule selection against a workload.

        ``launch`` overrides the runtime's launch parameters for this one
        resolution (pass ``None`` to force the schedule's default sizing
        -- e.g. a secondary pass whose work shape differs from the first).
        """
        if self.schedule is None:
            raise EngineError("Runtime was constructed without a schedule")
        return resolve_schedule(
            self.schedule,
            work,
            self.spec,
            self.launch if launch is ... else launch,
            matrix=matrix,
            **self.schedule_options,
        )

    def _cache_key(self) -> tuple | None:
        # Only name-resolved schedules are cacheable: a pre-built Schedule
        # instance may carry options the key cannot observe.
        if not isinstance(self.schedule, str):
            return None
        try:
            options = tuple(sorted(self.schedule_options.items()))
            hash(options)
        except TypeError:
            return None
        return (self.schedule,) + options

    def run_launch(
        self,
        sched: Schedule,
        costs: WorkCosts,
        *,
        compute: Callable[[], Any] | None = None,
        kernel: Callable[[], tuple[Callable, Callable[[], Any]]] | None = None,
        extras: dict | None = None,
    ) -> tuple[Any, KernelStats]:
        """Execute one described launch on the bound engine."""
        return self.engine.launch(
            sched,
            costs,
            compute=compute,
            kernel=kernel,
            extras=extras,
            cache_key=self._cache_key(),
        )
