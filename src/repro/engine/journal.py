"""Reusable append-only CRC-framed record journal.

The framing layer factored out of :mod:`repro.engine.plan_store`: one
file holds a magic/versioned header followed by length+CRC framed
records, only ever appended, each in a single ``write(2)`` on an
``O_APPEND`` descriptor -- so concurrent writers interleave whole
records, never bytes.  The :class:`~repro.engine.plan_store.PlanStore`
layers a key-value index and compaction on top; the sweep service's
results journal (:mod:`repro.service.journal`) layers a JSON event log
on top.  Both inherit the same crash-safety contract from here.

Format
------
::

    header  := magic (8 bytes) | version (<I)
    record  := payload_len (<I) | crc32(payload) (<I) | payload

Failure tolerance (a journal can only ever lose *acceleration* or tail
records written mid-crash, never serve corrupt payloads):

* a truncated tail (a writer died mid-append) stops the scan at the
  last whole record; the next append truncates the garbage away first;
* a corrupt record (CRC mismatch) also stops the scan -- framing after
  a flipped length byte cannot be trusted -- and everything from that
  point is invisible;
* a foreign or version-bumped header reads the whole file as empty; the
  first append rewrites it with a fresh header;
* :meth:`RecordJournal.read` re-verifies the CRC on every read, so a
  stale location (e.g. another process rewrote the file under us)
  returns ``None`` instead of garbage.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..faults import inject

__all__ = [
    "RecordJournal",
    "RecordLocation",
    "JOURNAL_HEADER",
    "JOURNAL_RECORD",
    "MAGIC_LENGTH",
]

#: Header layout: 8-byte magic + little-endian format version.
JOURNAL_HEADER = struct.Struct("<8sI")

#: Record framing: little-endian payload length + crc32(payload).
JOURNAL_RECORD = struct.Struct("<II")

#: Every journal magic is exactly this long (the header struct is fixed).
MAGIC_LENGTH = 8

#: Sanity bound on one record's payload; a declared length beyond this is
#: treated as framing garbage, not an allocation request.
_MAX_PAYLOAD = 256 * 1024 * 1024


@dataclass(frozen=True)
class RecordLocation:
    """Where one record's payload lives inside the journal file."""

    offset: int  # byte offset of the payload (past the record header)
    length: int
    crc: int

    @property
    def end(self) -> int:
        return self.offset + self.length


class RecordJournal:
    """One append-only file of CRC-framed records behind a magic header.

    Thread-safe; cross-process safety comes from whole-record
    ``O_APPEND`` writes plus read-time CRC verification.  The journal is
    schema-agnostic: payloads are opaque bytes, and callers own any
    key/indexing semantics.
    """

    def __init__(self, path: str | Path, *, magic: bytes, version: int = 1):
        if len(magic) != MAGIC_LENGTH:
            raise ValueError(
                f"journal magic must be exactly {MAGIC_LENGTH} bytes, "
                f"got {magic!r}"
            )
        self.path = Path(path)
        self.magic = bytes(magic)
        self.version = int(version)
        #: True when the last scan hit a truncated tail or corrupt record.
        self.scan_damage = False
        #: True when the file is not ours (bad magic/version); the first
        #: append rewrites it from scratch.
        self.foreign = False
        self.appends = 0
        self._lock = threading.RLock()
        self._write_fd: int | None = None
        self._read_fh = None
        #: Byte offset one past the last whole, CRC-valid record.
        self._good_end = JOURNAL_HEADER.size
        #: Lazily set by the first scan; appends force one so damage and
        #: foreign headers are handled before any write lands.
        self._scanned = False
        self._open()

    # ------------------------------------------------------------------
    # Opening & scanning
    # ------------------------------------------------------------------
    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            self._write_header_if_empty(fd)
        finally:
            os.close(fd)
        self._write_fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
        self._read_fh = open(self.path, "rb")

    def _write_header_if_empty(self, fd: int) -> None:
        """Initialize a brand-new journal, serializing concurrent creators."""
        try:
            import fcntl

            fcntl.flock(fd, fcntl.LOCK_EX)
        except (ImportError, OSError):  # non-POSIX: best effort
            pass
        if os.fstat(fd).st_size == 0:
            os.write(fd, JOURNAL_HEADER.pack(self.magic, self.version))

    def _scan(self, keep: bool) -> list[tuple[RecordLocation, bytes]]:
        """One pass over the file; collects ``(location, payload)`` when
        ``keep``, and always refreshes ``scan_damage``/``foreign``/the
        good end."""
        fh = self._read_fh
        assert fh is not None
        out: list[tuple[RecordLocation, bytes]] = []
        self.scan_damage = False
        self.foreign = False
        self._good_end = JOURNAL_HEADER.size
        self._scanned = True
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        fh.seek(0)
        head = fh.read(JOURNAL_HEADER.size)
        if len(head) < JOURNAL_HEADER.size:
            self.foreign, self._good_end = True, 0
            return out
        magic, version = JOURNAL_HEADER.unpack(head)
        if magic != self.magic or version != self.version:
            self.foreign, self._good_end = True, 0
            return out
        pos = JOURNAL_HEADER.size
        while pos < size:
            hdr = fh.read(JOURNAL_RECORD.size)
            if len(hdr) < JOURNAL_RECORD.size:
                self.scan_damage = True  # truncated tail
                break
            length, crc = JOURNAL_RECORD.unpack(hdr)
            if (
                length == 0
                or length > _MAX_PAYLOAD
                or pos + JOURNAL_RECORD.size + length > size
            ):
                self.scan_damage = True  # implausible framing
                break
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                # A flipped byte poisons everything downstream: record
                # lengths after this point cannot be trusted, so the
                # scan stops and later records are invisible.
                self.scan_damage = True
                break
            pos += JOURNAL_RECORD.size + length
            self._good_end = pos
            if keep:
                out.append((RecordLocation(pos - length, length, crc), payload))
        return out

    def records(self) -> list[tuple[RecordLocation, bytes]]:
        """Every whole, CRC-valid record, in file order (one fresh pass)."""
        with self._lock:
            if self._read_fh is None:
                raise ValueError("journal is closed")
            return self._scan(keep=True)

    def payloads(self) -> list[bytes]:
        """Just the record payloads, in file order."""
        return [payload for _loc, payload in self.records()]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, location: RecordLocation) -> bytes | None:
        """The payload at ``location``, CRC-verified; ``None`` on any
        mismatch (a stale location degrades to a miss, never garbage)."""
        with self._lock:
            if self._read_fh is None:
                return None
            try:
                self._read_fh.seek(location.offset)
                payload = self._read_fh.read(location.length)
            except OSError:
                return None
            if len(payload) != location.length or zlib.crc32(payload) != location.crc:
                return None
            return payload

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, payload: bytes) -> RecordLocation:
        """Append one record in a single ``write(2)``; returns where it
        landed.  A foreign header is rotated away and a damaged tail
        truncated first, so the new record is always scannable."""
        payload = bytes(payload)
        crc = zlib.crc32(payload)
        record = JOURNAL_RECORD.pack(len(payload), crc) + payload
        with self._lock:
            if self._write_fd is None:
                raise ValueError("journal is closed")
            if not self._scanned:
                self._scan(keep=False)
            if self.foreign:
                self.rewrite([])
            elif self.scan_damage:
                self._truncate_damage()
            # With O_APPEND the kernel picks the final offset; under a
            # concurrent writer in another process our guess can be
            # stale, in which case read() detects the mismatch and the
            # caller misses benignly.
            offset = os.fstat(self._write_fd).st_size
            if inject("journal.write") == "torn":
                # Write only part of the record -- a crash mid-append.
                # The good end stays where it was and the damage flag is
                # raised, so the *next* append truncates the torn bytes
                # away: exactly one record is lost, never the file.
                os.write(self._write_fd, record[: max(1, len(record) // 2)])
                self.appends += 1
                self.scan_damage = True
                return RecordLocation(
                    offset + JOURNAL_RECORD.size, len(payload), crc
                )
            os.write(self._write_fd, record)
            self.appends += 1
            self._good_end = offset + len(record)
            return RecordLocation(offset + JOURNAL_RECORD.size, len(payload), crc)

    def _truncate_damage(self) -> None:
        """Drop a damaged tail so new appends stay scannable."""
        try:
            os.truncate(self.path, self._good_end)
        except OSError:
            pass
        self.scan_damage = False

    def rewrite(self, payloads: Iterable[bytes]) -> list[RecordLocation]:
        """Atomically replace the journal with exactly ``payloads``.

        The rewrite is a temp file + ``os.replace``; a concurrent writer
        holding the old inode keeps appending to the orphan, losing only
        its records' visibility here.  Returns the new locations, in
        order.
        """
        with self._lock:
            if self._write_fd is None:
                raise ValueError("journal is closed")
            tmp = self.path.with_suffix(
                f".tmp-{os.getpid()}-{threading.get_ident()}"
            )
            locations: list[RecordLocation] = []
            with open(tmp, "wb") as fh:
                fh.write(JOURNAL_HEADER.pack(self.magic, self.version))
                pos = JOURNAL_HEADER.size
                for payload in payloads:
                    payload = bytes(payload)
                    crc = zlib.crc32(payload)
                    fh.write(JOURNAL_RECORD.pack(len(payload), crc) + payload)
                    pos += JOURNAL_RECORD.size + len(payload)
                    locations.append(
                        RecordLocation(pos - len(payload), len(payload), crc)
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._close_fds()
            self._write_fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
            self._read_fh = open(self.path, "rb")
            self.foreign = False
            self.scan_damage = False
            self._scanned = True
            self._good_end = (
                JOURNAL_HEADER.size if not locations else locations[-1].end
            )
            return locations

    # ------------------------------------------------------------------
    # Lifecycle & reporting
    # ------------------------------------------------------------------
    def _close_fds(self) -> None:
        if self._write_fd is not None:
            os.close(self._write_fd)
            self._write_fd = None
        if self._read_fh is not None:
            self._read_fh.close()
            self._read_fh = None

    def close(self) -> None:
        with self._lock:
            self._close_fds()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._write_fd is None

    def file_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordJournal({str(self.path)!r}, magic={self.magic!r})"
