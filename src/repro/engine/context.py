"""``ExecutionContext``: the single execution-selection object.

The paper's claim is that an application is declared once and the
execution strategy is an identifier switch.  This module makes the
switch a *value*: one frozen, picklable object bundling everything that
selects *how* a declared application runs --

* the **engine** (a :func:`~repro.engine.dispatch.register_engine` name:
  ``"vector"``, ``"simt"``, ``"multi_gpu"``, ...),
* the **device** (:class:`~repro.gpusim.arch.GpuSpec`, plus ``gpus`` /
  ``partition`` for multi-device engines),
* the **schedule policy**
  (:class:`~repro.core.policy.SchedulePolicy`: fixed, heuristic,
  per-kernel, oracle-best),
* launch-geometry overrides and schedule options,
* the persistent **plan-cache** directory.

Every public app function, :func:`~repro.engine.registry.run_app`, the
harness's ``run_suite`` and the CLI accept ``ctx=ExecutionContext(...)``
as the one execution-selection argument; the old loose kwargs
(``engine=``, ``schedule=``, ``spec=``, ``launch=``,
``**schedule_options``) remain as a deprecation shim routed through
:meth:`ExecutionContext.from_kwargs`.  Because the context is picklable,
it is also what crosses the process-pool boundary in corpus sweeps --
workers reconstruct the exact selection from one object instead of
re-threading five kwargs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..core.policy import SchedulePolicy, as_policy
from ..core.schedule import LaunchParams, Schedule
from ..gpusim.arch import GpuSpec, V100
from .dispatch import Engine, Runtime, get_engine

__all__ = ["ExecutionContext", "DEFAULT_CONTEXT"]

#: Sentinel distinguishing "not passed" from an explicit ``None`` in the
#: legacy-kwarg shim.
_UNSET = object()


@dataclass(frozen=True)
class ExecutionContext:
    """One frozen, picklable bundle of execution selections.

    Attributes
    ----------
    engine:
        Registered engine name (see
        :func:`~repro.engine.dispatch.available_engines`).  An
        :class:`~repro.engine.dispatch.Engine` *instance* is accepted for
        in-process use, but only named engines pickle across process
        pools.
    spec:
        Device architecture each engine simulates.
    policy:
        Schedule-selection policy; ``None`` defers to the application's
        registered default schedule.
    launch:
        Optional launch-geometry override applied to every resolution.
    schedule_options:
        Extra schedule construction options, stored as a sorted tuple of
        ``(name, value)`` pairs so the context stays hashable; a mapping
        is accepted and normalized.
    plan_cache_dir:
        Directory for the persistent plan cache's per-file layout
        (``None`` = in-memory only).  Sweeps configure the process-global
        cache from this.
    plan_store:
        Path of the single-file journaled plan store
        (:mod:`repro.engine.plan_store`) -- the corpus-scale alternative
        to ``plan_cache_dir`` (one file for all plans instead of one per
        plan).  Mutually exclusive with ``plan_cache_dir``.
    gpus:
        Device count for multi-device engines.  ``gpus > 1`` with the
        default engine auto-selects ``"multi_gpu"`` -- scaling out is a
        context edit, not a code change; combined with any other
        single-device engine it raises instead of being silently
        ignored.
    partition:
        Inter-device partition strategy (``"merge_path"`` or ``"tiles"``).
    engines:
        Per-kernel engine overrides -- the engine-side mirror of
        :class:`~repro.core.policy.PerKernelPolicy`: a mapping
        ``{kernel_label: engine_name}`` routing individual launches of a
        multi-kernel application (e.g. spgemm's ``"count"`` vs
        ``"compute"`` passes) to different engines than the context's
        default.  Stored as a sorted tuple of pairs so the context stays
        hashable and picklable; a mapping is accepted and normalized.
    """

    engine: str | Engine = "vector"
    spec: GpuSpec = V100
    policy: SchedulePolicy | None = None
    launch: LaunchParams | None = None
    schedule_options: tuple = ()
    plan_cache_dir: str | None = None
    plan_store: str | None = None
    gpus: int = 1
    partition: str = "merge_path"
    engines: tuple = ()

    def __post_init__(self):
        if isinstance(self.schedule_options, dict):
            object.__setattr__(
                self,
                "schedule_options",
                tuple(sorted(self.schedule_options.items())),
            )
        if isinstance(self.engines, dict):
            object.__setattr__(
                self, "engines", tuple(sorted(self.engines.items()))
            )
        if self.policy is not None and not isinstance(self.policy, SchedulePolicy):
            object.__setattr__(self, "policy", as_policy(self.policy))
        if self.plan_cache_dir is not None:
            object.__setattr__(self, "plan_cache_dir", str(self.plan_cache_dir))
        if self.plan_store is not None:
            object.__setattr__(self, "plan_store", str(self.plan_store))
        if self.plan_cache_dir is not None and self.plan_store is not None:
            raise ValueError("pass either plan_cache_dir= or plan_store=, not both")
        if self.gpus < 1:
            raise ValueError("gpus must be >= 1")
        if self.gpus > 1:
            if self.engine == "vector":
                # Declare once, scale out: asking for more devices *is*
                # the engine switch.
                object.__setattr__(self, "engine", "multi_gpu")
            elif self.engine_name() != "multi_gpu":
                # Never silently run single-device while the caller
                # believes they asked for a multi-device execution.
                raise ValueError(
                    f"gpus={self.gpus} requires the multi_gpu engine (or "
                    f"the default 'vector', which auto-selects it); got "
                    f"engine={self.engine_name()!r}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_kwargs(
        cls,
        *,
        ctx: "ExecutionContext | None" = None,
        engine=_UNSET,
        schedule=_UNSET,
        spec=_UNSET,
        launch=_UNSET,
        policy=_UNSET,
        gpus=_UNSET,
        partition=_UNSET,
        plan_cache_dir=_UNSET,
        plan_store=_UNSET,
        **schedule_options,
    ) -> "ExecutionContext":
        """Deprecation shim: build a context from the legacy loose kwargs.

        The pre-context call sites threaded ``engine=``/``schedule=``/
        ``spec=``/``launch=``/``**schedule_options`` through every app
        function; this translates them.  Passing ``ctx`` *and* any legacy
        selection kwarg is rejected -- one source of truth per call.
        """
        legacy = {
            name: value
            for name, value in [
                ("engine", engine), ("schedule", schedule), ("spec", spec),
                ("launch", launch), ("policy", policy), ("gpus", gpus),
                ("partition", partition), ("plan_cache_dir", plan_cache_dir),
                ("plan_store", plan_store),
            ]
            if value is not _UNSET and value is not None
        }
        if ctx is not None:
            if legacy or schedule_options:
                conflicting = sorted(legacy) + sorted(schedule_options)
                raise ValueError(
                    f"pass either ctx= or legacy selection kwargs, not both "
                    f"(got ctx plus {conflicting})"
                )
            return ctx
        if "schedule" in legacy and "policy" in legacy:
            raise ValueError("pass either schedule= or policy=, not both")
        selection = legacy.pop("policy", None)
        if selection is None:
            selection = legacy.pop("schedule", None)
        else:
            legacy.pop("schedule", None)
        return cls(
            engine=legacy.get("engine", "vector"),
            spec=legacy.get("spec", V100),
            policy=as_policy(selection) if selection is not None else None,
            launch=legacy.get("launch"),
            schedule_options=tuple(sorted(schedule_options.items())),
            plan_cache_dir=legacy.get("plan_cache_dir"),
            plan_store=legacy.get("plan_store"),
            gpus=legacy.get("gpus", 1),
            partition=legacy.get("partition", "merge_path"),
        )

    # ------------------------------------------------------------------
    # Derivation helpers (the context is immutable; edits make copies)
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "ExecutionContext":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_policy(self, selection) -> "ExecutionContext":
        """A copy selecting schedules with ``selection`` (any
        :func:`~repro.core.policy.as_policy` coercible value)."""
        return self.replace(policy=as_policy(selection))

    def with_engine(self, engine: str | Engine, *, gpus: int | None = None
                    ) -> "ExecutionContext":
        """A copy running on ``engine`` (optionally resizing ``gpus``)."""
        return self.replace(engine=engine, gpus=self.gpus if gpus is None else gpus)

    @property
    def options(self) -> dict:
        """Schedule options as a plain dict (stored normalized)."""
        return dict(self.schedule_options)

    def engine_name(self) -> str:
        """The engine identifier (instances report their class name)."""
        return self.engine if isinstance(self.engine, str) else self.engine.name

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def engine_instance(self) -> Engine:
        """Instantiate this context's engine from the registry."""
        if isinstance(self.engine, Engine):
            return self.engine
        if self.engine == "multi_gpu":
            return get_engine(
                "multi_gpu", num_devices=self.gpus, partition=self.partition
            )
        return get_engine(self.engine)

    def runtime(self, default_schedule: str | Schedule | None = None) -> Runtime:
        """Build the :class:`~repro.engine.dispatch.Runtime` this context
        describes.

        ``default_schedule`` (typically the application's registered
        default) fills in when the context has no policy.
        """
        policy = self.policy
        if policy is None and default_schedule is not None:
            policy = as_policy(default_schedule)
        return Runtime(
            self.engine_instance(),
            spec=self.spec,
            launch=self.launch,
            schedule_options=self.options,
            policy=policy,
            engines=dict(self.engines),
        )

    def describe(self) -> str:
        """One-line summary (CSV metadata, logs)."""
        parts = [f"engine={self.engine_name()}"]
        if self.engines:
            parts.append(
                "engines=" + ",".join(f"{k}:{v}" for k, v in self.engines)
            )
        if self.gpus > 1:
            parts.append(f"gpus={self.gpus}")
        parts.append(
            f"policy={self.policy.describe() if self.policy else 'app-default'}"
        )
        return " ".join(parts)


#: The all-defaults context: vector engine, V100, app-default schedules.
DEFAULT_CONTEXT = ExecutionContext()
