"""Persistent sweep execution: warm worker pools + shared-memory transport.

The harness's original ``executor="process"`` path rebuilt the world per
call: every ``run_suite`` spawned a fresh
:class:`~concurrent.futures.ProcessPoolExecutor`, pickled every dataset's
CSR arrays across the pipe, and started each worker with a cold plan
cache -- so at smoke scale the process executor *lost* to serial (see
``BENCH_sweep.json``).  This module amortizes all three costs, the same
way persistent GPU runtimes amortize context/handle creation across
kernel launches:

:class:`SweepExecutor`
    A reusable, lazily-spawned worker pool.  The pool survives across
    ``run_suite`` calls and across apps; workers are warmed once by an
    initializer (NumPy + the app registry imported, the persistent plan
    cache attached) and keep their in-memory plan caches between sweeps.
    Use it as a context manager, or share the module-level
    :func:`default_executor` (the harness's ``keep_pool=True``).

Sticky placement & shard batching
    Every dataset has a *home worker*: its content key is rendezvous-
    (HRW-)hashed over the pool's worker slots, so the same dataset lands
    on the same worker sweep after sweep -- warm worker caches stop
    depending on scheduler luck, and crash-respawn or width growth remap
    only the minimum number of keys.  Within a home group, small
    datasets are batched into contiguous weight-balanced batches so one
    pickle crossing carries several shards; oversized batches are
    work-stolen (bounded, deterministic) to the least-loaded slot.
    Every row records its placement (home, executing slot, sticky vs
    stolen, worker pid) in ``meta["placement"]``.  Results come back per
    shard, in submission order.

Shared-memory dataset transport
    Dataset payloads are packed into *array bundles* -- an ordered list
    of named ``(dtype, shape, crc)`` segments in one shared-memory block
    -- published once via :mod:`multiprocessing.shared_memory` and
    reattached zero-copy in the workers; the task pickle carries a small
    :class:`ArrayBundleHandle` instead of the arrays.  Payload types are
    pluggable :class:`ShmCodec` entries (CSR matrices, COO sparse
    tensors for spmttkrp, dense factor matrices out of the box); types
    with no codec (or platforms without shared memory) fall back to
    plain pickling.  Both transports produce identical
    :class:`~repro.evaluation.harness.SweepRow` sets.

Worker-resident problem/oracle cache
    Repeated sweeps of the same grid used to rebuild every dataset's
    problem instance and oracle per sweep.  :class:`ProblemCache` is a
    bounded, content-keyed (app, dataset fingerprint, seed, validate)
    cache living in each worker process, so steady-state sweeps on a
    warm pool are problem-build-free *and* oracle-free; hit/miss
    counters surface through ``SweepRow.meta``.

Cross-worker oracle sharing
    A local problem-cache miss no longer always means a rebuild: the
    first worker that builds an oracle publishes it to a shared-memory
    payload block (:func:`publish_payload` -- array bundles for codec-
    claimed payloads, a pickled-bytes segment otherwise), and the parent
    records the handle in a pin/LRU byte-budgeted directory keyed by the
    same ``(app, fingerprint, seed, validate)`` problem-cache key.
    Every other worker that misses locally attaches the published copy
    zero-copy instead of rebuilding, so hot oracles are resident once
    per machine instead of once per worker.  Attach/publish counters
    ride in ``ProblemCache.info()`` and ``SweepRow.meta``.
"""

from __future__ import annotations

import atexit
import gc
import itertools
import os
import pickle
import struct
import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from ..faults import inject
from ..sparse.corpus import Dataset
from ..sparse.csr import CsrMatrix
from ..sparse.tensor import SparseTensor3

__all__ = [
    "SweepExecutor",
    "ArrayBundleHandle",
    "ArraySegment",
    "SharedDatasetHandle",
    "SharedPayloadHandle",
    "ShmCodec",
    "register_shm_codec",
    "shm_codec_for",
    "publish_payload",
    "attach_payload",
    "home_slot",
    "ProblemCache",
    "problem_cache",
    "clear_problem_cache",
    "default_executor",
    "shutdown_default_executor",
    "install_signal_cleanup",
    "TRANSPORTS",
    "PROBLEM_CACHE_ENTRIES_ENV",
    "PROBLEM_CACHE_BYTES_ENV",
    "SHARED_ORACLE_BYTES_ENV",
    "BATCH_TIMEOUT_ENV",
]

#: Dataset transports :class:`SweepExecutor` understands.  ``auto``
#: publishes codec-claimed payloads (CSR, sparse tensors, dense arrays)
#: through shared memory and falls back to pickling anything else;
#: ``shm`` / ``pickle`` force one path.
TRANSPORTS = ("auto", "shm", "pickle")

#: Environment knobs bounding each worker's problem/oracle cache.
PROBLEM_CACHE_ENTRIES_ENV = "REPRO_PROBLEM_CACHE_ENTRIES"
PROBLEM_CACHE_BYTES_ENV = "REPRO_PROBLEM_CACHE_BYTES"

#: Byte budget for the parent-coordinated shared-oracle directory; 0
#: disables cross-worker oracle sharing entirely.
SHARED_ORACLE_BYTES_ENV = "REPRO_SHARED_ORACLE_BYTES"

#: Floor, in seconds, of the per-batch watchdog deadline (the full
#: allowance also scales with the batch's staged weight).  ``0`` (or
#: negative) disables the watchdog and restores unbounded waits.
BATCH_TIMEOUT_ENV = "REPRO_BATCH_TIMEOUT"
DEFAULT_BATCH_TIMEOUT = 300.0

#: Extra deadline seconds granted per unit of staged batch weight
#: (weight ~ array elements + a fixed per-dataset overhead), so huge
#: batches are not misdiagnosed as hangs at the floor.
_TIMEOUT_SECONDS_PER_WEIGHT = 1e-6


def _shared_memory():
    """The stdlib shared-memory module, or ``None`` when unsupported."""
    try:
        from multiprocessing import shared_memory

        return shared_memory
    except ImportError:  # pragma: no cover - always present on CPython
        return None


# ----------------------------------------------------------------------
# Shared-memory dataset transport: array bundles + pluggable codecs
# ----------------------------------------------------------------------
#: Segment offsets inside a bundle block are padded to this boundary so
#: every dtype reattaches aligned, whatever precedes it.
_SEGMENT_ALIGN = 16


def _align(offset: int) -> int:
    return (offset + _SEGMENT_ALIGN - 1) // _SEGMENT_ALIGN * _SEGMENT_ALIGN


def _freeze(value):
    """Canonical hashable form of a codec ``extra`` value (content keys)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class ArraySegment:
    """One named array inside a shared-memory bundle block."""

    label: str
    dtype: str  # numpy dtype string, endianness-qualified
    shape: tuple
    crc: int  # crc32 of the array bytes (content key + attach check)
    offset: int  # byte offset inside the block

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize

    def fingerprint(self) -> tuple:
        """The offset-independent identity used in content keys."""
        return (self.label, self.dtype, tuple(self.shape), self.crc)


@dataclass(frozen=True)
class ArrayBundleHandle:
    """Picklable stand-in for a :class:`Dataset` whose arrays live in shm.

    The handle carries only the block name, the codec that knows how to
    rebuild the payload, and the ordered ``(dtype, shape, crc)`` segment
    list; workers reattach each segment as a zero-copy NumPy view over
    the block and hand the views to the codec's ``unpack``.
    """

    shm_name: str
    codec: str
    dataset_name: str
    family: str
    segments: tuple[ArraySegment, ...]
    extra: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def payload_bytes(self) -> int:
        return sum(seg.nbytes for seg in self.segments)

    def content_key(self) -> tuple:
        """Content fingerprint; equals :func:`dataset_content_key` of the
        dataset this handle was published from."""
        return (
            self.dataset_name,
            self.codec,
            tuple(seg.fingerprint() for seg in self.segments),
            _freeze(self.extra),
        )


#: Backward-compatible alias: PR 4's CSR-only handle type, now the
#: generic bundle.
SharedDatasetHandle = ArrayBundleHandle


@dataclass(frozen=True)
class ShmCodec:
    """How one payload type travels through an array-bundle block.

    ``matches(payload)`` claims a payload; ``pack(payload)`` flattens it
    into ordered named arrays plus picklable scalar ``extra`` metadata;
    ``unpack(arrays, extra)`` rebuilds the payload from zero-copy views.
    Codecs are consulted in registration order; the built-ins cover CSR
    matrices, COO sparse tensors and dense ndarrays.
    """

    name: str
    matches: Callable[[Any], bool]
    pack: Callable[[Any], tuple[list, dict]]
    unpack: Callable[[dict, dict], Any]


_SHM_CODECS: "OrderedDict[str, ShmCodec]" = OrderedDict()


def register_shm_codec(codec: ShmCodec) -> ShmCodec:
    """Add a payload codec to the transport (consulted in order)."""
    if codec.name in _SHM_CODECS:
        raise ValueError(f"shm codec {codec.name!r} already registered")
    _SHM_CODECS[codec.name] = codec
    return codec


def shm_codec_for(payload: Any) -> ShmCodec | None:
    """The first registered codec claiming ``payload`` (``None`` = pickle)."""
    for codec in _SHM_CODECS.values():
        if codec.matches(payload):
            return codec
    return None


register_shm_codec(ShmCodec(
    name="csr",
    matches=lambda p: isinstance(p, CsrMatrix),
    pack=lambda m: (
        [("row_offsets", m.row_offsets), ("col_indices", m.col_indices),
         ("values", m.values)],
        {"shape": m.shape},
    ),
    unpack=lambda arrays, extra: CsrMatrix(
        row_offsets=arrays["row_offsets"],
        col_indices=arrays["col_indices"],
        values=arrays["values"],
        shape=tuple(extra["shape"]),
    ),
))

register_shm_codec(ShmCodec(
    name="tensor3",
    matches=lambda p: isinstance(p, SparseTensor3),
    pack=lambda t: (
        [("i", t.i), ("j", t.j), ("k", t.k), ("values", t.values)],
        {"shape": t.shape},
    ),
    # Direct construction, not from_arrays: the published coordinates
    # already satisfy the sorted-by-mode-0 invariant, and re-sorting
    # would copy the views the transport exists to avoid.
    unpack=lambda arrays, extra: SparseTensor3(
        i=arrays["i"], j=arrays["j"], k=arrays["k"],
        values=arrays["values"], shape=tuple(extra["shape"]),
    ),
))

register_shm_codec(ShmCodec(
    name="dense",
    # Object-dtype arrays hold process-local pointers: copying their raw
    # bytes into shared memory would hand workers foreign addresses.
    # Leave them (and other non-buffer payloads) to the pickle fallback.
    matches=lambda p: isinstance(p, np.ndarray) and not p.dtype.hasobject,
    pack=lambda a: ([("data", a)], {}),
    unpack=lambda arrays, extra: arrays["data"],
))


def _pack_bundle(dataset: Dataset):
    """``(codec, [(label, contiguous array), ...], extra)`` or ``None``."""
    codec = shm_codec_for(dataset.matrix)
    if codec is None:
        return None
    arrays, extra = codec.pack(dataset.matrix)
    return codec, [(label, np.ascontiguousarray(arr)) for label, arr in arrays], extra


class _PublishedDataset:
    """Owner-side record of one shm block (parent closes + unlinks).

    Published blocks are cached by the executor across sweeps (``pins``
    guards in-flight use, ``tick`` drives LRU eviction) -- repeated
    sweeps of the same corpus publish each dataset exactly once.
    """

    def __init__(self, handle: SharedDatasetHandle, shm) -> None:
        self.handle = handle
        self.shm = shm
        self.pins = 0
        self.tick = 0
        self.nbytes = shm.size
        # Set when an attach failure condemned the block: it leaves the
        # publish cache immediately and is unlinked once its pins drop.
        self.defunct = False

    def unlink(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - no exports kept here
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _bundle_crcs(arrays: list) -> list[int]:
    return [zlib.crc32(arr) for _, arr in arrays]


def _bundle_key(name: str, codec: ShmCodec, arrays: list, crcs: list, extra: dict) -> tuple:
    return (
        name,
        codec.name,
        tuple(
            (label, arr.dtype.str, arr.shape, crc)
            for (label, arr), crc in zip(arrays, crcs)
        ),
        _freeze(extra),
    )


def _layout_segments(arrays: list, crcs: list) -> tuple[list, int]:
    """Plan the aligned segment layout for a bundle block."""
    segments = []
    offset = 0
    for (label, arr), crc in zip(arrays, crcs):
        offset = _align(offset)
        segments.append(ArraySegment(
            label=label,
            dtype=arr.dtype.str,
            shape=arr.shape,
            crc=crc,
            offset=offset,
        ))
        offset += arr.nbytes
    return segments, offset


def _create_block(segments: list, arrays: list, total: int):
    """Allocate one shm block and copy the arrays in; ``None`` if refused.

    A failure while *filling* an already-created block closes and
    unlinks it before re-raising, so publish errors never leak shared
    memory.
    """
    shared_memory = _shared_memory()
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    except OSError:
        return None
    try:
        for seg, (_, arr) in zip(segments, arrays):
            np.ndarray(
                seg.shape, dtype=seg.dtype, buffer=shm.buf, offset=seg.offset
            )[:] = arr
    except Exception:
        # The block exists but was never handed out: reclaim it now
        # instead of leaking it until interpreter exit.
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        raise
    return shm


def _unlink_block(name: str) -> None:
    """Reclaim one shm block by name, tolerating its prior disappearance."""
    shared_memory = _shared_memory()
    if shared_memory is None:  # pragma: no cover - always present
        return
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError):
        return  # already unlinked (or never materialized)
    try:
        shm.close()
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing unlink
            pass


def dataset_content_key(dataset: Dataset) -> tuple | None:
    """Cheap content fingerprint of a bundleable dataset.

    Keys both the parent-side publish cache and the workers' problem/
    oracle cache.  Name and shape alone are not enough -- the same
    corpus name at a different scale (or a caller-mutated payload) must
    republish -- so the key includes a CRC per packed array.  The CRC
    pass is paid on every staging, but it costs about as much as one
    copy of the data -- cheap against what a hit saves (shm create +
    copy + worker reattach, or a problem/oracle rebuild) and trivial
    against what a miss would otherwise repay per sweep.  Returns
    ``None`` for payloads no codec claims.
    """
    bundle = _pack_bundle(dataset)
    if bundle is None:
        return None
    codec, arrays, extra = bundle
    return _bundle_key(dataset.name, codec, arrays, _bundle_crcs(arrays), extra)


def publish_dataset(
    dataset: Dataset, *, _bundle=None, _crcs: list | None = None
) -> _PublishedDataset | None:
    """Pack one dataset's arrays into a shared-memory bundle block.

    Returns ``None`` when the dataset cannot travel this way (no codec
    claims the payload, shared memory unavailable, block allocation
    refused) -- callers then fall back to pickling the dataset itself.
    A failure while *filling* an already-created block (a codec packing
    arrays the buffer cannot host) closes and unlinks the block before
    re-raising, so publish errors never leak shared memory.

    ``_bundle``/``_crcs`` let the staging path reuse the pack + CRC pass
    it already paid for the content key, so a fresh publish never packs
    or checksums the arrays twice.
    """
    shared_memory = _shared_memory()
    if shared_memory is None:
        return None
    if inject("shm.publish") is not None:
        return None  # injected publish refusal: caller falls back to pickle
    bundle = _pack_bundle(dataset) if _bundle is None else _bundle
    if bundle is None:
        return None
    codec, arrays, extra = bundle
    crcs = _bundle_crcs(arrays) if _crcs is None else _crcs
    segments, total = _layout_segments(arrays, crcs)
    shm = _create_block(segments, arrays, total)
    if shm is None:
        return None
    handle = ArrayBundleHandle(
        shm_name=shm.name,
        codec=codec.name,
        dataset_name=dataset.name,
        family=dataset.family,
        segments=tuple(segments),
        extra=dict(extra),
        meta=dict(dataset.meta),
    )
    return _PublishedDataset(handle, shm)


def attach_dataset(handle: ArrayBundleHandle) -> tuple[Dataset, object]:
    """Worker-side reattach: rebuild the Dataset over the shm buffer.

    Each segment becomes a zero-copy view, CRC-verified against the
    handle, and the codec's ``unpack`` rebuilds the payload.  Returns
    ``(dataset, shm)``; the caller must release the block with
    :func:`detach` once the shard's rows are computed.
    """
    shared_memory = _shared_memory()
    assert shared_memory is not None
    fault = inject("shm.attach")
    if fault == "crc":
        raise ValueError(
            f"shared-memory bundle of dataset {handle.dataset_name!r} "
            f"failed its CRC check (injected fault)"
        )
    if fault == "drop":
        raise FileNotFoundError(
            f"shared-memory block {handle.shm_name!r} vanished "
            f"(injected fault)"
        )
    codec = _SHM_CODECS.get(handle.codec)
    if codec is None:
        raise KeyError(
            f"dataset {handle.dataset_name!r} was published with codec "
            f"{handle.codec!r}, which is not registered in this worker"
        )
    # Pool workers are children of the publisher, so they share its
    # resource-tracker process: the attach-side register is a set no-op
    # and exactly one unregister happens at the parent's unlink.  (An
    # *unrelated* attacher would need bpo-39959's unregister dance; this
    # transport never crosses that topology.)
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    arrays = {}
    for seg in handle.segments:
        view = np.ndarray(
            seg.shape, dtype=seg.dtype, buffer=shm.buf, offset=seg.offset
        )
        if zlib.crc32(view) != seg.crc:
            detach(shm)
            raise ValueError(
                f"shared-memory segment {seg.label!r} of dataset "
                f"{handle.dataset_name!r} failed its CRC check"
            )
        arrays[seg.label] = view
    dataset = Dataset(
        name=handle.dataset_name,
        family=handle.family,
        matrix=codec.unpack(arrays, dict(handle.extra)),
        meta=dict(handle.meta),
    )
    return dataset, shm


def detach(shm) -> None:
    """Close a worker-side attachment, tolerating lingering array views."""
    try:
        shm.close()
    except BufferError:
        gc.collect()  # drop cycles still holding buffer views
        try:
            shm.close()
        except BufferError:  # released at worker exit instead
            pass


# ----------------------------------------------------------------------
# Shared payload (oracle) transport: publish once, attach everywhere
# ----------------------------------------------------------------------
#: Segment label + codec sentinel for the pickled-bytes fallback, used
#: when no registered ShmCodec claims an oracle payload.
_PICKLE_CODEC = "pickle"


@dataclass(frozen=True)
class SharedPayloadHandle:
    """Picklable stand-in for one built payload published to shm.

    The oracle-sharing analogue of :class:`ArrayBundleHandle`: codec-
    claimed payloads travel as array bundles and reattach as zero-copy
    views; anything else travels as one pickled ``uint8`` segment under
    the ``"pickle"`` codec sentinel (attached as a copy).  Handles are
    created by the worker that built the payload, adopted by the parent
    into its shared-oracle directory, and shipped back out to every
    worker that misses locally.
    """

    shm_name: str
    codec: str
    segments: tuple[ArraySegment, ...]
    extra: dict = field(default_factory=dict)

    @property
    def payload_bytes(self) -> int:
        return sum(seg.nbytes for seg in self.segments)


def publish_payload(payload: Any) -> SharedPayloadHandle | None:
    """Publish one built payload (an oracle, typically) to shared memory.

    Codec-claimed payloads are packed exactly like dataset bundles;
    everything else is pickled into a single byte segment so sharing
    still works for scalar or namespace-shaped oracles.  Returns
    ``None`` when the payload cannot travel (unpicklable, shm
    unavailable, allocation refused, a codec pack error) -- callers then
    simply keep their locally-built copy.
    """
    shared_memory = _shared_memory()
    if shared_memory is None:  # pragma: no cover - always present
        return None
    if inject("oracle.publish") is not None:
        return None  # injected refusal: the worker keeps its local copy
    codec = shm_codec_for(payload)
    try:
        if codec is not None:
            arrays, extra = codec.pack(payload)
            arrays = [
                (label, np.ascontiguousarray(arr)) for label, arr in arrays
            ]
            codec_name = codec.name
        else:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            arrays = [(_PICKLE_CODEC, np.frombuffer(blob, dtype=np.uint8))]
            extra = {}
            codec_name = _PICKLE_CODEC
        crcs = _bundle_crcs(arrays)
        segments, total = _layout_segments(arrays, crcs)
        shm = _create_block(segments, arrays, total)
    except Exception:
        return None  # a payload that cannot be shared is not an error
    if shm is None:
        return None
    handle = SharedPayloadHandle(
        shm_name=shm.name,
        codec=codec_name,
        segments=tuple(segments),
        extra=dict(extra),
    )
    # The publisher keeps no mapping: its ProblemCache already holds the
    # locally-built payload, and the parent owns the block's lifetime.
    shm.close()
    return handle


#: Worker-side payload attachment cache, mirroring ``_ATTACHED`` for
#: datasets: ``shm_name -> (shm, payload)`` in LRU order.  Only bundle-
#: codec payloads are cached (pickle attaches copy and detach at once).
_PAYLOAD_ATTACHMENTS: OrderedDict[str, tuple] = OrderedDict()
_PAYLOAD_ATTACH_CAP = 128


def attach_payload(handle: SharedPayloadHandle) -> Any | None:
    """Worker-side reattach of a published payload.

    Returns the payload (zero-copy views for bundle codecs, a fresh copy
    for the pickle fallback), or ``None`` on *any* failure -- a vanished
    block (parent evicted it), CRC mismatch, unknown codec -- so the
    caller falls back to building the payload itself.  Sharing can only
    skip work, never change results.
    """
    shared_memory = _shared_memory()
    if shared_memory is None:  # pragma: no cover - always present
        return None
    if inject("oracle.attach") is not None:
        return None  # injected attach failure: caller rebuilds locally
    cached = _PAYLOAD_ATTACHMENTS.get(handle.shm_name)
    if cached is not None:
        _PAYLOAD_ATTACHMENTS.move_to_end(handle.shm_name)
        return cached[1]
    if handle.codec != _PICKLE_CODEC and handle.codec not in _SHM_CODECS:
        return None
    try:
        shm = shared_memory.SharedMemory(name=handle.shm_name)
    except (OSError, ValueError):
        return None
    arrays = {}
    try:
        for seg in handle.segments:
            view = np.ndarray(
                seg.shape, dtype=seg.dtype, buffer=shm.buf, offset=seg.offset
            )
            if zlib.crc32(view) != seg.crc:
                raise ValueError(f"CRC mismatch in segment {seg.label!r}")
            arrays[seg.label] = view
        if handle.codec == _PICKLE_CODEC:
            payload = pickle.loads(arrays[_PICKLE_CODEC].tobytes())
        else:
            payload = _SHM_CODECS[handle.codec].unpack(
                arrays, dict(handle.extra)
            )
    except Exception:
        arrays.clear()
        detach(shm)
        return None
    if handle.codec == _PICKLE_CODEC:
        arrays.clear()
        detach(shm)  # the bytes were copied out; no mapping to keep
        return payload
    while len(_PAYLOAD_ATTACHMENTS) >= _PAYLOAD_ATTACH_CAP:
        _, (old_shm, old_payload) = _PAYLOAD_ATTACHMENTS.popitem(last=False)
        del old_payload  # drop the buffer views before closing
        detach(old_shm)
    _PAYLOAD_ATTACHMENTS[handle.shm_name] = (shm, payload)
    return payload


class _SharedPayloadRecord:
    """Parent-side directory entry for one published oracle block.

    Same pin/tick lifecycle as :class:`_PublishedDataset`, but the block
    was *created by a worker*: the parent holds only the name, and
    reclaims the block by reopening it at eviction/shutdown (pool
    workers are fork children sharing the parent's resource tracker, so
    create-in-worker / unlink-in-parent balances exactly once).
    """

    def __init__(self, handle: SharedPayloadHandle) -> None:
        self.handle = handle
        self.pins = 0
        self.tick = 0
        self.nbytes = handle.payload_bytes

    def unlink(self) -> None:
        _unlink_block(self.handle.shm_name)


# ----------------------------------------------------------------------
# Sticky placement: rendezvous hashing of content keys over worker slots
# ----------------------------------------------------------------------
def home_slot(placement_key: Any, width: int) -> int:
    """Rendezvous (highest-random-weight) home slot for a placement key.

    Each ``(key, slot)`` pair gets a deterministic score (crc32 -- NOT
    Python's salted ``hash``); the winning slot is the key's home.  The
    HRW property is what makes placement *minimally* disruptive: growing
    the pool by one slot only moves the keys whose new maximum is that
    slot (~1/width of them), and respawning a crashed slot moves nothing
    because slot indices, not process identities, are scored.
    """
    if width <= 1:
        return 0
    digest = zlib.crc32(repr(placement_key).encode("utf-8"))
    best = 0
    best_score = -1
    for slot in range(width):
        score = zlib.crc32(struct.pack("<I", slot), digest)
        if score > best_score:
            best = slot
            best_score = score
    return best


# ----------------------------------------------------------------------
# Pool worker entry points (module-level: picklable by reference)
# ----------------------------------------------------------------------
def _worker_warmup(cache_dir: str | None, store_path: str | None) -> None:
    """Pool initializer: pay the import + cache-attach cost exactly once."""
    inject("worker.start")
    import numpy  # noqa: F401  (pre-faulted into the worker)

    from .. import apps  # noqa: F401  (registers every app and schedule)
    from .compiled import precompile_kernels
    from .plan_cache import configure_global_plan_cache

    if store_path is not None:
        configure_global_plan_cache(store_path=store_path)
    elif cache_dir is not None:
        configure_global_plan_cache(cache_dir=cache_dir)
    # Pay the JIT cost here, not in the first timed launch: the apps
    # import above registered every kernel's warmup, and with numba
    # absent this is a no-op.
    precompile_kernels()


#: Worker-side attachment cache: ``shm_name -> (shm, Dataset)``, in LRU
#: order (oldest first).  Block names are never reused by the OS within a
#: session, so a cached entry can never alias different content; the
#: parent keeps a published block alive for at least as long as any task
#: referencing it is in flight.
_ATTACHED: OrderedDict[str, tuple] = OrderedDict()
_ATTACHED_CAP = 128


def _attached_dataset(handle: SharedDatasetHandle) -> Dataset:
    """Reattach (or reuse) one shm-backed dataset in this worker."""
    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        _ATTACHED.move_to_end(handle.shm_name)
        return cached[1]
    dataset, shm = attach_dataset(handle)
    while len(_ATTACHED) >= _ATTACHED_CAP:
        # Evict least-recently-used, never the entry just fetched.
        _, (old_shm, old_ds) = _ATTACHED.popitem(last=False)
        del old_ds  # drop the buffer views before closing
        detach(old_shm)
    _ATTACHED[handle.shm_name] = (shm, dataset)
    return dataset


# ----------------------------------------------------------------------
# Worker-resident problem/oracle cache
# ----------------------------------------------------------------------
def _payload_nbytes(obj: Any, _seen: set | None = None) -> int:
    """Estimate the resident bytes of a problem/oracle payload.

    Counts ndarray buffers reachable through the containers the sweep
    problems actually use (namespaces, dataclasses, dicts, sequences);
    scalars and bookkeeping round to zero -- the budget guards array
    memory, not Python object overhead.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return 0
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(v, _seen) for v in obj.values())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_payload_nbytes(v, _seen) for v in obj)
    attrs = getattr(obj, "__dict__", None)
    if attrs is None and hasattr(obj, "__dataclass_fields__"):
        attrs = {
            name: getattr(obj, name) for name in obj.__dataclass_fields__
        }
    if isinstance(attrs, dict):
        return sum(_payload_nbytes(v, _seen) for v in attrs.values())
    return 0


class ProblemCache:
    """Bounded, content-keyed cache of built ``(problem, oracle)`` pairs.

    Lives in each (persistent) worker process so steady-state sweeps of
    the same grid skip ``_build_problem`` *and* the oracle entirely.
    Keys are ``(app, dataset fingerprint, seed, validate)`` -- the
    fingerprint is the same per-array-CRC content key the shm transport
    publishes under, so a seed change, a ``validate`` flip or mutated
    dataset content each miss instead of serving a stale entry (problem
    construction is independent of the execution context, so ctx changes
    need no invalidation).  Both budgets are explicit: ``max_entries``
    bounds the count and ``max_bytes`` the estimated resident array
    bytes, with least-recently-used eviction.
    """

    DEFAULT_MAX_ENTRIES = 64
    DEFAULT_MAX_BYTES = 512 * 1024 * 1024

    def __init__(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        self.max_entries = (
            self.DEFAULT_MAX_ENTRIES if max_entries is None else int(max_entries)
        )
        self.max_bytes = (
            self.DEFAULT_MAX_BYTES if max_bytes is None else int(max_bytes)
        )
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Cross-worker sharing outcomes: misses served by attaching a
        # published copy, and local builds published for other workers.
        self.attaches = 0
        self.publishes = 0

    @classmethod
    def from_env(cls) -> "ProblemCache":
        """Budgets from the ``REPRO_PROBLEM_CACHE_*`` environment knobs.

        A malformed value warns and falls back to the default budget --
        a cache-tuning typo must degrade the optimization, never crash
        every sweep shard (same contract as the ambient plan-persistence
        env handling).
        """

        def _budget(name: str) -> int | None:
            raw = os.environ.get(name)
            if not raw:
                return None
            try:
                return int(raw)
            except ValueError:
                import warnings

                warnings.warn(
                    f"ignoring non-integer {name}={raw!r}; using the "
                    f"default problem-cache budget",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None

        return cls(
            max_entries=_budget(PROBLEM_CACHE_ENTRIES_ENV),
            max_bytes=_budget(PROBLEM_CACHE_BYTES_ENV),
        )

    def lookup(self, key: tuple):
        """``(problem, expected)`` for ``key``, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def store(self, key: tuple, problem: Any, expected: Any) -> None:
        nbytes = _payload_nbytes((problem, expected))
        if nbytes > self.max_bytes or self.max_entries < 1:
            return  # larger than the whole budget: never cacheable
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = ((problem, expected), nbytes)
            self._bytes += nbytes
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def info(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "attaches": self.attaches,
                "publishes": self.publishes,
            }


_PROBLEM_CACHE: ProblemCache | None = None
_PROBLEM_CACHE_LOCK = threading.Lock()


def problem_cache() -> ProblemCache:
    """This process's problem/oracle cache (env-budgeted, created lazily)."""
    global _PROBLEM_CACHE
    with _PROBLEM_CACHE_LOCK:
        if _PROBLEM_CACHE is None:
            _PROBLEM_CACHE = ProblemCache.from_env()
        return _PROBLEM_CACHE


def clear_problem_cache() -> None:
    """Drop the process cache (tests; re-reads the env budgets next use)."""
    global _PROBLEM_CACHE
    with _PROBLEM_CACHE_LOCK:
        _PROBLEM_CACHE = None


@dataclass(frozen=True)
class _BatchItem:
    """One placed shard crossing into a worker: task + sharing context.

    ``dataset_key`` is the staging-time content fingerprint (computed
    once in the parent, for *both* transports, so workers never pay a
    fresh CRC pass); ``placement`` records home/executing slot and
    sticky-vs-stolen; ``oracle`` is a published handle the worker should
    try before rebuilding; ``publish`` tells it whether to publish what
    it builds.
    """

    task: Any
    index: int  # position in the sweep's original shard order
    dataset_key: tuple | None
    placement: dict
    oracle: SharedPayloadHandle | None = None
    publish: bool = False
    weight: float = 0.0  # staged weight (drives the watchdog allowance)


@dataclass(frozen=True)
class _AttachFailure:
    """Worker-side marker returned in a shard's row slot when its shm
    attach failed (CRC mismatch, vanished block, unknown codec); the
    parent condemns the published block and re-runs the shard over the
    pickle transport instead of failing the batch."""

    index: int
    shm_name: str
    error: str


def _run_batch(items: tuple) -> tuple[list, list]:
    """Run one placed batch of shard tasks; one pickle crossing each way.

    Returns ``(per-shard row lists, publications)`` where publications
    is a list of ``(problem-cache key, SharedPayloadHandle)`` pairs for
    oracles this worker built and published; the parent adopts them into
    its shared-oracle directory.  If the batch dies mid-flight its own
    publications are reclaimed here -- the parent never learned their
    names.  A shard whose shm attach fails yields an
    :class:`_AttachFailure` in its row slot; the rest of the batch still
    runs.
    """
    from ..evaluation.harness import _run_shard

    inject("worker.batch")
    out = []
    publications: list = []
    pid = os.getpid()
    try:
        for item in items:
            task = item.task
            if isinstance(task.dataset, ArrayBundleHandle):
                try:
                    task = replace(
                        task, dataset=_attached_dataset(task.dataset)
                    )
                except (OSError, ValueError, KeyError) as exc:
                    out.append(_AttachFailure(
                        index=item.index,
                        shm_name=task.dataset.shm_name,
                        error=f"{type(exc).__name__}: {exc}",
                    ))
                    continue
            rows = _run_shard(
                task,
                dataset_key=item.dataset_key,
                shared_oracle=item.oracle,
                publications=publications if item.publish else None,
            )
            for row in rows:
                row.meta["placement"] = {**item.placement, "pid": pid}
            out.append(rows)
    except BaseException:
        for _key, handle in publications:
            _unlink_block(handle.shm_name)
        raise
    return out, publications


def _worker_probe(_=None) -> int:
    """Identify the worker a task landed on (tests, pool introspection)."""
    return os.getpid()


#: One warning per process when a shm attach degrades to pickling --
#: visible, but not once per affected shard.
_TRANSPORT_FALLBACK_WARNED = False


def _warn_transport_fallback(failure: _AttachFailure) -> None:
    global _TRANSPORT_FALLBACK_WARNED
    if _TRANSPORT_FALLBACK_WARNED:
        return
    _TRANSPORT_FALLBACK_WARNED = True
    import warnings

    warnings.warn(
        f"shared-memory attach failed ({failure.error}); re-running the "
        f"affected shard(s) over the pickle transport",
        RuntimeWarning,
        stacklevel=4,
    )


# ----------------------------------------------------------------------
# The persistent executor
# ----------------------------------------------------------------------
@dataclass
class _WorkerSlot:
    """One home slot of the pool: a single-worker process pool.

    Slots -- not one monolithic N-worker pool -- are what make placement
    deterministic: a batch submitted to slot *i* runs on slot *i*'s
    worker, period.  A crashed worker breaks only its own slot, which is
    respawned in place (same index, new pid) on the next sweep, so every
    other slot keeps its warm caches and its keys.
    """

    index: int
    pool: ProcessPoolExecutor
    #: Set when the watchdog SIGKILLed this slot's worker: the executor
    #: may not have noticed the death yet, but the slot must be respawned
    #: before it can take work again.
    dead: bool = False

    @property
    def broken(self) -> bool:
        return self.dead or bool(getattr(self.pool, "_broken", False))


@dataclass
class _StagedShard:
    """Parent-side staging record for one shard task."""

    task: Any
    index: int  # position in the sweep's original order
    dataset_key: tuple | None
    atoms: int
    weight: float
    home: int = 0


class SweepExecutor:
    """A reusable pool of worker slots for per-dataset sweep shards.

    The slots are spawned lazily on the first :meth:`map_shards` and
    then *kept*: later sweeps -- same app or not -- reuse the warm
    workers, whose module imports, plan caches and problem caches
    persist.  Width is ``max_workers`` when given, else
    ``os.cpu_count()`` capped by the sweep's shard count; a sweep
    wanting a *wider* pool grows it in place (existing slots keep their
    warmth and their keys), and a slot broken by a crashed worker is
    respawned individually on the next sweep instead of failing forever.

    Placement is sticky: each dataset's content key rendezvous-hashes to
    a home slot (see :func:`home_slot`), so repeated sweeps land every
    dataset on the same worker and its caches.  Load imbalance is
    corrected by bounded deterministic work-stealing of whole batches.

    Use as a context manager for scoped pools, or share the module-level
    :func:`default_executor` across calls (``run_suite(...,
    keep_pool=True)``).
    """

    #: Default budget for the publish cache (bytes of live shm blocks).
    DEFAULT_SHM_CACHE_BYTES = 256 * 1024 * 1024

    #: Default budget for the shared-oracle directory (bytes of live
    #: published payload blocks); 0 disables cross-worker sharing.
    DEFAULT_ORACLE_CACHE_BYTES = 256 * 1024 * 1024

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        transport: str = "auto",
        batch_atoms: int | None = None,
        shm_cache_bytes: int | None = None,
        oracle_cache_bytes: int | None = None,
        batch_timeout: float | None = None,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        self.max_workers = max_workers
        self.transport = transport
        self.batch_atoms = batch_atoms
        self.shm_cache_bytes = (
            self.DEFAULT_SHM_CACHE_BYTES if shm_cache_bytes is None
            else shm_cache_bytes
        )
        self.oracle_cache_bytes = (
            self._oracle_budget_from_env() if oracle_cache_bytes is None
            else int(oracle_cache_bytes)
        )
        self.batch_timeout = (
            self._batch_timeout_from_env() if batch_timeout is None
            else float(batch_timeout)
        )
        self._slots: list[_WorkerSlot] = []
        self._width = 0
        self._lock = threading.Lock()
        self._shm_lock = threading.Lock()
        self._published: dict[tuple, _PublishedDataset] = {}
        self._defunct: list[_PublishedDataset] = []
        self._shared_oracles: dict[tuple, _SharedPayloadRecord] = {}
        self._clock = itertools.count()
        self.sweeps = 0
        self.batches = 0
        self.shards = 0
        self.pool_spawns = 0
        self.shm_published = 0
        self.shm_reused = 0
        self.oracle_published = 0
        self.oracle_reused = 0
        self.oracle_evicted = 0
        self.sticky_shards = 0
        self.stolen_shards = 0
        # Failure-path telemetry (see map_shards): watchdog expiries,
        # batches re-run on another slot, shards run in-parent, synthetic
        # error rows emitted, and shm attaches degraded to pickling.
        self.batch_timeouts = 0
        self.batch_retries = 0
        self.degraded_shards = 0
        self.error_rows = 0
        self.transport_fallbacks = 0

    @classmethod
    def _oracle_budget_from_env(cls) -> int:
        raw = os.environ.get(SHARED_ORACLE_BYTES_ENV)
        if not raw:
            return cls.DEFAULT_ORACLE_CACHE_BYTES
        try:
            return int(raw)
        except ValueError:
            import warnings

            warnings.warn(
                f"ignoring non-integer {SHARED_ORACLE_BYTES_ENV}={raw!r}; "
                f"using the default shared-oracle budget",
                RuntimeWarning,
                stacklevel=3,
            )
            return cls.DEFAULT_ORACLE_CACHE_BYTES

    @classmethod
    def _batch_timeout_from_env(cls) -> float:
        raw = os.environ.get(BATCH_TIMEOUT_ENV)
        if not raw:
            return DEFAULT_BATCH_TIMEOUT
        try:
            return float(raw)
        except ValueError:
            import warnings

            warnings.warn(
                f"ignoring non-numeric {BATCH_TIMEOUT_ENV}={raw!r}; "
                f"using the default batch watchdog deadline",
                RuntimeWarning,
                stacklevel=3,
            )
            return DEFAULT_BATCH_TIMEOUT

    # -- pool lifecycle -------------------------------------------------
    def _spawn_slot(self, index: int) -> _WorkerSlot:
        from .plan_cache import global_plan_cache

        cache = global_plan_cache()
        return _WorkerSlot(
            index=index,
            pool=ProcessPoolExecutor(
                max_workers=1,
                initializer=_worker_warmup,
                initargs=(
                    str(cache.cache_dir) if cache.cache_dir else None,
                    str(cache.store_path) if cache.store_path else None,
                ),
            ),
        )

    def _ensure_pool(self, num_shards: int) -> list[_WorkerSlot]:
        with self._lock:
            want = self.max_workers
            if want is None:
                want = min(os.cpu_count() or 1, max(1, num_shards))
            want = max(1, want, len(self._slots))  # never shrink warmth
            spawned = False
            for i, slot in enumerate(self._slots):
                if slot.broken:
                    # A crashed worker poisons its ProcessPoolExecutor
                    # permanently; respawn just that slot, in place, so
                    # its keys stay home and the other slots stay warm.
                    slot.pool.shutdown(wait=False)
                    self._slots[i] = self._spawn_slot(i)
                    spawned = True
            while len(self._slots) < want:
                self._slots.append(self._spawn_slot(len(self._slots)))
                spawned = True
            if spawned:
                self.pool_spawns += 1
            self._width = len(self._slots)
            return self._slots

    @property
    def alive(self) -> bool:
        return bool(self._slots)

    @property
    def width(self) -> int:
        return self._width

    def slot_pids(self) -> dict[int, int]:
        """``slot index -> live worker pid`` (placement introspection)."""
        self._ensure_pool(self._width or 1)
        pids: dict[int, int] = {}
        for slot in self._slots:
            processes = getattr(slot.pool, "_processes", None)
            if processes:  # stdlib-internal but stable; exact and instant
                pids[slot.index] = next(iter(processes))
            else:  # worker not forked yet: a probe forces the spawn
                pids[slot.index] = slot.pool.submit(_worker_probe).result()
        return pids

    def worker_pids(self) -> set[int]:
        """PIDs of the live worker processes (pool-persistence probes)."""
        return set(self.slot_pids().values())

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            for slot in self._slots:
                slot.pool.shutdown(wait=wait and not slot.broken)
            self._slots = []
            self._width = 0
        with self._shm_lock:
            for entry in self._published.values():
                entry.unlink()
            self._published.clear()
            for entry in self._defunct:
                entry.unlink()
            self._defunct.clear()
            for record in self._shared_oracles.values():
                record.unlink()
            self._shared_oracles.clear()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- batching & transport -------------------------------------------
    @staticmethod
    def _payload_atoms(task) -> int:
        dataset = task.dataset
        if isinstance(dataset, ArrayBundleHandle):
            elements = sum(
                max(1, seg.nbytes // np.dtype(seg.dtype).itemsize)
                for seg in dataset.segments
            )
            return max(1, elements)
        matrix = getattr(dataset, "matrix", None)
        if matrix is None:
            return 1
        try:
            return max(1, int(matrix.nnz) + int(matrix.num_rows))
        except AttributeError:
            return 1

    #: Per-dataset fixed cost expressed in atom equivalents: at smoke
    #: scale a cell's Python overhead (context, policy, fingerprints)
    #: dwarfs its arithmetic, so weight-balancing on raw atoms alone
    #: would pack many tiny datasets into one straggler batch.
    _BATCH_BASE_WEIGHT = 2000

    #: Batches per home slot under quantile batching -- two, so work-
    #: stealing has a unit smaller than "everything the slot owns".
    _BATCHES_PER_SLOT = 2

    #: A slot may exceed the mean sweep load by this factor before its
    #: batches are stolen; below it, stickiness wins over balance.
    _STEAL_FACTOR = 1.25

    def _batch_group(self, group: list) -> list[list]:
        """Split one home group into contiguous weight-balanced batches.

        ~:data:`_BATCHES_PER_SLOT` batches per slot, boundaries at equal
        quantiles of the cumulative weight (atoms plus a fixed per-
        dataset overhead) -- the merge-path idea, one level up: batches
        are the processors, datasets the tiles.  ``batch_atoms``
        overrides with a greedy atom budget per batch.
        """
        if not group:
            return []
        if self.batch_atoms is not None:
            batches: list[list] = []
            cur: list = []
            cur_atoms = 0
            for shard in group:
                cur.append(shard)
                cur_atoms += shard.atoms
                if cur_atoms >= self.batch_atoms:
                    batches.append(cur)
                    cur, cur_atoms = [], 0
            if cur:
                batches.append(cur)
            return batches
        weights = np.array([s.weight for s in group], dtype=np.float64)
        num_batches = min(len(group), max(1, self._BATCHES_PER_SLOT))
        cum = np.cumsum(weights)
        quantiles = cum[-1] * np.arange(1, num_batches) / num_batches
        bounds = [0, *np.searchsorted(cum, quantiles, side="left"), len(group)]
        return [
            group[lo:hi]
            for lo, hi in zip(bounds, bounds[1:])
            if hi > lo
        ]

    def _stage(self, tasks: list, transport: str) -> tuple[list, list]:
        """Fingerprint every dataset and swap payloads for shm handles.

        One pack + CRC pass per dataset yields the content key that
        drives *all three* reuse layers -- the publish cache, sticky
        placement, and the shared-oracle directory -- so it is computed
        for the pickle transport too.  Publishing goes through the
        executor's content-keyed cache: repeated sweeps of the same
        corpus pin the already-published blocks instead of copying
        again.  Returns ``(staged_shards, pinned_entries)``; the caller
        unpins after the sweep.
        """
        staged: list[_StagedShard] = []
        pinned: list[_PublishedDataset] = []
        try:
            with self._shm_lock:
                for index, task in enumerate(tasks):
                    bundle = _pack_bundle(task.dataset)
                    if bundle is None:
                        key = crcs = None
                    else:
                        codec, arrays, extra = bundle
                        crcs = _bundle_crcs(arrays)
                        key = _bundle_key(
                            task.dataset.name, codec, arrays, crcs, extra
                        )
                    atoms = self._payload_atoms(task)
                    staged_task = task
                    if transport != "pickle":
                        entry = (
                            None if key is None else self._published.get(key)
                        )
                        if entry is None:
                            pub = None if key is None else publish_dataset(
                                task.dataset, _bundle=bundle, _crcs=crcs
                            )
                            if pub is not None:
                                entry = pub
                                self._published[key] = entry
                                self.shm_published += 1
                            elif transport == "shm":
                                raise ValueError(
                                    f"dataset {task.dataset.name!r} cannot "
                                    f"travel over shared memory (no "
                                    f"registered ShmCodec claims its "
                                    f"payload, or shm is unavailable); use "
                                    f"'auto' to fall back to pickling"
                                )
                        else:
                            self.shm_reused += 1
                        if entry is not None:
                            entry.pins += 1
                            entry.tick = next(self._clock)
                            pinned.append(entry)
                            staged_task = replace(task, dataset=entry.handle)
                    staged.append(_StagedShard(
                        task=staged_task,
                        index=index,
                        dataset_key=key,
                        atoms=atoms,
                        weight=atoms + self._BATCH_BASE_WEIGHT,
                    ))
        except Exception:
            self._unpin(pinned)
            raise
        return staged, pinned

    def _unpin(self, pinned: list) -> None:
        """Release sweep pins, then evict cold blocks over the byte budget."""
        with self._shm_lock:
            for entry in pinned:
                entry.pins -= 1
            if self._defunct:
                keep = []
                for entry in self._defunct:
                    if entry.pins <= 0:
                        entry.unlink()
                    else:
                        keep.append(entry)
                self._defunct = keep
            total = sum(e.nbytes for e in self._published.values())
            if total <= self.shm_cache_bytes:
                return
            for key, entry in sorted(
                self._published.items(), key=lambda kv: kv[1].tick
            ):
                if total <= self.shm_cache_bytes:
                    break
                if entry.pins > 0:
                    continue
                entry.unlink()
                del self._published[key]
                total -= entry.nbytes

    # -- shared-oracle directory -----------------------------------------
    def _problem_key(self, shard: _StagedShard) -> tuple | None:
        """The worker-side problem-cache key this shard will look up."""
        if shard.dataset_key is None:
            return None
        task = shard.task
        return (task.app, shard.dataset_key, task.seed, task.validate)

    def _oracle_handles(self, staged: list) -> tuple[dict, list]:
        """Published handles for shards whose oracle some worker built.

        Returns ``(shard index -> handle, pinned records)``; pins hold
        eviction off while the handles are in flight.
        """
        handles: dict[int, SharedPayloadHandle] = {}
        pinned: list[_SharedPayloadRecord] = []
        if self.oracle_cache_bytes <= 0:
            return handles, pinned
        with self._shm_lock:
            for shard in staged:
                key = self._problem_key(shard)
                if key is None:
                    continue
                record = self._shared_oracles.get(key)
                if record is None:
                    continue
                record.pins += 1
                record.tick = next(self._clock)
                pinned.append(record)
                handles[shard.index] = record.handle
                self.oracle_reused += 1
        return handles, pinned

    def _adopt_publications(self, publications: list) -> None:
        """Take ownership of worker-published oracle blocks."""
        if not publications:
            return
        with self._shm_lock:
            for key, handle in publications:
                if (
                    self.oracle_cache_bytes <= 0
                    or key in self._shared_oracles
                ):
                    # Racing workers can build the same oracle in one
                    # sweep; first one in wins, duplicates are reclaimed.
                    _unlink_block(handle.shm_name)
                    continue
                record = _SharedPayloadRecord(handle)
                record.tick = next(self._clock)
                self._shared_oracles[key] = record
                self.oracle_published += 1
            self._evict_oracles_locked()

    def _evict_oracles_locked(self) -> None:
        total = sum(r.nbytes for r in self._shared_oracles.values())
        if total <= self.oracle_cache_bytes:
            return
        for key, record in sorted(
            self._shared_oracles.items(), key=lambda kv: kv[1].tick
        ):
            if total <= self.oracle_cache_bytes:
                break
            if record.pins > 0:
                continue
            record.unlink()
            del self._shared_oracles[key]
            total -= record.nbytes
            self.oracle_evicted += 1

    def _unpin_oracles(self, pinned: list) -> None:
        with self._shm_lock:
            for record in pinned:
                record.pins -= 1
            self._evict_oracles_locked()

    # -- placement --------------------------------------------------------
    def _assign(self, staged: list, share_oracles: bool,
                oracle_handles: dict) -> list[tuple]:
        """Place every staged shard: home slots, batches, work-stealing.

        Returns ``[(executing slot, (batch items...)), ...]``.  Homes
        come from rendezvous hashing the dataset content key (falling
        back to the dataset name for unfingerprintable payloads); each
        home group is batched contiguously, then whole batches are
        stolen -- deterministically, boundedly -- from slots whose load
        exceeds :data:`_STEAL_FACTOR` times the mean.
        """
        width = max(1, self._width)
        groups: list[list] = [[] for _ in range(width)]
        for shard in staged:
            key = shard.dataset_key
            if key is None:
                dataset = shard.task.dataset
                key = (
                    "unbundled",
                    getattr(dataset, "name", None)
                    or getattr(dataset, "dataset_name", ""),
                )
            shard.home = home_slot(key, width)
            groups[shard.home].append(shard)
        # (batch, stolen?) lists per executing slot.
        batches: list[list] = [
            [[batch, False] for batch in self._batch_group(group)]
            for group in groups
        ]
        loads = [
            sum(shard.weight for batch, _ in slot for shard in batch)
            for slot in batches
        ]
        mean = sum(loads) / width

        def batch_weight(batch: list) -> float:
            return sum(shard.weight for shard in batch)

        steals = 0
        while width > 1 and mean > 0 and steals < 2 * width:
            donor = max(range(width), key=loads.__getitem__)
            thief = min(range(width), key=loads.__getitem__)
            if donor == thief or loads[donor] <= self._STEAL_FACTOR * mean:
                break
            donor_batches = batches[donor]
            if len(donor_batches) == 1 and len(donor_batches[0][0]) > 1:
                # One oversized batch: split it at the weight midpoint
                # so the next round has a stealable unit.
                batch, stolen = donor_batches.pop(0)
                half = batch_weight(batch) / 2.0
                acc = 0.0
                cut = 1
                for i, shard in enumerate(batch[:-1]):
                    acc += shard.weight
                    if acc >= half:
                        cut = i + 1
                        break
                donor_batches.append([batch[:cut], stolen])
                donor_batches.append([batch[cut:], stolen])
                continue
            if len(donor_batches) <= 1:
                break  # a single indivisible shard: nothing to steal
            lightest = min(
                range(len(donor_batches)),
                key=lambda i: batch_weight(donor_batches[i][0]),
            )
            weight = batch_weight(donor_batches[lightest][0])
            if loads[thief] + weight >= loads[donor]:
                break  # moving it would not narrow the spread
            batch, _ = donor_batches.pop(lightest)
            batches[thief].append([batch, True])
            loads[donor] -= weight
            loads[thief] += weight
            steals += 1

        placed: list[tuple] = []
        for slot in range(width):
            for batch, stolen in batches[slot]:
                items = tuple(
                    _BatchItem(
                        task=shard.task,
                        index=shard.index,
                        dataset_key=shard.dataset_key,
                        placement={
                            "home": shard.home,
                            "slot": slot,
                            "mode": "stolen" if stolen else "sticky",
                        },
                        oracle=oracle_handles.get(shard.index),
                        publish=share_oracles,
                        weight=shard.weight,
                    )
                    for shard in batch
                )
                if stolen:
                    self.stolen_shards += len(items)
                else:
                    self.sticky_shards += len(items)
                placed.append((slot, items))
        return placed

    # -- execution ------------------------------------------------------
    def map_shards(self, tasks, *, transport: str | None = None) -> list[list]:
        """Run every shard task; return per-shard row lists in order.

        Equivalent to ``[ _run_shard(t) for t in tasks ]`` but fanned out
        over the (persistent) pool, with sticky placement, batching and
        the configured dataset transport.  Deterministic exceptions
        raised inside a worker (bad app, validation failure) propagate
        after every in-flight batch settles, so successful batches'
        oracle publications are never leaked.

        Failure semantics (``batch_timeout`` > 0, the default): every
        batch gets a deadline -- the floor plus a weight-proportional
        allowance, cumulative per slot since one slot runs its batches
        serially.  A batch that misses its deadline has its worker
        SIGKILLed (the slot is respawned in place); batches lost to a
        timeout or a crashed worker are retried once on a neighbouring
        slot, then degraded to bounded in-parent execution.  Shards that
        still fail surface as synthetic rows with
        ``meta["status"]`` ``"timeout"``/``"error"`` instead of raising.
        Every row carries ``meta["attempts"]`` (1 = first try, 2 =
        retried, 3 = degraded) and ``meta["degraded"]``; a shard whose
        shm attach failed re-runs over pickle and is marked
        ``meta["transport_fallback"]``.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        transport = self.transport if transport is None else transport
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        self._ensure_pool(len(tasks))
        staged, pinned = self._stage(tasks, transport)
        share_oracles = self.oracle_cache_bytes > 0
        oracle_handles, oracle_pinned = self._oracle_handles(staged)
        placed = self._assign(staged, share_oracles, oracle_handles)
        results: dict[int, list] = {}
        fallback_indexes: set[int] = set()
        try:
            error = self._run_placed(placed, tasks, results, fallback_indexes)
        finally:
            self._unpin(pinned)
            self._unpin_oracles(oracle_pinned)
        if error is not None:
            raise error
        for index in fallback_indexes:
            for row in results.get(index, ()):
                row.meta["transport_fallback"] = True
        self.sweeps += 1
        self.batches += len(placed)
        self.shards += len(tasks)
        return [results[index] for index in range(len(tasks))]

    def _run_placed(
        self,
        placed: list,
        tasks: list,
        results: dict,
        fallback_indexes: set,
    ) -> BaseException | None:
        """Drive the placed batches through at most three attempts.

        Round 1 runs the placement as planned.  Whatever it loses to
        crashes/timeouts is retried once on a neighbouring slot (round
        2), alongside pickle re-runs of shards whose shm attach failed.
        Anything round 2 loses is degraded to bounded in-parent
        execution, which always produces rows (synthetic error rows at
        worst).  Returns the first *deterministic* worker exception to
        re-raise after everything settles, or ``None``.
        """
        error, lost, bad_attach = self._await_round(placed, results, attempt=1)
        retry: list[tuple[int, tuple]] = []
        if bad_attach:
            retry.extend(
                self._transport_retry_batches(bad_attach, tasks, fallback_indexes)
            )
        if lost:
            self._respawn_dead_slots()
            width = max(1, self._width)
            for slot, items in lost:
                self.batch_retries += 1
                retry.append(((slot + 1) % width, items))
        if not retry:
            return error
        retry_error, lost2, bad2 = self._await_round(retry, results, attempt=2)
        error = error or retry_error
        leftovers = [item for _slot, items in lost2 for item in items]
        # A *retried* batch can itself hit an attach failure (its items
        # still carry shm handles); those shards degrade like the rest.
        leftovers.extend(item for item, _failure in bad2)
        for item in leftovers:
            self._degrade_shard(item, tasks[item.index], results)
        if lost2:
            self._respawn_dead_slots()
        return error

    def _batch_allowance(self, items) -> float:
        """Deadline seconds for one batch: floor + weight-linear term."""
        weight = sum(getattr(item, "weight", 0.0) for item in items)
        return self.batch_timeout + weight * _TIMEOUT_SECONDS_PER_WEIGHT

    def _await_round(
        self, placed: list, results: dict, attempt: int
    ) -> tuple[BaseException | None, list, list]:
        """Submit one round of batches and settle every future.

        Returns ``(deterministic error, lost batches, attach failures)``
        where lost batches are ``(slot, items)`` pairs that died to a
        timeout or a broken worker and attach failures are
        ``(item, _AttachFailure)`` pairs.
        """
        watchdog = self.batch_timeout > 0
        start = time.monotonic()
        slot_allowance: dict[int, float] = {}
        submitted = []
        for slot, items in placed:
            future = self._slots[slot].pool.submit(_run_batch, items)
            deadline = None
            if watchdog:
                slot_allowance[slot] = (
                    slot_allowance.get(slot, 0.0) + self._batch_allowance(items)
                )
                deadline = start + slot_allowance[slot]
            submitted.append((future, slot, items, deadline))
        error: BaseException | None = None
        lost: list[tuple[int, tuple]] = []
        bad_attach: list[tuple] = []
        for future, slot, items, deadline in submitted:
            try:
                if deadline is None:
                    shard_rows, publications = future.result()
                else:
                    shard_rows, publications = future.result(
                        timeout=max(0.05, deadline - time.monotonic())
                    )
            except _FuturesTimeout:
                self.batch_timeouts += 1
                self._kill_slot(slot)
                lost.append((slot, items))
                continue
            except BrokenExecutor:
                lost.append((slot, items))
                continue
            except BaseException as exc:
                if error is None:
                    error = exc
                continue
            self._adopt_publications(publications)
            for item, rows in zip(items, shard_rows):
                if isinstance(rows, _AttachFailure):
                    bad_attach.append((item, rows))
                    continue
                for row in rows:
                    row.meta["attempts"] = attempt
                    row.meta["degraded"] = False
                    row.meta.setdefault("status", "ok")
                results[item.index] = rows
        return error, lost, bad_attach

    def _kill_slot(self, slot_index: int) -> None:
        """SIGKILL a hung slot's worker and retire its pool in place."""
        slot = self._slots[slot_index]
        slot.dead = True
        processes = getattr(slot.pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already gone
                pass
        try:
            slot.pool.shutdown(wait=False)
        except Exception:  # pragma: no cover - defensive
            pass

    def _respawn_dead_slots(self) -> None:
        """Respawn killed/broken slots so a retry round has live workers."""
        with self._lock:
            respawned = False
            for i, slot in enumerate(self._slots):
                if slot.broken:
                    try:
                        slot.pool.shutdown(wait=False)
                    except Exception:  # pragma: no cover - defensive
                        pass
                    self._slots[i] = self._spawn_slot(i)
                    respawned = True
            if respawned:
                self.pool_spawns += 1

    def _transport_retry_batches(
        self, bad_attach: list, tasks: list, fallback_indexes: set
    ) -> list[tuple[int, tuple]]:
        """Pickle re-runs for shards whose shm attach failed.

        The condemned block leaves the publish cache (unlinked once its
        sweep pins drop) so later sweeps republish from the source
        arrays; the shard itself is resubmitted to its original slot
        carrying the real dataset instead of a handle.
        """
        batches: list[tuple[int, tuple]] = []
        for item, failure in bad_attach:
            self.transport_fallbacks += 1
            fallback_indexes.add(item.index)
            self._discard_published(failure.shm_name)
            _warn_transport_fallback(failure)
            batches.append((
                item.placement.get("slot", 0),
                (replace(item, task=tasks[item.index]),),
            ))
        return batches

    def _discard_published(self, shm_name: str) -> None:
        """Condemn one published block after a worker failed to attach it."""
        with self._shm_lock:
            for key, entry in list(self._published.items()):
                if entry.handle.shm_name == shm_name:
                    entry.defunct = True
                    self._defunct.append(entry)
                    del self._published[key]

    def _degrade_shard(self, item, task, results: dict) -> None:
        """Last resort: run one shard in the parent, on a bounded thread.

        ``task`` is the sweep's *original* task (real dataset, no shm
        handle).  A deterministic failure or a blown deadline yields
        synthetic error rows -- by this point the shard has already
        cost a worker twice, so surfacing a typed row beats raising.
        """
        from .plan_cache import global_plan_cache

        self.degraded_shards += 1
        cache = global_plan_cache()
        prev_dir, prev_store = cache.cache_dir, cache.store_path
        outcome: dict = {}

        def _runner() -> None:
            from ..evaluation.harness import _run_shard

            try:
                outcome["rows"] = _run_shard(task, dataset_key=item.dataset_key)
            except BaseException as exc:
                outcome["error"] = exc

        thread = threading.Thread(
            target=_runner, daemon=True, name="repro-degraded-shard"
        )
        thread.start()
        timeout = (
            self._batch_allowance((item,)) if self.batch_timeout > 0 else None
        )
        thread.join(timeout)
        self._restore_plan_persistence(prev_dir, prev_store)
        if thread.is_alive():
            self.batch_timeouts += 1
            results[item.index] = self._error_rows(
                task, item, "timeout",
                "degraded in-parent execution exceeded its deadline",
            )
        elif "error" in outcome:
            exc = outcome["error"]
            results[item.index] = self._error_rows(
                task, item, "error", f"{type(exc).__name__}: {exc}"
            )
        else:
            rows = outcome["rows"]
            for row in rows:
                row.meta["attempts"] = 3
                row.meta["degraded"] = True
                row.meta.setdefault("status", "ok")
                row.meta["placement"] = self._degraded_placement(item)
            results[item.index] = rows

    @staticmethod
    def _degraded_placement(item) -> dict:
        return {
            "home": item.placement.get("home", 0),
            "slot": -1,
            "mode": "degraded",
            "pid": os.getpid(),
        }

    @staticmethod
    def _restore_plan_persistence(cache_dir, store_path) -> None:
        """Reattach the parent's plan persistence after a degraded run
        (the shard's ``_run_shard`` call reconfigures the process-global
        cache for *its* context; the parent must get its own back)."""
        from .plan_cache import configure_global_plan_cache

        try:
            if store_path is not None:
                configure_global_plan_cache(store_path=store_path)
            elif cache_dir is not None:
                configure_global_plan_cache(cache_dir)
            else:
                configure_global_plan_cache(None)
        except Exception:  # pragma: no cover - restoration is best-effort
            pass

    def _error_rows(self, task, item, status: str, message: str) -> list:
        """Synthetic per-kernel rows for a shard that exhausted every
        attempt: ``elapsed`` 0.0, real dataset dims where known, and the
        failure typed in ``meta`` (``status``/``error``)."""
        from ..evaluation.harness import SweepRow

        dataset = task.dataset
        matrix = getattr(dataset, "matrix", None)
        try:
            num_rows = int(matrix.num_rows)
            num_cols = int(matrix.num_cols)
            nnzs = int(matrix.nnz)
        except (AttributeError, TypeError, ValueError):
            num_rows = num_cols = nnzs = 0
        name = getattr(dataset, "name", "") or getattr(
            dataset, "dataset_name", ""
        )
        rows = []
        for kernel in task.kernels:
            self.error_rows += 1
            rows.append(SweepRow(
                app=task.app,
                kernel=kernel,
                dataset=name,
                rows=num_rows,
                cols=num_cols,
                nnzs=nnzs,
                elapsed=0.0,
                meta={
                    "status": status,
                    "error": message,
                    "attempts": 3,
                    "degraded": True,
                    "placement": self._degraded_placement(item),
                },
            ))
        return rows

    def info(self) -> dict:
        with self._shm_lock:
            shm_cached = len(self._published)
            shm_cached_bytes = sum(e.nbytes for e in self._published.values())
            oracle_cached = len(self._shared_oracles)
            oracle_cached_bytes = sum(
                r.nbytes for r in self._shared_oracles.values()
            )
        return {
            "alive": self.alive,
            "width": self._width,
            "transport": self.transport,
            "sweeps": self.sweeps,
            "batches": self.batches,
            "shards": self.shards,
            "pool_spawns": self.pool_spawns,
            "shm_published": self.shm_published,
            "shm_reused": self.shm_reused,
            "shm_cached": shm_cached,
            "shm_cached_bytes": shm_cached_bytes,
            "oracle_published": self.oracle_published,
            "oracle_reused": self.oracle_reused,
            "oracle_evicted": self.oracle_evicted,
            "oracle_cached": oracle_cached,
            "oracle_cached_bytes": oracle_cached_bytes,
            "sticky_shards": self.sticky_shards,
            "stolen_shards": self.stolen_shards,
            "batch_timeout": self.batch_timeout,
            "batch_timeouts": self.batch_timeouts,
            "batch_retries": self.batch_retries,
            "degraded_shards": self.degraded_shards,
            "error_rows": self.error_rows,
            "transport_fallbacks": self.transport_fallbacks,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"width={self._width}" if self.alive else "idle"
        return f"SweepExecutor({state}, sweeps={self.sweeps})"


# ----------------------------------------------------------------------
# Module-level default: one warm pool per process, shared by every
# ``run_suite(..., keep_pool=True)`` call site.
# ----------------------------------------------------------------------
_DEFAULT: SweepExecutor | None = None
_DEFAULT_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def default_executor(max_workers: int | None = None) -> SweepExecutor:
    """The process-wide persistent :class:`SweepExecutor`.

    Created lazily on first use and shut down at interpreter exit, or
    explicitly via :func:`shutdown_default_executor`.  An explicit
    ``max_workers`` raises the shared pool's width (the pool grows on
    the next sweep); it never shrinks a warm pool.
    """
    global _DEFAULT, _ATEXIT_REGISTERED
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = SweepExecutor(max_workers=max_workers)
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_default_executor)
                _ATEXIT_REGISTERED = True
            # Best effort (main thread only): atexit alone leaks shm on
            # SIGTERM/SIGINT deaths.
            install_signal_cleanup()
        elif max_workers is not None and (
            _DEFAULT.max_workers is None or max_workers > _DEFAULT.max_workers
        ):
            _DEFAULT.max_workers = max_workers
        return _DEFAULT


def shutdown_default_executor() -> None:
    """Tear down the shared pool (tests; long-lived host processes)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.shutdown()
            _DEFAULT = None


# ----------------------------------------------------------------------
# Signal cleanup: atexit never runs when the process dies on an
# unhandled SIGTERM/SIGINT, so a killed keep_pool sweep would leak its
# /dev/shm dataset blocks and shared-oracle segments (named, kernel-
# persistent objects that outlive the process).  Installing chained
# handlers turns those deaths into an orderly shm unlink first.
# ----------------------------------------------------------------------
_SIGNAL_CHAIN: dict[int, object] = {}
_SIGNALS_INSTALLED = False


def _signal_cleanup(signum, frame) -> None:
    """Chained handler: unlink every shm segment, then defer onward."""
    global _DEFAULT
    import signal as _signal

    # Never block inside a signal handler: if the interrupted main
    # thread holds the module lock (mid default_executor()), steal the
    # reference without it -- worst case two shutdowns race, and
    # shutdown() is idempotent.
    locked = _DEFAULT_LOCK.acquire(blocking=False)
    try:
        pool, _DEFAULT = _DEFAULT, None
    finally:
        if locked:
            _DEFAULT_LOCK.release()
    if pool is not None:
        try:
            pool.shutdown()
        except Exception:
            pass
    previous = _SIGNAL_CHAIN.get(signum)
    if callable(previous):
        previous(signum, frame)
    elif previous == _signal.SIG_DFL:
        # Re-deliver under the default disposition so the exit status
        # still says "killed by signal" (process supervisors key on it).
        _signal.signal(signum, _signal.SIG_DFL)
        os.kill(os.getpid(), signum)
    # SIG_IGN (or no previous handler): cleanup was the whole job.


def install_signal_cleanup() -> bool:
    """Unlink shm segments on SIGTERM/SIGINT, not only at interpreter exit.

    Installed lazily by :func:`default_executor` and safe to call
    directly from any long-lived host process.  The handlers *chain*:
    after cleanup the previously installed handler runs (Python's
    default SIGINT handler still raises ``KeyboardInterrupt``; a
    ``SIG_DFL`` disposition is re-delivered so the process still dies
    by signal).  Signals can only be installed from the main thread;
    anywhere else this is a no-op returning ``False``.
    """
    global _SIGNALS_INSTALLED
    if _SIGNALS_INSTALLED:
        return True
    import signal as _signal

    try:
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            previous = _signal.signal(signum, _signal_cleanup)
            if previous is not _signal_cleanup:
                _SIGNAL_CHAIN[signum] = previous
    except ValueError:  # not the main thread
        return False
    _SIGNALS_INSTALLED = True
    return True
