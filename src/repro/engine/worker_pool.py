"""Persistent sweep execution: warm worker pools + shared-memory transport.

The harness's original ``executor="process"`` path rebuilt the world per
call: every ``run_suite`` spawned a fresh
:class:`~concurrent.futures.ProcessPoolExecutor`, pickled every dataset's
CSR arrays across the pipe, and started each worker with a cold plan
cache -- so at smoke scale the process executor *lost* to serial (see
``BENCH_sweep.json``).  This module amortizes all three costs, the same
way persistent GPU runtimes amortize context/handle creation across
kernel launches:

:class:`SweepExecutor`
    A reusable, lazily-spawned worker pool.  The pool survives across
    ``run_suite`` calls and across apps; workers are warmed once by an
    initializer (NumPy + the app registry imported, the persistent plan
    cache attached) and keep their in-memory plan caches between sweeps.
    Use it as a context manager, or share the module-level
    :func:`default_executor` (the harness's ``keep_pool=True``).

Shard batching
    Small datasets are grouped into contiguous batches so one pickle
    crossing carries several shards; big datasets still travel alone.
    Results come back per shard, in submission order.

Shared-memory dataset transport
    Dataset payloads are packed into *array bundles* -- an ordered list
    of named ``(dtype, shape, crc)`` segments in one shared-memory block
    -- published once via :mod:`multiprocessing.shared_memory` and
    reattached zero-copy in the workers; the task pickle carries a small
    :class:`ArrayBundleHandle` instead of the arrays.  Payload types are
    pluggable :class:`ShmCodec` entries (CSR matrices, COO sparse
    tensors for spmttkrp, dense factor matrices out of the box); types
    with no codec (or platforms without shared memory) fall back to
    plain pickling.  Both transports produce identical
    :class:`~repro.evaluation.harness.SweepRow` sets.

Worker-resident problem/oracle cache
    Repeated sweeps of the same grid used to rebuild every dataset's
    problem instance and oracle per sweep.  :class:`ProblemCache` is a
    bounded, content-keyed (app, dataset fingerprint, seed, validate)
    cache living in each worker process, so steady-state sweeps on a
    warm pool are problem-build-free *and* oracle-free; hit/miss
    counters surface through ``SweepRow.meta``.
"""

from __future__ import annotations

import atexit
import gc
import itertools
import os
import threading
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from ..sparse.corpus import Dataset
from ..sparse.csr import CsrMatrix
from ..sparse.tensor import SparseTensor3

__all__ = [
    "SweepExecutor",
    "ArrayBundleHandle",
    "ArraySegment",
    "SharedDatasetHandle",
    "ShmCodec",
    "register_shm_codec",
    "shm_codec_for",
    "ProblemCache",
    "problem_cache",
    "clear_problem_cache",
    "default_executor",
    "shutdown_default_executor",
    "TRANSPORTS",
    "PROBLEM_CACHE_ENTRIES_ENV",
    "PROBLEM_CACHE_BYTES_ENV",
]

#: Dataset transports :class:`SweepExecutor` understands.  ``auto``
#: publishes codec-claimed payloads (CSR, sparse tensors, dense arrays)
#: through shared memory and falls back to pickling anything else;
#: ``shm`` / ``pickle`` force one path.
TRANSPORTS = ("auto", "shm", "pickle")

#: Environment knobs bounding each worker's problem/oracle cache.
PROBLEM_CACHE_ENTRIES_ENV = "REPRO_PROBLEM_CACHE_ENTRIES"
PROBLEM_CACHE_BYTES_ENV = "REPRO_PROBLEM_CACHE_BYTES"


def _shared_memory():
    """The stdlib shared-memory module, or ``None`` when unsupported."""
    try:
        from multiprocessing import shared_memory

        return shared_memory
    except ImportError:  # pragma: no cover - always present on CPython
        return None


# ----------------------------------------------------------------------
# Shared-memory dataset transport: array bundles + pluggable codecs
# ----------------------------------------------------------------------
#: Segment offsets inside a bundle block are padded to this boundary so
#: every dtype reattaches aligned, whatever precedes it.
_SEGMENT_ALIGN = 16


def _align(offset: int) -> int:
    return (offset + _SEGMENT_ALIGN - 1) // _SEGMENT_ALIGN * _SEGMENT_ALIGN


def _freeze(value):
    """Canonical hashable form of a codec ``extra`` value (content keys)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class ArraySegment:
    """One named array inside a shared-memory bundle block."""

    label: str
    dtype: str  # numpy dtype string, endianness-qualified
    shape: tuple
    crc: int  # crc32 of the array bytes (content key + attach check)
    offset: int  # byte offset inside the block

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize

    def fingerprint(self) -> tuple:
        """The offset-independent identity used in content keys."""
        return (self.label, self.dtype, tuple(self.shape), self.crc)


@dataclass(frozen=True)
class ArrayBundleHandle:
    """Picklable stand-in for a :class:`Dataset` whose arrays live in shm.

    The handle carries only the block name, the codec that knows how to
    rebuild the payload, and the ordered ``(dtype, shape, crc)`` segment
    list; workers reattach each segment as a zero-copy NumPy view over
    the block and hand the views to the codec's ``unpack``.
    """

    shm_name: str
    codec: str
    dataset_name: str
    family: str
    segments: tuple[ArraySegment, ...]
    extra: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def payload_bytes(self) -> int:
        return sum(seg.nbytes for seg in self.segments)

    def content_key(self) -> tuple:
        """Content fingerprint; equals :func:`dataset_content_key` of the
        dataset this handle was published from."""
        return (
            self.dataset_name,
            self.codec,
            tuple(seg.fingerprint() for seg in self.segments),
            _freeze(self.extra),
        )


#: Backward-compatible alias: PR 4's CSR-only handle type, now the
#: generic bundle.
SharedDatasetHandle = ArrayBundleHandle


@dataclass(frozen=True)
class ShmCodec:
    """How one payload type travels through an array-bundle block.

    ``matches(payload)`` claims a payload; ``pack(payload)`` flattens it
    into ordered named arrays plus picklable scalar ``extra`` metadata;
    ``unpack(arrays, extra)`` rebuilds the payload from zero-copy views.
    Codecs are consulted in registration order; the built-ins cover CSR
    matrices, COO sparse tensors and dense ndarrays.
    """

    name: str
    matches: Callable[[Any], bool]
    pack: Callable[[Any], tuple[list, dict]]
    unpack: Callable[[dict, dict], Any]


_SHM_CODECS: "OrderedDict[str, ShmCodec]" = OrderedDict()


def register_shm_codec(codec: ShmCodec) -> ShmCodec:
    """Add a payload codec to the transport (consulted in order)."""
    if codec.name in _SHM_CODECS:
        raise ValueError(f"shm codec {codec.name!r} already registered")
    _SHM_CODECS[codec.name] = codec
    return codec


def shm_codec_for(payload: Any) -> ShmCodec | None:
    """The first registered codec claiming ``payload`` (``None`` = pickle)."""
    for codec in _SHM_CODECS.values():
        if codec.matches(payload):
            return codec
    return None


register_shm_codec(ShmCodec(
    name="csr",
    matches=lambda p: isinstance(p, CsrMatrix),
    pack=lambda m: (
        [("row_offsets", m.row_offsets), ("col_indices", m.col_indices),
         ("values", m.values)],
        {"shape": m.shape},
    ),
    unpack=lambda arrays, extra: CsrMatrix(
        row_offsets=arrays["row_offsets"],
        col_indices=arrays["col_indices"],
        values=arrays["values"],
        shape=tuple(extra["shape"]),
    ),
))

register_shm_codec(ShmCodec(
    name="tensor3",
    matches=lambda p: isinstance(p, SparseTensor3),
    pack=lambda t: (
        [("i", t.i), ("j", t.j), ("k", t.k), ("values", t.values)],
        {"shape": t.shape},
    ),
    # Direct construction, not from_arrays: the published coordinates
    # already satisfy the sorted-by-mode-0 invariant, and re-sorting
    # would copy the views the transport exists to avoid.
    unpack=lambda arrays, extra: SparseTensor3(
        i=arrays["i"], j=arrays["j"], k=arrays["k"],
        values=arrays["values"], shape=tuple(extra["shape"]),
    ),
))

register_shm_codec(ShmCodec(
    name="dense",
    # Object-dtype arrays hold process-local pointers: copying their raw
    # bytes into shared memory would hand workers foreign addresses.
    # Leave them (and other non-buffer payloads) to the pickle fallback.
    matches=lambda p: isinstance(p, np.ndarray) and not p.dtype.hasobject,
    pack=lambda a: ([("data", a)], {}),
    unpack=lambda arrays, extra: arrays["data"],
))


def _pack_bundle(dataset: Dataset):
    """``(codec, [(label, contiguous array), ...], extra)`` or ``None``."""
    codec = shm_codec_for(dataset.matrix)
    if codec is None:
        return None
    arrays, extra = codec.pack(dataset.matrix)
    return codec, [(label, np.ascontiguousarray(arr)) for label, arr in arrays], extra


class _PublishedDataset:
    """Owner-side record of one shm block (parent closes + unlinks).

    Published blocks are cached by the executor across sweeps (``pins``
    guards in-flight use, ``tick`` drives LRU eviction) -- repeated
    sweeps of the same corpus publish each dataset exactly once.
    """

    def __init__(self, handle: SharedDatasetHandle, shm) -> None:
        self.handle = handle
        self.shm = shm
        self.pins = 0
        self.tick = 0
        self.nbytes = shm.size

    def unlink(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - no exports kept here
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _bundle_crcs(arrays: list) -> list[int]:
    return [zlib.crc32(arr) for _, arr in arrays]


def _bundle_key(name: str, codec: ShmCodec, arrays: list, crcs: list, extra: dict) -> tuple:
    return (
        name,
        codec.name,
        tuple(
            (label, arr.dtype.str, arr.shape, crc)
            for (label, arr), crc in zip(arrays, crcs)
        ),
        _freeze(extra),
    )


def dataset_content_key(dataset: Dataset) -> tuple | None:
    """Cheap content fingerprint of a bundleable dataset.

    Keys both the parent-side publish cache and the workers' problem/
    oracle cache.  Name and shape alone are not enough -- the same
    corpus name at a different scale (or a caller-mutated payload) must
    republish -- so the key includes a CRC per packed array.  The CRC
    pass is paid on every staging, but it costs about as much as one
    copy of the data -- cheap against what a hit saves (shm create +
    copy + worker reattach, or a problem/oracle rebuild) and trivial
    against what a miss would otherwise repay per sweep.  Returns
    ``None`` for payloads no codec claims.
    """
    bundle = _pack_bundle(dataset)
    if bundle is None:
        return None
    codec, arrays, extra = bundle
    return _bundle_key(dataset.name, codec, arrays, _bundle_crcs(arrays), extra)


def publish_dataset(
    dataset: Dataset, *, _bundle=None, _crcs: list | None = None
) -> _PublishedDataset | None:
    """Pack one dataset's arrays into a shared-memory bundle block.

    Returns ``None`` when the dataset cannot travel this way (no codec
    claims the payload, shared memory unavailable, block allocation
    refused) -- callers then fall back to pickling the dataset itself.
    A failure while *filling* an already-created block (a codec packing
    arrays the buffer cannot host) closes and unlinks the block before
    re-raising, so publish errors never leak shared memory.

    ``_bundle``/``_crcs`` let the staging path reuse the pack + CRC pass
    it already paid for the content key, so a fresh publish never packs
    or checksums the arrays twice.
    """
    shared_memory = _shared_memory()
    if shared_memory is None:
        return None
    bundle = _pack_bundle(dataset) if _bundle is None else _bundle
    if bundle is None:
        return None
    codec, arrays, extra = bundle
    crcs = _bundle_crcs(arrays) if _crcs is None else _crcs
    segments = []
    offset = 0
    for (label, arr), crc in zip(arrays, crcs):
        offset = _align(offset)
        segments.append(ArraySegment(
            label=label,
            dtype=arr.dtype.str,
            shape=arr.shape,
            crc=crc,
            offset=offset,
        ))
        offset += arr.nbytes
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    except OSError:
        return None
    try:
        for seg, (_, arr) in zip(segments, arrays):
            np.ndarray(
                seg.shape, dtype=seg.dtype, buffer=shm.buf, offset=seg.offset
            )[:] = arr
    except Exception:
        # The block exists but was never handed out: reclaim it now
        # instead of leaking it until interpreter exit.
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        raise
    handle = ArrayBundleHandle(
        shm_name=shm.name,
        codec=codec.name,
        dataset_name=dataset.name,
        family=dataset.family,
        segments=tuple(segments),
        extra=dict(extra),
        meta=dict(dataset.meta),
    )
    return _PublishedDataset(handle, shm)


def attach_dataset(handle: ArrayBundleHandle) -> tuple[Dataset, object]:
    """Worker-side reattach: rebuild the Dataset over the shm buffer.

    Each segment becomes a zero-copy view, CRC-verified against the
    handle, and the codec's ``unpack`` rebuilds the payload.  Returns
    ``(dataset, shm)``; the caller must release the block with
    :func:`detach` once the shard's rows are computed.
    """
    shared_memory = _shared_memory()
    assert shared_memory is not None
    codec = _SHM_CODECS.get(handle.codec)
    if codec is None:
        raise KeyError(
            f"dataset {handle.dataset_name!r} was published with codec "
            f"{handle.codec!r}, which is not registered in this worker"
        )
    # Pool workers are children of the publisher, so they share its
    # resource-tracker process: the attach-side register is a set no-op
    # and exactly one unregister happens at the parent's unlink.  (An
    # *unrelated* attacher would need bpo-39959's unregister dance; this
    # transport never crosses that topology.)
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    arrays = {}
    for seg in handle.segments:
        view = np.ndarray(
            seg.shape, dtype=seg.dtype, buffer=shm.buf, offset=seg.offset
        )
        if zlib.crc32(view) != seg.crc:
            detach(shm)
            raise ValueError(
                f"shared-memory segment {seg.label!r} of dataset "
                f"{handle.dataset_name!r} failed its CRC check"
            )
        arrays[seg.label] = view
    dataset = Dataset(
        name=handle.dataset_name,
        family=handle.family,
        matrix=codec.unpack(arrays, dict(handle.extra)),
        meta=dict(handle.meta),
    )
    return dataset, shm


def detach(shm) -> None:
    """Close a worker-side attachment, tolerating lingering array views."""
    try:
        shm.close()
    except BufferError:
        gc.collect()  # drop cycles still holding buffer views
        try:
            shm.close()
        except BufferError:  # released at worker exit instead
            pass


# ----------------------------------------------------------------------
# Pool worker entry points (module-level: picklable by reference)
# ----------------------------------------------------------------------
def _worker_warmup(cache_dir: str | None, store_path: str | None) -> None:
    """Pool initializer: pay the import + cache-attach cost exactly once."""
    import numpy  # noqa: F401  (pre-faulted into the worker)

    from .. import apps  # noqa: F401  (registers every app and schedule)
    from .compiled import precompile_kernels
    from .plan_cache import configure_global_plan_cache

    if store_path is not None:
        configure_global_plan_cache(store_path=store_path)
    elif cache_dir is not None:
        configure_global_plan_cache(cache_dir=cache_dir)
    # Pay the JIT cost here, not in the first timed launch: the apps
    # import above registered every kernel's warmup, and with numba
    # absent this is a no-op.
    precompile_kernels()


#: Worker-side attachment cache: ``shm_name -> (shm, Dataset)``, in LRU
#: order (oldest first).  Block names are never reused by the OS within a
#: session, so a cached entry can never alias different content; the
#: parent keeps a published block alive for at least as long as any task
#: referencing it is in flight.
_ATTACHED: OrderedDict[str, tuple] = OrderedDict()
_ATTACHED_CAP = 128


def _attached_dataset(handle: SharedDatasetHandle) -> Dataset:
    """Reattach (or reuse) one shm-backed dataset in this worker."""
    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        _ATTACHED.move_to_end(handle.shm_name)
        return cached[1]
    dataset, shm = attach_dataset(handle)
    while len(_ATTACHED) >= _ATTACHED_CAP:
        # Evict least-recently-used, never the entry just fetched.
        _, (old_shm, old_ds) = _ATTACHED.popitem(last=False)
        del old_ds  # drop the buffer views before closing
        detach(old_shm)
    _ATTACHED[handle.shm_name] = (shm, dataset)
    return dataset


# ----------------------------------------------------------------------
# Worker-resident problem/oracle cache
# ----------------------------------------------------------------------
def _payload_nbytes(obj: Any, _seen: set | None = None) -> int:
    """Estimate the resident bytes of a problem/oracle payload.

    Counts ndarray buffers reachable through the containers the sweep
    problems actually use (namespaces, dataclasses, dicts, sequences);
    scalars and bookkeeping round to zero -- the budget guards array
    memory, not Python object overhead.
    """
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return 0
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(v, _seen) for v in obj.values())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_payload_nbytes(v, _seen) for v in obj)
    attrs = getattr(obj, "__dict__", None)
    if attrs is None and hasattr(obj, "__dataclass_fields__"):
        attrs = {
            name: getattr(obj, name) for name in obj.__dataclass_fields__
        }
    if isinstance(attrs, dict):
        return sum(_payload_nbytes(v, _seen) for v in attrs.values())
    return 0


class ProblemCache:
    """Bounded, content-keyed cache of built ``(problem, oracle)`` pairs.

    Lives in each (persistent) worker process so steady-state sweeps of
    the same grid skip ``_build_problem`` *and* the oracle entirely.
    Keys are ``(app, dataset fingerprint, seed, validate)`` -- the
    fingerprint is the same per-array-CRC content key the shm transport
    publishes under, so a seed change, a ``validate`` flip or mutated
    dataset content each miss instead of serving a stale entry (problem
    construction is independent of the execution context, so ctx changes
    need no invalidation).  Both budgets are explicit: ``max_entries``
    bounds the count and ``max_bytes`` the estimated resident array
    bytes, with least-recently-used eviction.
    """

    DEFAULT_MAX_ENTRIES = 64
    DEFAULT_MAX_BYTES = 512 * 1024 * 1024

    def __init__(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        self.max_entries = (
            self.DEFAULT_MAX_ENTRIES if max_entries is None else int(max_entries)
        )
        self.max_bytes = (
            self.DEFAULT_MAX_BYTES if max_bytes is None else int(max_bytes)
        )
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_env(cls) -> "ProblemCache":
        """Budgets from the ``REPRO_PROBLEM_CACHE_*`` environment knobs.

        A malformed value warns and falls back to the default budget --
        a cache-tuning typo must degrade the optimization, never crash
        every sweep shard (same contract as the ambient plan-persistence
        env handling).
        """

        def _budget(name: str) -> int | None:
            raw = os.environ.get(name)
            if not raw:
                return None
            try:
                return int(raw)
            except ValueError:
                import warnings

                warnings.warn(
                    f"ignoring non-integer {name}={raw!r}; using the "
                    f"default problem-cache budget",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None

        return cls(
            max_entries=_budget(PROBLEM_CACHE_ENTRIES_ENV),
            max_bytes=_budget(PROBLEM_CACHE_BYTES_ENV),
        )

    def lookup(self, key: tuple):
        """``(problem, expected)`` for ``key``, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def store(self, key: tuple, problem: Any, expected: Any) -> None:
        nbytes = _payload_nbytes((problem, expected))
        if nbytes > self.max_bytes or self.max_entries < 1:
            return  # larger than the whole budget: never cacheable
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = ((problem, expected), nbytes)
            self._bytes += nbytes
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def info(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


_PROBLEM_CACHE: ProblemCache | None = None
_PROBLEM_CACHE_LOCK = threading.Lock()


def problem_cache() -> ProblemCache:
    """This process's problem/oracle cache (env-budgeted, created lazily)."""
    global _PROBLEM_CACHE
    with _PROBLEM_CACHE_LOCK:
        if _PROBLEM_CACHE is None:
            _PROBLEM_CACHE = ProblemCache.from_env()
        return _PROBLEM_CACHE


def clear_problem_cache() -> None:
    """Drop the process cache (tests; re-reads the env budgets next use)."""
    global _PROBLEM_CACHE
    with _PROBLEM_CACHE_LOCK:
        _PROBLEM_CACHE = None


def _run_batch(tasks: tuple) -> list:
    """Run one batch of shard tasks; one pickle crossing each way."""
    from ..evaluation.harness import _run_shard

    out = []
    for task in tasks:
        dataset_key = None
        if isinstance(task.dataset, ArrayBundleHandle):
            # The publish-time fingerprint doubles as the problem-cache
            # key: shm-transported shards never pay a fresh CRC pass.
            dataset_key = task.dataset.content_key()
            task = replace(task, dataset=_attached_dataset(task.dataset))
        out.append(_run_shard(task, dataset_key=dataset_key))
    return out


def _worker_probe(_=None) -> int:
    """Identify the worker a task landed on (tests, pool introspection)."""
    return os.getpid()


# ----------------------------------------------------------------------
# The persistent executor
# ----------------------------------------------------------------------
class SweepExecutor:
    """A reusable process pool for per-dataset sweep shards.

    The pool is spawned lazily on the first :meth:`map_shards` and then
    *kept*: later sweeps -- same app or not -- reuse the warm workers,
    whose module imports and in-memory plan caches persist.  Width is
    ``max_workers`` when given, else ``os.cpu_count()`` capped by the
    sweep's shard count; a sweep wanting a *wider* pool than the current
    one respawns it at the new high-water width (a one-time warmth loss
    per growth step), and a pool broken by a crashed worker is respawned
    on the next sweep instead of failing forever.

    Use as a context manager for scoped pools, or share the module-level
    :func:`default_executor` across calls (``run_suite(...,
    keep_pool=True)``).
    """

    #: Default budget for the publish cache (bytes of live shm blocks).
    DEFAULT_SHM_CACHE_BYTES = 256 * 1024 * 1024

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        transport: str = "auto",
        batch_atoms: int | None = None,
        shm_cache_bytes: int | None = None,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        self.max_workers = max_workers
        self.transport = transport
        self.batch_atoms = batch_atoms
        self.shm_cache_bytes = (
            self.DEFAULT_SHM_CACHE_BYTES if shm_cache_bytes is None
            else shm_cache_bytes
        )
        self._pool: ProcessPoolExecutor | None = None
        self._width = 0
        self._lock = threading.Lock()
        self._shm_lock = threading.Lock()
        self._published: dict[tuple, _PublishedDataset] = {}
        self._clock = itertools.count()
        self.sweeps = 0
        self.batches = 0
        self.shards = 0
        self.pool_spawns = 0
        self.shm_published = 0
        self.shm_reused = 0

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self, num_shards: int) -> ProcessPoolExecutor:
        with self._lock:
            want = self.max_workers
            if want is None:
                want = min(os.cpu_count() or 1, max(1, num_shards))
            want = max(1, want)
            if self._pool is not None:
                broken = getattr(self._pool, "_broken", False)
                if not broken and self._width >= want:
                    return self._pool  # reuse warmth over shrinking
                # Grow to the new high-water width, or replace a pool a
                # crashed worker has broken (BrokenProcessPool poisons a
                # ProcessPoolExecutor permanently; respawning recovers).
                self._pool.shutdown(wait=not broken)
                self._pool = None
            from .plan_cache import global_plan_cache

            cache = global_plan_cache()
            self._pool = ProcessPoolExecutor(
                max_workers=want,
                initializer=_worker_warmup,
                initargs=(
                    str(cache.cache_dir) if cache.cache_dir else None,
                    str(cache.store_path) if cache.store_path else None,
                ),
            )
            self._width = want
            self.pool_spawns += 1
            return self._pool

    @property
    def alive(self) -> bool:
        return self._pool is not None

    @property
    def width(self) -> int:
        return self._width

    def worker_pids(self) -> set[int]:
        """PIDs of the live worker processes (pool-persistence probes)."""
        pool = self._ensure_pool(self._width or 1)
        processes = getattr(pool, "_processes", None)
        if processes:  # stdlib-internal but stable; exact and instant
            return set(processes)
        return set(pool.map(_worker_probe, range(self._width * 4)))

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=wait)
                self._pool = None
                self._width = 0
        with self._shm_lock:
            for entry in self._published.values():
                entry.unlink()
            self._published.clear()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- batching & transport -------------------------------------------
    @staticmethod
    def _payload_atoms(task) -> int:
        dataset = task.dataset
        if isinstance(dataset, ArrayBundleHandle):
            elements = sum(
                max(1, seg.nbytes // np.dtype(seg.dtype).itemsize)
                for seg in dataset.segments
            )
            return max(1, elements)
        matrix = getattr(dataset, "matrix", None)
        if matrix is None:
            return 1
        try:
            return max(1, int(matrix.nnz) + int(matrix.num_rows))
        except AttributeError:
            return 1

    #: Per-dataset fixed cost expressed in atom equivalents: at smoke
    #: scale a cell's Python overhead (context, policy, fingerprints)
    #: dwarfs its arithmetic, so weight-balancing on raw atoms alone
    #: would pack many tiny datasets into one straggler batch.
    _BATCH_BASE_WEIGHT = 2000

    def _batch(self, tasks: list, width: int) -> list[tuple]:
        """Split shards into contiguous weight-balanced batches.

        ~2 batches per worker, boundaries at equal quantiles of the
        cumulative weight (atoms plus a fixed per-dataset overhead) --
        the merge-path idea, one level up: batches are the processors,
        datasets the tiles.  ``batch_atoms`` overrides with a greedy
        atom budget per batch.
        """
        if self.batch_atoms is not None:
            batches: list[tuple] = []
            cur: list = []
            cur_atoms = 0
            for task in tasks:
                cur.append(task)
                cur_atoms += self._payload_atoms(task)
                if cur_atoms >= self.batch_atoms:
                    batches.append(tuple(cur))
                    cur, cur_atoms = [], 0
            if cur:
                batches.append(tuple(cur))
            return batches
        weights = np.array(
            [self._payload_atoms(t) + self._BATCH_BASE_WEIGHT for t in tasks],
            dtype=np.float64,
        )
        num_batches = min(len(tasks), max(1, 2 * width))
        cum = np.cumsum(weights)
        quantiles = cum[-1] * np.arange(1, num_batches) / num_batches
        bounds = [0, *np.searchsorted(cum, quantiles, side="left"), len(tasks)]
        return [
            tuple(tasks[lo:hi])
            for lo, hi in zip(bounds, bounds[1:])
            if hi > lo
        ]

    def _stage(self, tasks: list, transport: str) -> tuple[list, list]:
        """Swap dataset payloads for shm handles where the transport allows.

        Publishing goes through the executor's content-keyed cache:
        repeated sweeps of the same corpus pin the already-published
        blocks instead of copying again.  Returns ``(staged_tasks,
        pinned_entries)``; the caller unpins after the sweep.
        """
        if transport == "pickle":
            return list(tasks), []
        staged = []
        pinned: list[_PublishedDataset] = []
        try:
            with self._shm_lock:
                for task in tasks:
                    # One pack + CRC pass per dataset: the content key
                    # and a (possible) publish share the same bundle.
                    bundle = _pack_bundle(task.dataset)
                    if bundle is None:
                        key = crcs = None
                    else:
                        codec, arrays, extra = bundle
                        crcs = _bundle_crcs(arrays)
                        key = _bundle_key(
                            task.dataset.name, codec, arrays, crcs, extra
                        )
                    entry = None if key is None else self._published.get(key)
                    if entry is None:
                        pub = None if key is None else publish_dataset(
                            task.dataset, _bundle=bundle, _crcs=crcs
                        )
                        if pub is None:
                            if transport == "shm":
                                raise ValueError(
                                    f"dataset {task.dataset.name!r} cannot "
                                    f"travel over shared memory (no "
                                    f"registered ShmCodec claims its "
                                    f"payload, or shm is unavailable); use "
                                    f"'auto' to fall back to pickling"
                                )
                            staged.append(task)
                            continue
                        entry = pub
                        self._published[key] = entry
                        self.shm_published += 1
                    else:
                        self.shm_reused += 1
                    entry.pins += 1
                    entry.tick = next(self._clock)
                    pinned.append(entry)
                    staged.append(replace(task, dataset=entry.handle))
        except Exception:
            self._unpin(pinned)
            raise
        return staged, pinned

    def _unpin(self, pinned: list) -> None:
        """Release sweep pins, then evict cold blocks over the byte budget."""
        with self._shm_lock:
            for entry in pinned:
                entry.pins -= 1
            total = sum(e.nbytes for e in self._published.values())
            if total <= self.shm_cache_bytes:
                return
            for key, entry in sorted(
                self._published.items(), key=lambda kv: kv[1].tick
            ):
                if total <= self.shm_cache_bytes:
                    break
                if entry.pins > 0:
                    continue
                entry.unlink()
                del self._published[key]
                total -= entry.nbytes

    # -- execution ------------------------------------------------------
    def map_shards(self, tasks, *, transport: str | None = None) -> list[list]:
        """Run every shard task; return per-shard row lists in order.

        Equivalent to ``[ _run_shard(t) for t in tasks ]`` but fanned out
        over the (persistent) pool, with batching and the configured
        dataset transport.  Exceptions raised inside a worker propagate.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        transport = self.transport if transport is None else transport
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        pool = self._ensure_pool(len(tasks))
        staged, pinned = self._stage(tasks, transport)
        batches = self._batch(staged, self._width)
        try:
            per_batch = list(pool.map(_run_batch, batches))
        finally:
            self._unpin(pinned)
        self.sweeps += 1
        self.batches += len(batches)
        self.shards += len(tasks)
        return [shard_rows for batch in per_batch for shard_rows in batch]

    def info(self) -> dict:
        with self._shm_lock:
            shm_cached = len(self._published)
            shm_cached_bytes = sum(e.nbytes for e in self._published.values())
        return {
            "alive": self.alive,
            "width": self._width,
            "transport": self.transport,
            "sweeps": self.sweeps,
            "batches": self.batches,
            "shards": self.shards,
            "pool_spawns": self.pool_spawns,
            "shm_published": self.shm_published,
            "shm_reused": self.shm_reused,
            "shm_cached": shm_cached,
            "shm_cached_bytes": shm_cached_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"width={self._width}" if self.alive else "idle"
        return f"SweepExecutor({state}, sweeps={self.sweeps})"


# ----------------------------------------------------------------------
# Module-level default: one warm pool per process, shared by every
# ``run_suite(..., keep_pool=True)`` call site.
# ----------------------------------------------------------------------
_DEFAULT: SweepExecutor | None = None
_DEFAULT_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def default_executor(max_workers: int | None = None) -> SweepExecutor:
    """The process-wide persistent :class:`SweepExecutor`.

    Created lazily on first use and shut down at interpreter exit, or
    explicitly via :func:`shutdown_default_executor`.  An explicit
    ``max_workers`` raises the shared pool's width (the pool grows on
    the next sweep); it never shrinks a warm pool.
    """
    global _DEFAULT, _ATEXIT_REGISTERED
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = SweepExecutor(max_workers=max_workers)
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_default_executor)
                _ATEXIT_REGISTERED = True
        elif max_workers is not None and (
            _DEFAULT.max_workers is None or max_workers > _DEFAULT.max_workers
        ):
            _DEFAULT.max_workers = max_workers
        return _DEFAULT


def shutdown_default_executor() -> None:
    """Tear down the shared pool (tests; long-lived host processes)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.shutdown()
            _DEFAULT = None
