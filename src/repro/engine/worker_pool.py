"""Persistent sweep execution: warm worker pools + shared-memory transport.

The harness's original ``executor="process"`` path rebuilt the world per
call: every ``run_suite`` spawned a fresh
:class:`~concurrent.futures.ProcessPoolExecutor`, pickled every dataset's
CSR arrays across the pipe, and started each worker with a cold plan
cache -- so at smoke scale the process executor *lost* to serial (see
``BENCH_sweep.json``).  This module amortizes all three costs, the same
way persistent GPU runtimes amortize context/handle creation across
kernel launches:

:class:`SweepExecutor`
    A reusable, lazily-spawned worker pool.  The pool survives across
    ``run_suite`` calls and across apps; workers are warmed once by an
    initializer (NumPy + the app registry imported, the persistent plan
    cache attached) and keep their in-memory plan caches between sweeps.
    Use it as a context manager, or share the module-level
    :func:`default_executor` (the harness's ``keep_pool=True``).

Shard batching
    Small datasets are grouped into contiguous batches so one pickle
    crossing carries several shards; big datasets still travel alone.
    Results come back per shard, in submission order.

Shared-memory dataset transport
    CSR array payloads (``row_offsets`` / ``col_indices`` / ``values``)
    are published once via :mod:`multiprocessing.shared_memory` and
    reattached zero-copy in the workers -- the task pickle carries a
    small handle instead of the arrays.  Problems whose matrices are not
    CSR (or platforms without shared memory) fall back to plain
    pickling; both transports produce identical
    :class:`~repro.evaluation.harness.SweepRow` sets.
"""

from __future__ import annotations

import atexit
import gc
import itertools
import os
import threading
import zlib
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from ..sparse.corpus import Dataset
from ..sparse.csr import CsrMatrix

__all__ = [
    "SweepExecutor",
    "SharedDatasetHandle",
    "default_executor",
    "shutdown_default_executor",
    "TRANSPORTS",
]

#: Dataset transports :class:`SweepExecutor` understands.  ``auto``
#: publishes CSR payloads through shared memory and falls back to
#: pickling anything else; ``shm`` / ``pickle`` force one path.
TRANSPORTS = ("auto", "shm", "pickle")

_INT = np.dtype(np.int64)
_FLT = np.dtype(np.float64)


def _shared_memory():
    """The stdlib shared-memory module, or ``None`` when unsupported."""
    try:
        from multiprocessing import shared_memory

        return shared_memory
    except ImportError:  # pragma: no cover - always present on CPython
        return None


# ----------------------------------------------------------------------
# Shared-memory dataset transport
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedDatasetHandle:
    """Picklable stand-in for a :class:`Dataset` whose arrays live in shm.

    The handle carries only names, counts and the block name; workers
    rebuild the CSR matrix as zero-copy NumPy views over the attached
    buffer.  Layout inside the block: ``row_offsets`` (int64,
    ``rows + 1``), then ``col_indices`` (int64, ``nnz``), then ``values``
    (float64, ``nnz``), contiguous.
    """

    shm_name: str
    dataset_name: str
    family: str
    rows: int
    cols: int
    nnz: int
    meta: dict = field(default_factory=dict)

    def _layout(self) -> tuple[int, int, int]:
        """Byte offsets of (col_indices, values, total_size)."""
        off_cols = (self.rows + 1) * _INT.itemsize
        off_vals = off_cols + self.nnz * _INT.itemsize
        total = off_vals + self.nnz * _FLT.itemsize
        return off_cols, off_vals, total


class _PublishedDataset:
    """Owner-side record of one shm block (parent closes + unlinks).

    Published blocks are cached by the executor across sweeps (``pins``
    guards in-flight use, ``tick`` drives LRU eviction) -- repeated
    sweeps of the same corpus publish each dataset exactly once.
    """

    def __init__(self, handle: SharedDatasetHandle, shm) -> None:
        self.handle = handle
        self.shm = shm
        self.pins = 0
        self.tick = 0
        self.nbytes = shm.size

    def unlink(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - no exports kept here
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def dataset_content_key(dataset: Dataset) -> tuple | None:
    """Cheap content fingerprint of a CSR dataset (publish-cache key).

    Name and shape alone are not enough -- the same corpus name at a
    different scale (or a caller-mutated matrix) must republish -- so the
    key includes CRCs of all three arrays.  The CRC pass is paid on
    every staging, but it costs about as much as one copy of the data --
    cheap against what a hit saves (shm create + copy + worker reattach)
    and trivial against what a miss would otherwise repay per sweep
    (full pickling of the arrays).
    """
    matrix = dataset.matrix
    if not isinstance(matrix, CsrMatrix):
        return None
    return (
        dataset.name,
        matrix.num_rows,
        matrix.num_cols,
        matrix.nnz,
        zlib.crc32(np.ascontiguousarray(matrix.row_offsets, dtype=_INT)),
        zlib.crc32(np.ascontiguousarray(matrix.col_indices, dtype=_INT)),
        zlib.crc32(np.ascontiguousarray(matrix.values, dtype=_FLT)),
    )


def publish_dataset(dataset: Dataset) -> _PublishedDataset | None:
    """Copy one dataset's CSR arrays into a shared-memory block.

    Returns ``None`` when the dataset cannot travel this way (non-CSR
    matrix, shared memory unavailable) -- callers then fall back to
    pickling the dataset itself.
    """
    shared_memory = _shared_memory()
    matrix = dataset.matrix
    if shared_memory is None or not isinstance(matrix, CsrMatrix):
        return None
    handle = SharedDatasetHandle(
        shm_name="",  # filled below; the OS picks the unique name
        dataset_name=dataset.name,
        family=dataset.family,
        rows=matrix.num_rows,
        cols=matrix.num_cols,
        nnz=matrix.nnz,
        meta=dict(dataset.meta),
    )
    off_cols, off_vals, total = handle._layout()
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    except OSError:
        return None
    buf = shm.buf
    np.ndarray((handle.rows + 1,), dtype=_INT, buffer=buf)[:] = matrix.row_offsets
    np.ndarray((handle.nnz,), dtype=_INT, buffer=buf, offset=off_cols)[:] = (
        matrix.col_indices
    )
    np.ndarray((handle.nnz,), dtype=_FLT, buffer=buf, offset=off_vals)[:] = (
        matrix.values
    )
    return _PublishedDataset(replace(handle, shm_name=shm.name), shm)


def attach_dataset(handle: SharedDatasetHandle) -> tuple[Dataset, object]:
    """Worker-side reattach: rebuild the Dataset over the shm buffer.

    Returns ``(dataset, shm)``; the caller must release the block with
    :func:`detach` once the shard's rows are computed.
    """
    shared_memory = _shared_memory()
    assert shared_memory is not None
    # Pool workers are children of the publisher, so they share its
    # resource-tracker process: the attach-side register is a set no-op
    # and exactly one unregister happens at the parent's unlink.  (An
    # *unrelated* attacher would need bpo-39959's unregister dance; this
    # transport never crosses that topology.)
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    off_cols, off_vals, _ = handle._layout()
    matrix = CsrMatrix(
        row_offsets=np.ndarray((handle.rows + 1,), dtype=_INT, buffer=shm.buf),
        col_indices=np.ndarray(
            (handle.nnz,), dtype=_INT, buffer=shm.buf, offset=off_cols
        ),
        values=np.ndarray(
            (handle.nnz,), dtype=_FLT, buffer=shm.buf, offset=off_vals
        ),
        shape=(handle.rows, handle.cols),
    )
    dataset = Dataset(
        name=handle.dataset_name,
        family=handle.family,
        matrix=matrix,
        meta=dict(handle.meta),
    )
    return dataset, shm


def detach(shm) -> None:
    """Close a worker-side attachment, tolerating lingering array views."""
    try:
        shm.close()
    except BufferError:
        gc.collect()  # drop cycles still holding buffer views
        try:
            shm.close()
        except BufferError:  # released at worker exit instead
            pass


# ----------------------------------------------------------------------
# Pool worker entry points (module-level: picklable by reference)
# ----------------------------------------------------------------------
def _worker_warmup(cache_dir: str | None, store_path: str | None) -> None:
    """Pool initializer: pay the import + cache-attach cost exactly once."""
    import numpy  # noqa: F401  (pre-faulted into the worker)

    from .. import apps  # noqa: F401  (registers every app and schedule)
    from .plan_cache import configure_global_plan_cache

    if store_path is not None:
        configure_global_plan_cache(store_path=store_path)
    elif cache_dir is not None:
        configure_global_plan_cache(cache_dir=cache_dir)


#: Worker-side attachment cache: ``shm_name -> (shm, Dataset)``, in LRU
#: order (oldest first).  Block names are never reused by the OS within a
#: session, so a cached entry can never alias different content; the
#: parent keeps a published block alive for at least as long as any task
#: referencing it is in flight.
_ATTACHED: OrderedDict[str, tuple] = OrderedDict()
_ATTACHED_CAP = 128


def _attached_dataset(handle: SharedDatasetHandle) -> Dataset:
    """Reattach (or reuse) one shm-backed dataset in this worker."""
    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        _ATTACHED.move_to_end(handle.shm_name)
        return cached[1]
    dataset, shm = attach_dataset(handle)
    while len(_ATTACHED) >= _ATTACHED_CAP:
        # Evict least-recently-used, never the entry just fetched.
        _, (old_shm, old_ds) = _ATTACHED.popitem(last=False)
        del old_ds  # drop the buffer views before closing
        detach(old_shm)
    _ATTACHED[handle.shm_name] = (shm, dataset)
    return dataset


def _run_batch(tasks: tuple) -> list:
    """Run one batch of shard tasks; one pickle crossing each way."""
    from ..evaluation.harness import _run_shard

    out = []
    for task in tasks:
        if isinstance(task.dataset, SharedDatasetHandle):
            task = replace(task, dataset=_attached_dataset(task.dataset))
        out.append(_run_shard(task))
    return out


def _worker_probe(_=None) -> int:
    """Identify the worker a task landed on (tests, pool introspection)."""
    return os.getpid()


# ----------------------------------------------------------------------
# The persistent executor
# ----------------------------------------------------------------------
class SweepExecutor:
    """A reusable process pool for per-dataset sweep shards.

    The pool is spawned lazily on the first :meth:`map_shards` and then
    *kept*: later sweeps -- same app or not -- reuse the warm workers,
    whose module imports and in-memory plan caches persist.  Width is
    ``max_workers`` when given, else ``os.cpu_count()`` capped by the
    sweep's shard count; a sweep wanting a *wider* pool than the current
    one respawns it at the new high-water width (a one-time warmth loss
    per growth step), and a pool broken by a crashed worker is respawned
    on the next sweep instead of failing forever.

    Use as a context manager for scoped pools, or share the module-level
    :func:`default_executor` across calls (``run_suite(...,
    keep_pool=True)``).
    """

    #: Default budget for the publish cache (bytes of live shm blocks).
    DEFAULT_SHM_CACHE_BYTES = 256 * 1024 * 1024

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        transport: str = "auto",
        batch_atoms: int | None = None,
        shm_cache_bytes: int | None = None,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        self.max_workers = max_workers
        self.transport = transport
        self.batch_atoms = batch_atoms
        self.shm_cache_bytes = (
            self.DEFAULT_SHM_CACHE_BYTES if shm_cache_bytes is None
            else shm_cache_bytes
        )
        self._pool: ProcessPoolExecutor | None = None
        self._width = 0
        self._lock = threading.Lock()
        self._shm_lock = threading.Lock()
        self._published: dict[tuple, _PublishedDataset] = {}
        self._clock = itertools.count()
        self.sweeps = 0
        self.batches = 0
        self.shards = 0
        self.pool_spawns = 0
        self.shm_published = 0
        self.shm_reused = 0

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self, num_shards: int) -> ProcessPoolExecutor:
        with self._lock:
            want = self.max_workers
            if want is None:
                want = min(os.cpu_count() or 1, max(1, num_shards))
            want = max(1, want)
            if self._pool is not None:
                broken = getattr(self._pool, "_broken", False)
                if not broken and self._width >= want:
                    return self._pool  # reuse warmth over shrinking
                # Grow to the new high-water width, or replace a pool a
                # crashed worker has broken (BrokenProcessPool poisons a
                # ProcessPoolExecutor permanently; respawning recovers).
                self._pool.shutdown(wait=not broken)
                self._pool = None
            from .plan_cache import global_plan_cache

            cache = global_plan_cache()
            self._pool = ProcessPoolExecutor(
                max_workers=want,
                initializer=_worker_warmup,
                initargs=(
                    str(cache.cache_dir) if cache.cache_dir else None,
                    str(cache.store_path) if cache.store_path else None,
                ),
            )
            self._width = want
            self.pool_spawns += 1
            return self._pool

    @property
    def alive(self) -> bool:
        return self._pool is not None

    @property
    def width(self) -> int:
        return self._width

    def worker_pids(self) -> set[int]:
        """PIDs of the live worker processes (pool-persistence probes)."""
        pool = self._ensure_pool(self._width or 1)
        processes = getattr(pool, "_processes", None)
        if processes:  # stdlib-internal but stable; exact and instant
            return set(processes)
        return set(pool.map(_worker_probe, range(self._width * 4)))

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=wait)
                self._pool = None
                self._width = 0
        with self._shm_lock:
            for entry in self._published.values():
                entry.unlink()
            self._published.clear()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- batching & transport -------------------------------------------
    @staticmethod
    def _payload_atoms(task) -> int:
        dataset = task.dataset
        if isinstance(dataset, SharedDatasetHandle):
            return max(1, dataset.nnz + dataset.rows)
        matrix = getattr(dataset, "matrix", None)
        if matrix is None:
            return 1
        return max(1, int(matrix.nnz) + int(matrix.num_rows))

    #: Per-dataset fixed cost expressed in atom equivalents: at smoke
    #: scale a cell's Python overhead (context, policy, fingerprints)
    #: dwarfs its arithmetic, so weight-balancing on raw atoms alone
    #: would pack many tiny datasets into one straggler batch.
    _BATCH_BASE_WEIGHT = 2000

    def _batch(self, tasks: list, width: int) -> list[tuple]:
        """Split shards into contiguous weight-balanced batches.

        ~2 batches per worker, boundaries at equal quantiles of the
        cumulative weight (atoms plus a fixed per-dataset overhead) --
        the merge-path idea, one level up: batches are the processors,
        datasets the tiles.  ``batch_atoms`` overrides with a greedy
        atom budget per batch.
        """
        if self.batch_atoms is not None:
            batches: list[tuple] = []
            cur: list = []
            cur_atoms = 0
            for task in tasks:
                cur.append(task)
                cur_atoms += self._payload_atoms(task)
                if cur_atoms >= self.batch_atoms:
                    batches.append(tuple(cur))
                    cur, cur_atoms = [], 0
            if cur:
                batches.append(tuple(cur))
            return batches
        weights = np.array(
            [self._payload_atoms(t) + self._BATCH_BASE_WEIGHT for t in tasks],
            dtype=np.float64,
        )
        num_batches = min(len(tasks), max(1, 2 * width))
        cum = np.cumsum(weights)
        quantiles = cum[-1] * np.arange(1, num_batches) / num_batches
        bounds = [0, *np.searchsorted(cum, quantiles, side="left"), len(tasks)]
        return [
            tuple(tasks[lo:hi])
            for lo, hi in zip(bounds, bounds[1:])
            if hi > lo
        ]

    def _stage(self, tasks: list, transport: str) -> tuple[list, list]:
        """Swap dataset payloads for shm handles where the transport allows.

        Publishing goes through the executor's content-keyed cache:
        repeated sweeps of the same corpus pin the already-published
        blocks instead of copying again.  Returns ``(staged_tasks,
        pinned_entries)``; the caller unpins after the sweep.
        """
        if transport == "pickle":
            return list(tasks), []
        staged = []
        pinned: list[_PublishedDataset] = []
        try:
            with self._shm_lock:
                for task in tasks:
                    key = dataset_content_key(task.dataset)
                    entry = None if key is None else self._published.get(key)
                    if entry is None:
                        pub = None if key is None else publish_dataset(task.dataset)
                        if pub is None:
                            if transport == "shm":
                                raise ValueError(
                                    f"dataset {task.dataset.name!r} cannot "
                                    f"travel over shared memory "
                                    f"(transport='shm'); use 'auto' to fall "
                                    f"back to pickling"
                                )
                            staged.append(task)
                            continue
                        entry = pub
                        self._published[key] = entry
                        self.shm_published += 1
                    else:
                        self.shm_reused += 1
                    entry.pins += 1
                    entry.tick = next(self._clock)
                    pinned.append(entry)
                    staged.append(replace(task, dataset=entry.handle))
        except Exception:
            self._unpin(pinned)
            raise
        return staged, pinned

    def _unpin(self, pinned: list) -> None:
        """Release sweep pins, then evict cold blocks over the byte budget."""
        with self._shm_lock:
            for entry in pinned:
                entry.pins -= 1
            total = sum(e.nbytes for e in self._published.values())
            if total <= self.shm_cache_bytes:
                return
            for key, entry in sorted(
                self._published.items(), key=lambda kv: kv[1].tick
            ):
                if total <= self.shm_cache_bytes:
                    break
                if entry.pins > 0:
                    continue
                entry.unlink()
                del self._published[key]
                total -= entry.nbytes

    # -- execution ------------------------------------------------------
    def map_shards(self, tasks, *, transport: str | None = None) -> list[list]:
        """Run every shard task; return per-shard row lists in order.

        Equivalent to ``[ _run_shard(t) for t in tasks ]`` but fanned out
        over the (persistent) pool, with batching and the configured
        dataset transport.  Exceptions raised inside a worker propagate.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        transport = self.transport if transport is None else transport
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        pool = self._ensure_pool(len(tasks))
        staged, pinned = self._stage(tasks, transport)
        batches = self._batch(staged, self._width)
        try:
            per_batch = list(pool.map(_run_batch, batches))
        finally:
            self._unpin(pinned)
        self.sweeps += 1
        self.batches += len(batches)
        self.shards += len(tasks)
        return [shard_rows for batch in per_batch for shard_rows in batch]

    def info(self) -> dict:
        with self._shm_lock:
            shm_cached = len(self._published)
            shm_cached_bytes = sum(e.nbytes for e in self._published.values())
        return {
            "alive": self.alive,
            "width": self._width,
            "transport": self.transport,
            "sweeps": self.sweeps,
            "batches": self.batches,
            "shards": self.shards,
            "pool_spawns": self.pool_spawns,
            "shm_published": self.shm_published,
            "shm_reused": self.shm_reused,
            "shm_cached": shm_cached,
            "shm_cached_bytes": shm_cached_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"width={self._width}" if self.alive else "idle"
        return f"SweepExecutor({state}, sweeps={self.sweeps})"


# ----------------------------------------------------------------------
# Module-level default: one warm pool per process, shared by every
# ``run_suite(..., keep_pool=True)`` call site.
# ----------------------------------------------------------------------
_DEFAULT: SweepExecutor | None = None
_DEFAULT_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def default_executor(max_workers: int | None = None) -> SweepExecutor:
    """The process-wide persistent :class:`SweepExecutor`.

    Created lazily on first use and shut down at interpreter exit, or
    explicitly via :func:`shutdown_default_executor`.  An explicit
    ``max_workers`` raises the shared pool's width (the pool grows on
    the next sweep); it never shrinks a warm pool.
    """
    global _DEFAULT, _ATEXIT_REGISTERED
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = SweepExecutor(max_workers=max_workers)
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_default_executor)
                _ATEXIT_REGISTERED = True
        elif max_workers is not None and (
            _DEFAULT.max_workers is None or max_workers > _DEFAULT.max_workers
        ):
            _DEFAULT.max_workers = max_workers
        return _DEFAULT


def shutdown_default_executor() -> None:
    """Tear down the shared pool (tests; long-lived host processes)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.shutdown()
            _DEFAULT = None
