"""Append-only single-file plan journal with an in-memory index.

The per-file disk layer of :mod:`repro.engine.plan_cache` writes one
pickle per planned launch.  That is fine for a smoke grid, but
corpus-squared workloads (full scale x every schedule x every launch
variant) produce tens of thousands of tiny files -- every warm start
then pays one ``open``/``stat`` per plan, and the cache directory
becomes the slowest thing about a "cached" sweep.  This module is the
single-file replacement: one journal holds every plan, opened once.

Format
------
::

    header  := MAGIC (8 bytes) | store_version (<I)
    record  := payload_len (<I) | crc32(payload) (<I) | payload
    payload := pickle((key, value))

Records are only ever *appended*, each in a single ``write(2)`` on a
file descriptor opened with ``O_APPEND`` -- so concurrent writers
(process-pool workers sharing one store) interleave whole records, never
bytes.  Readers build an in-memory ``key -> (offset, length, crc)``
index by scanning the journal once at open; the newest record for a key
wins.  Updated keys leave dead records behind; :meth:`compact` rewrites
the journal with only the live ones (atomic ``os.replace``).

Failure tolerance mirrors the per-file layer's contract -- the store can
only ever skip recomputation, never change behaviour:

* a truncated tail (a writer died mid-append) stops the scan at the last
  whole record; the next append truncates the garbage away first;
* a corrupt record (CRC mismatch) also stops the scan -- framing after a
  flipped length byte cannot be trusted -- and everything from that
  point reads as a miss, falling through to live planning;
* a foreign or version-bumped header reads the whole file as cold; the
  first append rotates the journal to a fresh header;
* :meth:`get` re-verifies the CRC *and* the stored key on every read, so
  a stale index entry (e.g. another process compacted the file under us)
  degrades to a miss instead of a wrong plan.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "PlanStore",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "PLAN_STORE_COMPACT_RATIO_ENV",
]

#: Bump when the journal framing (header/record layout) changes; old
#: files then read as cold and are rotated on the first append.
STORE_FORMAT_VERSION = 1

STORE_MAGIC = b"RPSTORE1"

#: Dead-record ratio above which :meth:`PlanStore.put` auto-compacts the
#: journal.  ``0`` (or any non-positive value) disables auto-compaction.
PLAN_STORE_COMPACT_RATIO_ENV = "REPRO_PLAN_STORE_COMPACT_RATIO"

#: Default auto-compaction trigger: compact once half the journal is dead.
DEFAULT_COMPACT_RATIO = 0.5

#: Auto-compaction only fires once this many records are dead -- ratio
#: alone would thrash small journals (two updates of one key is "50%
#: dead") where compaction saves nothing worth a rewrite.
AUTO_COMPACT_MIN_DEAD = 64


def _compact_ratio_from_env() -> float:
    """The auto-compaction threshold from the environment knob.

    A malformed value warns and falls back to the default -- a tuning
    typo must degrade the optimization, never crash every planner (same
    contract as the problem-cache budgets).
    """
    raw = os.environ.get(PLAN_STORE_COMPACT_RATIO_ENV)
    if not raw:
        return DEFAULT_COMPACT_RATIO
    try:
        return float(raw)
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring non-numeric {PLAN_STORE_COMPACT_RATIO_ENV}={raw!r}; "
            f"using the default compaction ratio",
            RuntimeWarning,
            stacklevel=3,
        )
        return DEFAULT_COMPACT_RATIO

_HEADER = struct.Struct("<8sI")
_RECORD = struct.Struct("<II")

#: Sanity bound on one record's payload; a declared length beyond this is
#: treated as framing garbage, not an allocation request.
_MAX_PAYLOAD = 256 * 1024 * 1024


class PlanStore:
    """A key-value journal of planned launches (one file, many plans).

    ``get``/``put`` move arbitrary picklable ``(key, value)`` pairs; the
    plan cache stores versioned stats payloads, but the store itself is
    schema-agnostic.  All methods are thread-safe; cross-process safety
    comes from whole-record ``O_APPEND`` writes plus read-time
    verification.
    """

    def __init__(self, path: str | Path, *, compact_ratio: float | None = None):
        self.path = Path(path)
        #: Dead-record ratio that triggers auto-compaction on ``put``
        #: (``None`` reads ``REPRO_PLAN_STORE_COMPACT_RATIO``, defaulting
        #: to 0.5; non-positive disables).
        self.compact_ratio = (
            _compact_ratio_from_env() if compact_ratio is None
            else float(compact_ratio)
        )
        self.hits = 0
        self.appends = 0
        self.auto_compactions = 0
        #: Records superseded by a newer append for the same key (plus
        #: records whose payload could not be unpickled at scan time).
        self.dead_records = 0
        #: True when the open scan hit a truncated tail or corrupt record.
        self.scan_damage = False
        self._index: dict[Any, tuple[int, int, int]] = {}
        self._lock = threading.RLock()
        self._write_fd: int | None = None
        self._read_fh = None
        #: Byte offset one past the last whole, CRC-valid record.
        self._good_end = _HEADER.size
        #: The file predates this store version / is not ours at all; the
        #: first append rewrites it from scratch.
        self._foreign = False
        self._open()

    # ------------------------------------------------------------------
    # Opening & scanning
    # ------------------------------------------------------------------
    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            self._write_header_if_empty(fd)
        finally:
            os.close(fd)
        self._write_fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
        self._read_fh = open(self.path, "rb")
        self._scan()

    @staticmethod
    def _write_header_if_empty(fd: int) -> None:
        """Initialize a brand-new journal, serializing concurrent creators."""
        try:
            import fcntl

            fcntl.flock(fd, fcntl.LOCK_EX)
        except (ImportError, OSError):  # non-POSIX: best effort
            pass
        if os.fstat(fd).st_size == 0:
            os.write(fd, _HEADER.pack(STORE_MAGIC, STORE_FORMAT_VERSION))

    def _scan(self) -> None:
        """Build the key index from one pass over the journal."""
        fh = self._read_fh
        assert fh is not None
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        fh.seek(0)
        head = fh.read(_HEADER.size)
        if len(head) < _HEADER.size:
            self._foreign, self._good_end = True, 0
            return
        magic, version = _HEADER.unpack(head)
        if magic != STORE_MAGIC or version != STORE_FORMAT_VERSION:
            self._foreign, self._good_end = True, 0
            return
        pos = _HEADER.size
        while pos < size:
            hdr = fh.read(_RECORD.size)
            if len(hdr) < _RECORD.size:
                self.scan_damage = True  # truncated tail
                break
            length, crc = _RECORD.unpack(hdr)
            if length == 0 or length > _MAX_PAYLOAD or pos + _RECORD.size + length > size:
                self.scan_damage = True  # implausible framing
                break
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                # A flipped byte poisons everything downstream: record
                # lengths after this point cannot be trusted, so the
                # scan stops and later records read as misses.
                self.scan_damage = True
                break
            pos += _RECORD.size + length
            self._good_end = pos
            try:
                key, _value = pickle.loads(payload)
            except Exception:  # framed fine, payload unusable: skip it
                self.dead_records += 1
                continue
            try:
                if key in self._index:
                    self.dead_records += 1
                self._index[key] = (pos - length, length, crc)
            except TypeError:  # unhashable key from a foreign writer
                self.dead_records += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: Any) -> Any | None:
        """Return the newest value stored for ``key``, or ``None``.

        Every read re-verifies the record CRC and the stored key, so a
        stale or corrupted index entry degrades to a miss.
        """
        with self._lock:
            loc = self._index.get(key)
            if loc is None or self._read_fh is None:
                return None
            offset, length, crc = loc
            try:
                self._read_fh.seek(offset)
                payload = self._read_fh.read(length)
            except OSError:
                payload = b""
            if len(payload) != length or zlib.crc32(payload) != crc:
                del self._index[key]
                return None
            try:
                stored_key, value = pickle.loads(payload)
                matches = stored_key == key
            except Exception:
                # Unpicklable payload, or a key comparison that raises
                # (e.g. a spec type that since grew fields): a record we
                # cannot trust is a miss, never an error.
                del self._index[key]
                return None
            if not matches:
                del self._index[key]
                return None
            self.hits += 1
            return value

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def keys(self) -> Iterator[Any]:
        with self._lock:
            return iter(list(self._index))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: Any, value: Any) -> None:
        """Append one record; the in-memory index points at it immediately."""
        payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
        record = _RECORD.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            if self._write_fd is None:
                raise ValueError("PlanStore is closed")
            if self._foreign:
                self._rotate()
            elif self.scan_damage:
                self._truncate_damage()
            # With O_APPEND the kernel picks the final offset; under a
            # concurrent writer in another process our guess can be stale,
            # in which case get() detects the mismatch and misses benignly.
            offset = os.fstat(self._write_fd).st_size
            os.write(self._write_fd, record)
            if key in self._index:
                self.dead_records += 1
            self._index[key] = (offset + _RECORD.size, len(payload), zlib.crc32(payload))
            self.appends += 1
            if self._should_auto_compact():
                self.compact()
                self.auto_compactions += 1

    def _should_auto_compact(self) -> bool:
        """True when the dead-record ratio crossed the compaction trigger."""
        if self.compact_ratio <= 0 or self.dead_records < AUTO_COMPACT_MIN_DEAD:
            return False
        total = self.dead_records + len(self._index)
        return self.dead_records >= self.compact_ratio * total

    def _truncate_damage(self) -> None:
        """Drop a damaged tail so new appends stay scannable."""
        try:
            os.truncate(self.path, self._good_end)
        except OSError:
            pass
        self.scan_damage = False

    def _rotate(self) -> None:
        """Replace a foreign/old-version file with a fresh empty journal."""
        self._replace_with([])
        self._foreign = False
        self.scan_damage = False

    def compact(self) -> int:
        """Rewrite the journal keeping only the newest record per key.

        Returns the number of dead records dropped.  The rewrite is
        atomic (temp file + ``os.replace``); a concurrent writer holding
        the old inode keeps appending to the orphan, which loses only
        *acceleration* -- plans are pure, so nothing can go wrong beyond
        a future re-plan.
        """
        with self._lock:
            live: list[tuple[Any, Any]] = []
            for key in list(self._index):
                value = self.get(key)
                if value is not None:
                    live.append((key, value))
            dropped = self.dead_records
            self._replace_with(live)
            self.dead_records = 0
            self.scan_damage = False
            self._foreign = False
            return dropped

    def _replace_with(self, items: list[tuple[Any, Any]]) -> None:
        """Atomically rewrite the journal with exactly ``items``."""
        tmp = self.path.with_suffix(f".tmp-{os.getpid()}-{threading.get_ident()}")
        index: dict[Any, tuple[int, int, int]] = {}
        with open(tmp, "wb") as fh:
            fh.write(_HEADER.pack(STORE_MAGIC, STORE_FORMAT_VERSION))
            pos = _HEADER.size
            for key, value in items:
                payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
                crc = zlib.crc32(payload)
                fh.write(_RECORD.pack(len(payload), crc) + payload)
                pos += _RECORD.size + len(payload)
                index[key] = (pos - len(payload), len(payload), crc)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._close_fds()
        self._write_fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
        self._read_fh = open(self.path, "rb")
        self._index = index
        self._good_end = _HEADER.size if not items else max(
            off + length for off, length, _ in index.values()
        )

    # ------------------------------------------------------------------
    # Lifecycle & reporting
    # ------------------------------------------------------------------
    def _close_fds(self) -> None:
        if self._write_fd is not None:
            os.close(self._write_fd)
            self._write_fd = None
        if self._read_fh is not None:
            self._read_fh.close()
            self._read_fh = None

    def close(self) -> None:
        with self._lock:
            self._close_fds()

    def info(self) -> dict:
        with self._lock:
            try:
                file_bytes = os.path.getsize(self.path)
            except OSError:
                file_bytes = 0
            return {
                "path": str(self.path),
                "records": len(self._index),
                "appends": self.appends,
                "hits": self.hits,
                "dead_records": self.dead_records,
                "file_bytes": file_bytes,
                "compact_ratio": self.compact_ratio,
                "auto_compactions": self.auto_compactions,
                "scan_damage": self.scan_damage,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanStore({str(self.path)!r}, records={len(self)})"
