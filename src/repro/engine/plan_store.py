"""Append-only single-file plan journal with an in-memory index.

The per-file disk layer of :mod:`repro.engine.plan_cache` writes one
pickle per planned launch.  That is fine for a smoke grid, but
corpus-squared workloads (full scale x every schedule x every launch
variant) produce tens of thousands of tiny files -- every warm start
then pays one ``open``/``stat`` per plan, and the cache directory
becomes the slowest thing about a "cached" sweep.  This module is the
single-file replacement: one journal holds every plan, opened once.

The on-disk framing (magic/versioned header, ``<II`` len+crc32 records,
single ``O_APPEND`` write per record, truncated-tail and corrupt-record
tolerance) lives in :class:`~repro.engine.journal.RecordJournal`; this
module layers the plan-specific parts on top::

    payload := pickle((key, value))

Readers build an in-memory ``key -> RecordLocation`` index from one
journal scan at open; the newest record for a key wins.  Updated keys
leave dead records behind; :meth:`PlanStore.compact` rewrites the
journal with only the live ones (atomic ``os.replace``), and ``put``
auto-compacts past a dead-record ratio.

Failure tolerance mirrors the per-file layer's contract -- the store can
only ever skip recomputation, never change behaviour: damaged tails and
corrupt records read as misses (see :mod:`repro.engine.journal`), and
:meth:`PlanStore.get` re-verifies the CRC *and* the stored key on every
read, so a stale index entry (e.g. another process compacted the file
under us) degrades to a miss instead of a wrong plan.
"""

from __future__ import annotations

import os
import pickle
import threading
from pathlib import Path
from typing import Any, Iterator

from .journal import (
    JOURNAL_HEADER as _HEADER,
    JOURNAL_RECORD as _RECORD,
    RecordJournal,
    RecordLocation,
)

__all__ = [
    "PlanStore",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "PLAN_STORE_COMPACT_RATIO_ENV",
]

#: Bump when the journal framing (header/record layout) changes; old
#: files then read as cold and are rotated on the first append.
STORE_FORMAT_VERSION = 1

STORE_MAGIC = b"RPSTORE1"

#: Dead-record ratio above which :meth:`PlanStore.put` auto-compacts the
#: journal.  ``0`` (or any non-positive value) disables auto-compaction.
PLAN_STORE_COMPACT_RATIO_ENV = "REPRO_PLAN_STORE_COMPACT_RATIO"

#: Default auto-compaction trigger: compact once half the journal is dead.
DEFAULT_COMPACT_RATIO = 0.5

#: Auto-compaction only fires once this many records are dead -- ratio
#: alone would thrash small journals (two updates of one key is "50%
#: dead") where compaction saves nothing worth a rewrite.
AUTO_COMPACT_MIN_DEAD = 64


def _compact_ratio_from_env() -> float:
    """The auto-compaction threshold from the environment knob.

    A malformed value warns and falls back to the default -- a tuning
    typo must degrade the optimization, never crash every planner (same
    contract as the problem-cache budgets).
    """
    raw = os.environ.get(PLAN_STORE_COMPACT_RATIO_ENV)
    if not raw:
        return DEFAULT_COMPACT_RATIO
    try:
        return float(raw)
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring non-numeric {PLAN_STORE_COMPACT_RATIO_ENV}={raw!r}; "
            f"using the default compaction ratio",
            RuntimeWarning,
            stacklevel=3,
        )
        return DEFAULT_COMPACT_RATIO


class PlanStore:
    """A key-value journal of planned launches (one file, many plans).

    ``get``/``put`` move arbitrary picklable ``(key, value)`` pairs; the
    plan cache stores versioned stats payloads, but the store itself is
    schema-agnostic.  All methods are thread-safe; cross-process safety
    comes from the record journal's whole-record ``O_APPEND`` writes
    plus read-time verification.
    """

    def __init__(self, path: str | Path, *, compact_ratio: float | None = None):
        self.path = Path(path)
        #: Dead-record ratio that triggers auto-compaction on ``put``
        #: (``None`` reads ``REPRO_PLAN_STORE_COMPACT_RATIO``, defaulting
        #: to 0.5; non-positive disables).
        self.compact_ratio = (
            _compact_ratio_from_env() if compact_ratio is None
            else float(compact_ratio)
        )
        self.hits = 0
        self.appends = 0
        self.auto_compactions = 0
        self.write_errors = 0
        self._write_error_warned = False
        #: Records superseded by a newer append for the same key (plus
        #: records whose payload could not be unpickled at scan time).
        self.dead_records = 0
        self._index: dict[Any, RecordLocation] = {}
        self._lock = threading.RLock()
        self._journal = RecordJournal(
            self.path, magic=STORE_MAGIC, version=STORE_FORMAT_VERSION
        )
        self._build_index()

    def _build_index(self) -> None:
        """Build the key index from one pass over the journal."""
        for location, payload in self._journal.records():
            try:
                key, _value = pickle.loads(payload)
            except Exception:  # framed fine, payload unusable: skip it
                self.dead_records += 1
                continue
            try:
                if key in self._index:
                    self.dead_records += 1
                self._index[key] = location
            except TypeError:  # unhashable key from a foreign writer
                self.dead_records += 1

    @property
    def scan_damage(self) -> bool:
        """True when the open scan hit a truncated tail or corrupt record."""
        return self._journal.scan_damage

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: Any) -> Any | None:
        """Return the newest value stored for ``key``, or ``None``.

        Every read re-verifies the record CRC and the stored key, so a
        stale or corrupted index entry degrades to a miss.
        """
        with self._lock:
            location = self._index.get(key)
            if location is None:
                return None
            payload = self._journal.read(location)
            if payload is None:
                del self._index[key]
                return None
            try:
                stored_key, value = pickle.loads(payload)
                matches = stored_key == key
            except Exception:
                # Unpicklable payload, or a key comparison that raises
                # (e.g. a spec type that since grew fields): a record we
                # cannot trust is a miss, never an error.
                del self._index[key]
                return None
            if not matches:
                del self._index[key]
                return None
            self.hits += 1
            return value

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def keys(self) -> Iterator[Any]:
        with self._lock:
            return iter(list(self._index))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: Any, value: Any) -> None:
        """Append one record; the in-memory index points at it immediately.

        A failed append (disk full, injected journal fault) degrades to
        not persisting *this* record -- plans are pure, so losing one
        costs a future re-plan, never correctness.  The failure is
        counted (``write_errors``) and warned once per store.
        """
        payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            if self._journal.closed:
                raise ValueError("PlanStore is closed")
            try:
                location = self._journal.append(payload)
            except (OSError, RuntimeError) as exc:
                self.write_errors += 1
                if not self._write_error_warned:
                    self._write_error_warned = True
                    import warnings

                    warnings.warn(
                        f"plan-store append to {self.path} failed "
                        f"({type(exc).__name__}: {exc}); the plan stays "
                        f"usable in memory but was not persisted",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                return
            if key in self._index:
                self.dead_records += 1
            self._index[key] = location
            self.appends += 1
            if self._should_auto_compact():
                self.compact()
                self.auto_compactions += 1

    def _should_auto_compact(self) -> bool:
        """True when the dead-record ratio crossed the compaction trigger."""
        if self.compact_ratio <= 0 or self.dead_records < AUTO_COMPACT_MIN_DEAD:
            return False
        total = self.dead_records + len(self._index)
        return self.dead_records >= self.compact_ratio * total

    def compact(self) -> int:
        """Rewrite the journal keeping only the newest record per key.

        Returns the number of dead records dropped.  The rewrite is
        atomic (temp file + ``os.replace``); a concurrent writer holding
        the old inode keeps appending to the orphan, which loses only
        *acceleration* -- plans are pure, so nothing can go wrong beyond
        a future re-plan.
        """
        with self._lock:
            live: list[tuple[Any, Any]] = []
            for key in list(self._index):
                value = self.get(key)
                if value is not None:
                    live.append((key, value))
            dropped = self.dead_records
            locations = self._journal.rewrite(
                pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                for item in live
            )
            self._index = {
                key: location
                for (key, _value), location in zip(live, locations)
            }
            self.dead_records = 0
            return dropped

    # ------------------------------------------------------------------
    # Lifecycle & reporting
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._journal.close()

    def info(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path),
                "records": len(self._index),
                "appends": self.appends,
                "hits": self.hits,
                "write_errors": self.write_errors,
                "dead_records": self.dead_records,
                "file_bytes": self._journal.file_bytes(),
                "compact_ratio": self.compact_ratio,
                "auto_compactions": self.auto_compactions,
                "scan_damage": self.scan_damage,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanStore({str(self.path)!r}, records={len(self)})"
