"""``repro.engine`` -- the unified execution layer.

This package is the refactor of the per-app execution plumbing into one
subsystem, mirroring the paper's separation of concerns at the code
level:

* **Registry** (:mod:`.registry`) -- each application is declared once
  as an :class:`AppSpec`: a driver written against the Runtime API, an
  oracle, a sweep-problem builder, optional hardwired baselines.
  :func:`run_app` is the single entry point the public app functions
  delegate to.
* **Context** (:mod:`.context`) -- :class:`ExecutionContext`, the one
  frozen, picklable execution-selection object: engine name, device
  spec, :class:`~repro.core.policy.SchedulePolicy`, launch override,
  schedule options, plan-cache directory and device count.  Every public
  entry point accepts ``ctx=``; the legacy loose kwargs are a shim over
  :meth:`ExecutionContext.from_kwargs`.
* **Dispatch** (:mod:`.dispatch`) -- pluggable engines behind a registry
  (:func:`register_engine` / :func:`available_engines` /
  :func:`get_engine`), mirroring the schedule registry.
  :class:`VectorEngine` produces the functional result with NumPy and
  prices the launch with the schedule's analytic planner;
  :class:`SimtEngine` interprets the kernel body thread-by-thread on the
  simulated GPU and folds the measured charges with the same cost model;
  :class:`~repro.engine.multi_gpu.MultiGpuEngine` partitions the
  workload across simulated devices with the same schedules, so every
  registered app inherits multi-device sweeps.  Applications describe
  launches; they never branch on an engine name.
* **Plan cache** (:mod:`.plan_cache`) -- planning is pure, so the vector
  engine memoizes :meth:`Schedule.plan` keyed by (schedule, launch
  geometry, work content, costs, device): corpus sweeps stop re-planning
  identical launches.  An optional disk layer persists plans across
  processes in one of two layouts: one file per plan (``plan_cache_dir``
  / ``REPRO_PLAN_CACHE_DIR``) or the corpus-scale append-only
  single-file journal of :mod:`.plan_store` (``plan_store`` /
  ``REPRO_PLAN_STORE``), so repeated figure benches and process-pool
  sweep workers start warm.
* **Worker pool** (:mod:`.worker_pool`) -- :class:`SweepExecutor`, the
  persistent process pool behind ``executor="process"`` sweeps: warm
  workers survive across ``run_suite`` calls (``keep_pool=True`` shares
  the module-wide :func:`default_executor`), small shards are batched
  into one pickle crossing, and dataset payloads travel through
  ``multiprocessing.shared_memory`` as array bundles -- pluggable
  :class:`ShmCodec` packers cover CSR matrices, COO sparse tensors and
  dense arrays -- instead of the pickle stream.  Warm workers also keep
  a bounded content-keyed :class:`ProblemCache` of built problem/oracle
  pairs, making steady-state sweeps rebuild-free.
* **Seeding** (:mod:`.seeding`) -- the one deterministic input-vector
  helper shared by the CLI, the harness and the tests.

The layering is strict: ``engine`` depends on ``core`` + ``gpusim`` +
``sparse`` only; ``apps`` depends on ``engine``; ``evaluation`` and the
CLI consume both through the registry.
"""

from ..core.policy import (
    FixedPolicy,
    HeuristicPolicy,
    OracleBestPolicy,
    PerKernelPolicy,
    PolicyError,
    SchedulePolicy,
    as_policy,
)
from .dispatch import (
    Engine,
    EngineError,
    Runtime,
    SimtEngine,
    UnknownEngineError,
    VectorEngine,
    available_engines,
    engine_description,
    ensure_known_engine,
    get_engine,
    register_engine,
    resolve_schedule,
)
from .compiled import (
    CompilationCache,
    CompiledEngine,
    CompiledKernel,
    EffectDecl,
    clear_compilation_cache,
    compilation_cache,
    compilation_cache_stats,
    declare_kernel_effects,
    effect_declarations,
    numba_available,
    precompile_kernels,
    register_jit_warmup,
    registered_warmups,
    tile_writer_counts,
)
from .multi_gpu import MultiGpuEngine
from .context import DEFAULT_CONTEXT, ExecutionContext
from .plan_cache import (
    CACHE_DIR_ENV,
    CACHE_FORMAT_VERSION,
    PLAN_STORE_ENV,
    PlanCache,
    clear_plan_cache,
    configure_global_plan_cache,
    global_plan_cache,
    work_fingerprint,
)
from .journal import RecordJournal, RecordLocation
from .plan_store import (
    PLAN_STORE_COMPACT_RATIO_ENV,
    STORE_FORMAT_VERSION,
    PlanStore,
)
from .worker_pool import (
    SHARED_ORACLE_BYTES_ENV,
    TRANSPORTS,
    ArrayBundleHandle,
    ProblemCache,
    SharedPayloadHandle,
    ShmCodec,
    SweepExecutor,
    attach_payload,
    clear_problem_cache,
    default_executor,
    home_slot,
    install_signal_cleanup,
    problem_cache,
    publish_payload,
    register_shm_codec,
    shutdown_default_executor,
)
from .registry import (
    AppSpec,
    available_apps,
    default_match,
    get_app,
    register_app,
    run_app,
)
from .seeding import DEFAULT_SEED, input_matrix, input_vector

#: Deprecated alias for :func:`available_engines` -- the engine set is a
#: registry now, not a hard-coded tuple.
ENGINES = available_engines()

__all__ = [
    "SchedulePolicy",
    "FixedPolicy",
    "HeuristicPolicy",
    "PerKernelPolicy",
    "OracleBestPolicy",
    "PolicyError",
    "as_policy",
    "ENGINES",
    "Engine",
    "EngineError",
    "UnknownEngineError",
    "Runtime",
    "SimtEngine",
    "VectorEngine",
    "MultiGpuEngine",
    "CompiledEngine",
    "CompiledKernel",
    "CompilationCache",
    "EffectDecl",
    "declare_kernel_effects",
    "effect_declarations",
    "tile_writer_counts",
    "compilation_cache",
    "compilation_cache_stats",
    "clear_compilation_cache",
    "numba_available",
    "precompile_kernels",
    "register_jit_warmup",
    "registered_warmups",
    "available_engines",
    "engine_description",
    "ensure_known_engine",
    "get_engine",
    "register_engine",
    "resolve_schedule",
    "ExecutionContext",
    "DEFAULT_CONTEXT",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "PLAN_STORE_ENV",
    "PLAN_STORE_COMPACT_RATIO_ENV",
    "STORE_FORMAT_VERSION",
    "SHARED_ORACLE_BYTES_ENV",
    "PlanCache",
    "PlanStore",
    "RecordJournal",
    "RecordLocation",
    "SweepExecutor",
    "TRANSPORTS",
    "ArrayBundleHandle",
    "SharedPayloadHandle",
    "ShmCodec",
    "register_shm_codec",
    "publish_payload",
    "attach_payload",
    "home_slot",
    "install_signal_cleanup",
    "ProblemCache",
    "problem_cache",
    "clear_problem_cache",
    "default_executor",
    "shutdown_default_executor",
    "clear_plan_cache",
    "configure_global_plan_cache",
    "global_plan_cache",
    "work_fingerprint",
    "AppSpec",
    "available_apps",
    "default_match",
    "get_app",
    "register_app",
    "run_app",
    "DEFAULT_SEED",
    "input_matrix",
    "input_vector",
]
