"""The compiled engine: JIT the hot loop, keep the schedule's geometry.

:class:`~repro.engine.dispatch.SimtEngine` is the correctness ground
truth, but it *interprets* every kernel body thread-by-thread in Python
-- at corpus scale that interpretation dominates the sweep and no layer
of caching (plans, problems, shm datasets, warm pools) can remove it.
This module removes the interpreter from the loop:

* Applications declare a :class:`CompiledKernel` -- a flat *scalar*
  kernel over plain arrays (jit-able: no closures over Python objects)
  plus the equivalent vectorized NumPy function.  When :mod:`numba` is
  importable the scalar body is ``njit``-compiled once per process;
  otherwise the vectorized function runs, so the engine always exists.
* The schedule still decides the launch: grid/block shape and the
  per-thread work assignment are taken from the schedule's own iterator
  view and *materialized* into per-thread (atoms, tile-visits) load
  vectors -- vectorized per built-in schedule, generically probed for
  custom ones -- then priced through the same
  :func:`~repro.gpusim.cost_model.kernel_stats_from_thread_cycles` fold
  the SIMT interpreter uses.  Schedule choice changes the compiled
  loop structure exactly as it changes the interpreted one.
* Materialized loads live in a process-wide bounded
  :class:`CompilationCache` keyed on (kernel label, schedule identity,
  dtype signature); hit/miss counters surface in every row's ``extras``
  and :func:`precompile_kernels` is wired into the sweep worker
  initializer so warm pools amortize JIT cost.

The engine registers as ``"compiled"`` via
:func:`~repro.engine.dispatch.register_engine`, so it flows through
``ExecutionContext(engine="compiled")``, ``run_suite`` and the CLI
``--engine`` untouched.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.ranges import StepRange
from ..core.schedule import Schedule
from ..gpusim.cost_model import kernel_stats_from_thread_cycles
from .dispatch import Engine, EngineError, register_engine
from .plan_cache import work_fingerprint

__all__ = [
    "CompiledKernel",
    "CompiledEngine",
    "CompilationCache",
    "EffectDecl",
    "compilation_cache",
    "compilation_cache_stats",
    "clear_compilation_cache",
    "declare_kernel_effects",
    "effect_declarations",
    "register_jit_warmup",
    "precompile_kernels",
    "registered_warmups",
    "numba_available",
    "tile_writer_counts",
]

# Numba is an *optional* accelerator: the engine must exist (and produce
# identical results) without it.  Tests monkeypatch this module global to
# force either path.
try:  # pragma: no cover - exercised via monkeypatch either way
    import numba as _NUMBA  # type: ignore
except Exception:  # pragma: no cover - the container has no numba
    _NUMBA = None


def numba_available() -> bool:
    """Whether the JIT path is active (module-global, monkeypatchable)."""
    return _NUMBA is not None


@dataclass(frozen=True)
class CompiledKernel:
    """One jit-able kernel declaration attached to a launch.

    Attributes
    ----------
    label:
        Kernel identity within the application (``"spmv"``, spgemm's
        ``"count"``/``"compute"``, the frontier loop's ``"advance"``).
        Keys the compilation cache together with the schedule identity.
    args:
        Flat argument tuple -- plain ndarrays and scalars only, so the
        scalar body stays compilable (no closures over Python objects in
        the hot loop).
    vector_fn:
        ``vector_fn(*args) -> output``: the vectorized NumPy evaluation,
        bit-for-bit identical to the application's ``compute()`` (by
        construction: apps share one implementation between both).
    scalar_fn:
        Optional ``scalar_fn(*args) -> output`` written as flat loops
        over the same arguments, the body ``numba.njit`` compiles.
        ``None`` keeps the kernel on the vectorized path even when numba
        is present (e.g. output shapes the scalar form cannot build).
    """

    label: str
    args: tuple
    vector_fn: Callable[..., Any]
    scalar_fn: Callable[..., Any] | None = None

    def dtype_signature(self) -> tuple:
        """Hashable dtype/shape-rank signature of the argument tuple."""
        sig = []
        for a in self.args:
            if isinstance(a, np.ndarray):
                sig.append((a.dtype.str, a.ndim))
            else:
                sig.append(type(a).__name__)
        return tuple(sig)


# ----------------------------------------------------------------------
# Function compilation: one njit per scalar body per process.
# ----------------------------------------------------------------------
_FN_CACHE: dict[Callable, Callable] = {}


def _compiled_fn(kernel: CompiledKernel) -> tuple[Callable, str]:
    """Resolve the callable for one kernel: ``(fn, "numba"|"numpy")``.

    The njit wrapper is cached per scalar function object, so each
    (kernel body, dtype signature) pair compiles once per process --
    numba's own dispatcher handles per-signature specialization.
    """
    if _NUMBA is None or kernel.scalar_fn is None:
        return kernel.vector_fn, "numpy"
    fn = _FN_CACHE.get(kernel.scalar_fn)
    if fn is None:
        fn = _NUMBA.njit(kernel.scalar_fn)
        _FN_CACHE[kernel.scalar_fn] = fn
    return fn, "numba"


# ----------------------------------------------------------------------
# Per-thread load materialization.
#
# The compiled engine does not walk the schedule's iterator per thread
# (that is exactly the interpretation being removed); instead each
# built-in schedule's assignment is reproduced in closed form as two
# length-num_threads vectors: atoms consumed and tiles visited per
# thread.  Both agree exactly with a generic probe of the schedule's
# ``tiles()``/``atoms()`` view (asserted in tests), which remains the
# fallback for custom schedules.
# ----------------------------------------------------------------------
def _loads_thread_mapped(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    n_threads = sched.launch.num_threads
    counts = sched.work.atoms_per_tile().astype(np.float64)
    owner = np.arange(sched.work.num_tiles, dtype=np.int64) % n_threads
    atoms = np.bincount(owner, weights=counts, minlength=n_threads)
    visits = np.bincount(owner, minlength=n_threads).astype(np.float64)
    return atoms, visits


def _lane_split(counts: np.ndarray, group_size: int) -> np.ndarray:
    """Per-(tile, lane) atom counts for a lane-strided group walk.

    Lane ``r`` of a group consumes atoms ``lo + r, lo + r + g, ...`` of
    each tile: ``ceil(max(0, count - r) / g)`` atoms.
    """
    lanes = np.arange(group_size, dtype=np.float64)
    return np.ceil(np.maximum(0.0, counts[:, None] - lanes) / group_size)


def _grouped_loads(
    group_size: int,
    n_groups: int,
    n_threads: int,
    counts: np.ndarray,
    group_of_tile: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold tile->group assignment into per-thread (atoms, visits).

    Threads are grouped contiguously by global id (``gtid // g``); every
    lane of a group visits every tile of the group.
    """
    per_lane = _lane_split(counts.astype(np.float64), group_size)
    atoms_gl = np.zeros((n_groups, group_size))
    np.add.at(atoms_gl, group_of_tile, per_lane)
    visits_g = np.bincount(group_of_tile, minlength=n_groups).astype(np.float64)
    atoms = atoms_gl.reshape(-1)
    visits = np.repeat(visits_g, group_size)
    # Launches whose thread count is not an exact multiple of the group
    # size leave a trailing partial group; clip/pad to the true width.
    if atoms.size < n_threads:
        atoms = np.pad(atoms, (0, n_threads - atoms.size))
        visits = np.pad(visits, (0, n_threads - visits.size))
    return atoms[:n_threads], visits[:n_threads]


def _loads_group_per_tile(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """warp_mapped / block_mapped: strided tile->group round-robin."""
    g = sched.group_size()
    n_groups = sched._num_groups()
    counts = sched.work.atoms_per_tile()
    group_of_tile = np.arange(sched.work.num_tiles, dtype=np.int64) % n_groups
    return _grouped_loads(
        g, n_groups, sched.launch.num_threads, counts, group_of_tile
    )


def _loads_group_mapped(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """group_mapped: contiguous tile chunks per group."""
    g = sched.group_size  # attribute, not method, on GroupMappedSchedule
    n_groups = sched.num_groups()
    tpg = sched.tiles_per_group()
    counts = sched.work.atoms_per_tile()
    group_of_tile = np.minimum(
        np.arange(sched.work.num_tiles, dtype=np.int64) // max(1, tpg),
        n_groups - 1,
    )
    return _grouped_loads(
        g, n_groups, sched.launch.num_threads, counts, group_of_tile
    )


def _loads_lrb(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """lrb: warp-per-tile round-robin over the bin-sorted permutation."""
    g = sched.spec.warp_size
    n_groups = sched._num_groups()
    counts = sched.work.atoms_per_tile()[sched.permutation]
    group_of_tile = np.arange(sched.work.num_tiles, dtype=np.int64) % n_groups
    return _grouped_loads(
        g, n_groups, sched.launch.num_threads, counts, group_of_tile
    )


def _loads_merge_path(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    tile_bounds = sched._tile_bounds
    atom_bounds = sched._atom_bounds
    offsets = sched.work.tile_offsets
    num_tiles = sched.work.num_tiles
    i1 = tile_bounds[1:]
    j1 = atom_bounds[1:]
    # A thread additionally touches a partial tail tile when its atom
    # range extends past the last finished tile's start.
    partial = (i1 < num_tiles) & (j1 > offsets[np.minimum(i1, num_tiles)])
    visits = (i1 - tile_bounds[:-1] + partial).astype(np.float64)
    atoms = np.diff(atom_bounds).astype(np.float64)
    return atoms, visits


def _loads_nonzero_split(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    j0 = sched._atom_bounds[:-1]
    j1 = sched._atom_bounds[1:]
    atoms = (j1 - j0).astype(np.float64)
    nonempty = j1 > j0
    first = sched._tile_at_bound[:-1]
    last = sched.work.tile_of_atom(np.maximum(j1 - 1, 0))
    visits = np.where(nonempty, last - first + 1, 0).astype(np.float64)
    return atoms, visits


def _loads_dynamic_queue(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """dynamic_queue under the framework's sequential linearization.

    Threads drain a shared chunk queue; the interpreter runs thread 0 to
    completion first, so it pops every chunk -- the compiled engine
    reproduces that linearization (the planner view prices the balanced
    assignment separately).
    """
    n_threads = sched.launch.num_threads
    atoms = np.zeros(n_threads)
    visits = np.zeros(n_threads)
    atoms[0] = float(sched.work.num_atoms)
    visits[0] = float(sched.work.num_tiles)
    return atoms, visits


_LOAD_BUILDERS: dict[str, Callable[[Schedule], tuple[np.ndarray, np.ndarray]]] = {
    "thread_mapped": _loads_thread_mapped,
    "warp_mapped": _loads_group_per_tile,
    "block_mapped": _loads_group_per_tile,
    "group_mapped": _loads_group_mapped,
    "lrb": _loads_lrb,
    "merge_path": _loads_merge_path,
    "nonzero_split": _loads_nonzero_split,
    "dynamic_queue": _loads_dynamic_queue,
}


class _ProbeCtx:
    """Minimal ThreadCtx stand-in for probing a schedule's iterator view."""

    __slots__ = ("thread_idx", "block_idx", "block_dim", "grid_dim", "spec")

    def __init__(self, thread_idx, block_idx, block_dim, grid_dim, spec):
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.spec = spec

    @property
    def global_thread_id(self) -> int:
        return self.block_idx * self.block_dim + self.thread_idx

    @property
    def num_threads(self) -> int:
        return self.block_dim * self.grid_dim

    @property
    def warp_size(self) -> int:
        return self.spec.warp_size

    @property
    def lane_id(self) -> int:
        return self.thread_idx % self.spec.warp_size

    @property
    def warp_id(self) -> int:
        return self.thread_idx // self.spec.warp_size

    @property
    def global_warp_id(self) -> int:
        return self.global_thread_id // self.spec.warp_size


def _generic_loads(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """Probe ``tiles()``/``atoms()`` thread-by-thread (custom schedules).

    One interpreted pass over the *assignment* only (no kernel body), in
    launch order -- the same linearization the SIMT interpreter applies,
    so stateful schedules (the dynamic queue) agree.
    """
    launch, spec = sched.launch, sched.spec
    n_threads = launch.num_threads
    atoms = np.zeros(n_threads)
    visits = np.zeros(n_threads)
    reset = getattr(sched, "reset_queue", None)
    if reset is not None:
        reset()
    for block_idx in range(launch.grid_dim):
        for thread_idx in range(launch.block_dim):
            ctx = _ProbeCtx(
                thread_idx, block_idx, launch.block_dim, launch.grid_dim, spec
            )
            t = ctx.global_thread_id
            for tile in sched.tiles(ctx):
                rng = sched.atoms(ctx, tile)
                if not isinstance(rng, StepRange):  # pragma: no cover
                    rng = list(rng)
                atoms[t] += len(rng)
                visits[t] += 1
    if reset is not None:
        reset()
    return atoms, visits


def materialize_loads(sched: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """Per-thread (atoms, tile visits) under ``sched``'s assignment."""
    builder = _LOAD_BUILDERS.get(sched.name)
    if builder is not None:
        try:
            return builder(sched)
        except AttributeError:
            # A subclass renamed the internals the closed form reads;
            # fall back to probing its actual iterator view.
            pass
    return _generic_loads(sched)


# ----------------------------------------------------------------------
# Per-tile writer counts: the race-analysis marginal of the loads.
#
# The load builders answer "how much work does each thread get"; the
# static race analysis (repro.analysis.races) needs the transpose --
# "how many distinct threads touch each tile's output".  A thread is a
# *writer* of a tile when the tile-reduction contract every kernel body
# follows would make it store: it holds at least one of the tile's atoms,
# or the schedule lets it claim the whole tile via ``owns_tile_fully``
# (merge-path / nonzero-split full owners write even empty tiles).
# ----------------------------------------------------------------------
def _writers_thread_mapped(sched: Schedule) -> np.ndarray:
    # One owner thread per tile; kernels skip empty tiles (no owner API).
    counts = sched.work.atoms_per_tile()
    return (counts > 0).astype(np.int64)


def _writers_lane_strided(counts: np.ndarray, group_size: int) -> np.ndarray:
    """Lanes stride a tile's atoms, so min(count, group size) lanes hold
    at least one atom -- the tile's distinct atomic writers."""
    return np.minimum(counts.astype(np.int64), int(group_size))


def _writers_group_per_tile(sched: Schedule) -> np.ndarray:
    return _writers_lane_strided(sched.work.atoms_per_tile(), sched.group_size())


def _writers_group_mapped(sched: Schedule) -> np.ndarray:
    return _writers_lane_strided(sched.work.atoms_per_tile(), sched.group_size)


def _writers_lrb(sched: Schedule) -> np.ndarray:
    return _writers_lane_strided(
        sched.work.atoms_per_tile(), sched.spec.warp_size
    )


def _span_stab_writers(
    first: np.ndarray, last: np.ndarray, active: np.ndarray, num_tiles: int
) -> np.ndarray:
    """Count, per tile, the threads whose visited-tile span covers it.

    For contiguous-range schedules (merge-path, nonzero-split) a thread
    writes exactly the tiles of its span: nonempty tiles via its atoms,
    empty interior tiles via ``owns_tile_fully`` -- so span stabbing is
    the writer count for both.
    """
    diff = np.zeros(num_tiles + 1, dtype=np.int64)
    lo = first[active]
    hi = last[active] + 1
    np.add.at(diff, lo, 1)
    np.add.at(diff, np.minimum(hi, num_tiles), -1)
    return np.cumsum(diff[:num_tiles])


def _writers_merge_path(sched: Schedule) -> np.ndarray:
    tile_bounds = sched._tile_bounds
    atom_bounds = sched._atom_bounds
    offsets = sched.work.tile_offsets
    num_tiles = sched.work.num_tiles
    i0, i1 = tile_bounds[:-1], tile_bounds[1:]
    j0, j1 = atom_bounds[:-1], atom_bounds[1:]
    partial = (i1 < num_tiles) & (j1 > offsets[np.minimum(i1, num_tiles)])
    visits = i1 - i0 + partial
    # A thread entering at a drained tile boundary (the previous thread
    # consumed tile i0's last atom without crossing it on the merge
    # path, so j0 == offsets[i0 + 1]) holds no atoms of i0 and does not
    # own it fully: its writes start at the next tile.  Empty first
    # tiles stay: the thread owns them (j0 == offsets[i0]) and the
    # direct-store path touches owned tiles even with zero atoms.
    i0c = np.minimum(i0, num_tiles - 1)
    nonempty_first = offsets[i0c + 1] > offsets[i0c]
    skip_first = (visits > 0) & nonempty_first & (j0 >= offsets[i0c + 1])
    first = i0 + skip_first
    last = i0 + np.maximum(visits, 1) - 1
    return _span_stab_writers(first, last, (visits > 0) & (first <= last),
                              num_tiles)


def _writers_nonzero_split(sched: Schedule) -> np.ndarray:
    j0 = sched._atom_bounds[:-1]
    j1 = sched._atom_bounds[1:]
    num_tiles = sched.work.num_tiles
    first = sched._tile_at_bound[:-1]
    last = sched.work.tile_of_atom(np.maximum(j1 - 1, 0))
    return _span_stab_writers(first, last, j1 > j0, num_tiles)


def _writers_dynamic_queue(sched: Schedule) -> np.ndarray:
    # Chunks are disjoint full-tile ranges popped atomically: whichever
    # thread pops a chunk is its tiles' single writer (empty tiles are
    # skipped by the kernels' ``if n`` guards, as in thread-mapped).
    counts = sched.work.atoms_per_tile()
    return (counts > 0).astype(np.int64)


_WRITER_BUILDERS: dict[str, Callable[[Schedule], np.ndarray]] = {
    "thread_mapped": _writers_thread_mapped,
    "warp_mapped": _writers_group_per_tile,
    "block_mapped": _writers_group_per_tile,
    "group_mapped": _writers_group_mapped,
    "lrb": _writers_lrb,
    "merge_path": _writers_merge_path,
    "nonzero_split": _writers_nonzero_split,
    "dynamic_queue": _writers_dynamic_queue,
}


def _generic_tile_writers(sched: Schedule) -> np.ndarray:
    """Probe the distinct writers of every tile thread-by-thread.

    Ground truth for :func:`tile_writer_counts` (asserted equal to the
    closed forms in tests) and the fallback for custom schedules: walk
    ``tiles()``/``atoms()`` in launch order and record, per tile, each
    thread that holds an atom or fully owns the tile.
    """
    launch, spec = sched.launch, sched.spec
    writers: list[set] = [set() for _ in range(sched.work.num_tiles)]
    owns = getattr(sched, "owns_tile_fully", None)
    reset = getattr(sched, "reset_queue", None)
    if reset is not None:
        reset()
    for block_idx in range(launch.grid_dim):
        for thread_idx in range(launch.block_dim):
            ctx = _ProbeCtx(
                thread_idx, block_idx, launch.block_dim, launch.grid_dim, spec
            )
            t = ctx.global_thread_id
            for tile in sched.tiles(ctx):
                rng = sched.atoms(ctx, tile)
                if not isinstance(rng, StepRange):  # pragma: no cover
                    rng = list(rng)
                if len(rng) > 0 or (owns is not None and owns(ctx, tile)):
                    writers[int(tile)].add(t)
    if reset is not None:
        reset()
    return np.array([len(w) for w in writers], dtype=np.int64)


def tile_writer_counts(sched: Schedule) -> np.ndarray:
    """Distinct threads that write each tile's output under ``sched``.

    Closed form per built-in schedule (the writer-set marginal of the
    load builders above), generically probed for custom ones.  A count
    above 1 means the tile's partial results need combination (the
    ``REDUCE`` verdict of :mod:`repro.analysis.races`).
    """
    builder = _WRITER_BUILDERS.get(sched.name)
    if builder is not None:
        try:
            return builder(sched)
        except AttributeError:
            pass
    return _generic_tile_writers(sched)


# ----------------------------------------------------------------------
# Compilation cache
# ----------------------------------------------------------------------
#: Environment knob bounding the load cache (entries, LRU-evicted).
CACHE_ENTRIES_ENV = "REPRO_COMPILED_CACHE_ENTRIES"
_DEFAULT_CACHE_ENTRIES = 256


class CompilationCache:
    """Bounded LRU of materialized per-thread loads.

    Keyed on (kernel label, schedule identity -- name, device, launch
    geometry, work fingerprint, construction options -- and the argument
    dtype signature): everything that changes the compiled loop
    structure and nothing that doesn't, so steady-state sweeps hit.
    """

    def __init__(self, max_entries: int | None = None):
        if max_entries is None:
            max_entries = int(
                os.environ.get(CACHE_ENTRIES_ENV, _DEFAULT_CACHE_ENTRIES)
            )
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(sched: Schedule, kernel: CompiledKernel) -> tuple | None:
        options = getattr(sched, "construction_options", {})
        try:
            options_key = tuple(sorted(options.items()))
            key = (
                kernel.label,
                sched.name,
                sched.spec.name,
                sched.launch.grid_dim,
                sched.launch.block_dim,
                work_fingerprint(sched.work),
                options_key,
                kernel.dtype_signature(),
            )
            hash(key)
        except TypeError:
            return None  # unhashable options: plan live, count a miss
        return key

    def loads(self, sched: Schedule, kernel: CompiledKernel):
        """Cached (atoms, visits) for one launch; counts hit or miss."""
        key = self.key_for(sched, kernel)
        if key is not None:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached[0], cached[1], "hit"
        self.misses += 1
        atoms, visits = materialize_loads(sched)
        if key is not None:
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
            self._entries[key] = (atoms, visits)
        return atoms, visits, "miss"

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_CACHE = CompilationCache()


def compilation_cache() -> CompilationCache:
    """The process-wide compilation cache."""
    return _CACHE


def compilation_cache_stats() -> dict:
    """Counters of the process-wide cache (tests, diagnostics)."""
    return {
        "entries": len(_CACHE),
        "hits": _CACHE.hits,
        "misses": _CACHE.misses,
    }


def clear_compilation_cache() -> None:
    """Reset the process-wide cache and its counters."""
    _CACHE.clear()


# ----------------------------------------------------------------------
# JIT warm-up registry: apps register their scalar bodies with tiny
# example arguments; pool workers precompile them once at startup so
# steady-state sweeps never pay compilation latency inside a shard.
# ----------------------------------------------------------------------
_WARMUPS: dict[str, tuple[Callable, Callable[[], tuple]]] = {}


def register_jit_warmup(
    label: str, scalar_fn: Callable, example_args: Callable[[], tuple]
) -> None:
    """Declare one precompilable kernel body (idempotent re-register)."""
    _WARMUPS[label] = (scalar_fn, example_args)


def registered_warmups() -> tuple[str, ...]:
    """Labels of every registered precompilable kernel."""
    return tuple(sorted(_WARMUPS))


# ----------------------------------------------------------------------
# Effect declarations: the hook the static analyzer reads.
#
# ``repro.analysis.effects`` infers each kernel's write classes from the
# scalar body's AST; apps whose bodies inference cannot see (spgemm's
# "compute" keeps ``scalar_fn=None``) or that delegate to another app's
# kernels (pagerank drives spmv) register an explicit declaration here.
# Registration is part of the app contract now: a kernel without either
# an inferable scalar body or a declaration fails the ``kernel-parity``
# lint.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EffectDecl:
    """Declared effect hints for one ``(app, kernel label)`` pair.

    Attributes
    ----------
    app / label:
        Registry app name and :class:`CompiledKernel` label.
    scalar_fn:
        The analyzable scalar body, when one exists (usually the same
        function passed to :func:`register_jit_warmup`).
    outputs:
        Names of the output arrays among the scalar body's parameters
        (in addition to any the analyzer infers from return statements).
    writes:
        Explicit ``{array name: write class}`` overrides for arrays the
        AST pass cannot classify -- classes are ``"atom_private"``,
        ``"tile_private"``, ``"global_reduce"``, ``"scatter"``.
    delegates_to:
        App name whose kernel effects this app inherits (pagerank's
        driver composes spmv launches and declares no kernel of its
        own).
    """

    app: str
    label: str
    scalar_fn: Callable[..., Any] | None = None
    outputs: tuple = ()
    writes: Any = None  # dict | None; kept Any so the dataclass stays frozen
    delegates_to: str | None = None


_EFFECT_DECLS: dict[tuple[str, str], EffectDecl] = {}


def declare_kernel_effects(
    app: str,
    label: str,
    *,
    scalar_fn: Callable[..., Any] | None = None,
    outputs: tuple = (),
    writes: dict | None = None,
    delegates_to: str | None = None,
) -> EffectDecl:
    """Register effect hints for one kernel (idempotent re-register)."""
    decl = EffectDecl(
        app=app,
        label=label,
        scalar_fn=scalar_fn,
        outputs=tuple(outputs),
        writes=dict(writes) if writes else None,
        delegates_to=delegates_to,
    )
    _EFFECT_DECLS[(app, label)] = decl
    return decl


def effect_declarations(app: str | None = None) -> tuple[EffectDecl, ...]:
    """Registered declarations, optionally filtered to one app."""
    decls = sorted(_EFFECT_DECLS.items())
    return tuple(
        decl for (a, _label), decl in decls if app is None or a == app
    )


def precompile_kernels(labels=None) -> int:
    """njit-compile registered kernel bodies ahead of use.

    Runs each body once on its tiny example arguments (numba compiles on
    first call per signature).  A no-op without numba.  Returns the
    number of bodies compiled.
    """
    if _NUMBA is None:
        return 0
    count = 0
    for label in labels if labels is not None else registered_warmups():
        entry = _WARMUPS.get(label)
        if entry is None:
            continue
        scalar_fn, example_args = entry
        fn = _FN_CACHE.get(scalar_fn)
        if fn is None:
            fn = _NUMBA.njit(scalar_fn)
            _FN_CACHE[scalar_fn] = fn
        fn(*example_args())
        count += 1
    return count


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class CompiledEngine(Engine):
    """JIT-compiled kernel execution with schedule-shaped timing.

    Runs the application's :class:`CompiledKernel` -- ``numba.njit`` of
    the flat scalar body when numba is importable, the vectorized NumPy
    form otherwise -- and prices the launch by materializing the
    schedule's per-thread work assignment into load vectors folded
    through the interpreter's own cost model.  Results are bit-for-bit
    equal to the ``vector`` engine; timings keep the schedule's launch
    geometry and load balance.
    """

    name = "compiled"

    def launch(self, sched, costs, *, compute=None, kernel=None, compiled=None,
               extras=None, cache_key=None):
        if compiled is None:
            app = (extras or {}).get("app", "this application")
            raise EngineError(
                f"{app} does not declare a compiled kernel (pass compiled= "
                f"to run_launch, or select the vector/simt engine)"
            )
        fn, jit_mode = _compiled_fn(compiled)
        output = fn(*compiled.args)
        atoms, visits, cache_status = _CACHE.loads(sched, compiled)
        atom_c = costs.atom_total(sched.spec) + getattr(
            sched, "abstraction_tax", 0.0
        )
        tile_c = costs.tile_cycles + sched.spec.costs.loop_overhead
        thread_cycles = atoms * atom_c + visits * tile_c
        stats = kernel_stats_from_thread_cycles(
            thread_cycles,
            sched.launch.grid_dim,
            sched.launch.block_dim,
            sched.spec,
            setup_cycles=sched.setup_cycles(costs),
            extras={
                "schedule": sched.name,
                "engine": "compiled",
                "jit": jit_mode,
                "compile_cache": cache_status,
                "compile_cache_hits": _CACHE.hits,
                "compile_cache_misses": _CACHE.misses,
                **(extras or {}),
            },
        )
        return output, stats


register_engine("compiled", CompiledEngine)
