"""Deterministic input seeding shared by the CLI, the harness and tests.

Historically the CLI (``--seed``, default 0) and the evaluation harness
(a hard-coded 12345) each rolled their own RNG for the dense input
vectors, so "the same sweep" from the two entry points ran on different
data.  Every consumer now draws through this module: one seed constant,
one generator construction, one value range.

The range defaults to ``[0.5, 1.5)`` -- strictly positive and away from
zero, so validation tolerances behave uniformly across datasets and no
cancellation hides an incorrect gather.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "input_vector", "input_matrix"]

#: The seed every deterministic entry point (CLI, harness, sweep tests)
#: uses unless the caller overrides it.
DEFAULT_SEED = 0


def input_vector(
    n: int, seed: int = DEFAULT_SEED, low: float = 0.5, high: float = 1.5
) -> np.ndarray:
    """The canonical deterministic dense input vector of length ``n``."""
    return np.random.default_rng(seed).uniform(low, high, size=n)


def input_matrix(
    rows: int,
    cols: int,
    seed: int = DEFAULT_SEED,
    low: float = 0.5,
    high: float = 1.5,
) -> np.ndarray:
    """A deterministic dense matrix (SpMM's B, MTTKRP's factors)."""
    return np.random.default_rng(seed).uniform(low, high, size=(rows, cols))
