"""Multi-GPU execution as just another engine.

:mod:`repro.gpusim.multi_gpu` models the paper's Section 8 future work --
device-level partitioning with the same machinery used inside a device --
but until now it was stranded outside the dispatch layer: only a
hand-written harness loop could reach it.  This module closes the gap by
wrapping that partitioning in an :class:`~repro.engine.dispatch.Engine`,
so *every* registered application inherits multi-device execution the
same way it inherited SIMT execution: by naming an engine.

Semantics: the functional result comes from the application's
``compute()`` (device partitioning never changes *what* is computed --
multi-GPU outputs are bit-for-bit the vector engine's outputs); the
timing delegates to :func:`~repro.gpusim.multi_gpu.multi_gpu_plan`
(shard partition, per-shard re-scheduling, slowest-device-plus-offload
ensemble), with shard planning routed through the engine's plan cache
via its ``plan_shard`` hook -- one partition/plan loop, two callers.
Multi-device sweeps therefore warm the same persistent cache
single-device sweeps do.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..gpusim.multi_gpu import multi_gpu_plan
from .dispatch import Engine, EngineError, register_engine
from .plan_cache import PlanCache, global_plan_cache

__all__ = ["MultiGpuEngine"]


class MultiGpuEngine(Engine):
    """Partition the launch across homogeneous devices; plan each shard.

    ``num_devices`` homogeneous copies of the launch's
    :class:`~repro.gpusim.arch.GpuSpec` split the tile set with the
    ``partition`` strategy (``"merge_path"`` balances tiles+atoms via the
    same 2-D binary search the merge-path schedule uses; ``"tiles"`` is
    the naive equal-tile-count split).  Each shard is re-scheduled with
    the launch's resolved schedule and priced by the analytic planner;
    the ensemble time is the slowest device plus the per-device offload
    overhead.
    """

    name = "multi_gpu"

    def __init__(
        self,
        num_devices: int = 2,
        partition: str = "merge_path",
        plan_cache: PlanCache | None = None,
    ):
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.num_devices = num_devices
        self.partition = partition
        self.plan_cache = global_plan_cache() if plan_cache is None else plan_cache

    def launch(self, sched, costs, *, compute=None, kernel=None, compiled=None,
               extras=None, cache_key=None):
        if compute is None:
            raise EngineError(
                "the multi_gpu engine requires a compute() callable"
            )
        output = compute()

        dev_key = None if cache_key is None else cache_key + ("dev",)

        def plan_shard(dev_sched, dev_costs, dev_extras):
            return self.plan_cache.plan(
                dev_sched, dev_costs, extras=dev_extras, options_key=dev_key
            )

        # Re-schedule each shard with the caller's schedule options (a
        # ``group_size`` override must shape the per-device launches the
        # same way it shaped the single-device one), not the defaults.
        options = getattr(sched, "construction_options", None) or {}
        try:
            ensemble = multi_gpu_plan(
                sched.work,
                costs,
                schedule=sched.name,
                spec=sched.spec,
                num_devices=self.num_devices,
                partition=self.partition,
                plan_shard=plan_shard,
                **options,
            )
        except ValueError:
            # Degenerate empty workload: one device, nothing to split.
            return output, sched.plan(costs, extras=extras)

        times = np.array([s.elapsed_ms for s in ensemble.device_stats])
        slowest = ensemble.device_stats[int(times.argmax())]
        stats = replace(
            slowest,
            elapsed_ms=ensemble.elapsed_ms,
            extras={
                "schedule": sched.name,
                "engine": self.name,
                "num_devices": self.num_devices,
                "partition": self.partition,
                "device_imbalance": ensemble.device_imbalance,
                "shards": ensemble.shards,
                "device_elapsed_ms": tuple(float(t) for t in times),
                "transfer_model": ensemble.extras.get("transfer_model"),
                "transfer_ms": ensemble.extras.get("transfer_ms"),
                "gather_bytes": ensemble.extras.get("gather_bytes"),
                **(extras or {}),
            },
        )
        return output, stats


register_engine("multi_gpu", MultiGpuEngine)
