"""Command-line interface mirroring the artifact's binaries and run.sh.

The original artifact ships per-schedule binaries
(``bin/loops.spmv.merge_path -m matrix.mtx --validate``) and a sweep
script producing ``kernel,dataset,rows,cols,nnzs,elapsed`` CSVs.  This
CLI reproduces both entry points::

    python -m repro spmv --dataset power_a19 --schedule merge_path --validate
    python -m repro spmv -m datasets/chesapeake.mtx --schedule merge_path --validate
    python -m repro sweep --kernels merge_path cub cusparse --scale smoke -o out.csv
    python -m repro sweep --app bfs --kernels group_mapped merge_path --scale smoke
    python -m repro sweep --app spmv --policy oracle_best --gpus 2
    python -m repro sweep --kernels merge_path --rows-jsonl rows.jsonl
    python -m repro serve --port 7077 --width 4 --journal results.journal
    python -m repro submit --port 7077 --kernels merge_path --scale smoke
    python -m repro datasets
    python -m repro apps
    python -m repro schedules
    python -m repro engines
    python -m repro table1
    python -m repro analyze --probe --lint --strict
    python -m repro plans plans.journal
    python -m repro plans compact plans.journal

Execution selection is one :class:`~repro.engine.context.ExecutionContext`
built from ``--engine`` (any registered engine: ``vector``, ``simt``,
``multi_gpu``, ...), ``--gpus`` (``> 1`` auto-selects the multi-GPU
engine), ``--spec`` and -- on ``sweep`` -- ``--policy`` (a schedule name,
``heuristic``, or ``oracle_best``, swept as the single kernel column).
Schedule and kernel names are validated against the registries with
did-you-mean suggestions.

The ``sweep`` command is generic over the application registry
(``--app``, default ``spmv``) and exposes the harness's performance
knobs:

* ``--executor {serial,thread,process}`` -- fan independent cells out
  over a thread pool, or shard by dataset over a process pool (each
  worker builds the problem/oracle once per dataset and runs every
  kernel of that cell, dodging the GIL for pure-Python sections; CSR
  payloads travel through shared memory, small shards are batched);
* ``--keep-pool`` -- route the sweep through the process-wide persistent
  worker pool so repeated invocations in one process reuse warm workers;
* ``--transport {auto,shm,pickle}`` -- how dataset payloads reach
  process-pool workers (shared-memory array bundles vs pickling);
* ``--workers N`` -- pool width for either executor;
* ``--plan-cache-dir DIR`` -- persist the engine's plan cache on disk
  (one file per plan) so repeated sweeps of the same grid (and every
  process-pool worker) start warm instead of re-planning identical
  launches;
* ``--plan-store FILE`` -- same persistence as a single append-only
  journal file (the corpus-scale layout: one open instead of thousands).

``serve`` runs the long-lived multi-tenant sweep daemon
(:mod:`repro.service`) over one persistent warm executor; ``submit``
is its client, streaming per-row JSON results as dataset shards
complete.  ``sweep --rows-jsonl`` writes the same per-row objects the
service streams, one JSON object per line.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _did_you_mean(name: str, known) -> str:
    """Suggestion suffix for an unknown registry identifier."""
    import difflib

    close = difflib.get_close_matches(name, sorted(known), n=3, cutoff=0.5)
    if close:
        return f" -- did you mean {', '.join(repr(c) for c in close)}?"
    return f" (known: {', '.join(sorted(known))})"


def _check_kernels(kernels, app: str) -> str | None:
    """Validate sweep kernel/schedule names; return an error or ``None``."""
    from .core.schedule import available_schedules
    from .engine import get_app
    from .evaluation.harness import POLICY_KERNELS

    known = set(available_schedules()) | set(POLICY_KERNELS)
    known |= set(get_app(app).baselines)
    for kernel in kernels:
        if kernel not in known:
            return f"unknown kernel {kernel!r}{_did_you_mean(kernel, known)}"
    return None


def _check_engine(engine: str) -> str | None:
    """Validate an engine name; return an error message or ``None``.

    Free-form (not argparse ``choices``) so unknown names get the same
    did-you-mean diagnostics as schedules and kernels.
    """
    from .engine import available_engines

    known = available_engines()
    if engine not in known:
        return f"unknown engine {engine!r}{_did_you_mean(engine, known)}"
    return None


def _engine_arg(parser) -> None:
    parser.add_argument(
        "--engine", default="vector",
        help="registered execution engine (see 'repro engines'; "
             "default: vector)",
    )
    parser.add_argument(
        "--gpus", type=int, default=1,
        help="device count; > 1 auto-selects the multi_gpu engine",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Programming Model for GPU Load Balancing'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_spmv = sub.add_parser("spmv", help="run one load-balanced SpMV")
    src = p_spmv.add_mutually_exclusive_group(required=True)
    src.add_argument("-m", "--mtx", type=Path, help="MatrixMarket input file")
    src.add_argument("--dataset", help="corpus dataset name")
    p_spmv.add_argument("--scale", default="standard", help="corpus scale")
    p_spmv.add_argument(
        "--schedule",
        default="merge_path",
        help="schedule name or 'heuristic' (default: merge_path)",
    )
    p_spmv.add_argument("--spec", default="V100", help="GPU preset name")
    p_spmv.add_argument(
        "--validate", action="store_true", help="check against the oracle"
    )
    p_spmv.add_argument("--seed", type=int, default=0, help="seed for x")
    _engine_arg(p_spmv)

    p_sweep = sub.add_parser("sweep", help="run the harness over the corpus")
    p_sweep.add_argument(
        "--kernels",
        nargs="+",
        default=None,
        help="kernel list (default: three schedules plus the app's baselines)",
    )
    p_sweep.add_argument("--app", default="spmv",
                         help="registered application to sweep (default: spmv)")
    p_sweep.add_argument("--scale", default="standard")
    p_sweep.add_argument("--limit", type=int, default=None,
                         help="run only the first N datasets (like run.sh)")
    p_sweep.add_argument("-o", "--output", type=Path, default=None,
                         help="CSV output path (default: stdout)")
    p_sweep.add_argument("--spec", default="V100")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="pool width for independent cells/shards")
    p_sweep.add_argument("--executor", default="thread",
                         choices=["serial", "thread", "process"],
                         help="fan-out strategy: thread pool over cells or "
                              "process pool over per-dataset shards")
    p_sweep.add_argument("--plan-cache-dir", type=Path, default=None,
                         help="directory for the persistent plan cache "
                              "(warm-starts repeated sweeps and workers)")
    p_sweep.add_argument("--plan-store", type=Path, default=None,
                         help="single-file journaled plan store (the "
                              "corpus-scale alternative to --plan-cache-dir)")
    p_sweep.add_argument("--keep-pool", action="store_true",
                         help="with --executor process: reuse the "
                              "process-wide persistent worker pool instead "
                              "of spawning one per sweep")
    p_sweep.add_argument("--transport", default="auto",
                         choices=["auto", "shm", "pickle"],
                         help="with --executor process: how dataset payloads "
                              "reach workers -- shared-memory array bundles "
                              "with pickle fallback (auto), forced shared "
                              "memory (errors on unbundleable payloads), or "
                              "forced pickling")
    p_sweep.add_argument("--rows-jsonl", type=Path, default=None,
                         help="also write one JSON object per result row "
                              "(the schema the sweep service streams) to "
                              "this path")
    p_sweep.add_argument("--seed", type=int, default=None,
                         help="input seed (default: the shared DEFAULT_SEED)")
    p_sweep.add_argument("--no-validate", action="store_true",
                         help="skip the per-cell oracle check")
    p_sweep.add_argument("--policy", default=None,
                         help="sweep one schedule policy as the kernel "
                              "column: a schedule name, 'heuristic', or "
                              "'oracle_best' (mutually exclusive with "
                              "--kernels)")
    _engine_arg(p_sweep)

    p_ds = sub.add_parser("datasets", help="list the corpus")
    p_ds.add_argument("--scale", default="standard")

    sub.add_parser("apps", help="list registered applications")

    sub.add_parser("table1", help="print the Table 1 LoC comparison")

    sub.add_parser("schedules", help="list registered schedules")

    sub.add_parser("engines", help="list registered execution engines")

    p_serve = sub.add_parser(
        "serve", help="run the long-lived multi-tenant sweep service"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="listen address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=7077,
                         help="listen port; 0 picks a free port "
                              "(announced on stdout)")
    p_serve.add_argument("--width", type=int, default=None,
                         help="worker-pool width; 0 runs units serially "
                              "in-process (default: REPRO_SERVE_WIDTH or "
                              "the executor's default width)")
    p_serve.add_argument("--queue-depth", type=int, default=None,
                         help="max pending jobs before submissions are "
                              "rejected with queue_full (default: "
                              "REPRO_SERVE_QUEUE_DEPTH or 16)")
    p_serve.add_argument("--journal", type=Path, default=None,
                         help="crash-safe results journal (every accepted "
                              "job, row and completion, CRC-framed)")
    p_serve.add_argument("--transport", default="auto",
                         choices=["auto", "shm", "pickle"],
                         help="dataset transport to pool workers")
    p_serve.add_argument("--plan-store", type=Path, default=None,
                         help="journaled plan store shared by every job")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         help="per-job wall-clock deadline in seconds; a "
                              "job past it finishes with status=timeout "
                              "(default: REPRO_SERVE_JOB_TIMEOUT or 600; "
                              "0 disables)")

    p_submit = sub.add_parser(
        "submit", help="submit one sweep job to a running service"
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=7077)
    p_submit.add_argument("--kernels", nargs="+", default=["merge_path"],
                          help="kernel list (default: merge_path)")
    p_submit.add_argument("--app", default="spmv",
                          help="registered application (default: spmv)")
    p_submit.add_argument("--scale", default="smoke",
                          help="corpus scale (default: smoke)")
    p_submit.add_argument("--limit", type=int, default=None,
                          help="run only the first N datasets")
    p_submit.add_argument("--datasets", nargs="+", default=None,
                          help="explicit dataset names from the scale")
    p_submit.add_argument("--seed", type=int, default=None)
    p_submit.add_argument("--no-validate", action="store_true",
                          help="skip the per-cell oracle check")
    p_submit.add_argument("--retries", type=int, default=0,
                          help="reconnect-and-resubmit attempts after "
                              "dropped connections or queue_full")
    p_submit.add_argument("--timeout", type=float, default=None,
                          help="single knob setting both --connect-timeout "
                               "and --idle-timeout")
    p_submit.add_argument("--connect-timeout", type=float, default=None,
                          help="TCP connect deadline in seconds "
                               "(default: 10)")
    p_submit.add_argument("--idle-timeout", type=float, default=None,
                          help="max silence between server messages in "
                               "seconds (default: 300)")
    _engine_arg(p_submit)

    p_analyze = sub.add_parser(
        "analyze",
        help="static kernel-effect analysis: race verdict matrix and repo lints",
    )
    p_analyze.add_argument("--apps", nargs="+", default=None,
                           help="restrict the verdict matrix to these apps "
                                "(default: every registered app)")
    p_analyze.add_argument("--schedules", nargs="+", default=None,
                           help="restrict the matrix to these schedules "
                                "(default: every registered schedule)")
    p_analyze.add_argument("--lint", nargs="*", default=None,
                           metavar="LINT",
                           help="also run repo lints (bare flag: all of "
                                "them; see the lint list in the README)")
    p_analyze.add_argument("--probe", action="store_true",
                           help="validate every SAFE verdict with the "
                                "shadow-write dynamic probe")
    p_analyze.add_argument("--strict", action="store_true",
                           help="exit 1 on any lint finding, SCATTER-free "
                                "probe violation, or probe/verdict mismatch")
    p_analyze.add_argument("--json", type=Path, default=None,
                           help="write the full report (verdicts, lints, "
                                "probe) as JSON to this path")
    p_analyze.add_argument("--root", type=Path, default=None,
                           help="repo root for the lints (default: the "
                                "installed tree's root)")

    p_plans = sub.add_parser(
        "plans", help="inspect or compact a journaled plan store"
    )
    p_plans.add_argument(
        "target", nargs="+", metavar="[compact] PATH",
        help="plan-store journal to inspect, or 'compact' followed by "
             "the journal to rewrite in place",
    )
    return parser


def _cmd_spmv(args: argparse.Namespace) -> int:
    from .apps.spmv import spmv
    from .baselines.reference import dense_spmv_oracle
    from .core.schedule import available_schedules
    from .evaluation.harness import POLICY_KERNELS
    from .gpusim.arch import get_spec
    from .sparse.convert import coo_to_csr
    from .sparse.corpus import load_dataset
    from .sparse.mtx_io import read_mtx

    known = set(available_schedules()) | set(POLICY_KERNELS)
    if args.schedule not in known:
        print(
            f"unknown schedule {args.schedule!r}"
            f"{_did_you_mean(args.schedule, known)}",
            file=sys.stderr,
        )
        return 2
    error = _check_engine(args.engine)
    if error is not None:
        print(error, file=sys.stderr)
        return 2

    if args.mtx is not None:
        matrix = coo_to_csr(read_mtx(args.mtx))
        name = args.mtx.name
    else:
        ds = load_dataset(args.dataset, args.scale)
        matrix, name = ds.matrix, ds.name

    from .engine import ExecutionContext, input_vector

    ctx = ExecutionContext(
        engine=args.engine,
        spec=get_spec(args.spec),
        policy=args.schedule,
        gpus=args.gpus,
    )
    x = input_vector(matrix.num_cols, args.seed)
    result = spmv(matrix, x, ctx=ctx)

    print(f"Elapsed (ms): {result.elapsed_ms:.6f}")
    print(f"Matrix: {name}")
    print(f"Dimensions: {matrix.num_rows} x {matrix.num_cols} ({matrix.nnz})")
    print(f"Schedule: {result.schedule}")
    if args.validate:
        errors = int(
            np.sum(~np.isclose(result.output, dense_spmv_oracle(matrix, x)))
        )
        print(f"Errors: {errors}")
        return 1 if errors else 0
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import csv as _csv

    from .engine import DEFAULT_SEED, ExecutionContext, get_app
    from .evaluation.harness import PAPER_FIELDS, run_suite, write_csv
    from .gpusim.arch import get_spec

    if args.policy is not None and args.kernels is not None:
        print("--policy and --kernels are mutually exclusive", file=sys.stderr)
        return 2
    kernels = args.kernels
    if args.policy is not None:
        kernels = [args.policy]
    elif kernels is None:
        # Three representative schedules plus whatever hardwired
        # baselines the app competes against (SpMV: cub + cusparse).
        kernels = ["merge_path", "thread_mapped", "group_mapped"]
        kernels += sorted(get_app(args.app).baselines)

    error = _check_kernels(kernels, args.app)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    error = _check_engine(args.engine)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    if args.plan_cache_dir is not None and args.plan_store is not None:
        print("--plan-cache-dir and --plan-store are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.keep_pool and args.executor != "process":
        print("--keep-pool requires --executor process", file=sys.stderr)
        return 2
    if args.transport != "auto" and args.executor != "process":
        print("--transport requires --executor process (dataset transport "
              "only applies to process-pool sweeps)", file=sys.stderr)
        return 2
    rows_jsonl_fh = None
    if args.rows_jsonl is not None:
        # Validate writability *before* the sweep runs: a typo'd path
        # must fail in seconds as a usage error, not after minutes of
        # computed rows have nowhere to go.
        try:
            rows_jsonl_fh = open(args.rows_jsonl, "w", encoding="utf-8")
        except OSError as exc:
            print(f"cannot write --rows-jsonl {args.rows_jsonl}: {exc}",
                  file=sys.stderr)
            return 2

    ctx = ExecutionContext(
        engine=args.engine,
        spec=get_spec(args.spec),
        gpus=args.gpus,
        plan_cache_dir=(
            None if args.plan_cache_dir is None else str(args.plan_cache_dir)
        ),
        plan_store=None if args.plan_store is None else str(args.plan_store),
    )
    try:
        rows = run_suite(
            kernels,
            app=args.app,
            scale=args.scale,
            ctx=ctx,
            limit=args.limit,
            seed=DEFAULT_SEED if args.seed is None else args.seed,
            validate=not args.no_validate,
            max_workers=args.workers,
            executor=args.executor,
            keep_pool=args.keep_pool,
            transport=args.transport,
        )
    except BaseException:
        if rows_jsonl_fh is not None:
            rows_jsonl_fh.close()
        raise
    if rows_jsonl_fh is not None:
        import json as _json

        from .service.protocol import row_to_wire

        with rows_jsonl_fh:
            for r in rows:
                rows_jsonl_fh.write(
                    _json.dumps(row_to_wire(r), separators=(",", ":")) + "\n"
                )
        print(f"wrote {len(rows)} rows to {args.rows_jsonl}", file=sys.stderr)
    include_app = args.app != "spmv"
    if args.output is not None:
        path = write_csv(rows, args.output, include_app=include_app)
        print(f"wrote {len(rows)} rows to {path}")
    else:
        fields = (["app"] if include_app else []) + list(PAPER_FIELDS)
        writer = _csv.DictWriter(sys.stdout, fieldnames=fields)
        writer.writeheader()
        for r in rows:
            writer.writerow(r.as_csv_dict(include_app=include_app))
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .sparse.corpus import build_corpus

    print(f"{'name':<20} {'family':<9} {'rows':>8} {'cols':>8} {'nnz':>10} {'cv':>7}")
    for d in build_corpus(args.scale):
        print(
            f"{d.name:<20} {d.family:<9} {d.rows:>8} {d.cols:>8} {d.nnz:>10} "
            f"{d.meta['cv']:>7.2f}"
        )
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    from .engine import available_apps, get_app

    print(f"{'name':<16} {'default schedule':<18} description")
    for name in available_apps():
        app = get_app(name)
        print(f"{name:<16} {app.default_schedule:<18} {app.description}")
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from .evaluation.loc import table1_rows

    print(f"{'algorithm':<16} {'paper CUB':>10} {'paper ours':>11} "
          f"{'measured ours':>14} {'incremental':>12}")
    for r in table1_rows():
        cub = str(r.paper_cub) if r.paper_cub is not None else "N/A"
        incr = str(r.measured_incremental) if r.measured_incremental is not None else "-"
        print(f"{r.algorithm:<16} {cub:>10} {r.paper_ours:>11} "
              f"{r.measured_ours:>14} {incr:>12}")
    return 0


def _cmd_schedules(_args: argparse.Namespace) -> int:
    from .core.schedule import available_schedules, schedule_description

    print(f"{'name':<16} description")
    for name in available_schedules():
        print(f"{name:<16} {schedule_description(name)}")
    return 0


def _cmd_engines(_args: argparse.Namespace) -> int:
    from .engine import available_engines, engine_description

    print(f"{'name':<16} description")
    for name in available_engines():
        print(f"{name:<16} {engine_description(name)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from .service import SweepService
    from .service.server import SERVE_WIDTH_ENV

    width = args.width
    if width is None:
        raw = os.environ.get(SERVE_WIDTH_ENV)
        if raw:
            try:
                width = int(raw)
            except ValueError:
                print(f"non-integer {SERVE_WIDTH_ENV}={raw!r}",
                      file=sys.stderr)
                return 2
    if width is not None and width < 0:
        print(f"--width must be >= 0, got {width}", file=sys.stderr)
        return 2
    try:
        service = SweepService(
            host=args.host,
            port=args.port,
            width=width,
            queue_depth=args.queue_depth,
            journal_path=None if args.journal is None else str(args.journal),
            transport=args.transport,
            plan_store=None if args.plan_store is None else str(args.plan_store),
            job_timeout=args.job_timeout,
        )
    except (ValueError, OSError) as exc:
        print(f"cannot start service: {exc}", file=sys.stderr)
        return 2

    def _announce(svc: SweepService) -> None:
        # One parseable line so wrappers (and the tests) can discover a
        # --port 0 ephemeral binding.
        print(f"repro serve listening on {svc.host}:{svc.port}", flush=True)

    try:
        asyncio.run(service.serve(install_signals=True, on_ready=_announce))
    except KeyboardInterrupt:
        pass
    print(
        f"repro serve drained: {service.jobs_done} jobs, "
        f"{service.rows_streamed} rows, {service.jobs_rejected} rejected",
        flush=True,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from .service import JobRejected, ServiceError, SweepClient

    error = _check_kernels(args.kernels, args.app)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    error = _check_engine(args.engine)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    job = {
        "app": args.app,
        "kernels": list(args.kernels),
        "scale": args.scale,
        "limit": args.limit,
        "datasets": args.datasets,
        "seed": args.seed,
        "validate": not args.no_validate,
        "engine": args.engine,
        "gpus": args.gpus,
    }
    attempts = max(0, args.retries) + 1
    last_error: Exception | None = None
    for attempt in range(attempts):
        client = SweepClient(
            args.host, args.port, timeout=args.timeout,
            connect_timeout=args.connect_timeout,
            idle_timeout=args.idle_timeout,
        )
        try:
            client.connect()
            accepted = client.submit(job)
            print(
                f"accepted {accepted['job_id']}: {accepted['units']} units",
                file=sys.stderr,
            )
            failed = 0
            status = "unknown"
            for message in client.stream(accepted):
                kind = message.get("type")
                if kind == "row":
                    print(_json.dumps(message["row"], separators=(",", ":")),
                          flush=True)
                elif kind == "row_error":
                    failed += 1
                    print(
                        f"row error on {message.get('dataset')}: "
                        f"{message.get('error')}",
                        file=sys.stderr,
                    )
                else:  # done
                    status = message.get("status", "unknown")
            print(f"done: status={status} failed={failed}", file=sys.stderr)
            return 0 if status == "ok" else 1
        except JobRejected as exc:
            if exc.reason == "bad_request":
                print(f"rejected: {exc.detail or exc.reason}", file=sys.stderr)
                return 2  # the job itself is wrong; retrying is pointless
            last_error = exc
        except (ServiceError, OSError) as exc:
            last_error = exc
        finally:
            client.close()
    print(f"submit failed after {attempts} attempt(s): {last_error}",
          file=sys.stderr)
    return 3 if isinstance(last_error, JobRejected) else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import (
        available_lints,
        probe_matrix,
        run_lints,
        verdict_matrix,
    )
    from .core.schedule import available_schedules
    from .engine import available_apps

    known_apps = set(available_apps())
    for app in args.apps or ():
        if app not in known_apps:
            print(f"unknown app {app!r}{_did_you_mean(app, known_apps)}",
                  file=sys.stderr)
            return 2
    known_schedules = set(available_schedules())
    for sched in args.schedules or ():
        if sched not in known_schedules:
            print(
                f"unknown schedule {sched!r}"
                f"{_did_you_mean(sched, known_schedules)}",
                file=sys.stderr,
            )
            return 2
    lints = args.lint
    if lints is not None:
        known_lints = set(available_lints())
        for lint in lints:
            if lint not in known_lints:
                print(f"unknown lint {lint!r}{_did_you_mean(lint, known_lints)}",
                      file=sys.stderr)
                return 2
        if not lints:
            lints = list(available_lints())

    matrix = verdict_matrix(apps=args.apps, schedules=args.schedules)
    sched_names = matrix["schedules"]
    width = max((len(s) for s in sched_names), default=8)
    kernel_col = max(
        [len(f"{r['app']}/{r['label']}") for r in matrix["rows"]] + [6]
    )
    print(f"{'kernel':<{kernel_col}} " +
          " ".join(f"{s:>{width}}" for s in sched_names))
    for row in matrix["rows"]:
        name = f"{row['app']}/{row['label']}"
        if row["delegates_to"]:
            name += "*"
        print(f"{name:<{kernel_col}} " +
              " ".join(f"{row['verdicts'][s]:>{width}}" for s in sched_names))
    if any(r["delegates_to"] for r in matrix["rows"]):
        print("(* delegates its kernel to another app)")

    violations: list[str] = []
    probe_report = None
    if args.probe:
        probed = probe_matrix(apps=args.apps, schedules=args.schedules)
        probe_report = []
        for row in matrix["rows"]:
            for sched in sched_names:
                result = probed.get((row["app"], sched))
                if result is None:
                    continue
                overlaps = result.overlaps_for(row["label"])
                probe_report.append(
                    {
                        "app": row["app"],
                        "schedule": sched,
                        "label": row["label"],
                        "verdict": row["verdicts"][sched],
                        "overlaps": overlaps,
                    }
                )
                if row["verdicts"][sched] == "SAFE" and overlaps:
                    violations.append(
                        f"probe violation: {row['app']}/{row['label']} under "
                        f"{sched} is SAFE but {overlaps} element(s) were "
                        "written by multiple threads"
                    )
        safe_cells = sum(1 for e in probe_report if e["verdict"] == "SAFE")
        print(f"probe: {len(probe_report)} cells, {safe_cells} SAFE, "
              f"{len(violations)} violation(s)")
        for line in violations:
            print(line, file=sys.stderr)

    findings = []
    if lints is not None:
        findings = run_lints(lints, root=args.root)
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.lint}] {f.message}",
                  file=sys.stderr)
        print(f"lints: {len(lints)} run, {len(findings)} finding(s)")

    if args.json is not None:
        import json as _json

        report = {
            "verdicts": matrix,
            "lints": [
                {"lint": f.lint, "path": f.path, "line": f.line,
                 "message": f.message}
                for f in findings
            ],
            "probe": probe_report,
            "violations": violations,
        }
        args.json.write_text(_json.dumps(report, indent=2) + "\n")
        print(f"wrote report to {args.json}")

    if args.strict and (findings or violations):
        return 1
    return 0


def _check_plan_store_path(path: Path) -> str | None:
    """Validate that ``path`` looks like one of our plan-store journals.

    Only *structural* problems (missing file, directory, foreign or
    version-bumped header) are errors; a damaged tail is tolerated by
    the store itself and merely reported by the inspection output.
    """
    from .engine.plan_store import STORE_FORMAT_VERSION, STORE_MAGIC

    if not path.exists():
        return f"no plan store at {path}"
    if path.is_dir():
        return (f"{path} is a directory, not a plan-store journal "
                f"(did you mean --plan-cache-dir?)")
    with open(path, "rb") as fh:
        head = fh.read(len(STORE_MAGIC) + 4)
    if (len(head) < len(STORE_MAGIC) + 4
            or head[: len(STORE_MAGIC)] != STORE_MAGIC
            or int.from_bytes(head[len(STORE_MAGIC):], "little")
            != STORE_FORMAT_VERSION):
        return f"{path} is not a plan-store journal (bad header)"
    return None


def _cmd_plans(args: argparse.Namespace) -> int:
    from .engine.plan_store import PlanStore

    target = list(args.target)
    compact = target and target[0] == "compact"
    if compact:
        target = target[1:]
    if len(target) != 1:
        print("usage: repro plans [compact] PATH", file=sys.stderr)
        return 2
    path = Path(target[0])
    error = _check_plan_store_path(path)
    if error is not None:
        print(error, file=sys.stderr)
        return 2

    store = PlanStore(path)
    try:
        if compact:
            before = store.info()["file_bytes"]
            dropped = store.compact()
            after = store.info()["file_bytes"]
            print(f"compacted {path}: dropped {dropped} dead records "
                  f"({before} -> {after} bytes)")
            return 0
        info = store.info()
        total = info["records"] + info["dead_records"]
        live_ratio = info["records"] / total if total else 1.0
        print(f"path:         {info['path']}")
        print(f"records:      {info['records']} live, "
              f"{info['dead_records']} dead ({live_ratio:.0%} live)")
        print(f"file bytes:   {info['file_bytes']}")
        print(f"scan damage:  {'yes' if info['scan_damage'] else 'no'}")
        return 0
    finally:
        store.close()


_COMMANDS = {
    "spmv": _cmd_spmv,
    "sweep": _cmd_sweep,
    "datasets": _cmd_datasets,
    "apps": _cmd_apps,
    "table1": _cmd_table1,
    "schedules": _cmd_schedules,
    "engines": _cmd_engines,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "analyze": _cmd_analyze,
    "plans": _cmd_plans,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
