"""Series builders for the paper's figures.

Each ``figN_*`` function regenerates the data behind one figure of the
evaluation section from harness rows, plus the summary statistics the
paper quotes in prose (geomean slowdown/speedup, win fractions, peaks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpusim.arch import GpuSpec, V100
from ..gpusim.profiler import geomean
from .harness import SpmvRow, run_spmv_suite

__all__ = [
    "FigureSeries",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "fig2_overhead",
    "fig3_landscape",
    "fig4_heuristic",
]


@dataclass
class FigureSeries:
    """One scatter series: (nnz, elapsed-or-speedup) per dataset."""

    kernel: str
    datasets: list[str] = field(default_factory=list)
    nnzs: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, dataset: str, nnz: int, value: float) -> None:
        self.datasets.append(dataset)
        self.nnzs.append(nnz)
        self.values.append(value)


def _series(rows: list[SpmvRow], kernel: str, elapsed_of=None) -> FigureSeries:
    s = FigureSeries(kernel=kernel)
    for r in rows:
        if r.kernel == kernel:
            s.add(r.dataset, r.nnzs, r.elapsed if elapsed_of is None else elapsed_of(r))
    return s


def _elapsed_map(rows: list[SpmvRow], kernel: str) -> dict[str, float]:
    return {r.dataset: r.elapsed for r in rows if r.kernel == kernel}


# ----------------------------------------------------------------------
# Figure 2: abstraction overhead -- our merge-path vs hardwired CUB.
# ----------------------------------------------------------------------
@dataclass
class Fig2Result:
    series: dict[str, FigureSeries]
    #: Per-dataset slowdown ours/CUB (>1 means CUB faster).
    slowdowns: dict[str, float]
    geomean_slowdown: float
    #: Fraction of datasets where we achieve >= 90% of CUB's performance.
    frac_within_90pct: float
    #: Datasets where CUB wins by more than 10% (paper: the single-column
    #: sparse vectors, via CUB's specialized heuristic).
    cub_wins: list[str]


def fig2_overhead(
    *, scale: str = "standard", spec: GpuSpec = V100, rows: list[SpmvRow] | None = None
) -> Fig2Result:
    if rows is None:
        rows = run_spmv_suite(["merge_path", "cub"], scale=scale, spec=spec)
    ours = _elapsed_map(rows, "merge_path")
    cub = _elapsed_map(rows, "cub")
    common = sorted(set(ours) & set(cub))
    if not common:
        raise ValueError("no common datasets between merge_path and cub rows")
    slowdowns = {d: ours[d] / cub[d] for d in common}
    # "achieving at least 90% of CUB's performance" == ours <= cub / 0.9
    within = [d for d in common if ours[d] <= cub[d] / 0.9]
    return Fig2Result(
        series={
            "merge-path": _series(rows, "merge_path"),
            "cub": _series(rows, "cub"),
        },
        slowdowns=slowdowns,
        geomean_slowdown=geomean(slowdowns.values()),
        frac_within_90pct=len(within) / len(common),
        cub_wins=[d for d in common if slowdowns[d] > 1.1],
    )


# ----------------------------------------------------------------------
# Figure 3: performance landscape -- 3 schedules vs cuSparse.
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    series: dict[str, FigureSeries]
    #: For each dataset, the fastest framework schedule.
    best_schedule: dict[str, str]
    #: Fraction of datasets where at least one framework schedule beats
    #: the vendor model.
    frac_some_schedule_wins: float


FIG3_SCHEDULES = ("thread_mapped", "group_mapped", "merge_path")


def fig3_landscape(
    *, scale: str = "standard", spec: GpuSpec = V100, rows: list[SpmvRow] | None = None
) -> Fig3Result:
    kernels = list(FIG3_SCHEDULES) + ["cusparse"]
    if rows is None:
        rows = run_spmv_suite(kernels, scale=scale, spec=spec)
    maps = {k: _elapsed_map(rows, k) for k in kernels}
    datasets = sorted(set.intersection(*(set(m) for m in maps.values())))
    best = {
        d: min(FIG3_SCHEDULES, key=lambda k: maps[k][d]) for d in datasets
    }
    wins = sum(
        1
        for d in datasets
        if min(maps[k][d] for k in FIG3_SCHEDULES) < maps["cusparse"][d]
    )
    return Fig3Result(
        series={k: _series(rows, k) for k in kernels},
        best_schedule=best,
        frac_some_schedule_wins=wins / len(datasets) if datasets else 0.0,
    )


# ----------------------------------------------------------------------
# Figure 4: heuristic-combined SpMV speedup over cuSparse.
# ----------------------------------------------------------------------
@dataclass
class Fig4Result:
    #: Speedup series (nnz vs cusparse_time / ours_time), split by the
    #: schedule the heuristic chose (the figure's three colours).
    series: dict[str, FigureSeries]
    speedups: dict[str, float]
    chosen: dict[str, str]
    geomean_speedup: float
    peak_speedup: float
    peak_dataset: str


def fig4_heuristic(
    *, scale: str = "standard", spec: GpuSpec = V100, rows: list[SpmvRow] | None = None
) -> Fig4Result:
    if rows is None:
        rows = run_spmv_suite(["heuristic", "cusparse"], scale=scale, spec=spec)
    ours = {r.dataset: r for r in rows if r.kernel == "heuristic"}
    vendor = _elapsed_map(rows, "cusparse")
    datasets = sorted(set(ours) & set(vendor))
    if not datasets:
        raise ValueError("no common datasets between heuristic and cusparse rows")
    speedups = {d: vendor[d] / ours[d].elapsed for d in datasets}
    chosen = {d: ours[d].meta.get("schedule", "?") for d in datasets}
    series: dict[str, FigureSeries] = {}
    for d in datasets:
        sched = chosen[d]
        series.setdefault(sched, FigureSeries(kernel=sched)).add(
            d, ours[d].nnzs, speedups[d]
        )
    peak_dataset = max(datasets, key=lambda d: speedups[d])
    return Fig4Result(
        series=series,
        speedups=speedups,
        chosen=chosen,
        geomean_speedup=geomean(speedups.values()),
        peak_speedup=speedups[peak_dataset],
        peak_dataset=peak_dataset,
    )
