"""``repro.evaluation`` -- the harness reproducing the paper's evaluation.

* :mod:`.harness` -- (app x kernel x dataset) sweeps over the app
  registry, paper-schema CSVs, optional thread-pool parallelism;
* :mod:`.figures` -- data series + summary stats for Figures 2, 3 and 4;
* :mod:`.loc` -- the lines-of-code measurement behind Table 1.
"""

from .figures import (
    Fig2Result,
    Fig3Result,
    Fig4Result,
    FigureSeries,
    fig2_overhead,
    fig3_landscape,
    fig4_heuristic,
)
from .harness import (
    SPMV_KERNELS,
    SpmvRow,
    SweepRow,
    run_cell,
    run_spmv_kernel,
    run_spmv_suite,
    run_suite,
    write_csv,
)
from .loc import PAPER_TABLE1, Table1Row, count_loc, source_loc, table1_rows

__all__ = [
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "FigureSeries",
    "fig2_overhead",
    "fig3_landscape",
    "fig4_heuristic",
    "SPMV_KERNELS",
    "SpmvRow",
    "SweepRow",
    "run_cell",
    "run_spmv_kernel",
    "run_spmv_suite",
    "run_suite",
    "write_csv",
    "PAPER_TABLE1",
    "Table1Row",
    "count_loc",
    "source_loc",
    "table1_rows",
]
