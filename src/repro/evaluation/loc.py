"""Lines-of-code measurement for Table 1.

The paper counts non-comment lines that contribute to the kernel
implementation (clang-format normalized).  We apply the same protocol to
this repo's Python: for each named implementation we count non-blank,
non-comment, non-docstring logical source lines of the functions/classes
that contribute to the kernel, via ``inspect.getsource``.

The paper's own numbers are recorded alongside so the bench can print the
reproduced ratio next to the published one.  Note the warp- and
block-mapped rows: they reuse the group-mapped machinery, so their
incremental cost is ~zero ("free"), matching the paper's claim.
"""

from __future__ import annotations

import inspect
import io
import tokenize
from dataclasses import dataclass

__all__ = ["count_loc", "source_loc", "Table1Row", "table1_rows", "PAPER_TABLE1"]

#: Paper Table 1 (LoC): load-balancing algorithm -> (NVIDIA/CUB, our work).
PAPER_TABLE1: dict[str, tuple[int | None, int]] = {
    "merge_path": (503, 36),
    "thread_mapped": (22, 21),
    "group_mapped": (None, 30),
    "warp_mapped": (None, 30),
    "block_mapped": (None, 30),
}


def count_loc(source: str) -> int:
    """Count logical lines: excludes blanks, comments and docstrings."""
    # Tokenize to find comment/docstring positions robustly.
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        # Fall back to a plain filter for snippets that don't tokenize.
        return sum(
            1
            for line in source.splitlines()
            if line.strip() and not line.strip().startswith("#")
        )
    prev_significant = None
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        if tok.type == tokenize.STRING and prev_significant in (None, ":", "\n"):
            # A string statement (docstring) -- skip its lines.
            prev_significant = "str-stmt"
            continue
        for ln in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(ln)
        prev_significant = tok.string if tok.type == tokenize.OP else "\n" \
            if tok.type == tokenize.NEWLINE else tok.string
    return len(code_lines)


def source_loc(obj) -> int:
    """LoC of a function/class/method via ``inspect.getsource``."""
    return count_loc(inspect.getsource(obj))


@dataclass(frozen=True)
class Table1Row:
    algorithm: str
    paper_cub: int | None
    paper_ours: int
    measured_ours: int
    #: Incremental LoC relative to the implementation it specializes
    #: (warp/block-mapped over group machinery) -- the "free" column.
    measured_incremental: int | None = None


def _schedule_kernel_loc() -> dict[str, int]:
    """LoC of each schedule's kernel-contributing code in this repo.

    Counted: the per-thread consumption methods (``tiles``/``atoms``/
    ``flat_atoms``) plus scheduling setup (partition/search/scan) -- the
    code a user would otherwise have to write by hand.  Not counted: the
    planner-side cost model (simulator-only, no CUDA analogue) and
    docstrings.
    """
    from ..core.schedules.group_mapped import GroupMappedSchedule
    from ..core.schedules.merge_path import MergePathSchedule, merge_path_partition
    from ..core.schedules.thread_mapped import ThreadMappedSchedule
    from ..core.schedules.warp_block import (
        BlockMappedSchedule,
        WarpMappedSchedule,
        _GroupPerTileSchedule,
    )

    def methods_loc(cls, names) -> int:
        total = 0
        for n in names:
            member = inspect.getattr_static(cls, n, None)
            if member is None:
                continue
            if isinstance(member, (staticmethod, classmethod)):
                member = member.__func__
            total += source_loc(member)
        return total

    thread = methods_loc(ThreadMappedSchedule, ["__init__", "tiles", "atoms"])
    merge = methods_loc(
        MergePathSchedule,
        ["__init__", "tiles", "atoms", "thread_partition", "owns_tile_fully"],
    ) + source_loc(merge_path_partition)
    group = methods_loc(
        GroupMappedSchedule,
        [
            "__init__",
            "tiles",
            "atoms",
            "flat_atoms",
            "chunk_bounds",
            "num_groups",
            "tiles_per_group",
        ],
    )
    shared = methods_loc(
        _GroupPerTileSchedule, ["__init__", "tiles", "atoms", "group_size"]
    )
    warp = shared + methods_loc(WarpMappedSchedule, ["group_size"])
    block = shared + methods_loc(BlockMappedSchedule, ["group_size"])
    warp_incr = methods_loc(WarpMappedSchedule, ["group_size"])
    block_incr = methods_loc(BlockMappedSchedule, ["group_size"])
    return {
        "thread_mapped": thread,
        "merge_path": merge,
        "group_mapped": group,
        "warp_mapped": warp,
        "block_mapped": block,
        "_warp_incremental": warp_incr,
        "_block_incremental": block_incr,
    }


def table1_rows() -> list[Table1Row]:
    """Measured Table 1 for this repo, with the paper's numbers attached."""
    measured = _schedule_kernel_loc()
    rows = []
    for algo, (paper_cub, paper_ours) in PAPER_TABLE1.items():
        incr = None
        if algo == "warp_mapped":
            incr = measured["_warp_incremental"]
        elif algo == "block_mapped":
            incr = measured["_block_incremental"]
        rows.append(
            Table1Row(
                algorithm=algo,
                paper_cub=paper_cub,
                paper_ours=paper_ours,
                measured_ours=measured[algo],
                measured_incremental=incr,
            )
        )
    return rows
