"""The experiment harness: (kernel x dataset) sweeps producing paper CSVs.

Mirrors the artifact's ``run.sh``: the output schema is the paper's
appendix sample --

    kernel,dataset,rows,cols,nnzs,elapsed

``elapsed`` is the simulated kernel time in model milliseconds.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..apps.spmv import spmv
from ..baselines.cub_spmv import cub_spmv
from ..baselines.cusparse_spmv import cusparse_spmv
from ..gpusim.arch import GpuSpec, V100
from ..sparse.corpus import Dataset, build_corpus

__all__ = ["SpmvRow", "run_spmv_suite", "write_csv", "SPMV_KERNELS"]

#: Kernel identifiers the harness understands.  Framework schedules are
#: referenced by their registry names; ``heuristic`` is the Section 6.2
#: selector; ``cub`` and ``cusparse`` are the baselines.
SPMV_KERNELS = (
    "thread_mapped",
    "warp_mapped",
    "block_mapped",
    "group_mapped",
    "merge_path",
    "nonzero_split",
    "lrb",
    "heuristic",
    "cub",
    "cusparse",
)


@dataclass(frozen=True)
class SpmvRow:
    """One harness result cell, in the paper's CSV schema."""

    kernel: str
    dataset: str
    rows: int
    cols: int
    nnzs: int
    elapsed: float  # model milliseconds
    #: Extra diagnostics not in the paper's schema (kept out of the CSV
    #: unless asked for).
    meta: dict = field(default_factory=dict, compare=False)

    def as_csv_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "dataset": self.dataset,
            "rows": self.rows,
            "cols": self.cols,
            "nnzs": self.nnzs,
            "elapsed": self.elapsed,
        }


def _deterministic_x(n: int, seed: int = 12345) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.5, 1.5, size=n)


def run_spmv_kernel(
    kernel: str, dataset: Dataset, spec: GpuSpec = V100
) -> SpmvRow:
    """Run one (kernel, dataset) cell and validate the result."""
    matrix = dataset.matrix
    x = _deterministic_x(matrix.num_cols)
    if kernel == "cub":
        y, stats = cub_spmv(matrix, x, spec)
        meta = dict(stats.extras)
    elif kernel == "cusparse":
        y, stats = cusparse_spmv(matrix, x, spec)
        meta = dict(stats.extras)
    elif kernel in SPMV_KERNELS:
        result = spmv(matrix, x, schedule=kernel, spec=spec)
        y, stats = result.output, result.stats
        meta = {"schedule": result.schedule}
    else:
        raise KeyError(f"unknown kernel {kernel!r}; known: {SPMV_KERNELS}")
    # The artifact's --validate flag: every cell checks its output.
    from ..baselines.reference import dense_spmv_oracle

    expected = dense_spmv_oracle(matrix, x)
    if not np.allclose(y, expected, rtol=1e-9, atol=1e-12):
        raise AssertionError(
            f"validation failed for kernel={kernel} dataset={dataset.name}"
        )
    meta.update(
        simt_efficiency=stats.simt_efficiency,
        occupancy=stats.occupancy,
        utilization=stats.utilization,
    )
    return SpmvRow(
        kernel=kernel,
        dataset=dataset.name,
        rows=matrix.num_rows,
        cols=matrix.num_cols,
        nnzs=matrix.nnz,
        elapsed=stats.elapsed_ms,
        meta=meta,
    )


def run_spmv_suite(
    kernels: Sequence[str],
    *,
    scale: str = "standard",
    spec: GpuSpec = V100,
    datasets: Iterable[Dataset] | None = None,
    limit: int | None = None,
) -> list[SpmvRow]:
    """Run a kernel list over the corpus (the ``run.sh`` loop)."""
    ds = list(datasets) if datasets is not None else build_corpus(scale, limit=limit)
    rows: list[SpmvRow] = []
    for dataset in ds:
        for kernel in kernels:
            rows.append(run_spmv_kernel(kernel, dataset, spec))
    return rows


def write_csv(rows: Iterable[SpmvRow], path: str | Path) -> Path:
    """Write harness rows in the paper's CSV schema."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(
            fh, fieldnames=["kernel", "dataset", "rows", "cols", "nnzs", "elapsed"]
        )
        writer.writeheader()
        for row in rows:
            writer.writerow(row.as_csv_dict())
    return path
